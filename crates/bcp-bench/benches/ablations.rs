//! Ablations of the design choices DESIGN.md §7 calls out:
//! im2col-GEMM vs direct convolution, integer thresholds vs float
//! batch-norm + sign, and (printed once) balanced vs raw-imbalanced
//! training and augmentation on/off.

use bcp_dataset::Dataset;
use bcp_nn::metrics::predictions;
use bcp_nn::optim::Adam;
use bcp_nn::train::{train_epoch, LossKind};
use bcp_nn::Mode;
use bcp_tensor::conv::{conv2d_direct, conv2d_forward, Conv2dSpec};
use bcp_tensor::init::uniform;
use bcp_tensor::Shape;
use binarycop::recipe::{run, Recipe};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_im2col_vs_direct(c: &mut Criterion) {
    let spec = Conv2dSpec::new(32, 32, 3, 0);
    let x = uniform(Shape::nchw(4, 32, 12, 12), -1.0, 1.0, 1);
    let w = uniform(spec.weight_shape(), -0.5, 0.5, 2);
    let mut group = c.benchmark_group("ablation_conv_lowering");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| std::hint::black_box(conv2d_forward(&x, &w, spec)))
    });
    group.bench_function("direct_loops", |b| {
        b.iter(|| std::hint::black_box(conv2d_direct(&x, &w, spec)))
    });
    group.finish();
}

fn bench_threshold_vs_float_bn(c: &mut Criterion) {
    // The Sec. III-A hardware trick: batch-norm + sign as one integer
    // comparison. Measure both forms over a conv-layer's worth of
    // accumulators (256 channels × 100 pixels).
    let channels = 256usize;
    let pixels = 100usize;
    let gamma: Vec<f32> = (0..channels).map(|i| 0.5 + (i % 7) as f32 * 0.1).collect();
    let beta: Vec<f32> = (0..channels).map(|i| -0.3 + (i % 5) as f32 * 0.2).collect();
    let mean: Vec<f32> = (0..channels).map(|i| (i % 11) as f32 - 5.0).collect();
    let var: Vec<f32> = (0..channels).map(|i| 1.0 + (i % 3) as f32).collect();
    let unit = bcp_bitpack::ThresholdUnit::from_batchnorm(&gamma, &beta, &mean, &var, 1e-5);
    let accs: Vec<i64> = (0..(channels * pixels) as i64)
        .map(|i| (i % 201) - 100)
        .collect();

    let mut group = c.benchmark_group("ablation_threshold_vs_float_bn");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("integer_threshold", |b| {
        b.iter(|| {
            let mut ones = 0usize;
            for p in 0..pixels {
                for ch in 0..channels {
                    if unit.apply(ch, accs[ch * pixels + p]) {
                        ones += 1;
                    }
                }
            }
            std::hint::black_box(ones)
        })
    });
    group.bench_function("float_batchnorm_sign", |b| {
        b.iter(|| {
            let mut ones = 0usize;
            for p in 0..pixels {
                for ch in 0..channels {
                    let a = accs[ch * pixels + p] as f32;
                    let v = gamma[ch] * (a - mean[ch]) / (var[ch] + 1e-5).sqrt() + beta[ch];
                    if v >= 0.0 {
                        ones += 1;
                    }
                }
            }
            std::hint::black_box(ones)
        })
    });
    group.finish();
}

/// Printed-once training ablations (balancing and augmentation): the
/// Sec. IV-A data-pipeline choices, at miniature scale.
fn print_training_ablations() {
    let base = Recipe {
        train_per_class: 40,
        augment_copies: 0,
        test_per_class: 15,
        epochs: 6,
        ..Recipe::test_scale()
    };

    // Balanced (the recipe's default path).
    let balanced = run(&base, |_| {});

    // Raw-imbalanced: train on the 51/39/5/5 distribution with the same
    // total sample count, evaluate on the same balanced test set.
    let gen = base.generator();
    let raw = Dataset::generate_raw(&gen, base.train_per_class * 4, base.seed);
    let mut net = binarycop::model::build_bnn(&base.arch, base.seed);
    let mut opt = Adam::new(base.lr);
    let imgs = raw.normalized_images();
    for e in 0..base.epochs {
        train_epoch(
            &mut net,
            &mut opt,
            &imgs,
            &raw.labels,
            base.batch_size,
            LossKind::CrossEntropy,
            e as u64,
        );
    }
    let test = Dataset::generate_balanced(&gen, base.test_per_class, base.seed ^ 0x7E57);
    let logits = net.forward(&test.normalized_images(), Mode::Eval);
    let preds = predictions(&logits);
    let raw_acc = preds
        .iter()
        .zip(&test.labels)
        .filter(|(p, l)| p == l)
        .count() as f32
        / test.len() as f32;
    // Minority-class recall under imbalance (the failure the paper's
    // balancing step prevents).
    let minority: Vec<usize> = (0..test.len()).filter(|&i| test.labels[i] >= 2).collect();
    let minority_recall = minority
        .iter()
        .filter(|&&i| preds[i] == test.labels[i])
        .count() as f32
        / minority.len().max(1) as f32;

    // Augmented.
    let augmented = run(
        &Recipe {
            augment_copies: 1,
            ..base.clone()
        },
        |_| {},
    );

    println!(
        "\nAblation: Sec. IV-A data-pipeline choices (bench scale, {} cls/test)\n\
         {:<34}{:>10}\n\
         {:<34}{:>9.1}%\n\
         {:<34}{:>9.1}%  (minority-class recall {:.1}%)\n\
         {:<34}{:>9.1}%\n",
        test.len(),
        "variant",
        "test acc",
        "balanced (paper choice)",
        balanced.test_accuracy * 100.0,
        "raw 51/39/5/5 imbalance",
        raw_acc * 100.0,
        minority_recall * 100.0,
        "balanced + augmentation",
        augmented.test_accuracy * 100.0,
    );
}

fn bench_cyclesim_and_fault(c: &mut Criterion) {
    use bcp_finn::cyclesim::simulate;
    use bcp_finn::fault::inject_random_faults;
    use binarycop::arch::ArchKind;

    let (pipeline, _) = bcp_bench::pipeline_for(ArchKind::NCnv, 1);
    let mut group = c.benchmark_group("ablation_timing_and_fault_tools");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("cyclesim_ncnv_64frames", |b| {
        b.iter(|| std::hint::black_box(simulate(&pipeline, 64, 2)))
    });
    group.bench_function("fault_injection_100bits", |b| {
        b.iter_batched(
            || bcp_bench::pipeline_for(ArchKind::NCnv, 1).0,
            |mut p| {
                inject_random_faults(&mut p, 100, 7);
                std::hint::black_box(p);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn ablation_entry(c: &mut Criterion) {
    print_training_ablations();
    bench_im2col_vs_direct(c);
    bench_threshold_vs_float_bn(c);
    bench_cyclesim_and_fault(c);
}

criterion_group!(benches, ablation_entry);
criterion_main!(benches);
