//! Figs. 3–9: Grad-CAM regeneration — prints one bench-scale figure and
//! measures the Grad-CAM computation itself (forward + partial backward +
//! channel reduction + upsampling) per architecture.
//!
//! The full three-column figures (CNV / n-CNV / FP32) come from
//! `experiments gradcam`; at bench scale we exercise n-CNV.

use bcp_bench::deployable;
use bcp_gradcam::gradcam;
use bcp_nn::Sequential;
use bcp_tensor::Tensor;
use binarycop::arch::ArchKind;
use binarycop::experiments::{figure_rows, gradcam_figure_report};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_gradcam(c: &mut Criterion) {
    // Regenerate a figure (untrained-but-deployable net: the bench measures
    // the mechanism; trained-figure semantics live in `experiments`).
    let (mut net, _) = deployable(ArchKind::NCnv, 1);
    {
        let mut models: Vec<(&str, &mut Sequential, &str)> =
            vec![("BCoP-n-CNV", &mut net, "conv4")];
        let report = gradcam_figure_report(6, 32, 1006, &mut models);
        println!("{report}");
        assert!(report.contains("Fig. 6"));
    }

    // Inputs for all 7 figures exist and render.
    for fig in 3..=9u8 {
        let (_, rows) = figure_rows(fig, 32, fig as u64);
        assert_eq!(rows.len(), 3);
    }

    let (_, rows) = figure_rows(3, 32, 3);
    let batch = Tensor::stack(&[rows[0].image.clone()]);
    let norm = batch.map(|v| 2.0 * v - 1.0);

    let mut group = c.benchmark_group("gradcam_single_image");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for kind in [ArchKind::NCnv, ArchKind::MicroCnv] {
        let (mut net, arch) = deployable(kind, 2);
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &(), |b, _| {
            b.iter(|| {
                std::hint::black_box(gradcam(&mut net, &norm, &[0], "conv4", 32));
            })
        });
    }
    group.finish();

    // Figure-input generation cost (procedural rendering).
    let mut group = c.benchmark_group("gradcam_figure_inputs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("figure_rows_fig9", |b| {
        b.iter(|| std::hint::black_box(figure_rows(9, 32, 9)))
    });
    group.finish();
}

criterion_group!(benches, bench_gradcam);
criterion_main!(benches);
