//! Register-blocked multi-frame GEMM versus the single-frame kernel it
//! replaces on the batch path.
//!
//! The blocked kernel streams each packed weight row once per register
//! block of `BLOCK_LANES` frames instead of once per frame, accumulating
//! `BLOCK_LANES` popcounts per weight word — the software analogue of
//! FINN's SIMD×PE folding (paper Sec. III-B). Two shape regimes are
//! measured, because the win has two different sources:
//!
//! * `kernel_gemm` — a large MVTU layer (4096×9216, ~4.5 MiB of packed
//!   weights) whose matrix spills the L2 cache. Here the single-frame
//!   kernel is memory-bound: it re-streams the whole weight matrix from
//!   L3/DRAM once per frame, while the blocked kernel streams it once per
//!   register block. This group carries the CI-gated entries
//!   (`scripts/bench_gate.py` requires `blocked_fps/B8 ≥ 2× single_fps/B8`).
//! * `kernel_gemm_cnv` — a CNV-class layer (128×1152, 18 KiB) that lives
//!   in L1, where both kernels are popcount-port-bound and the blocked
//!   win is the removed per-row horizontal reductions and, on the fused
//!   path, the removed intermediate accumulator/threshold passes. Reported
//!   as context, not gated: no ≥2× exists at L1-resident shapes.
//!
//! Entry kinds:
//!
//! * `*_fps/B{n}` — frames/s at batch size n (`Throughput::Elements`).
//! * `*_gbps_B8` — effective operand bandwidth (`Throughput::Bytes`,
//!   weight words + activation words actually read per pass). The blocked
//!   kernel touches the weight matrix once per register block, so its
//!   byte count per frame is lower *and* its rate is higher.
//! * `mvtu_*_fps_B8` — operator level: the full pre-PR per-frame MVTU
//!   pass (matvec → i64 accumulators → threshold dispatch → bit-pack)
//!   against the fused blocked kernel that produces packed bits directly.
//!
//! Frames are pre-packed outside the timed region in both variants: the
//! bit-plane interleave is a per-layer-pass cost amortized over every
//! output row, exactly as `pack_matrix` is for the single-frame path.

use bcp_bitpack::pack::pack_matrix;
use bcp_bitpack::xnor::xnor_matvec;
use bcp_bitpack::{
    xnor_gemm_block, xnor_gemm_block_thresholded, BitMatrix, BitPlaneBlock, BitVec64, ThresholdUnit,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn random_signs(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            if s >> 62 & 1 == 1 {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

/// Large-MVTU shape: packed weights (4096 × 9216 / 8 bits ≈ 4.5 MiB)
/// exceed L2 — the memory-bound regime the blocked kernel exists for.
const BIG_ROWS: usize = 4096;
const BIG_K: usize = 9216;

/// CNV dense-layer shape: 128 neurons over a 1152-wide fan-in (conv2-like),
/// fully L1-resident.
const CNV_ROWS: usize = 128;
const CNV_K: usize = 1152;

/// Batch sizes: below, at, and above the register block (B=8 is the gated
/// point).
const BATCHES: [usize; 4] = [1, 4, 8, 16];

fn frames(b: usize, k: usize, seed: u64) -> Vec<BitVec64> {
    let mat = pack_matrix(b, k, &random_signs(b * k, seed));
    (0..b).map(|f| mat.row(f)).collect()
}

/// A mixed-sign threshold bank (τ near 0 so bits split ~50/50 on random
/// inputs — the worst case for the branchy per-channel dispatch).
fn bank(rows: usize) -> ThresholdUnit {
    ThresholdUnit::from_batchnorm(
        &vec![1.0; rows],
        &vec![0.1; rows],
        &vec![0.0; rows],
        &vec![1.0; rows],
        1e-5,
    )
}

/// The pre-PR per-frame MVTU operator: matvec, widen to i64, threshold
/// dispatch per channel, bit-pack. Mirrors `BinaryMvtu::threshold_bits`.
fn mvtu_single_frame(weights: &BitMatrix, bank: &ThresholdUnit, f: &BitVec64) -> BitVec64 {
    let accs: Vec<i64> = xnor_matvec(weights, f).into_iter().map(i64::from).collect();
    let mut out = BitVec64::zeros(accs.len());
    for (i, &a) in accs.iter().enumerate() {
        if bank.apply(i, a) {
            out.set(i, true);
        }
    }
    out
}

fn bench_gated_large(c: &mut Criterion) {
    let weights = pack_matrix(BIG_ROWS, BIG_K, &random_signs(BIG_ROWS * BIG_K, 1));
    let mut group = c.benchmark_group("kernel_gemm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for b in BATCHES {
        let fs = frames(b, BIG_K, 2 + b as u64);
        let block = BitPlaneBlock::pack(&fs);
        group.throughput(Throughput::Elements(b as u64));
        group.bench_with_input(
            BenchmarkId::new("single_fps", format!("B{b}")),
            &(),
            |ben, _| {
                ben.iter(|| {
                    for f in &fs {
                        std::hint::black_box(xnor_matvec(&weights, f));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blocked_fps", format!("B{b}")),
            &(),
            |ben, _| ben.iter(|| std::hint::black_box(xnor_gemm_block(&weights, &block))),
        );
    }

    // Effective operand bandwidth at the gated batch size. Weight traffic:
    // the single-frame kernel re-reads the whole weight matrix per frame;
    // the blocked kernel reads it once per register block. Both read every
    // activation word once.
    let b = 8usize;
    let fs = frames(b, BIG_K, 77);
    let block = BitPlaneBlock::pack(&fs);
    let wpf = block.words_per_frame();
    let act_bytes = (b * wpf * 8) as u64;
    group.throughput(Throughput::Bytes(
        (b * BIG_ROWS * wpf * 8) as u64 + act_bytes,
    ));
    group.bench_function("single_gbps_B8", |ben| {
        ben.iter(|| {
            for f in &fs {
                std::hint::black_box(xnor_matvec(&weights, f));
            }
        })
    });
    group.throughput(Throughput::Bytes(
        (block.blocks() * BIG_ROWS * wpf * 8) as u64 + act_bytes,
    ));
    group.bench_function("blocked_gbps_B8", |ben| {
        ben.iter(|| std::hint::black_box(xnor_gemm_block(&weights, &block)))
    });

    // Operator level at the gated batch size: the full pre-PR per-frame
    // pass against the fused kernel (accumulate + threshold + pack in one
    // sweep, no intermediate vectors).
    let t = bank(BIG_ROWS);
    group.throughput(Throughput::Elements(b as u64));
    group.bench_function("mvtu_single_fps_B8", |ben| {
        ben.iter(|| {
            for f in &fs {
                std::hint::black_box(mvtu_single_frame(&weights, &t, f));
            }
        })
    });
    group.bench_function("mvtu_fused_fps_B8", |ben| {
        ben.iter(|| std::hint::black_box(xnor_gemm_block_thresholded(&weights, &block, &t)))
    });
    group.finish();
}

fn bench_cnv_context(c: &mut Criterion) {
    let weights = pack_matrix(CNV_ROWS, CNV_K, &random_signs(CNV_ROWS * CNV_K, 3));
    let b = 8usize;
    let fs = frames(b, CNV_K, 11);
    let block = BitPlaneBlock::pack(&fs);
    let t = bank(CNV_ROWS);
    let mut group = c.benchmark_group("kernel_gemm_cnv");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(b as u64));
    group.bench_function("single_fps_B8", |ben| {
        ben.iter(|| {
            for f in &fs {
                std::hint::black_box(xnor_matvec(&weights, f));
            }
        })
    });
    group.bench_function("blocked_fps_B8", |ben| {
        ben.iter(|| std::hint::black_box(xnor_gemm_block(&weights, &block)))
    });
    group.bench_function("mvtu_single_fps_B8", |ben| {
        ben.iter(|| {
            for f in &fs {
                std::hint::black_box(mvtu_single_frame(&weights, &t, f));
            }
        })
    });
    group.bench_function("mvtu_fused_fps_B8", |ben| {
        ben.iter(|| std::hint::black_box(xnor_gemm_block_thresholded(&weights, &block, &t)))
    });
    group.finish();
}

fn sanity(c: &mut Criterion) {
    // Cross-check inside the bench binary so a wrong kernel can't "win":
    // the blocked output must equal the single-frame kernel frame by frame,
    // and the fused kernel must equal the unfused pass bit for bit.
    let weights = pack_matrix(16, 200, &random_signs(16 * 200, 5));
    let fs = frames(5, 200, 6);
    let block = BitPlaneBlock::pack(&fs);
    let blocked = xnor_gemm_block(&weights, &block);
    for (f, frame) in fs.iter().enumerate() {
        for (r, &want) in xnor_matvec(&weights, frame).iter().enumerate() {
            assert_eq!(blocked[r * fs.len() + f], want, "frame {f} row {r}");
        }
    }
    let t = bank(16);
    let fused = xnor_gemm_block_thresholded(&weights, &block, &t);
    for (f, frame) in fs.iter().enumerate() {
        assert_eq!(
            fused[f],
            mvtu_single_frame(&weights, &t, frame),
            "frame {f}"
        );
    }
    let mut g = c.benchmark_group("kernel_gemm_sanity");
    g.sample_size(10);
    g.bench_function("blocked_small", |b| {
        b.iter(|| std::hint::black_box(xnor_gemm_block(&weights, &block)))
    });
    g.finish();
}

criterion_group!(benches, bench_gated_large, bench_cnv_context, sanity);
criterion_main!(benches);
