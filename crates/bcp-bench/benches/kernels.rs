//! Kernel microbenches: the XNOR-popcount datapath against the float math
//! it replaces (the paper's core efficiency claim, Sec. II-B/III-A).

use bcp_bitpack::pack;
use bcp_bitpack::xnor::{gemm_naive_signs, xnor_gemm};
use bcp_tensor::matmul::matmul_tb;
use bcp_tensor::{Shape, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn random_signs(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            if s >> 62 & 1 == 1 {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}

/// CNV-layer-shaped GEMMs: (rows=C_out, cols=C_in·9, batch=windows).
const SHAPES: [(usize, usize, usize); 3] = [
    (64, 576, 128),   // conv1_2-like
    (128, 1152, 100), // conv2_2-like
    (256, 2304, 16),  // conv3_2-like (fewer windows)
];

fn bench_xnor_vs_float(c: &mut Criterion) {
    let mut group = c.benchmark_group("xnor_vs_float_gemm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (rows, cols, windows) in SHAPES {
        let w_signs = random_signs(rows * cols, 1);
        let a_signs = random_signs(windows * cols, 2);
        let wbits = pack::pack_matrix(rows, cols, &w_signs);
        let abits = pack::pack_matrix(windows, cols, &a_signs);
        let wf = Tensor::from_vec(Shape::d2(rows, cols), w_signs);
        let af = Tensor::from_vec(Shape::d2(windows, cols), a_signs);
        group.bench_with_input(
            BenchmarkId::new("xnor_popcount", format!("{rows}x{cols}x{windows}")),
            &(),
            |b, _| b.iter(|| std::hint::black_box(xnor_gemm(&abits, &wbits))),
        );
        group.bench_with_input(
            BenchmarkId::new("float_gemm", format!("{rows}x{cols}x{windows}")),
            &(),
            |b, _| b.iter(|| std::hint::black_box(matmul_tb(&af, &wf))),
        );
    }
    group.finish();
}

fn bench_pack_and_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_threshold");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let signs = random_signs(256 * 2304, 3);
    group.bench_function("pack_256x2304", |b| {
        b.iter(|| std::hint::black_box(pack::pack_matrix(256, 2304, &signs)))
    });
    let unit = bcp_bitpack::ThresholdUnit::from_batchnorm(
        &vec![1.0; 256],
        &vec![0.1; 256],
        &vec![0.0; 256],
        &vec![1.0; 256],
        1e-5,
    );
    let accs: Vec<i64> = (0..256).map(|i| i - 128).collect();
    group.bench_function("threshold_256ch", |b| {
        b.iter(|| std::hint::black_box(unit.apply_all(&accs)))
    });
    group.finish();
}

fn bench_or_pool_vs_float(c: &mut Criterion) {
    use bcp_finn::data::BinMap;
    use bcp_finn::pool::or_pool;
    use bcp_tensor::{maxpool2d_forward, MaxPoolSpec};
    let mut group = c.benchmark_group("pool_or_vs_float");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let signs = random_signs(64 * 28 * 28, 4);
    let map = BinMap::from_signs(64, 28, 28, &signs);
    let dense = Tensor::from_vec(Shape::nchw(1, 64, 28, 28), signs);
    group.bench_function("or_pool_64x28x28", |b| {
        b.iter(|| std::hint::black_box(or_pool(&map, 2)))
    });
    group.bench_function("float_maxpool_64x28x28", |b| {
        b.iter(|| std::hint::black_box(maxpool2d_forward(&dense, MaxPoolSpec::two_by_two())))
    });
    group.finish();
}

fn sanity(c: &mut Criterion) {
    // One cheap correctness cross-check inside the bench binary so a wrong
    // kernel can't silently "win".
    let w = pack::pack_matrix(8, 100, &random_signs(800, 7));
    let a = pack::pack_matrix(4, 100, &random_signs(400, 8));
    assert_eq!(xnor_gemm(&a, &w), gemm_naive_signs(&a, &w));
    let mut g = c.benchmark_group("sanity");
    g.sample_size(10);
    g.bench_function("xnor_small", |b| {
        b.iter(|| std::hint::black_box(xnor_gemm(&a, &w)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_xnor_vs_float,
    bench_pack_and_threshold,
    bench_or_pool_vs_float,
    sanity
);
criterion_main!(benches);
