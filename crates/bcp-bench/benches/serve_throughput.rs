//! Serving-layer throughput: the micro-batching engine under concurrent
//! closed-loop load versus the same predictor driven sequentially by a
//! single caller. On a multi-core host the engine additionally scales with
//! workers; on a single core the delta isolates the batching/queueing
//! overhead and amortization.

use bcp_serve::ServeConfig;
use bcp_tensor::{Shape, Tensor};
use binarycop::model::build_bnn;
use binarycop::recipe::tiny_arch;
use binarycop::serve::engine;
use binarycop::BinaryCoP;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn predictor() -> BinaryCoP {
    let arch = tiny_arch();
    let mut net = build_bnn(&arch, 5);
    let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 16, 16), -1.0, 1.0, 6);
    let _ = net.forward(&x, bcp_nn::Mode::Train);
    BinaryCoP::from_trained(&net, &arch)
}

fn frames(n: usize) -> Vec<Tensor> {
    use bcp_dataset::{Dataset, GeneratorConfig};
    let gen = GeneratorConfig {
        img_size: 16,
        supersample: 2,
    };
    let ds = Dataset::generate_balanced(&gen, n.div_ceil(4), 0xBE7C);
    (0..n).map(|i| ds.image(i % ds.len())).collect()
}

const FRAMES: usize = 32;
const CLIENTS: usize = 8;

fn bench_serving(c: &mut Criterion) {
    let p = predictor();
    let imgs = frames(FRAMES);
    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .throughput(Throughput::Elements(FRAMES as u64));

    group.bench_function("sequential_classify", |b| {
        b.iter(|| {
            for f in &imgs {
                std::hint::black_box(p.classify(f));
            }
        })
    });

    for workers in [1usize, 2] {
        let e = engine(&p, workers, ServeConfig::default());
        let id = format!("engine_{workers}w_{CLIENTS}clients");
        group.bench_function(id.as_str(), |b| {
            b.iter(|| {
                let report = bcp_serve::run_closed_loop(&e, &imgs, CLIENTS, FRAMES / CLIENTS);
                assert!(report.accounted() && report.ok == FRAMES);
                std::hint::black_box(report.throughput_fps)
            })
        });
        e.shutdown();
    }

    // Crowd-mode load: each client submits its whole burst of face crops
    // before waiting (pipelined tickets, depth = crops per camera frame).
    // The admission queue stays deep enough that the batcher seals full
    // batches without waiting out `max_wait`, and one client wake collects
    // a burst of completions — this is the engine's intended operating
    // point, and the entry `scripts/bench_gate.py` holds to the
    // sequential baseline.
    {
        let e = engine(&p, 1, ServeConfig::default());
        group.bench_function("engine_1w_8clients_pipelined", |b| {
            b.iter(|| {
                let report = bcp_serve::run_closed_loop_pipelined(
                    &e,
                    &imgs,
                    CLIENTS,
                    FRAMES / CLIENTS,
                    FRAMES / CLIENTS,
                );
                assert!(report.accounted() && report.ok == FRAMES);
                std::hint::black_box(report.throughput_fps)
            })
        });

        // Paired measurement for the engine-vs-sequential gate. On a
        // shared single-core host, absolute timings drift ±25% between
        // bench entries measured minutes apart, which makes a ratio of two
        // independently timed entries meaningless. Here both sides run
        // alternately inside one loop, so drift cancels out of the ratio;
        // the pairwise spread observed this way is ±4%. The medians land
        // as `paired_sequential` / `paired_engine_1w_pipelined`, which
        // `scripts/bench_gate.py` gates with the canary tax (exactly
        // 1/max_batch extra inferences per batch) and the single-core
        // client-wake budget accounted explicitly.
        const ROUNDS: usize = 24;
        let run_seq = |p: &BinaryCoP| {
            for f in &imgs {
                std::hint::black_box(p.classify(f));
            }
        };
        let run_eng = |e: &bcp_serve::Engine| {
            let report = bcp_serve::run_closed_loop_pipelined(
                e,
                &imgs,
                CLIENTS,
                FRAMES / CLIENTS,
                FRAMES / CLIENTS,
            );
            assert!(report.accounted() && report.ok == FRAMES);
        };
        for _ in 0..3 {
            run_seq(&p);
            run_eng(&e);
        }
        let mut seq_ns = Vec::with_capacity(ROUNDS);
        let mut eng_ns = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            let t = std::time::Instant::now();
            run_seq(&p);
            seq_ns.push(t.elapsed().as_nanos() as f64);
            let t = std::time::Instant::now();
            run_eng(&e);
            eng_ns.push(t.elapsed().as_nanos() as f64);
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        group
            .record_ns("paired_sequential", median(&mut seq_ns))
            .record_ns("paired_engine_1w_pipelined", median(&mut eng_ns));
        e.shutdown();
    }

    // The price of observability: the same 2-worker pool with lifecycle
    // tracing at the production sampling rate (1 in 64 admissions). CI
    // gates this entry against `engine_2w_8clients` — head sampling plus
    // the per-request `Option` branch must stay within noise.
    {
        let cfg = ServeConfig {
            trace: Some(bcp_trace::TraceConfig::default()),
            ..ServeConfig::default()
        };
        let e = engine(&p, 2, cfg);
        group.bench_function("engine_2w_8clients_traced", |b| {
            b.iter(|| {
                let report = bcp_serve::run_closed_loop(&e, &imgs, CLIENTS, FRAMES / CLIENTS);
                assert!(report.accounted() && report.ok == FRAMES);
                std::hint::black_box(report.throughput_fps)
            })
        });
        let tracer = e.tracer().expect("tracing enabled");
        e.shutdown();
        // Sanity: sampling actually ran and lost nothing silently.
        assert!(tracer.sampled() > 0);
        assert_eq!(
            tracer.drain().len() as u64 + tracer.dropped(),
            tracer.sampled()
        );
    }

    // The price of self-healing: the same pool with guarded replicas and
    // background scrubbing enabled (no faults injected — this measures the
    // steady-state overhead of CRC sweeps riding between batches, compared
    // to the undefended `engine_2w` entry above).
    for scrub_units in [0usize, 8] {
        let cfg = ServeConfig {
            background_scrub: (scrub_units > 0).then_some(scrub_units),
            ..ServeConfig::default()
        };
        let e = binarycop::guard::guarded_engine(&p, 2, cfg);
        let id = if scrub_units > 0 {
            format!("guarded_2w_scrub{scrub_units}")
        } else {
            "guarded_2w_scrub_off".to_string()
        };
        group.bench_function(id.as_str(), |b| {
            b.iter(|| {
                let report = bcp_serve::run_closed_loop(&e, &imgs, CLIENTS, FRAMES / CLIENTS);
                assert!(report.accounted() && report.ok == FRAMES);
                std::hint::black_box(report.throughput_fps)
            })
        });
        e.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
