//! Table I: architecture definitions + per-prototype single-frame
//! inference through the deployed pipeline.
//!
//! Regenerates the table (printed once) and measures what the architecture
//! choice costs at inference time in the functional simulator — the
//! software proxy for the CNV / n-CNV / μ-CNV trade-off.

use bcp_bench::{frame, pipeline_for};
use binarycop::arch::ArchKind;
use binarycop::experiments::table1_report;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    println!("{}", table1_report());

    let mut group = c.benchmark_group("table1_single_frame_inference");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for kind in ArchKind::ALL {
        let (pipeline, arch) = pipeline_for(kind, 1);
        let f = frame(9);
        // Sanity: geometry survived the export.
        assert_eq!(pipeline.forward(&f).len(), 4);
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &(), |b, _| {
            b.iter(|| std::hint::black_box(pipeline.forward(&f)))
        });
    }
    group.finish();

    // Export cost: binarize + fold thresholds + pack weights.
    let mut group = c.benchmark_group("table1_deploy_export");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in [ArchKind::NCnv, ArchKind::MicroCnv] {
        let (net, arch) = bcp_bench::deployable(kind, 2);
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &(), |b, _| {
            b.iter(|| std::hint::black_box(binarycop::deploy::deploy(&net, &arch)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
