//! Table II: resource estimation for the three prototypes (printed against
//! the paper's numbers) + the cost of the estimator and the DSE search
//! behind the dimensioning.

use bcp_finn::dse::allocate;
use bcp_finn::resource::estimate;
use binarycop::arch::ArchKind;
use binarycop::experiments::{table2_report, table2_rows};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    // Regenerate the table (resource columns; accuracy columns come from
    // `experiments table2`, which trains).
    let rows = table2_rows(&[None, None, None]);
    println!("{}", table2_report(&rows));

    // Shape assertions so the bench fails loudly if the model drifts.
    assert!(rows[0].usage.luts > rows[1].usage.luts);
    assert!(rows[1].usage.luts > rows[2].usage.luts);
    assert!(rows[2].fits_z7010, "μ-CNV must fit the Z7010");

    let mut group = c.benchmark_group("table2_resource_estimation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in ArchKind::ALL {
        let (pipeline, arch) = bcp_bench::pipeline_for(kind, 1);
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &(), |b, _| {
            b.iter(|| std::hint::black_box(estimate(&pipeline, arch.dsp_offload)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table2_dse_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for kind in ArchKind::ALL {
        let arch = kind.arch();
        let layers = arch.layer_dims();
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &(), |b, _| {
            b.iter(|| std::hint::black_box(allocate(&layers, 25_000.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
