//! The Sec. IV-B performance claims: ~6400 fps (n-CNV, full pipeline) and
//! ~1.6 W idle. Prints the modeled table for all prototypes and measures
//! the threaded streaming simulator's software throughput.

use bcp_bench::{frames, pipeline_for};
use bcp_finn::perf::CLOCK_100MHZ;
use bcp_finn::stream::run_streaming;
use binarycop::arch::ArchKind;
use binarycop::experiments::perf_power_report;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_throughput(c: &mut Criterion) {
    println!("{}", perf_power_report());

    // Guard the headline claim's order of magnitude.
    let (ncnv, _) = pipeline_for(ArchKind::NCnv, 1);
    let fps = CLOCK_100MHZ.analyze(&ncnv).throughput_fps;
    assert!(
        (2000.0..20000.0).contains(&fps),
        "modeled n-CNV throughput {fps} left the paper's magnitude"
    );

    let batch = frames(16);
    let mut group = c.benchmark_group("streaming_simulator_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Elements(batch.len() as u64));
    for kind in ArchKind::ALL {
        let (pipeline, arch) = pipeline_for(kind, 2);
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &(), |b, _| {
            b.iter(|| std::hint::black_box(run_streaming(&pipeline, &batch, 4)))
        });
    }
    group.finish();

    // Sequential (non-threaded) forward for the same batch: the dataflow
    // overlap ablation.
    let mut group = c.benchmark_group("sequential_forward_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Elements(batch.len() as u64));
    for kind in ArchKind::ALL {
        let (pipeline, arch) = pipeline_for(kind, 2);
        group.bench_with_input(BenchmarkId::from_parameter(&arch.name), &(), |b, _| {
            b.iter(|| {
                for f in &batch {
                    std::hint::black_box(pipeline.forward(f));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
