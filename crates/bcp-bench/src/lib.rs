//! Shared fixtures for the criterion bench targets.
//!
//! Each bench regenerates one table/figure of the paper (see DESIGN.md §5)
//! and measures the computation behind it. Training-scale is kept small —
//! the benches measure *mechanisms* (inference, export, Grad-CAM, resource
//! estimation), and print the regenerated artifact once per run.

#![forbid(unsafe_code)]

use bcp_finn::data::QuantMap;
use bcp_finn::Pipeline;
use bcp_nn::{Mode, Sequential};
use bcp_tensor::Shape;
use binarycop::arch::{Arch, ArchKind};
use binarycop::model::build_bnn;

/// A deployable (batch-norm-stats-populated) network for a prototype.
pub fn deployable(kind: ArchKind, seed: u64) -> (Sequential, Arch) {
    let arch = kind.arch();
    let mut net = build_bnn(&arch, seed);
    let x = bcp_tensor::init::uniform(
        Shape::nchw(2, 3, arch.input_size, arch.input_size),
        -1.0,
        1.0,
        seed + 1,
    );
    let _ = net.forward(&x, Mode::Train);
    (net, arch)
}

/// The deployed pipeline for a prototype.
pub fn pipeline_for(kind: ArchKind, seed: u64) -> (Pipeline, Arch) {
    let (net, arch) = deployable(kind, seed);
    (binarycop::deploy::deploy(&net, &arch), arch)
}

/// A deterministic quantized 32×32 frame.
pub fn frame(seed: u64) -> QuantMap {
    let px: Vec<f32> = (0..3 * 32 * 32)
        .map(|i| {
            let q = ((i as u64 + 1)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9E3779B97F4A7C15)
                >> 33)
                % 256;
            q as f32 / 255.0
        })
        .collect();
    QuantMap::from_unit_floats(3, 32, 32, &px)
}

/// A batch of deterministic frames.
pub fn frames(n: usize) -> Vec<QuantMap> {
    (0..n as u64).map(|s| frame(s * 17 + 3)).collect()
}
