//! Row-major packed binary matrix.

use crate::bitvec64::{low_mask, words_for, BitVec64, WORD_BITS};
use serde::{Deserialize, Serialize};

/// A `rows × cols` matrix of ±1 entries, each row packed into its own run of
/// `u64` words (rows start word-aligned so row kernels can slice cheaply).
///
/// Padding bits at the end of each row are always zero.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// All-(−1) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let wpr = words_for(cols);
        BitMatrix {
            rows,
            cols,
            words_per_row: wpr,
            words: vec![0; rows.saturating_mul(wpr)],
        }
    }

    /// Build from row bit-vectors; all rows must share a length.
    pub fn from_rows(rows: &[BitVec64]) -> Self {
        assert!(!rows.is_empty(), "BitMatrix needs at least one row");
        let cols = rows[0].len();
        let mut m = BitMatrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {r} length mismatch");
            let dst = r.saturating_mul(m.words_per_row);
            m.words[dst..dst.saturating_add(m.words_per_row)].copy_from_slice(row.words());
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (valid bits per row).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Packed words per row (incl. padding).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Raw packed storage.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw storage; validates dimensions and padding hygiene.
    pub fn from_words(rows: usize, cols: usize, words: Vec<u64>) -> Self {
        let wpr = words_for(cols);
        assert_eq!(
            words.len(),
            rows.saturating_mul(wpr),
            "word buffer size mismatch"
        );
        let m = BitMatrix {
            rows,
            cols,
            words_per_row: wpr,
            words,
        };
        let tail = cols % WORD_BITS;
        if tail != 0 {
            for (r, row) in m.words.chunks_exact(wpr).enumerate() {
                let last = row.last().copied().unwrap_or(0);
                assert!(
                    last & !low_mask(tail) == 0,
                    "row {r} has set padding bits beyond col {cols}"
                );
            }
        }
        m
    }

    /// Packed words of row `r`.
    #[inline]
    // Row-offset arithmetic is in range by construction (r < rows is asserted and
    // rows·words_per_row == words.len()); plain ops keep the accessor branch-free.
    #[allow(clippy::arithmetic_side_effects)]
    // bcp:hot-path — row slicing feeds every XNOR kernel inner product
    pub fn row_words(&self, r: usize) -> &[u64] {
        // audit: allow(panic): row bound is the accessor's contract; one compare per row, hoisted out of the word loop
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        // audit: allow(index): r < rows was just asserted, so the word range is in bounds by construction
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Element accessor (`true` = +1).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(c < self.cols, "col {c} out of range ({} cols)", self.cols);
        (self.row_words(r)[c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1
    }

    /// Element mutator.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        let w = &mut self.words[r
            .saturating_mul(self.words_per_row)
            .saturating_add(c / WORD_BITS)];
        let m = 1u64 << (c % WORD_BITS);
        if value {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Toggle one bit (fault-injection support).
    pub fn flip(&mut self, r: usize, c: usize) {
        let cur = self.get(r, c);
        self.set(r, c, !cur);
    }

    /// Copy row `r` out as a [`BitVec64`].
    pub fn row(&self, r: usize) -> BitVec64 {
        BitVec64::from_words(self.cols, self.row_words(r).to_vec())
    }

    /// XNOR-popcount ±1 dot product between row `r` and a packed vector of
    /// matching length.
    // Popcounts are bounded by cols (≪ 2^31 for any representable layer), so the
    // agreement arithmetic cannot overflow; plain ops keep the PE lane vectorizable.
    #[allow(clippy::arithmetic_side_effects)]
    // bcp:hot-path — one PE-lane inner product per output neuron
    pub fn row_dot(&self, r: usize, v: &BitVec64) -> i32 {
        // audit: allow(panic): length mismatch is a programming error, checked once per row — not per word
        assert_eq!(
            v.len(),
            self.cols,
            "vector length {} vs cols {}",
            v.len(),
            self.cols
        );
        let a = self.row_words(r);
        let b = v.words();
        let full = self.cols / WORD_BITS;
        let mut agree = 0u32;
        for i in 0..full {
            // audit: allow(index): i < full = cols/64 ≤ words per row for both operands (lengths asserted above)
            agree += (!(a[i] ^ b[i])).count_ones();
        }
        let tail = self.cols % WORD_BITS;
        if tail != 0 {
            // audit: allow(index): a ragged tail implies a final partial word at index full
            agree += ((!(a[full] ^ b[full])) & low_mask(tail)).count_ones();
        }
        // audit: allow(cast): popcount ≤ cols and layer widths are far below 2^31, so both casts are value-preserving
        2 * agree as i32 - self.cols as i32
    }

    /// Per-row CRC-32 integrity codes over the packed words (padding
    /// included — it is zero by construction, so the code is stable).
    /// Captured at deploy time and re-checked by the `bcp-guard` scrubber;
    /// detects every ≤3-bit corruption within a row with certainty (the
    /// CRC-32 polynomial's distance is ≥ 4 below 91 607 bits).
    pub fn row_checksums(&self) -> Vec<u32> {
        (0..self.rows)
            .map(|r| crate::checksum::crc32_words(self.row_words(r)))
            .collect()
    }

    /// Transpose (used to pre-pack activation matrices for the GEMM kernel).
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row_words(r);
            for c in 0..self.cols {
                if (row[c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1 {
                    t.set(c, r, true);
                }
            }
        }
        t
    }

    /// Decode to a dense ±1 f32 buffer (row-major), for tests and export.
    pub fn to_signs(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.rows.saturating_mul(self.cols));
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(if self.get(r, c) { 1.0 } else { -1.0 });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = BitMatrix::zeros(3, 70);
        assert_eq!(m.words_per_row(), 2);
        m.set(2, 69, true);
        assert!(m.get(2, 69));
        assert!(!m.get(2, 68));
        assert!(!m.get(0, 69));
    }

    #[test]
    fn from_rows_and_row_roundtrip() {
        let r0 = BitVec64::from_bools(&[true, false, true]);
        let r1 = BitVec64::from_bools(&[false, true, false]);
        let m = BitMatrix::from_rows(&[r0.clone(), r1.clone()]);
        assert_eq!(m.row(0), r0);
        assert_eq!(m.row(1), r1);
    }

    #[test]
    fn row_dot_matches_bitvec_dot() {
        let r0 = BitVec64::from_bools(&[true, true, false, true, false]);
        let v = BitVec64::from_bools(&[true, false, false, true, true]);
        let m = BitMatrix::from_rows(std::slice::from_ref(&r0));
        assert_eq!(m.row_dot(0, &v), r0.dot(&v));
    }

    #[test]
    fn transpose_involution() {
        let mut m = BitMatrix::zeros(5, 130);
        m.set(0, 0, true);
        m.set(4, 129, true);
        m.set(2, 64, true);
        let t = m.transpose();
        assert!(t.get(0, 0) && t.get(129, 4) && t.get(64, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_checksums_localize_single_flips() {
        let mut m = BitMatrix::zeros(4, 130);
        m.set(1, 7, true);
        m.set(3, 129, true);
        let clean = m.row_checksums();
        assert_eq!(clean.len(), 4);
        // Flipping any bit changes exactly that row's code.
        for (r, c) in [(0usize, 0usize), (1, 7), (2, 64), (3, 129)] {
            let mut f = m.clone();
            f.flip(r, c);
            let codes = f.row_checksums();
            for row in 0..4 {
                assert_eq!(
                    codes[row] != clean[row],
                    row == r,
                    "flip ({r},{c}) row {row}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "padding bits")]
    fn from_words_rejects_dirty_padding() {
        BitMatrix::from_words(1, 3, vec![0b1111]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_row_dot_equals_naive(rows in 1usize..5, cols in 1usize..150, seed in any::<u64>()) {
            let mut m = BitMatrix::zeros(rows, cols);
            let mut v = BitVec64::zeros(cols);
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 33 & 1 == 1
            };
            for r in 0..rows {
                for c in 0..cols {
                    if next() { m.set(r, c, true); }
                }
            }
            for c in 0..cols {
                if next() { v.set(c, true); }
            }
            for r in 0..rows {
                let naive: i32 = (0..cols)
                    .map(|c| {
                        let a = if m.get(r, c) { 1i32 } else { -1 };
                        let b = if v.get(c) { 1i32 } else { -1 };
                        a * b
                    })
                    .sum();
                prop_assert_eq!(m.row_dot(r, &v), naive);
            }
        }
    }
}
