//! Packed bit vector over `u64` words.

use serde::{Deserialize, Serialize};

/// Number of bits per storage word.
pub const WORD_BITS: usize = 64;

/// A fixed-length bit vector packed into `u64` words, LSB-first within each
/// word. Bit value 1 encodes +1, bit value 0 encodes −1 (the paper's
/// hardware convention, Sec. III-A).
///
/// The trailing bits of the last word beyond `len` are always zero; every
/// mutating operation maintains that invariant so popcounts stay exact.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BitVec64 {
    len: usize,
    words: Vec<u64>,
}

/// Words needed for `len` bits.
#[inline]
pub fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// Mask with the low `n` bits set (`n` ≤ 64; `n == 64` → all ones, `0` → 0).
#[inline]
pub fn low_mask(n: usize) -> u64 {
    debug_assert!(n <= WORD_BITS);
    if n == WORD_BITS {
        u64::MAX
    } else {
        (1u64 << n).wrapping_sub(1)
    }
}

impl BitVec64 {
    /// All-zero (all −1) vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec64 {
            len,
            // audit: allow(alloc): constructing a packed vector allocates by definition — hot callers recycle via layer-level buffer reuse (ROADMAP item 2)
            words: vec![0; words_for(len)],
        }
    }

    /// All-one (all +1) vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec64 {
            len,
            words: vec![u64::MAX; words_for(len)],
        };
        v.clear_padding();
        v
    }

    /// Build from booleans (`true` → bit 1 → +1).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backing words (padding bits guaranteed zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw words; panics if `words` is too short or has set
    /// padding bits (which would corrupt popcounts later).
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            words_for(len),
            "word count mismatch for {len} bits"
        );
        let v = BitVec64 { len, words };
        assert!(
            v.padding_clear(),
            "set bits beyond len={len} would corrupt popcounts"
        );
        v
    }

    /// Read bit `i`.
    #[inline]
    // bcp:hot-path — per-bit read used by pooling and packing stages (name is on the audit stoplist, so rooted explicitly)
    pub fn get(&self, i: usize) -> bool {
        // audit: allow(panic): the bit bound is the accessor's contract — one compare guarding the shift below
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        // audit: allow(index): i < len was just asserted, so i/64 is within the word buffer
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Write bit `i`.
    #[inline]
    // bcp:hot-path — per-neuron write of every threshold stage (name is on the audit stoplist, so rooted explicitly)
    pub fn set(&mut self, i: usize, value: bool) {
        // audit: allow(panic): the bit bound is the accessor's contract — one compare guarding the store below
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        // audit: allow(index): i < len was just asserted, so i/64 is within the word buffer
        let w = &mut self.words[i / WORD_BITS];
        let m = 1u64 << (i % WORD_BITS);
        if value {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// OR `value` into bit `i` without a branch — a zero-initialized vector
    /// plus `or_bit` is the branch-free way to materialize predicate bits,
    /// which keeps the fused-threshold GEMM loop free of data-dependent
    /// branches (random sign data would mispredict a `set` roughly half the
    /// time).
    #[inline]
    // bcp:hot-path — branchless per-neuron write of the fused threshold kernel
    pub fn or_bit(&mut self, i: usize, value: bool) {
        // audit: allow(panic): the bit bound is the accessor's contract — one compare guarding the store below
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        // audit: allow(index): i < len was just asserted, so i/64 is within the word buffer
        self.words[i / WORD_BITS] |= u64::from(value) << (i % WORD_BITS);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Popcount of `XNOR(self, other)` over the valid bits only —
    /// the number of positions where the two ±1 vectors agree.
    // Word counts are len/64-bounded and popcount sums fit u32 for any
    // representable vector; plain ops keep the XNOR loop vectorizable.
    #[allow(clippy::arithmetic_side_effects)]
    // bcp:hot-path — agreement count of the packed ±1 kernel
    pub fn xnor_popcount(&self, other: &BitVec64) -> u32 {
        // audit: allow(panic): length mismatch is a programming error, checked once per call — not per word
        assert_eq!(self.len, other.len, "xnor_popcount length mismatch");
        if self.len == 0 {
            return 0;
        }
        let full_words = self.len / WORD_BITS;
        let mut count = 0u32;
        for i in 0..full_words {
            // audit: allow(index): i < full_words = len/64 ≤ word count for both operands (lengths asserted equal)
            count += (!(self.words[i] ^ other.words[i])).count_ones();
        }
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            // audit: allow(index): a ragged tail implies a final partial word at index full_words
            let x = !(self.words[full_words] ^ other.words[full_words]) & low_mask(tail);
            count += x.count_ones();
        }
        count
    }

    /// ±1 dot product via XNOR + popcount: `2·agreements − len`.
    #[inline]
    // 2·agreements − len cannot overflow i32 for any representable layer width.
    #[allow(clippy::arithmetic_side_effects)]
    // bcp:hot-path — per-neuron ±1 dot product (paper Eq. 3)
    pub fn dot(&self, other: &BitVec64) -> i32 {
        // audit: allow(cast): popcount ≤ len and layer widths are far below 2^31, so both casts are value-preserving
        2 * self.xnor_popcount(other) as i32 - self.len as i32
    }

    /// Bitwise OR (used by the FINN pooling unit: max of ±1 values == OR).
    pub fn or(&self, other: &BitVec64) -> BitVec64 {
        assert_eq!(self.len, other.len, "or length mismatch");
        BitVec64 {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Bitwise AND.
    pub fn and(&self, other: &BitVec64) -> BitVec64 {
        assert_eq!(self.len, other.len, "and length mismatch");
        BitVec64 {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Decode back to ±1 floats.
    pub fn to_signs(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| if self.get(i) { 1.0 } else { -1.0 })
            .collect()
    }

    fn clear_padding(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= low_mask(tail);
            }
        }
    }

    fn padding_clear(&self) -> bool {
        let tail = self.len % WORD_BITS;
        tail == 0 || self.words.last().is_none_or(|w| w & !low_mask(tail) == 0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec64::zeros(130);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(128));
        assert_eq!(v.count_ones(), 4);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn or_bit_matches_set_on_zeroed_vectors() {
        let mut a = BitVec64::zeros(130);
        let mut b = BitVec64::zeros(130);
        for (i, fire) in [(0, true), (63, false), (64, true), (129, true)] {
            a.set(i, fire);
            b.or_bit(i, fire);
        }
        assert_eq!(a, b);
        // or_bit(_, false) never clears an already-set bit.
        b.or_bit(64, false);
        assert!(b.get(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn or_bit_checks_bounds() {
        BitVec64::zeros(10).or_bit(10, true);
    }

    #[test]
    fn ones_has_clean_padding() {
        let v = BitVec64::ones(70);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v.words().len(), 2);
        assert_eq!(v.words()[1] >> 6, 0, "padding bits must stay zero");
    }

    #[test]
    fn xnor_popcount_ignores_padding() {
        // Two all-(−1) vectors of 65 bits: all 65 agree; the 63 padding bit
        // positions (which XNOR to 1) must not be counted.
        let a = BitVec64::zeros(65);
        let b = BitVec64::zeros(65);
        assert_eq!(a.xnor_popcount(&b), 65);
        assert_eq!(a.dot(&b), 65);
    }

    #[test]
    fn dot_known_values() {
        let a = BitVec64::from_bools(&[true, true, false, false]);
        let b = BitVec64::from_bools(&[true, false, true, false]);
        // Agreements at positions 0 and 3 → dot = 2·2 − 4 = 0.
        assert_eq!(a.dot(&b), 0);
        assert_eq!(a.dot(&a), 4);
        let c = BitVec64::from_bools(&[false, false, true, true]);
        assert_eq!(a.dot(&c), -4);
    }

    #[test]
    fn or_is_binary_max() {
        let a = BitVec64::from_bools(&[true, false, false]);
        let b = BitVec64::from_bools(&[false, false, true]);
        let o = a.or(&b);
        assert_eq!(o.to_signs(), vec![1.0, -1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "corrupt popcounts")]
    fn from_words_rejects_dirty_padding() {
        BitVec64::from_words(3, vec![0b11111]);
    }

    #[test]
    fn to_signs_roundtrip() {
        let bits = [true, false, true, true, false];
        let v = BitVec64::from_bools(&bits);
        let signs = v.to_signs();
        for (s, b) in signs.iter().zip(bits) {
            assert_eq!(*s, if b { 1.0 } else { -1.0 });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_dot_matches_naive(bits_a in proptest::collection::vec(any::<bool>(), 1..200),
                                  bits_b_seed in any::<u64>()) {
            let n = bits_a.len();
            // Derive b deterministically from the seed so lengths match.
            let bits_b: Vec<bool> = (0..n).map(|i| (bits_b_seed >> (i % 64)) & 1 == 1).collect();
            let a = BitVec64::from_bools(&bits_a);
            let b = BitVec64::from_bools(&bits_b);
            let naive: i32 = bits_a.iter().zip(&bits_b)
                .map(|(&x, &y)| {
                    let xs = if x { 1i32 } else { -1 };
                    let ys = if y { 1i32 } else { -1 };
                    xs * ys
                })
                .sum();
            prop_assert_eq!(a.dot(&b), naive);
        }

        #[test]
        fn prop_dot_bounds_and_symmetry(bits in proptest::collection::vec(any::<(bool, bool)>(), 1..128)) {
            let a = BitVec64::from_bools(&bits.iter().map(|p| p.0).collect::<Vec<_>>());
            let b = BitVec64::from_bools(&bits.iter().map(|p| p.1).collect::<Vec<_>>());
            let d = a.dot(&b);
            let n = bits.len() as i32;
            prop_assert!(d >= -n && d <= n);
            // Same parity as n.
            prop_assert_eq!((d - n).rem_euclid(2), 0);
            prop_assert_eq!(a.dot(&b), b.dot(&a));
            prop_assert_eq!(a.dot(&a), n);
        }
    }
}
