//! CRC-32 integrity codes for packed weight memories.
//!
//! A BNN weight *is* one bit, so a single-event upset in weight SRAM is a
//! worst-case full sign change. The guard layer (`bcp-guard`) attaches a
//! CRC-32 (IEEE 802.3, polynomial `0x04C11DB7` reflected) to every packed
//! weight row and threshold table; the polynomial's minimum distance is ≥ 4
//! for any message under 91 607 bits, so every 1-, 2- and 3-bit flip inside
//! a row of this workspace's matrices (longest row ≈ 1.2 kbit) is detected
//! with certainty, and longer bursts with probability `1 − 2⁻³²`.

/// Reflected CRC-32 (IEEE) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320 // 0x04C11DB7 bit-reflected
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice. Matches the ubiquitous zlib/PNG/ethernet
/// parameterisation (init `0xFFFF_FFFF`, reflected, final XOR).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// CRC-32 of a packed `u64` word run, hashing each word's little-endian
/// bytes in order — the integrity code of one weight-memory row.
pub fn crc32_words(words: &[u64]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &w in words {
        for b in w.to_le_bytes() {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn words_match_byte_hash() {
        let words = [0x0123_4567_89AB_CDEFu64, 0xFFFF_0000_1234_5678];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(crc32_words(&words), crc32(&bytes));
    }

    #[test]
    fn every_single_bit_flip_changes_the_code() {
        let words = [0xDEAD_BEEF_0BAD_F00Du64, 0, u64::MAX];
        let clean = crc32_words(&words);
        for i in 0..words.len() {
            for bit in 0..64 {
                let mut flipped = words;
                flipped[i] ^= 1u64 << bit;
                assert_ne!(crc32_words(&flipped), clean, "word {i} bit {bit}");
            }
        }
    }
}
