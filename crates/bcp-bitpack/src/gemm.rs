//! Register-blocked multi-frame XNOR-popcount GEMM.
//!
//! The single-frame kernels in [`crate::xnor`] stream every weight row once
//! *per frame*, so at batch size B each weight word is loaded B times — the
//! loop is memory-bound. This module is the software analogue of FINN's
//! SIMD×PE folding (paper Sec. III-B): activations for B frames are packed
//! into a [`BitPlaneBlock`] whose words are interleaved in groups of
//! [`BLOCK_LANES`], and each weight row is streamed exactly once per block
//! while [`BLOCK_LANES`] independent popcount accumulators advance side by
//! side. One weight-word load now feeds four XNOR+popcounts — weight reuse
//! turns the loop compute-bound, and the fixed-width accumulator array lets
//! LLVM autovectorize the `count_ones` chain.
//!
//! [`xnor_gemm_block_thresholded`] additionally fuses the folded-threshold
//! compare ([`crate::threshold`], Sec. III-A) into the accumulator loop:
//! the signed accumulator is compared against the channel's τ the moment it
//! is complete, and only the packed output bit is written — no intermediate
//! accumulator vector exists.
//!
//! Every kernel here is bit-exact against the single-frame path and the
//! float reference; `tests/proptest_kernels.rs` pins the equivalence over
//! random shapes, batch sizes, and the full accumulator range.

use crate::bitmatrix::BitMatrix;
use crate::bitvec64::{low_mask, BitVec64, WORD_BITS};
use crate::pack::{BitPlaneBlock, BLOCK_LANES};
use crate::threshold::ThresholdUnit;

/// XNOR agreement counts of one weight row against the [`BLOCK_LANES`]
/// lanes of one register block. `quads` is the block's interleaved storage
/// (`words_per_frame` groups of [`BLOCK_LANES`] words); padding lanes
/// yield garbage counts the caller discards.
///
/// `inline(always)`: the loop body must fuse into the caller's row loop —
/// outlined, LLVM keeps the `[u64; 4]` return in memory and the SLP
/// vectorizer loses the contiguous-lane pattern that maps one iteration
/// onto broadcast + vector-XNOR + vector-popcount.
#[inline(always)]
// Word counts are bits/64-bounded and popcount sums fit u64 trivially;
// plain ops keep the unrolled loop vectorizable.
#[allow(clippy::arithmetic_side_effects)]
fn lane_agreements(wrow: &[u64], quads: &[u64], bits: usize) -> [u64; BLOCK_LANES] {
    let full = bits / WORD_BITS;
    let mut acc = [0u64; BLOCK_LANES];
    // 4-wide unroll: one weight word against four frames' words. The four
    // accumulators are independent and the four lane words contiguous, so
    // LLVM vectorizes the popcounts (one vector `ctpop` per iteration).
    for (w, quad) in wrow.iter().zip(quads.chunks_exact(BLOCK_LANES)).take(full) {
        // audit: allow(index): quad is a chunks_exact(BLOCK_LANES) slice — lane indices 0..4 are in range by construction
        acc[0] += u64::from((!(w ^ quad[0])).count_ones());
        // audit: allow(index): fixed lane 1 of the 4-word chunk
        acc[1] += u64::from((!(w ^ quad[1])).count_ones());
        // audit: allow(index): fixed lane 2 of the 4-word chunk
        acc[2] += u64::from((!(w ^ quad[2])).count_ones());
        // audit: allow(index): fixed lane 3 of the 4-word chunk
        acc[3] += u64::from((!(w ^ quad[3])).count_ones());
    }
    let tail = bits % WORD_BITS;
    if tail != 0 {
        let m = low_mask(tail);
        // audit: allow(index): a ragged tail implies a final partial word at index full in the weight row
        let w = wrow[full];
        // audit: allow(index): the block stores words_per_frame = full+1 quads, so the tail quad window is in range
        let quad = &quads[full * BLOCK_LANES..];
        // audit: allow(index): tail quad holds BLOCK_LANES words (layout invariant of BitPlaneBlock)
        acc[0] += u64::from(((!(w ^ quad[0])) & m).count_ones());
        // audit: allow(index): fixed lane 1 of the tail quad
        acc[1] += u64::from(((!(w ^ quad[1])) & m).count_ones());
        // audit: allow(index): fixed lane 2 of the tail quad
        acc[2] += u64::from(((!(w ^ quad[2])) & m).count_ones());
        // audit: allow(index): fixed lane 3 of the tail quad
        acc[3] += u64::from(((!(w ^ quad[3])) & m).count_ones());
    }
    acc
}

/// Register-blocked multi-frame GEMM: signed ±1 accumulators of every
/// weight row against every packed frame. Returns a `rows × frames`
/// row-major buffer (`out[r·frames + f]`), empty when the block holds no
/// frames. Bit-exact against [`crate::xnor::xnor_matvec`] per frame.
// Accumulator indices are bounded by rows·frames (asserted once) and the
// signed accumulator 2·agree − bits fits i32 for any representable layer.
#[allow(clippy::arithmetic_side_effects)]
// bcp:hot-path — register-blocked MVTU GEMM, once per layer per micro-batch
pub fn xnor_gemm_block(weights: &BitMatrix, block: &BitPlaneBlock) -> Vec<i32> {
    // audit: allow(panic): fan-in mismatch is a programming error, checked once per call — never per element
    assert_eq!(
        weights.cols(),
        block.bits(),
        "xnor_gemm_block fan-in {} vs block bits {}",
        weights.cols(),
        block.bits()
    );
    let (rows, frames, bits) = (weights.rows(), block.frames(), block.bits());
    // audit: allow(alloc): one accumulator buffer per layer invocation — layer-level buffer reuse is ROADMAP item 2
    let mut out = vec![0i32; rows * frames];
    for r in 0..rows {
        let wrow = weights.row_words(r);
        for g in 0..block.blocks() {
            let agree = lane_agreements(wrow, block.block_words(g), bits);
            let base = g * BLOCK_LANES;
            for (lane, &a) in agree.iter().enumerate() {
                let f = base + lane;
                if f < frames {
                    // audit: allow(index): r < rows and f < frames, so r·frames+f is inside the buffer sized above
                    // audit: allow(cast): popcount ≤ bits and layer widths are far below 2^31, so both casts are value-preserving
                    out[r * frames + f] = 2 * a as i32 - bits as i32;
                }
            }
        }
    }
    out
}

/// Register-blocked GEMM with the folded-threshold compare fused into the
/// accumulator loop: each completed accumulator is compared against its
/// channel's τ immediately and only the packed output bit is stored.
/// Returns one `rows`-bit vector per frame. Bit-exact against
/// `accumulate → ThresholdUnit::apply` per frame.
// The signed accumulator 2·agree − bits fits i64 trivially; index products
// are bounded by rows·frames as in the unfused kernel.
#[allow(clippy::arithmetic_side_effects)]
// bcp:hot-path — fused threshold compare inside the blocked accumulator loop
pub fn xnor_gemm_block_thresholded(
    weights: &BitMatrix,
    block: &BitPlaneBlock,
    thresholds: &ThresholdUnit,
) -> Vec<BitVec64> {
    // audit: allow(panic): fan-in mismatch is a programming error, checked once per call — never per element
    assert_eq!(
        weights.cols(),
        block.bits(),
        "xnor_gemm_block_thresholded fan-in {} vs block bits {}",
        weights.cols(),
        block.bits()
    );
    // audit: allow(panic): bank-size mismatch is a wiring error, checked once per call
    assert_eq!(
        thresholds.len(),
        weights.rows(),
        "threshold bank ({}) must match neuron count ({})",
        thresholds.len(),
        weights.rows()
    );
    let (rows, frames, bits) = (weights.rows(), block.frames(), block.bits());
    // Lower the bank to compare windows once per layer pass: the hot loop
    // below then runs two branch-free integer compares per neuron instead
    // of an enum dispatch that mispredicts on random sign data.
    let windows = thresholds.windows();
    // audit: allow(alloc): one packed output vector per frame per layer pass — layer-level buffer reuse is ROADMAP item 2
    let mut outs: Vec<BitVec64> = (0..frames).map(|_| BitVec64::zeros(rows)).collect();
    for r in 0..rows {
        let wrow = weights.row_words(r);
        for g in 0..block.blocks() {
            let agree = lane_agreements(wrow, block.block_words(g), bits);
            let base = g * BLOCK_LANES;
            for (lane, &a) in agree.iter().enumerate() {
                let f = base + lane;
                if f < frames {
                    // audit: allow(cast): popcount ≤ bits and layer widths are far below 2^63, so both casts are value-preserving
                    let acc = 2 * a as i64 - bits as i64;
                    // audit: allow(index): f < frames = outs.len() by the guard above
                    outs[f].or_bit(r, windows.fires(r, acc));
                }
            }
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::threshold::ThresholdChannel;
    use crate::xnor::xnor_matvec;

    fn random_bitmatrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        let mut m = BitMatrix::zeros(rows, cols);
        let mut state = seed | 1;
        for r in 0..rows {
            for c in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 40 & 1 == 1 {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    fn random_frames(n: usize, bits: usize, seed: u64) -> Vec<BitVec64> {
        (0..n)
            .map(|i| random_bitmatrix(1, bits, seed.wrapping_add(i as u64 * 7919)).row(0))
            .collect()
    }

    /// Reference: the single-frame kernel, one matvec per frame.
    fn per_frame(weights: &BitMatrix, frames: &[BitVec64]) -> Vec<i32> {
        let mut out = vec![0i32; weights.rows() * frames.len()];
        for (f, frame) in frames.iter().enumerate() {
            for (r, acc) in xnor_matvec(weights, frame).into_iter().enumerate() {
                out[r * frames.len() + f] = acc;
            }
        }
        out
    }

    #[test]
    fn b0_yields_empty_output() {
        let w = random_bitmatrix(5, 70, 1);
        let block = BitPlaneBlock::pack(&[]);
        // An empty block reports 0 bits; pair it with a 0-col matrix.
        let w0 = BitMatrix::zeros(5, 0);
        assert!(xnor_gemm_block(&w0, &block).is_empty());
        let t = ThresholdUnit::new(vec![ThresholdChannel::Ge(0); 5]);
        assert!(xnor_gemm_block_thresholded(&w0, &block, &t).is_empty());
        // And a non-empty matrix with a matching empty frame list.
        let frames: Vec<BitVec64> = Vec::new();
        assert!(per_frame(&w, &frames).is_empty());
    }

    #[test]
    fn b1_matches_single_frame_kernel() {
        let w = random_bitmatrix(6, 100, 3);
        let frames = random_frames(1, 100, 11);
        let block = BitPlaneBlock::pack(&frames);
        assert_eq!(xnor_gemm_block(&w, &block), per_frame(&w, &frames));
    }

    #[test]
    fn ragged_batch_not_multiple_of_block() {
        // B = 5 and B = 7: one full register block plus a ragged tail block.
        for b in [5usize, 7] {
            let w = random_bitmatrix(4, 96, 5);
            let frames = random_frames(b, 96, 21 + b as u64);
            let block = BitPlaneBlock::pack(&frames);
            assert_eq!(block.blocks(), 2);
            assert_eq!(xnor_gemm_block(&w, &block), per_frame(&w, &frames), "B={b}");
        }
    }

    #[test]
    fn ragged_rows_not_multiple_of_64_lanes() {
        // Fan-ins straddling word boundaries: 1, 63, 64, 65, 100, 127, 129.
        for bits in [1usize, 63, 64, 65, 100, 127, 129] {
            let w = random_bitmatrix(3, bits, 9);
            let frames = random_frames(6, bits, 31);
            let block = BitPlaneBlock::pack(&frames);
            assert_eq!(
                xnor_gemm_block(&w, &block),
                per_frame(&w, &frames),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn all_ones_and_all_zeros_planes() {
        let k = 130;
        let w = random_bitmatrix(4, k, 13);
        let frames = vec![
            BitVec64::ones(k),
            BitVec64::zeros(k),
            BitVec64::ones(k),
            BitVec64::zeros(k),
            BitVec64::ones(k),
        ];
        let block = BitPlaneBlock::pack(&frames);
        let got = xnor_gemm_block(&w, &block);
        assert_eq!(got, per_frame(&w, &frames));
        // All-ones vs all-zeros planes are exact complements: row r's
        // accumulator against 1s is the negation of the one against 0s.
        for r in 0..4 {
            assert_eq!(got[r * 5], -got[r * 5 + 1]);
        }
    }

    #[test]
    fn threshold_boundary_accumulator_exactly_at_tau() {
        // Frames engineered so row accumulators hit τ exactly: an all-ones
        // weight row against an all-ones frame accumulates k; Ge(k) must
        // fire (boundary inclusive), Ge(k+1) must not, Le(k) must fire.
        let k = 67;
        let w = BitMatrix::from_rows(&[BitVec64::ones(k), BitVec64::ones(k), BitVec64::ones(k)]);
        let t = ThresholdUnit::new(vec![
            ThresholdChannel::Ge(k as i64),
            ThresholdChannel::Ge(k as i64 + 1),
            ThresholdChannel::Le(k as i64),
        ]);
        let frames = vec![BitVec64::ones(k), BitVec64::zeros(k)];
        let block = BitPlaneBlock::pack(&frames);
        let outs = xnor_gemm_block_thresholded(&w, &block, &t);
        // Frame 0: acc = k for every row.
        assert!(outs[0].get(0), "acc == τ must fire on Ge (sign(0) = +1)");
        assert!(!outs[0].get(1), "acc == τ−1 must not fire on Ge");
        assert!(outs[0].get(2), "acc == τ must fire on Le");
        // Frame 1: acc = −k for every row.
        assert!(!outs[1].get(0) && !outs[1].get(1) && outs[1].get(2));
    }

    #[test]
    fn fused_threshold_matches_unfused_compare() {
        let w = random_bitmatrix(9, 150, 17);
        let t = ThresholdUnit::new(
            (0..9)
                .map(|i| match i % 3 {
                    0 => ThresholdChannel::Ge(i as i64 * 4 - 10),
                    1 => ThresholdChannel::Le(6 - i as i64 * 3),
                    _ => ThresholdChannel::Const(i % 2 == 0),
                })
                .collect(),
        );
        let frames = random_frames(10, 150, 41);
        let block = BitPlaneBlock::pack(&frames);
        let fused = xnor_gemm_block_thresholded(&w, &block, &t);
        let accs = xnor_gemm_block(&w, &block);
        for (f, out) in fused.iter().enumerate() {
            for r in 0..9 {
                let want = t.apply(r, accs[r * frames.len() + f] as i64);
                assert_eq!(out.get(r), want, "frame {f} row {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "fan-in")]
    fn blocked_gemm_checks_dims() {
        let w = random_bitmatrix(2, 10, 1);
        let block = BitPlaneBlock::pack(&random_frames(2, 11, 2));
        xnor_gemm_block(&w, &block);
    }

    #[test]
    #[should_panic(expected = "threshold bank")]
    fn fused_kernel_checks_bank_size() {
        let w = random_bitmatrix(3, 10, 1);
        let block = BitPlaneBlock::pack(&random_frames(1, 10, 2));
        let t = ThresholdUnit::new(vec![ThresholdChannel::Ge(0)]);
        xnor_gemm_block_thresholded(&w, &block, &t);
    }
}
