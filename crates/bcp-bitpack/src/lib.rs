//! Bit-packed binary (±1) linear algebra for BinaryCoP.
//!
//! The paper (Sec. III-A, Eq. 3) replaces every multiply-accumulate of a
//! binarized layer with XNOR + popcount: encoding −1 as bit 0 and +1 as
//! bit 1, the dot product of two ±1 vectors of length `n` with `p` matching
//! positions is `2p − n`. This crate provides that arithmetic:
//!
//! - [`BitVec64`]: a packed bit vector over `u64` words with masked
//!   popcount (padding bits never leak into counts).
//! - [`BitMatrix`]: row-major packed matrix, one padded word row each.
//! - [`xnor`]: rayon-parallel XNOR-popcount GEMM returning integer ±1 dot
//!   products — the simulator's MVTU arithmetic and the fast inference path.
//! - [`gemm`]: register-blocked multi-frame GEMM over [`BitPlaneBlock`]
//!   layouts — each weight row streamed once while `BLOCK_LANES` popcount
//!   accumulators advance, with an optional fused threshold compare.
//! - [`pack`]: `sign()` packing of float tensors (ties at 0 → +1, Eq. 1),
//!   plus the [`BitPlaneBlock`] interleaved multi-frame layout.
//! - [`threshold`]: per-channel integer threshold units, the hardware form
//!   of batch-norm + sign (Sec. III-A).
//! - [`serialize`]: compact bitstream framing via `bytes` for checkpointing
//!   deployed (binarized) weights.
//! - [`checksum`]: CRC-32 integrity codes over packed rows, the detection
//!   half of the weight-memory scrubbing in `bcp-guard`.

#![forbid(unsafe_code)]
#![warn(clippy::arithmetic_side_effects)]

pub mod bitmatrix;
pub mod bitvec64;
pub mod checksum;
pub mod gemm;
pub mod pack;
pub mod serialize;
pub mod threshold;
pub mod xnor;

pub use bitmatrix::BitMatrix;
pub use bitvec64::BitVec64;
pub use gemm::{xnor_gemm_block, xnor_gemm_block_thresholded};
pub use pack::{BitPlaneBlock, BLOCK_LANES};
pub use threshold::{ThresholdChannel, ThresholdUnit, ThresholdWindows};
