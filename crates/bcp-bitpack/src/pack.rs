//! `sign()` packing of float data into bit vectors/matrices.
//!
//! Eq. 1 of the paper: `sign(w) = +1 if w ≥ 0, −1 otherwise`. The tie at
//! exactly 0 maps to +1; every packer here implements that convention, and
//! `bcp-nn`'s float binarization uses the same rule, so both inference paths
//! agree bit-for-bit.
//!
//! This module also owns [`BitPlaneBlock`], the register-blocked bit-plane
//! layout the multi-frame GEMM ([`crate::gemm`]) consumes: B frames' packed
//! activations interleaved in groups of [`BLOCK_LANES`] so the kernel loads
//! one weight word and XNORs it against `BLOCK_LANES` contiguous activation
//! words — the software analogue of FINN's SIMD×PE weight reuse.

use crate::bitmatrix::BitMatrix;
use crate::bitvec64::{words_for, BitVec64};

/// The paper's sign convention as a bit: `x ≥ 0 → true (+1)`.
#[inline]
pub fn sign_bit(x: f32) -> bool {
    x >= 0.0
}

/// The paper's sign convention as a float.
#[inline]
pub fn sign_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Pack a float slice into a bit vector via [`sign_bit`].
pub fn pack_signs(xs: &[f32]) -> BitVec64 {
    let mut v = BitVec64::zeros(xs.len());
    for (i, &x) in xs.iter().enumerate() {
        if sign_bit(x) {
            v.set(i, true);
        }
    }
    v
}

/// Pack a row-major `rows × cols` float buffer into a [`BitMatrix`].
pub fn pack_matrix(rows: usize, cols: usize, xs: &[f32]) -> BitMatrix {
    assert_eq!(
        xs.len(),
        rows.saturating_mul(cols),
        "buffer does not match {rows}×{cols}"
    );
    let mut m = BitMatrix::zeros(rows, cols);
    if cols == 0 {
        return m;
    }
    for (r, row) in xs.chunks_exact(cols).enumerate() {
        for (c, &x) in row.iter().enumerate() {
            if sign_bit(x) {
                m.set(r, c, true);
            }
        }
    }
    m
}

/// Unpack a bit vector back to ±1 floats (inverse of [`pack_signs`] up to
/// the sign quantization).
pub fn unpack_signs(v: &BitVec64) -> Vec<f32> {
    v.to_signs()
}

/// Register-block width of the multi-frame GEMM: how many frames' words are
/// interleaved contiguously, and how many independent popcount accumulators
/// the inner loop carries. Four `u64` lanes fill one 256-bit vector
/// register, which is what lets LLVM autovectorize the `count_ones` chain.
pub const BLOCK_LANES: usize = 4;

/// B frames' activation bit-planes in a register-blocked interleaved
/// layout.
///
/// Frames are grouped into blocks of [`BLOCK_LANES`]; within block `g`, the
/// storage is word-index-major: the `BLOCK_LANES` lane words for word index
/// `i` sit contiguously at `(g·words_per_frame + i)·BLOCK_LANES + lane`.
/// A weight row is therefore streamed exactly once per block while the
/// kernel accumulates `BLOCK_LANES` popcounts side by side.
///
/// Ragged tails are padded with zeros and never leak into results:
/// when `frames` is not a multiple of [`BLOCK_LANES`] the missing lanes
/// hold all-zero planes (their popcounts are computed and discarded), and
/// the trailing bits of each frame's last word beyond `bits` are zero —
/// the same padding invariant [`BitVec64`] maintains, so masked tail
/// popcounts stay exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitPlaneBlock {
    frames: usize,
    bits: usize,
    words_per_frame: usize,
    words: Vec<u64>,
}

impl BitPlaneBlock {
    /// Pack owned frames; all must share one bit length.
    pub fn pack(frames: &[BitVec64]) -> Self {
        // audit: allow(alloc): one slim reference vector per pack — the bulk buffer is allocated once in pack_refs
        let refs: Vec<&BitVec64> = frames.iter().collect();
        Self::pack_refs(&refs)
    }

    /// Pack borrowed frames; all must share one bit length.
    // Block/lane products are bounded by frames·words_per_frame, both far
    // below overflow for any representable batch; plain ops keep the
    // interleaving loop tight.
    #[allow(clippy::arithmetic_side_effects)]
    // bcp:hot-path — bit-plane interleave feeding every blocked MVTU pass
    pub fn pack_refs(frames: &[&BitVec64]) -> Self {
        let bits = frames.first().map_or(0, |f| f.len());
        for f in frames {
            // audit: allow(panic): mixed frame widths are a wiring error, caught on the first block of a run
            assert_eq!(
                f.len(),
                bits,
                "all frames in a block must share a bit length"
            );
        }
        let words_per_frame = words_for(bits);
        let blocks = frames.len().div_ceil(BLOCK_LANES);
        // audit: allow(alloc): one interleaved buffer per block pack — layer-level buffer reuse is ROADMAP item 2
        let mut words = Vec::with_capacity(blocks * words_per_frame * BLOCK_LANES);
        for g in 0..blocks {
            for i in 0..words_per_frame {
                for lane in 0..BLOCK_LANES {
                    let w = frames
                        .get(g * BLOCK_LANES + lane)
                        .and_then(|f| f.words().get(i))
                        .copied()
                        .unwrap_or(0);
                    // audit: allow(alloc): push into the capacity reserved above — never reallocates
                    words.push(w);
                }
            }
        }
        BitPlaneBlock {
            frames: frames.len(),
            bits,
            words_per_frame,
            words,
        }
    }

    /// Number of frames packed (may be 0).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Bits per frame.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Words per frame (`⌈bits/64⌉`).
    pub fn words_per_frame(&self) -> usize {
        self.words_per_frame
    }

    /// Number of register blocks (`⌈frames/BLOCK_LANES⌉`).
    pub fn blocks(&self) -> usize {
        self.frames.div_ceil(BLOCK_LANES)
    }

    /// The interleaved words of register block `g`:
    /// `words_per_frame · BLOCK_LANES` words, word-index-major.
    #[inline]
    // Block offsets are bounded by the buffer length established at pack
    // time; plain ops keep the accessor branch-free.
    #[allow(clippy::arithmetic_side_effects)]
    // bcp:hot-path — per-block operand fetch of the blocked GEMM (rooted explicitly: also used by cold unpack paths)
    pub fn block_words(&self, g: usize) -> &[u64] {
        let span = self.words_per_frame * BLOCK_LANES;
        // audit: allow(index): g < blocks() by the caller's loop bound, so the span window lies inside the buffer
        &self.words[g * span..(g + 1) * span]
    }

    /// De-interleave back to one [`BitVec64`] per frame (test/debug path —
    /// the inverse of [`BitPlaneBlock::pack`]).
    #[allow(clippy::arithmetic_side_effects)] // cold path; offsets bounded as in pack_refs
    pub fn unpack(&self) -> Vec<BitVec64> {
        (0..self.frames)
            .map(|f| {
                let g = f / BLOCK_LANES;
                let lane = f % BLOCK_LANES;
                let words: Vec<u64> = (0..self.words_per_frame)
                    .map(|i| {
                        self.words
                            .get((g * self.words_per_frame + i) * BLOCK_LANES + lane)
                            .copied()
                            .unwrap_or(0)
                    })
                    .collect();
                BitVec64::from_words(self.bits, words)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_ties_to_plus_one() {
        assert!(sign_bit(0.0));
        assert!(sign_bit(-0.0)); // -0.0 >= 0.0 is true in IEEE754
        assert_eq!(sign_f32(0.0), 1.0);
        assert_eq!(sign_f32(-0.0), 1.0);
    }

    #[test]
    fn pack_known() {
        let v = pack_signs(&[1.5, -0.2, 0.0, -7.0]);
        assert_eq!(v.to_signs(), vec![1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn pack_matrix_layout() {
        let m = pack_matrix(2, 3, &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        assert!(m.get(0, 0) && !m.get(0, 1) && m.get(0, 2));
        assert!(!m.get(1, 0) && m.get(1, 1) && !m.get(1, 2));
    }

    #[test]
    fn bitplane_block_layout_is_lane_interleaved() {
        // Two 65-bit frames: frame 0 all ones, frame 1 all zeros. Words are
        // interleaved lane-wise, missing lanes padded with zero.
        let f0 = BitVec64::ones(65);
        let f1 = BitVec64::zeros(65);
        let b = BitPlaneBlock::pack(&[f0.clone(), f1.clone()]);
        assert_eq!(b.frames(), 2);
        assert_eq!(b.bits(), 65);
        assert_eq!(b.words_per_frame(), 2);
        assert_eq!(b.blocks(), 1);
        let w = b.block_words(0);
        assert_eq!(w.len(), 2 * BLOCK_LANES);
        // Word index 0: lane 0 = frame 0's first word (all ones), lane 1 =
        // frame 1 (zero), lanes 2-3 = padding.
        assert_eq!(w[0], u64::MAX);
        assert_eq!(&w[1..4], &[0, 0, 0]);
        // Word index 1: frame 0's single valid tail bit.
        assert_eq!(w[4], 1);
        assert_eq!(&w[5..8], &[0, 0, 0]);
    }

    #[test]
    fn bitplane_block_roundtrips() {
        let frames: Vec<BitVec64> = (0..7)
            .map(|i| {
                let bools: Vec<bool> = (0..130).map(|j| (i * 37 + j * 11) % 3 == 0).collect();
                BitVec64::from_bools(&bools)
            })
            .collect();
        let b = BitPlaneBlock::pack(&frames);
        assert_eq!(b.blocks(), 2); // 7 frames over 4 lanes
        assert_eq!(b.unpack(), frames);
    }

    #[test]
    fn bitplane_block_empty_is_fine() {
        let b = BitPlaneBlock::pack(&[]);
        assert_eq!(b.frames(), 0);
        assert_eq!(b.blocks(), 0);
        assert!(b.unpack().is_empty());
    }

    #[test]
    #[should_panic(expected = "share a bit length")]
    fn bitplane_block_rejects_mixed_widths() {
        BitPlaneBlock::pack(&[BitVec64::zeros(10), BitVec64::zeros(11)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_bitplane_pack_unpack_roundtrip(
            n in 0usize..10,
            bits in 1usize..200,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let frames: Vec<BitVec64> = (0..n)
                .map(|i| {
                    let bools: Vec<bool> = (0..bits)
                        .map(|j| (seed >> (i.wrapping_mul(7).wrapping_add(j) % 64)) & 1 == 1)
                        .collect();
                    BitVec64::from_bools(&bools)
                })
                .collect();
            let b = BitPlaneBlock::pack(&frames);
            prop_assert_eq!(b.unpack(), frames);
        }

        #[test]
        fn prop_roundtrip_is_sign(xs in proptest::collection::vec(-100.0f32..100.0, 0..300)) {
            let packed = pack_signs(&xs);
            let back = unpack_signs(&packed);
            for (orig, b) in xs.iter().zip(back) {
                prop_assert_eq!(sign_f32(*orig), b);
            }
        }

        #[test]
        fn prop_pack_idempotent(xs in proptest::collection::vec(-10.0f32..10.0, 1..100)) {
            // Packing already-binarized values is the identity.
            let once = unpack_signs(&pack_signs(&xs));
            let twice = unpack_signs(&pack_signs(&once));
            prop_assert_eq!(once, twice);
        }
    }
}
