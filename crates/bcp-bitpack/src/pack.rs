//! `sign()` packing of float data into bit vectors/matrices.
//!
//! Eq. 1 of the paper: `sign(w) = +1 if w ≥ 0, −1 otherwise`. The tie at
//! exactly 0 maps to +1; every packer here implements that convention, and
//! `bcp-nn`'s float binarization uses the same rule, so both inference paths
//! agree bit-for-bit.

use crate::bitmatrix::BitMatrix;
use crate::bitvec64::BitVec64;

/// The paper's sign convention as a bit: `x ≥ 0 → true (+1)`.
#[inline]
pub fn sign_bit(x: f32) -> bool {
    x >= 0.0
}

/// The paper's sign convention as a float.
#[inline]
pub fn sign_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Pack a float slice into a bit vector via [`sign_bit`].
pub fn pack_signs(xs: &[f32]) -> BitVec64 {
    let mut v = BitVec64::zeros(xs.len());
    for (i, &x) in xs.iter().enumerate() {
        if sign_bit(x) {
            v.set(i, true);
        }
    }
    v
}

/// Pack a row-major `rows × cols` float buffer into a [`BitMatrix`].
pub fn pack_matrix(rows: usize, cols: usize, xs: &[f32]) -> BitMatrix {
    assert_eq!(
        xs.len(),
        rows.saturating_mul(cols),
        "buffer does not match {rows}×{cols}"
    );
    let mut m = BitMatrix::zeros(rows, cols);
    if cols == 0 {
        return m;
    }
    for (r, row) in xs.chunks_exact(cols).enumerate() {
        for (c, &x) in row.iter().enumerate() {
            if sign_bit(x) {
                m.set(r, c, true);
            }
        }
    }
    m
}

/// Unpack a bit vector back to ±1 floats (inverse of [`pack_signs`] up to
/// the sign quantization).
pub fn unpack_signs(v: &BitVec64) -> Vec<f32> {
    v.to_signs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_ties_to_plus_one() {
        assert!(sign_bit(0.0));
        assert!(sign_bit(-0.0)); // -0.0 >= 0.0 is true in IEEE754
        assert_eq!(sign_f32(0.0), 1.0);
        assert_eq!(sign_f32(-0.0), 1.0);
    }

    #[test]
    fn pack_known() {
        let v = pack_signs(&[1.5, -0.2, 0.0, -7.0]);
        assert_eq!(v.to_signs(), vec![1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn pack_matrix_layout() {
        let m = pack_matrix(2, 3, &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        assert!(m.get(0, 0) && !m.get(0, 1) && m.get(0, 2));
        assert!(!m.get(1, 0) && m.get(1, 1) && !m.get(1, 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_roundtrip_is_sign(xs in proptest::collection::vec(-100.0f32..100.0, 0..300)) {
            let packed = pack_signs(&xs);
            let back = unpack_signs(&packed);
            for (orig, b) in xs.iter().zip(back) {
                prop_assert_eq!(sign_f32(*orig), b);
            }
        }

        #[test]
        fn prop_pack_idempotent(xs in proptest::collection::vec(-10.0f32..10.0, 1..100)) {
            // Packing already-binarized values is the identity.
            let once = unpack_signs(&pack_signs(&xs));
            let twice = unpack_signs(&pack_signs(&once));
            prop_assert_eq!(once, twice);
        }
    }
}
