//! Compact bitstream framing for deployed (binarized) weights.
//!
//! The whole point of a BNN on an embedded device is the ×32 memory
//! reduction (paper Sec. II-B), so checkpoints of *deployed* weights should
//! be packed bits, not JSON floats. Frame layout (little-endian):
//!
//! ```text
//! magic  u32  = 0x42_43_6F_50  ("BCoP")
//! rows   u64
//! cols   u64
//! words  u64 · rows·ceil(cols/64)
//! ```

use crate::bitmatrix::BitMatrix;
use crate::bitvec64::{low_mask, words_for};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame magic: ASCII "BCoP".
pub const MAGIC: u32 = 0x42_43_6F_50;

/// Errors produced when decoding a bitstream frame.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the fixed header.
    Truncated,
    /// Header magic did not match [`MAGIC`].
    BadMagic(u32),
    /// Payload shorter than `rows × words_per_row` words.
    ShortPayload {
        expected_words: usize,
        got_words: usize,
    },
    /// A row had set bits beyond `cols`.
    DirtyPadding,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bitstream truncated before header end"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#010x}, expected {MAGIC:#010x}"),
            DecodeError::ShortPayload {
                expected_words,
                got_words,
            } => {
                write!(
                    f,
                    "payload has {got_words} words, expected {expected_words}"
                )
            }
            DecodeError::DirtyPadding => write!(f, "row padding bits set"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a [`BitMatrix`] into a framed bitstream.
pub fn encode_matrix(m: &BitMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(m.words().len().saturating_mul(8).saturating_add(20));
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &w in m.words() {
        buf.put_u64_le(w);
    }
    buf.freeze()
}

/// Decode a framed bitstream back into a [`BitMatrix`].
pub fn decode_matrix(mut buf: impl Buf) -> Result<BitMatrix, DecodeError> {
    if buf.remaining() < 20 {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    let expected = rows.saturating_mul(words_for(cols));
    let got = buf.remaining() / 8;
    if got < expected {
        return Err(DecodeError::ShortPayload {
            expected_words: expected,
            got_words: got,
        });
    }
    let mut words = Vec::with_capacity(expected);
    for _ in 0..expected {
        words.push(buf.get_u64_le());
    }
    // from_words panics on dirty padding; surface it as an error instead.
    let tail = cols % 64;
    if tail != 0 {
        let mask = !low_mask(tail);
        let wpr = words_for(cols);
        if words
            .chunks_exact(wpr)
            .any(|row| row.last().copied().unwrap_or(0) & mask != 0)
        {
            return Err(DecodeError::DirtyPadding);
        }
    }
    Ok(BitMatrix::from_words(rows, cols, words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_matrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        let mut m = BitMatrix::zeros(rows, cols);
        let mut s = seed | 1;
        for r in 0..rows {
            for c in 0..cols {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                if s >> 60 & 1 == 1 {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    #[test]
    fn roundtrip() {
        let m = sample_matrix(5, 77, 1);
        let bytes = encode_matrix(&m);
        let back = decode_matrix(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn frame_size_is_packed() {
        // 128 columns → 2 words/row: 4 + 16 + rows·16 bytes. A float matrix
        // would take rows·cols·4 bytes — the ×32 claim in the paper.
        let m = sample_matrix(10, 128, 2);
        let bytes = encode_matrix(&m);
        assert_eq!(bytes.len(), 20 + 10 * 2 * 8);
        let float_bytes = 10 * 128 * 4;
        assert!(float_bytes / (bytes.len() - 20) == 32);
    }

    #[test]
    fn rejects_bad_magic() {
        let m = sample_matrix(2, 10, 3);
        let mut bytes = encode_matrix(&m).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_matrix(&bytes[..]),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let m = sample_matrix(2, 100, 4);
        let bytes = encode_matrix(&m);
        assert_eq!(decode_matrix(&bytes[..10]), Err(DecodeError::Truncated));
        assert!(matches!(
            decode_matrix(&bytes[..bytes.len() - 8]),
            Err(DecodeError::ShortPayload { .. })
        ));
    }

    #[test]
    fn rejects_dirty_padding() {
        let m = sample_matrix(1, 3, 5);
        let mut bytes = encode_matrix(&m).to_vec();
        let last = bytes.len() - 1;
        bytes[last] |= 0x80; // set a padding bit in the single payload word
        assert_eq!(decode_matrix(&bytes[..]), Err(DecodeError::DirtyPadding));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip(rows in 1usize..8, cols in 1usize..200, seed in any::<u64>()) {
            let m = sample_matrix(rows, cols, seed);
            prop_assert_eq!(decode_matrix(encode_matrix(&m)).unwrap(), m);
        }
    }
}
