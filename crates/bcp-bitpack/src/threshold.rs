//! Integer threshold units — the hardware form of batch-norm + sign.
//!
//! Sec. III-A of the paper: because batch-norm is immediately followed by
//! `sign()`, the full affine computation is wasteful on hardware. From the
//! training-time statistics a per-channel threshold `τ` is derived such that
//! comparing the integer XNOR accumulator against `τ` reproduces
//! `sign(BatchNorm(a))` exactly:
//!
//! `sign(γ·(a−μ)/σ + β) = +1  ⟺  a ≥ τ` (γ > 0), `a ≤ τ` (γ < 0),
//! constant when γ = 0. Thresholds are computed in f64, so the comparison is
//! exact for every integer accumulator the MVTU can produce.

use serde::{Deserialize, Serialize};

/// One channel's threshold decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdChannel {
    /// Output +1 iff the accumulator is ≥ τ (the γ > 0 case).
    Ge(i64),
    /// Output +1 iff the accumulator is ≤ τ (the γ < 0 case).
    Le(i64),
    /// Output is a constant regardless of the accumulator (γ = 0).
    Const(bool),
}

impl ThresholdChannel {
    /// Derive from batch-norm parameters. `var` is the (biased) running
    /// variance; `eps` the numerical-stability constant used at training.
    pub fn from_batchnorm(gamma: f64, beta: f64, mean: f64, var: f64, eps: f64) -> Self {
        assert!(var >= 0.0 && eps > 0.0, "invalid batch-norm statistics");
        let sigma = (var + eps).sqrt();
        if gamma == 0.0 {
            // sign(β): β ≥ 0 → +1 (paper Eq. 1 tie rule).
            return ThresholdChannel::Const(beta >= 0.0);
        }
        let tau = mean - beta * sigma / gamma;
        if gamma > 0.0 {
            // a ≥ τ over integers ⟺ a ≥ ⌈τ⌉.
            ThresholdChannel::Ge(tau.ceil() as i64)
        } else {
            // a ≤ τ over integers ⟺ a ≤ ⌊τ⌋.
            ThresholdChannel::Le(tau.floor() as i64)
        }
    }

    /// Evaluate the comparison on an integer accumulator.
    #[inline]
    pub fn apply(&self, acc: i64) -> bool {
        match *self {
            ThresholdChannel::Ge(t) => acc >= t,
            ThresholdChannel::Le(t) => acc <= t,
            ThresholdChannel::Const(b) => b,
        }
    }
}

/// A bank of per-channel thresholds — one MVTU's threshold memory.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdUnit {
    channels: Vec<ThresholdChannel>,
}

impl ThresholdUnit {
    /// Build from per-channel decisions.
    pub fn new(channels: Vec<ThresholdChannel>) -> Self {
        ThresholdUnit { channels }
    }

    /// Derive a whole bank from per-channel batch-norm parameter slices.
    pub fn from_batchnorm(
        gamma: &[f32],
        beta: &[f32],
        mean: &[f32],
        var: &[f32],
        eps: f32,
    ) -> Self {
        assert!(
            gamma.len() == beta.len() && beta.len() == mean.len() && mean.len() == var.len(),
            "batch-norm parameter slices must share a length"
        );
        ThresholdUnit {
            channels: (0..gamma.len())
                .map(|c| {
                    ThresholdChannel::from_batchnorm(
                        gamma[c] as f64,
                        beta[c] as f64,
                        mean[c] as f64,
                        var[c] as f64,
                        eps as f64,
                    )
                })
                .collect(),
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True when the bank has no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Per-channel decisions.
    pub fn channels(&self) -> &[ThresholdChannel] {
        &self.channels
    }

    /// Threshold channel `c`'s accumulator.
    #[inline]
    // bcp:hot-path — one comparison per output neuron of every threshold stage
    pub fn apply(&self, c: usize, acc: i64) -> bool {
        // audit: allow(index): callers iterate 0..len() (bank size validated against neuron count at construction)
        self.channels[c].apply(acc)
    }

    /// Threshold a full accumulator vector (one per channel) to bits.
    pub fn apply_all(&self, accs: &[i64]) -> Vec<bool> {
        assert_eq!(
            accs.len(),
            self.channels.len(),
            "accumulator count mismatch"
        );
        accs.iter()
            .zip(&self.channels)
            .map(|(&a, t)| t.apply(a))
            .collect()
    }

    /// Lower the bank to its branchless compare-window form (one `[lo, hi]`
    /// interval per channel). Built once per layer pass and amortized over
    /// every frame in a block, so the fused GEMM's inner loop runs two
    /// integer compares per neuron instead of an enum dispatch.
    pub fn windows(&self) -> ThresholdWindows {
        let (lo, hi) = self
            .channels
            .iter()
            .map(|t| match *t {
                ThresholdChannel::Ge(t) => (t, i64::MAX),
                ThresholdChannel::Le(t) => (i64::MIN, t),
                ThresholdChannel::Const(true) => (i64::MIN, i64::MAX),
                // The empty interval: no accumulator satisfies 1 ≤ a ≤ 0.
                ThresholdChannel::Const(false) => (1, 0),
            })
            .unzip();
        ThresholdWindows { lo, hi }
    }
}

/// A threshold bank lowered to per-channel compare windows: channel `c`
/// fires iff `lo[c] ≤ acc ≤ hi[c]`. This is the software analogue of FINN's
/// precomputed threshold memories — the enum dispatch of
/// [`ThresholdChannel::apply`] is paid once at [`ThresholdUnit::windows`]
/// time, and the hot loop is two branch-free integer compares. Equivalent to
/// the enum form for every representable accumulator (pinned by proptest).
#[derive(Clone, Debug)]
pub struct ThresholdWindows {
    lo: Vec<i64>,
    hi: Vec<i64>,
}

impl ThresholdWindows {
    /// Number of channels.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// True when the bank has no channels.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Whether channel `c` fires on `acc` — branch-free compare pair.
    #[inline]
    // bcp:hot-path — fused-threshold compare inside the blocked GEMM loop
    pub fn fires(&self, c: usize, acc: i64) -> bool {
        // audit: allow(index): callers iterate 0..len() (bank size validated against neuron count by the fused kernel)
        (self.lo[c] <= acc) & (acc <= self.hi[c])
    }
}

/// Reference float evaluation of batch-norm + sign, in f64 — the semantic
/// the threshold must reproduce. Public so equivalence tests in other crates
/// compare against the same definition.
pub fn batchnorm_sign_reference(
    acc: i64,
    gamma: f64,
    beta: f64,
    mean: f64,
    var: f64,
    eps: f64,
) -> bool {
    let sigma = (var + eps).sqrt();
    gamma * (acc as f64 - mean) / sigma + beta >= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn positive_gamma_is_ge() {
        // γ=1, β=0, μ=3.2, σ≈1 → fire at a ≥ 4.
        let t = ThresholdChannel::from_batchnorm(1.0, 0.0, 3.2, 1.0 - 1e-5, 1e-5);
        assert_eq!(t, ThresholdChannel::Ge(4));
        assert!(!t.apply(3));
        assert!(t.apply(4));
    }

    #[test]
    fn negative_gamma_flips_direction() {
        let t = ThresholdChannel::from_batchnorm(-1.0, 0.0, 3.2, 1.0 - 1e-5, 1e-5);
        assert_eq!(t, ThresholdChannel::Le(3));
        assert!(t.apply(3));
        assert!(!t.apply(4));
    }

    #[test]
    fn zero_gamma_is_constant_sign_of_beta() {
        assert_eq!(
            ThresholdChannel::from_batchnorm(0.0, 0.5, 10.0, 1.0, 1e-5),
            ThresholdChannel::Const(true)
        );
        assert_eq!(
            ThresholdChannel::from_batchnorm(0.0, -0.5, 10.0, 1.0, 1e-5),
            ThresholdChannel::Const(false)
        );
        // β = 0 ties to +1 per Eq. 1.
        assert_eq!(
            ThresholdChannel::from_batchnorm(0.0, 0.0, 10.0, 1.0, 1e-5),
            ThresholdChannel::Const(true)
        );
    }

    #[test]
    fn integer_tau_boundary_inclusive() {
        // τ_real exactly integer: γ=1, β=−2, μ=0, σ=1 → τ=2, fire at a ≥ 2.
        let t = ThresholdChannel::from_batchnorm(1.0, -2.0, 0.0, 1.0 - 1e-5, 1e-5);
        assert_eq!(t, ThresholdChannel::Ge(2));
        assert!(t.apply(2), "boundary must be inclusive (sign(0) = +1)");
        assert!(!t.apply(1));
    }

    #[test]
    fn unit_applies_bank() {
        let u = ThresholdUnit::from_batchnorm(
            &[1.0, -1.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[1.0, 1.0],
            1e-5,
        );
        assert_eq!(u.len(), 2);
        assert_eq!(u.apply_all(&[5, 5]), vec![true, false]);
        assert_eq!(u.apply_all(&[-5, -5]), vec![false, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn prop_threshold_equals_float_batchnorm_sign(
            gamma in -4.0f64..4.0,
            beta in -4.0f64..4.0,
            mean in -50.0f64..50.0,
            var in 0.0f64..30.0,
            acc in -600i64..600,
        ) {
            let eps = 1e-5f64;
            let t = ThresholdChannel::from_batchnorm(gamma, beta, mean, var, eps);
            prop_assert_eq!(
                t.apply(acc),
                batchnorm_sign_reference(acc, gamma, beta, mean, var, eps),
                "γ={} β={} μ={} var={} a={} → {:?}", gamma, beta, mean, var, acc, t
            );
        }

        #[test]
        fn prop_windows_equal_enum_dispatch(
            tau in -300i64..300,
            acc in -600i64..600,
        ) {
            // Every channel form, compared at and around its own boundary.
            let bank = ThresholdUnit::new(vec![
                ThresholdChannel::Ge(tau),
                ThresholdChannel::Le(tau),
                ThresholdChannel::Const(true),
                ThresholdChannel::Const(false),
            ]);
            let w = bank.windows();
            prop_assert_eq!(w.len(), 4);
            for c in 0..4 {
                for a in [
                    acc,
                    tau,
                    tau.saturating_sub(1),
                    tau.saturating_add(1),
                    i64::MIN,
                    i64::MAX,
                ] {
                    prop_assert_eq!(
                        w.fires(c, a),
                        bank.apply(c, a),
                        "channel {} acc {}", c, a
                    );
                }
            }
        }
    }

    #[test]
    fn windows_boundaries_are_inclusive() {
        let bank = ThresholdUnit::new(vec![ThresholdChannel::Ge(5), ThresholdChannel::Le(-5)]);
        let w = bank.windows();
        assert!(w.fires(0, 5) && !w.fires(0, 4));
        assert!(w.fires(1, -5) && !w.fires(1, -4));
        assert!(!w.is_empty());
    }
}
