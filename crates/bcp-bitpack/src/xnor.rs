//! XNOR-popcount GEMM — the MVTU arithmetic (paper Eq. 3).
//!
//! `PopCnt(XNOR(H, B))` over packed words gives the number of agreeing ±1
//! positions; the signed accumulator is `2·agreements − k`. The GEMM kernel
//! parallelises over output rows with rayon; each inner product streams two
//! word-aligned rows, so the core loop is pure `XOR → NOT → POPCNT` exactly
//! like one PE lane of the FPGA design.

use crate::bitmatrix::BitMatrix;
use crate::bitvec64::{low_mask, BitVec64, WORD_BITS};
use rayon::prelude::*;

/// Popcount of XNOR between two word slices over `bits` valid bits.
#[inline]
// Word counts are bits/64-bounded and popcount sums fit u32 for any
// representable row; plain ops keep the innermost loop vectorizable.
#[allow(clippy::arithmetic_side_effects)]
// bcp:hot-path — the innermost PE-lane loop of every inference
pub fn xnor_popcount_words(a: &[u64], b: &[u64], bits: usize) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let full = bits / WORD_BITS;
    let mut agree = 0u32;
    for i in 0..full {
        // audit: allow(index): i < full = bits/64 ≤ slice length for word-aligned rows — callers pass equal-length packed rows
        agree += (!(a[i] ^ b[i])).count_ones();
    }
    let tail = bits % WORD_BITS;
    if tail != 0 {
        // audit: allow(index): a ragged tail implies a final partial word at index full
        agree += ((!(a[full] ^ b[full])) & low_mask(tail)).count_ones();
    }
    agree
}

/// Signed ±1 dot product over packed words.
#[inline]
// 2·agreements − bits cannot overflow i32 for any representable layer width.
#[allow(clippy::arithmetic_side_effects)]
// bcp:hot-path — signed accumulator of the XNOR kernel (paper Eq. 3)
pub fn xnor_dot_words(a: &[u64], b: &[u64], bits: usize) -> i32 {
    // audit: allow(cast): popcount ≤ bits and layer widths are far below 2^31, so both casts are value-preserving
    2 * xnor_popcount_words(a, b, bits) as i32 - bits as i32
}

/// `C = A · Bᵀ` over ±1 entries: `a` is `m × k`, `b_t` is `n × k`
/// (i.e. `b_t` stores the columns of the logical right-hand matrix as rows,
/// which is how MVTU weight memories are laid out). Returns the `m × n`
/// signed accumulator matrix, row-major.
// bcp:hot-path — batched MVTU GEMM, once per layer per batch
pub fn xnor_gemm(a: &BitMatrix, b_t: &BitMatrix) -> Vec<i32> {
    // audit: allow(panic): dimension mismatch is a programming error, checked once per call — never per element
    assert_eq!(
        a.cols(),
        b_t.cols(),
        "xnor_gemm inner dims disagree: {} vs {}",
        a.cols(),
        b_t.cols()
    );
    let (m, n, k) = (a.rows(), b_t.rows(), a.cols());
    // audit: allow(alloc): one accumulator buffer per layer invocation — layer-level buffer reuse is ROADMAP item 2
    let mut out = vec![0i32; m.saturating_mul(n)];
    out.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = a.row_words(i);
        for (j, c) in crow.iter_mut().enumerate() {
            *c = xnor_dot_words(arow, b_t.row_words(j), k);
        }
    });
    out
}

/// Matrix–vector product `y = A · x` over ±1 entries (one MVTU output
/// column at full unfold).
// bcp:hot-path — per-frame MVTU matvec at full unfold
pub fn xnor_matvec(a: &BitMatrix, x: &BitVec64) -> Vec<i32> {
    // audit: allow(panic): length mismatch is a programming error, checked once per call
    assert_eq!(a.cols(), x.len(), "xnor_matvec length mismatch");
    (0..a.rows())
        .map(|r| xnor_dot_words(a.row_words(r), x.words(), a.cols()))
        // audit: allow(alloc): one accumulator vector per layer invocation — layer-level buffer reuse is ROADMAP item 2
        .collect()
}

/// Reference ±1 GEMM via dense decode (tests/benches baseline: this is the
/// "what the FPGA replaces" float path).
// The textbook reference is kept as plainly-written loops; dims are the same
// in-range layer widths the packed kernel handles.
#[allow(clippy::arithmetic_side_effects)]
pub fn gemm_naive_signs(a: &BitMatrix, b_t: &BitMatrix) -> Vec<i32> {
    assert_eq!(a.cols(), b_t.cols());
    let (m, n, k) = (a.rows(), b_t.rows(), a.cols());
    let ad = a.to_signs();
    let bd = b_t.to_signs();
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0f32;
            for kk in 0..k {
                acc += ad[i * k + kk] * bd[j * k + kk];
            }
            out[i * n + j] = acc as i32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use proptest::prelude::*;

    fn random_bitmatrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        let mut m = BitMatrix::zeros(rows, cols);
        let mut state = seed | 1;
        for r in 0..rows {
            for c in 0..cols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 40 & 1 == 1 {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    #[test]
    fn gemm_identity_like() {
        // A row dotted with itself gives k.
        let a = random_bitmatrix(4, 100, 7);
        let c = xnor_gemm(&a, &a);
        for i in 0..4 {
            assert_eq!(c[i * 4 + i], 100);
        }
    }

    #[test]
    fn gemm_matches_naive() {
        let a = random_bitmatrix(7, 130, 1);
        let b = random_bitmatrix(5, 130, 2);
        assert_eq!(xnor_gemm(&a, &b), gemm_naive_signs(&a, &b));
    }

    #[test]
    fn matvec_matches_gemm_column() {
        let a = random_bitmatrix(6, 90, 3);
        let x = random_bitmatrix(1, 90, 4).row(0);
        let mv = xnor_matvec(&a, &x);
        let g = xnor_gemm(&a, &BitMatrix::from_rows(&[x]));
        assert_eq!(mv, g);
    }

    #[test]
    fn word_kernel_handles_exact_multiples() {
        let a = random_bitmatrix(2, 128, 5);
        let b = random_bitmatrix(2, 128, 6);
        assert_eq!(xnor_gemm(&a, &b), gemm_naive_signs(&a, &b));
    }

    #[test]
    #[should_panic(expected = "inner dims disagree")]
    fn gemm_checks_dims() {
        let a = BitMatrix::zeros(2, 10);
        let b = BitMatrix::zeros(2, 11);
        xnor_gemm(&a, &b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_gemm_equals_naive(m in 1usize..6, n in 1usize..6, k in 1usize..200, seed in any::<u64>()) {
            let a = random_bitmatrix(m, k, seed);
            let b = random_bitmatrix(n, k, seed.wrapping_add(99));
            prop_assert_eq!(xnor_gemm(&a, &b), gemm_naive_signs(&a, &b));
        }

        #[test]
        fn prop_accumulator_parity(k in 1usize..300, seed in any::<u64>()) {
            // Every accumulator has the same parity as k and magnitude ≤ k.
            let a = random_bitmatrix(3, k, seed);
            let b = random_bitmatrix(3, k, seed.wrapping_add(1));
            for acc in xnor_gemm(&a, &b) {
                prop_assert!(acc.unsigned_abs() as usize <= k);
                prop_assert_eq!((acc - k as i32).rem_euclid(2), 0);
            }
        }
    }
}
