//! The verification passes behind [`crate::check_arch`] /
//! [`crate::check_pipeline`]: folding legality, cycle budgets, streaming
//! rate balance, threshold soundness, and device resource fit.
//!
//! Each pass appends [`Diagnostic`]s to a shared list; none panics. They
//! operate on [`StagePlan`]s so the same code runs pre-deployment (from an
//! [`crate::ArchSpec`]) and post-deployment (from a built `Pipeline`).

use crate::diag::{Code, Diagnostic};
use crate::graph::StagePlan;
use crate::CheckConfig;
use bcp_bitpack::{ThresholdChannel, ThresholdUnit};
use bcp_finn::cyclesim::simulate_service;
use bcp_finn::device::Device;
use bcp_finn::pipeline::{Pipeline, Stage};
use bcp_finn::resource::{estimate_specs, StageResourceSpec};
use bcp_finn::Folding;

/// Frames fed to the discrete-event rate simulation — enough for the
/// steady state to dominate the fill transient.
const SIM_FRAMES: usize = 64;

/// A compute stage idling more than 15/16 of the initiation interval is
/// reported as starved (matched-throughput dimensioning, Sec. III-B).
const STARVATION_FACTOR: u64 = 16;

/// Stages cheaper than this are never reported as starved (trivial tails
/// like a 4-row logits layer are expected to be fast).
const STARVATION_FLOOR: u64 = 64;

/// Resource utilization above this fraction (but within budget) is
/// reported as [`Code::NearBudget`].
const NEAR_BUDGET_FRACTION: f64 = 0.9;

/// Validate the checker configuration itself (`BCP060`, `BCP030`).
pub fn check_config(cfg: &CheckConfig, diags: &mut Vec<Diagnostic>) {
    if !(cfg.target_fps.is_finite() && cfg.target_fps > 0.0) {
        diags.push(Diagnostic::error(
            Code::InvalidConfig,
            "config.target_fps",
            format!(
                "target fps must be a positive number, got {}",
                cfg.target_fps
            ),
        ));
    }
    if !(cfg.clock.hz.is_finite() && cfg.clock.hz > 0.0) {
        diags.push(Diagnostic::error(
            Code::InvalidConfig,
            "config.clock.hz",
            format!("clock frequency must be positive, got {}", cfg.clock.hz),
        ));
    }
    if cfg.fifo_depth == 0 {
        diags.push(
            Diagnostic::error(
                Code::FifoDeadlock,
                "config.fifo_depth",
                "zero-depth inter-stage FIFOs deadlock on the first AXI handshake: \
                 no stage can ever release a token",
            )
            .with_help("use a depth of at least 1 (the paper's designs use shallow FIFOs)"),
        );
    }
}

/// Folding legality (`BCP010`–`BCP012`): positive factors, PE dividing the
/// output neurons, SIMD dividing the fan-in.
pub fn check_folding(subject: &str, plan: &[StagePlan], diags: &mut Vec<Diagnostic>) {
    for p in plan.iter().filter(|p| p.is_compute()) {
        let li = p.layer_index.unwrap_or(0);
        if p.pe == 0 || p.simd == 0 {
            let which = if p.pe == 0 { "pe" } else { "simd" };
            diags.push(Diagnostic::error(
                Code::ZeroFolding,
                format!("{subject}.{which}[{li}]"),
                format!("{}: folding factors must be positive ({which} = 0)", p.name),
            ));
            continue;
        }
        if !p.rows.is_multiple_of(p.pe) {
            diags.push(
                Diagnostic::error(
                    Code::PeNotDivisor,
                    format!("{subject}.pe[{li}]"),
                    format!(
                        "{}: PE = {} does not divide the {} output neurons; \
                         the last fold pass would run {} idle lanes",
                        p.name,
                        p.pe,
                        p.rows,
                        p.pe.saturating_sub(p.rows.checked_rem(p.pe).unwrap_or(0)),
                    ),
                )
                .with_help(format!("choose a divisor of {}", p.rows)),
            );
        }
        if !p.cols.is_multiple_of(p.simd) {
            diags.push(
                Diagnostic::error(
                    Code::SimdNotDivisor,
                    format!("{subject}.simd[{li}]"),
                    format!(
                        "{}: SIMD = {} does not divide the fan-in of {}",
                        p.name, p.simd, p.cols
                    ),
                )
                .with_help(format!("choose a divisor of {}", p.cols)),
            );
        }
    }
}

/// Per-layer cycle budgets (`BCP020`, `BCP021`). Returns the per-stage
/// service vector when every stage's cycle count is computable — the input
/// to the rate analysis.
pub fn check_cycles(
    subject: &str,
    plan: &[StagePlan],
    cfg: &CheckConfig,
    diags: &mut Vec<Diagnostic>,
) -> Option<Vec<u64>> {
    let mut service = Vec::with_capacity(plan.len());
    let mut computable = true;
    for (i, p) in plan.iter().enumerate() {
        match p.cycles_per_frame() {
            Some(c) => service.push(c),
            None => {
                computable = false;
                // Zero folding already carries its own BCP010.
                if p.pe != 0 && p.simd != 0 {
                    diags.push(Diagnostic::error(
                        Code::CycleOverflow,
                        format!("{subject}.stage[{i}].{}", p.name),
                        "cycles-per-frame arithmetic overflows u64; \
                         the dimensioning is degenerate",
                    ));
                }
            }
        }
    }
    if !computable {
        return None;
    }
    // A frame's fill latency is the stage sum; it must also fit in u64.
    if service
        .iter()
        .try_fold(0u64, |acc, &c| acc.checked_add(c))
        .is_none()
    {
        diags.push(Diagnostic::error(
            Code::CycleOverflow,
            format!("{subject}.pipeline"),
            "summed pipeline latency overflows u64",
        ));
        return None;
    }

    if cfg.target_fps.is_finite() && cfg.target_fps > 0.0 && cfg.clock.hz > 0.0 {
        let budget = cfg.clock.hz / cfg.target_fps;
        for (p, &c) in plan.iter().zip(&service) {
            if c as f64 > budget {
                let li = p.layer_index.unwrap_or(0);
                diags.push(
                    Diagnostic::error(
                        Code::CycleBudgetExceeded,
                        format!("{subject}.stage.{}", p.name),
                        format!(
                            "{} needs {c} cycles/frame but {} fps at {:.0} MHz \
                             allows only {budget:.0}; the pipeline sustains {:.1} fps",
                            p.name,
                            cfg.target_fps,
                            cfg.clock.hz / 1e6,
                            cfg.clock.hz / c as f64,
                        ),
                    )
                    .with_help(format!(
                        "raise pe[{li}]/simd[{li}] to shrink this stage's fold product"
                    )),
                );
            }
        }
    }
    Some(service)
}

/// Streaming rate balance (`BCP031`, `BCP032`): run the tandem-queue
/// discrete-event model on the service vector and compare against the
/// analytical initiation interval; flag badly starved compute stages.
pub fn check_rates(
    subject: &str,
    plan: &[StagePlan],
    service: &[u64],
    cfg: &CheckConfig,
    diags: &mut Vec<Diagnostic>,
) {
    if cfg.fifo_depth == 0 || service.is_empty() {
        return; // BCP030 already reported by check_config.
    }
    let ii = service.iter().copied().max().unwrap_or(1).max(1);
    let sim = simulate_service(service, SIM_FRAMES, cfg.fifo_depth);
    if sim.measured_ii > ii {
        diags.push(
            Diagnostic::warning(
                Code::BackpressureThroughput,
                format!("{subject}.pipeline"),
                format!(
                    "with depth-{} FIFOs the measured initiation interval is {} cycles \
                     vs the {ii}-cycle analytical bound: back-pressure is throttling",
                    cfg.fifo_depth, sim.measured_ii
                ),
            )
            .with_help("deepen the inter-stage FIFOs"),
        );
    }
    for (p, &c) in plan.iter().zip(service) {
        if p.is_compute() && c > STARVATION_FLOOR && c.saturating_mul(STARVATION_FACTOR) < ii {
            diags.push(
                Diagnostic::info(
                    Code::StageStarved,
                    format!("{subject}.stage.{}", p.name),
                    format!(
                        "{} finishes a frame in {c} cycles but the bottleneck takes {ii}: \
                         it idles more than {}/{} of steady state",
                        p.name,
                        STARVATION_FACTOR.saturating_sub(1),
                        STARVATION_FACTOR,
                    ),
                )
                .with_help("fold this stage down (smaller PE/SIMD) to reclaim resources"),
            );
        }
    }
}

/// Device resource fit (`BCP050`–`BCP053`): cost the plan with the shared
/// estimator and compare against the device budget. Over-budget findings
/// are errors on the design's paper target device and warnings elsewhere —
/// CNV not fitting the Z7010 is expected, CNV not fitting the Z7020 is a
/// broken design.
pub fn check_resources(
    subject: &str,
    plan: &[StagePlan],
    dsp_offload: bool,
    device: &Device,
    target: &Device,
    diags: &mut Vec<Diagnostic>,
) {
    if plan
        .iter()
        .any(|p| p.is_compute() && (p.pe == 0 || p.simd == 0))
    {
        return; // BCP010 already reported; no folding to cost.
    }
    let specs: Vec<StageResourceSpec> = plan
        .iter()
        .map(|p| StageResourceSpec {
            folding: if p.is_compute() {
                Folding::new(p.pe, p.simd)
            } else {
                Folding::sequential()
            },
            weight_bits: p.weight_bits(),
            is_pool: !p.is_compute(),
        })
        .collect();
    let usage = estimate_specs(&specs, dsp_offload);
    let on_target = device.name == target.name;
    let axes = [
        (Code::LutOverBudget, "luts", usage.luts, device.luts),
        (Code::BramOverBudget, "bram18", usage.bram18, device.bram18),
        (Code::DspOverBudget, "dsps", usage.dsps, device.dsps),
    ];
    for (code, what, used, avail) in axes {
        let location = format!("{subject}.resources.{what}");
        if used > avail {
            let message = format!(
                "estimated {used} {what} exceeds the {} budget of {avail}",
                device.name
            );
            let d = if on_target {
                Diagnostic::error(code, location, message)
            } else {
                Diagnostic::warning(code, location, message).with_help(format!(
                    "expected: {subject} targets the {}, not the {}",
                    target.name, device.name
                ))
            };
            diags.push(d);
        } else if used as f64 > avail as f64 * NEAR_BUDGET_FRACTION {
            diags.push(Diagnostic::info(
                Code::NearBudget,
                location,
                format!(
                    "estimated {used} {what} is above {:.0} % of the {} budget ({avail})",
                    NEAR_BUDGET_FRACTION * 100.0,
                    device.name
                ),
            ));
        }
    }
}

/// Threshold soundness (`BCP040`–`BCP043`) over a built pipeline: every
/// folded integer threshold must lie inside the accumulator range its MVTU
/// can actually produce, hidden stages must carry a bank, and the logits
/// stage must not.
///
/// Accumulator ranges follow the MVTU arithmetic in `bcp-finn`: a binary
/// MVTU with fan-in `C` produces values in `[−C, C]`; the fixed-input
/// first layer scales by the 8-bit pixel range to `[−255·C, 255·C]`.
/// `ThresholdChannel::from_batchnorm` rounds outward (`⌈τ⌉`/`⌊τ⌋`), so one
/// value past each end is still representable; anything further can never
/// have come from sound batch-norm folding.
pub fn check_thresholds(subject: &str, pipeline: &Pipeline, diags: &mut Vec<Diagnostic>) {
    for (i, stage) in pipeline.stages().iter().enumerate() {
        let loc = format!("{subject}.stage[{i}].{}", stage.name());
        match stage {
            Stage::ConvFixed { mvtu, .. } => {
                let amax = (mvtu.cols() as i64).saturating_mul(255);
                check_bank(&loc, mvtu.thresholds(), mvtu.rows(), amax, diags);
            }
            Stage::ConvBinary { mvtu, .. } | Stage::DenseBinary { mvtu, .. } => {
                match mvtu.thresholds() {
                    None => diags.push(Diagnostic::error(
                        Code::MissingThresholds,
                        loc,
                        format!(
                            "hidden stage {} has no threshold bank; downstream stages \
                             expect binary activations",
                            stage.name()
                        ),
                    )),
                    Some(t) => check_bank(&loc, t, mvtu.rows(), mvtu.cols() as i64, diags),
                }
            }
            Stage::DenseLogits { mvtu, .. } => {
                if mvtu.thresholds().is_some() {
                    diags.push(Diagnostic::warning(
                        Code::ExtraThresholds,
                        loc,
                        "logits stage carries a threshold bank the hardware never evaluates",
                    ));
                }
            }
            Stage::PoolOr { .. } => {}
        }
    }
}

/// Check one threshold bank against its MVTU's accumulator range
/// `[−amax, amax]`.
fn check_bank(
    loc: &str,
    bank: &ThresholdUnit,
    rows: usize,
    amax: i64,
    diags: &mut Vec<Diagnostic>,
) {
    if bank.len() != rows {
        diags.push(Diagnostic::error(
            Code::MissingThresholds,
            loc.to_owned(),
            format!(
                "threshold bank has {} channels but the MVTU has {rows} output neurons",
                bank.len()
            ),
        ));
        return;
    }
    let hi = amax.saturating_add(1);
    let lo = amax.saturating_neg().saturating_sub(1);
    for (c, ch) in bank.channels().iter().enumerate() {
        let cloc = format!("{loc}.thresholds[{c}]");
        match *ch {
            ThresholdChannel::Const(_) => {} // γ = 0 folds to a constant legitimately
            ThresholdChannel::Ge(tau) => {
                if tau > hi || tau < lo.saturating_add(1) {
                    diags.push(Diagnostic::error(
                        Code::ThresholdOutOfRange,
                        cloc,
                        format!(
                            "threshold ≥ {tau} lies outside the accumulator \
                             range [-{amax}, {amax}]"
                        ),
                    ));
                } else if tau == hi || tau == amax.saturating_neg() {
                    let always = if tau == hi { "never" } else { "always" };
                    diags.push(Diagnostic::warning(
                        Code::DeadThresholdChannel,
                        cloc,
                        format!("threshold ≥ {tau} {always} fires: the channel is constant"),
                    ));
                }
            }
            ThresholdChannel::Le(tau) => {
                if tau < lo || tau > hi.saturating_sub(1) {
                    diags.push(Diagnostic::error(
                        Code::ThresholdOutOfRange,
                        cloc,
                        format!(
                            "threshold ≤ {tau} lies outside the accumulator \
                             range [-{amax}, {amax}]"
                        ),
                    ));
                } else if tau == lo || tau == amax {
                    let always = if tau == lo { "never" } else { "always" };
                    diags.push(Diagnostic::warning(
                        Code::DeadThresholdChannel,
                        cloc,
                        format!("threshold ≤ {tau} {always} fires: the channel is constant"),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::graph::StageKind;

    fn stage(
        name: &str,
        rows: usize,
        cols: usize,
        vectors: usize,
        pe: usize,
        simd: usize,
        li: usize,
    ) -> StagePlan {
        StagePlan {
            name: name.into(),
            kind: StageKind::ConvBinary,
            rows,
            cols,
            vectors,
            pe,
            simd,
            layer_index: Some(li),
        }
    }

    #[test]
    fn folding_legality_catches_non_divisors_and_zero() {
        let plan = vec![
            stage("conv1", 64, 27, 900, 16, 3, 0),
            stage("conv2", 64, 576, 784, 33, 30, 1),
            stage("conv3", 64, 576, 784, 0, 32, 2),
        ];
        let mut diags = Vec::new();
        check_folding("x", &plan, &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::PeNotDivisor && d.location == "x.pe[1]"));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::SimdNotDivisor && d.location == "x.simd[1]"));
        assert!(diags
            .iter()
            .any(|d| d.code == Code::ZeroFolding && d.location == "x.pe[2]"));
        // The clean stage produced nothing.
        assert!(!diags.iter().any(|d| d.location.ends_with("[0]")));
    }

    #[test]
    fn cycle_budget_flags_slow_stages() {
        let cfg = CheckConfig::default(); // 30 fps at 100 MHz → 3.33 M cycles
        let plan = vec![stage("fc1", 1024, 4096, 1, 1, 1, 0)]; // 4.2 M cycles
        let mut diags = Vec::new();
        let service = check_cycles("x", &plan, &cfg, &mut diags).unwrap();
        assert_eq!(service, vec![1024 * 4096]);
        assert!(diags.iter().any(|d| d.code == Code::CycleBudgetExceeded));

        // The same stage folded 64× fits easily.
        let plan = vec![stage("fc1", 1024, 4096, 1, 64, 64, 0)];
        let mut diags = Vec::new();
        check_cycles("x", &plan, &cfg, &mut diags).unwrap();
        assert!(diags.is_empty());
    }

    #[test]
    fn cycle_overflow_is_reported_not_wrapped() {
        let plan = vec![stage("huge", usize::MAX, usize::MAX, usize::MAX, 1, 1, 0)];
        let mut diags = Vec::new();
        assert!(check_cycles("x", &plan, &CheckConfig::default(), &mut diags).is_none());
        assert!(diags.iter().any(|d| d.code == Code::CycleOverflow));
    }

    #[test]
    fn starved_stage_reported_as_info() {
        let plan = vec![
            stage("conv1", 64, 576, 784, 1, 1, 0), // ~28.9 M cycles
            stage("fc1", 512, 256, 1, 64, 64, 1),  // 32 cycles — but under floor
            stage("fc2", 512, 256, 1, 2, 2, 2),    // 32768 cycles — starved
        ];
        let cfg = CheckConfig {
            target_fps: 1.0,
            ..CheckConfig::default()
        };
        let mut diags = Vec::new();
        let service = check_cycles("x", &plan, &cfg, &mut diags).unwrap();
        check_rates("x", &plan, &service, &cfg, &mut diags);
        let starved: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::StageStarved)
            .collect();
        assert_eq!(starved.len(), 1);
        assert!(starved[0].location.contains("fc2"));
        assert_eq!(starved[0].severity, crate::Severity::Info);
    }

    #[test]
    fn zero_fifo_depth_is_a_deadlock_error() {
        let cfg = CheckConfig {
            fifo_depth: 0,
            ..CheckConfig::default()
        };
        let mut diags = Vec::new();
        check_config(&cfg, &mut diags);
        assert!(diags.iter().any(|d| d.code == Code::FifoDeadlock));
    }

    #[test]
    fn bad_fps_and_clock_are_config_errors() {
        let cfg = CheckConfig {
            target_fps: 0.0,
            clock: bcp_finn::perf::ClockModel { hz: f64::NAN },
            ..CheckConfig::default()
        };
        let mut diags = Vec::new();
        check_config(&cfg, &mut diags);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == Code::InvalidConfig)
                .count(),
            2
        );
    }

    #[test]
    fn resource_fit_severity_depends_on_target_device() {
        use bcp_finn::device::{Z7010, Z7020};
        // A plan far too big for the Z7010 but fine on the Z7020.
        let plan = vec![
            stage("conv1", 256, 2304, 900, 64, 36, 0),
            stage("fc1", 512, 4096, 1, 8, 64, 1),
        ];
        // Z7010 as *target*: over-budget is an error.
        let mut diags = Vec::new();
        check_resources("x", &plan, false, &Z7010, &Z7010, &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::LutOverBudget && d.severity == crate::Severity::Error));
        // Z7010 as a *foreign* device (target Z7020): degrades to a warning.
        let mut diags = Vec::new();
        check_resources("x", &plan, false, &Z7010, &Z7020, &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::LutOverBudget && d.severity == crate::Severity::Warning));
        assert!(!diags.iter().any(|d| d.severity == crate::Severity::Error));
    }

    #[test]
    fn threshold_bank_range_analysis() {
        use bcp_bitpack::{ThresholdChannel as T, ThresholdUnit};
        let amax = 16i64; // binary MVTU, 16 inputs
        let bank = ThresholdUnit::new(vec![
            T::Ge(0),       // fine
            T::Ge(17),      // == amax+1: never fires → dead
            T::Ge(100),     // far outside → out of range
            T::Le(-16),     // fine (fires only at −16)
            T::Le(16),      // always fires → dead
            T::Le(-200),    // out of range
            T::Const(true), // γ = 0: fine
        ]);
        let mut diags = Vec::new();
        check_bank("p.stage[1].conv2", &bank, 7, amax, &mut diags);
        let count = |code| diags.iter().filter(|d| d.code == code).count();
        assert_eq!(count(Code::ThresholdOutOfRange), 2);
        assert_eq!(count(Code::DeadThresholdChannel), 2);
        assert!(diags
            .iter()
            .any(|d| d.location == "p.stage[1].conv2.thresholds[2]"));

        // Channel-count mismatch refuses the bank outright.
        let mut diags = Vec::new();
        check_bank("p.stage[1].conv2", &bank, 9, amax, &mut diags);
        assert!(diags.iter().any(|d| d.code == Code::MissingThresholds));
    }

    #[test]
    fn batchnorm_derived_thresholds_cross_check() {
        use bcp_bitpack::ThresholdChannel as T;
        // Sound statistics on a 64-input layer stay in range.
        let ch = T::from_batchnorm(1.0, 0.1, 3.0, 1.0, 1e-5);
        let mut diags = Vec::new();
        let bank = ThresholdUnit::new(vec![ch]);
        check_bank("p.s", &bank, 1, 64, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        // A wildly shifted batch-norm (β = 1000) folds to a threshold no
        // 64-input accumulator can reach.
        let ch = T::from_batchnorm(1.0, 1000.0, 0.0, 1.0, 1e-5);
        let bank = ThresholdUnit::new(vec![ch]);
        let mut diags = Vec::new();
        check_bank("p.s", &bank, 1, 64, &mut diags);
        assert!(diags.iter().any(|d| d.code == Code::ThresholdOutOfRange));
    }
}
