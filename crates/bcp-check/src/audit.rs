//! The hot-path audit (`bcp audit`): reachability analysis over the
//! workspace call graph proving panic-freedom and allocation discipline
//! on the serving path.
//!
//! Functions annotated `// bcp:hot-path` are reachability roots — the
//! engine's dispatch and submit paths, the worker compute loop, oneshot
//! slot delivery, the XNOR-popcount kernels, and the trace-ring push.
//! Every function reachable from a root through the
//! [`callgraph`](crate::callgraph) over-approximation is scanned for:
//!
//! | code   | finding                                                |
//! |--------|--------------------------------------------------------|
//! | BCP200 | panic sites (`unwrap`, `expect`, `panic!`, asserts)     |
//! | BCP201 | unchecked indexing / slicing                            |
//! | BCP202 | division or modulo by a non-literal, non-const divisor  |
//! | BCP210 | heap allocation (`Vec::new`, `clone`, `collect`, …)     |
//! | BCP220 | blocking calls (locks, condvars, channel park points)   |
//! | BCP230 | narrowing `as` casts to a smaller integer type          |
//!
//! Every diagnostic carries a call-chain witness ("reachable from root
//! `Engine::submit` via `Shared::expire` → `Slot::complete`"), so a
//! finding is an argument, not a grep hit.
//!
//! Deliberate exceptions are written in the source, next to the code
//! they justify:
//!
//! - `// audit: allow(kind, …): reason` — suppress specific findings on
//!   the next (or same) code line. The reason is mandatory.
//! - `// audit: external — reason` — do not traverse calls on this
//!   line (e.g. `dyn Replica` compute, which is audited at its own
//!   kernel roots).
//! - `// audit: cold — reason` — mark a function as off the hot path
//!   (recovery, teardown); traversal stops at its boundary.
//!
//! A malformed directive (unknown kind, missing reason) or a workspace
//! with no roots at all is a `BCP240` configuration error: the audit
//! refuses to vacuously pass.
//!
//! `Arc::clone(&x)` / `Rc::clone(&x)` are deliberately *not* allocation
//! findings: the qualified form is the idiom this workspace uses to mark
//! a refcount bump, as opposed to `.clone()` which may deep-copy.

use crate::callgraph::{self, Graph, ParsedFile};
use crate::diag::{Code, Diagnostic, Report};
use crate::lint::collect_rs_files;
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// Panic-site patterns (BCP200). Ident-boundary matched, so
/// `debug_assert!` (compiled out of release hot paths) does not match
/// `assert!`.
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

/// Heap-allocation patterns (BCP210).
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "vec![",
    "with_capacity(",
    "Box::new(",
    "Arc::new(",
    "Rc::new(",
    "String::new(",
    "String::from(",
    "format!(",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    ".clone()",
    ".push(",
    ".push_str(",
    ".extend(",
    ".collect()",
    ".collect::<",
    ".insert(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
];

/// Blocking-call patterns (BCP220): locks, condvar waits, channel park
/// points, thread joins, I/O.
const BLOCK_PATTERNS: &[&str] = &[
    ".lock()",
    ".read()",
    ".write()",
    ".wait(",
    ".wait_timeout(",
    ".wait_while(",
    "sleep(",
    ".join()",
    ".recv()",
    ".recv_timeout(",
    ".recv_deadline(",
    ".send(",
    "println!(",
    "print!(",
    "eprintln!(",
    "eprint!(",
    "write!(",
    "writeln!(",
    "File::open(",
    "File::create(",
    "read_to_string(",
];

/// Narrowing `as` cast targets (BCP230). Widening casts and
/// pointer-width casts to `usize`/`u64`/`i64`/floats are not findings.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Finding kinds, as spelled inside `// audit: allow(…)`.
const KINDS: &[&str] = &["panic", "index", "div", "alloc", "block", "cast"];

/// Audit the workspace rooted at `root` (the directory containing the
/// top-level `Cargo.toml`). Never panics: I/O problems become `BCP240`
/// diagnostics.
pub fn audit_workspace(root: &Path) -> Report {
    let mut report = Report::new("hot-path audit", "-", "-");
    let mut paths = Vec::new();
    let mut dirs = vec![root.join("src")];
    match std::fs::read_dir(root.join("crates")) {
        Ok(entries) => {
            for e in entries.flatten() {
                dirs.push(e.path().join("src"));
            }
        }
        Err(e) => {
            report.push(Diagnostic::error(
                Code::AuditConfigError,
                root.join("crates").display().to_string(),
                format!("cannot enumerate workspace crates: {e}"),
            ));
        }
    }
    for dir in dirs {
        collect_rs_files(&dir, &mut paths);
    }
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(path) {
            Ok(src) => sources.push((rel, src)),
            Err(e) => report.push(Diagnostic::error(
                Code::AuditConfigError,
                rel,
                format!("cannot read source file: {e}"),
            )),
        }
    }
    audit_into(sources, &mut report);
    report
}

/// Audit an in-memory set of `(relative_path, source)` files — the
/// mutation-testing entry point.
pub fn audit_sources(files: &[(&str, &str)]) -> Report {
    let mut report = Report::new("hot-path audit", "-", "-");
    audit_into(
        files
            .iter()
            .map(|(rel, src)| (rel.to_string(), src.to_string()))
            .collect(),
        &mut report,
    );
    report
}

/// Per-file allow-list: line index → kinds suppressed on that line.
type Allows = HashMap<usize, HashSet<String>>;

fn audit_into(sources: Vec<(String, String)>, report: &mut Report) {
    let graph = callgraph::build(sources);
    let allows: Vec<Allows> = graph
        .files
        .iter()
        .map(|f| validate_directives(f, report))
        .collect();

    if !graph.fns.iter().any(|d| d.is_root) {
        report.push(
            Diagnostic::error(
                Code::AuditConfigError,
                "workspace",
                "no `// bcp:hot-path` roots found: the audit would pass vacuously",
            )
            .with_help(
                "annotate the serving entry points (dispatch/submit, worker loops, kernels) \
                 with `// bcp:hot-path`",
            ),
        );
        return;
    }

    let chains = callgraph::reachable(&graph);
    let mut order: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| chains.get(i).is_some_and(Option::is_some))
        .collect();
    order.sort_by_key(|&i| {
        let d = &graph.fns[i];
        (graph.files.get(d.file).map(|f| f.rel.clone()), d.sig_line)
    });
    let mut emitted = HashSet::new();
    for i in order {
        let Some(Some(chain)) = chains.get(i) else {
            continue;
        };
        audit_fn(&graph, i, chain, &allows, &mut emitted, report);
    }
}

/// Validate every `audit:` directive in one file, building its
/// allow-list. Malformed directives become `BCP240`.
fn validate_directives(f: &ParsedFile, report: &mut Report) -> Allows {
    let mut allows: Allows = HashMap::new();
    for (li, line) in f.lines.iter().enumerate() {
        let c = line.comment.trim_start();
        let Some(rest) = c.strip_prefix("audit:") else {
            continue;
        };
        let rest = rest.trim_start();
        let loc = format!("{}:{}", f.rel, li.saturating_add(1));
        if let Some(after) = rest.strip_prefix("allow(") {
            let Some(close) = after.find(')') else {
                report.push(Diagnostic::error(
                    Code::AuditConfigError,
                    loc,
                    "unclosed `audit: allow(…)` directive",
                ));
                continue;
            };
            let kinds: Vec<&str> = after
                .get(..close)
                .unwrap_or("")
                .split(',')
                .map(str::trim)
                .collect();
            let bad: Vec<&str> = kinds
                .iter()
                .copied()
                .filter(|k| !KINDS.contains(k))
                .collect();
            if !bad.is_empty() {
                report.push(
                    Diagnostic::error(
                        Code::AuditConfigError,
                        loc,
                        format!("unknown audit allow kind(s): {}", bad.join(", ")),
                    )
                    .with_help(format!("known kinds: {}", KINDS.join(", "))),
                );
                continue;
            }
            let reason = after.get(close.saturating_add(1)..).unwrap_or("");
            if !has_reason(reason) {
                report.push(
                    Diagnostic::error(
                        Code::AuditConfigError,
                        loc,
                        "audit allow without a justification",
                    )
                    .with_help("write `// audit: allow(kind): <why this site cannot misbehave>`"),
                );
                continue;
            }
            for target in directive_targets(f, li) {
                let entry = allows.entry(target).or_default();
                for k in &kinds {
                    entry.insert((*k).to_string());
                }
            }
        } else if let Some(after) = rest.strip_prefix("external") {
            if !has_reason(after) {
                report.push(
                    Diagnostic::error(
                        Code::AuditConfigError,
                        loc,
                        "`audit: external` without a justification",
                    )
                    .with_help(
                        "write `// audit: external — <why the callee is audited elsewhere>`",
                    ),
                );
            }
        } else if let Some(after) = rest.strip_prefix("cold") {
            if !has_reason(after) {
                report.push(
                    Diagnostic::error(
                        Code::AuditConfigError,
                        loc,
                        "`audit: cold` without a justification",
                    )
                    .with_help("write `// audit: cold — <why this function is off the hot path>`"),
                );
            }
        } else {
            report.push(
                Diagnostic::error(
                    Code::AuditConfigError,
                    loc,
                    format!("unknown audit directive: `audit: {rest}`"),
                )
                .with_help("known directives: allow(kind, …): …, external — …, cold — …"),
            );
        }
    }
    allows
}

/// A directive's justification: non-empty after stripping separators.
fn has_reason(s: &str) -> bool {
    !s.trim_start_matches([' ', '\t', ':', '-', '—', '–'])
        .trim()
        .is_empty()
}

/// Code line(s) a directive on line `li` applies to: its own line when
/// it carries code, else the next code line within three lines.
fn directive_targets(f: &ParsedFile, li: usize) -> Vec<usize> {
    if f.lines.get(li).is_some_and(|l| !l.code.trim().is_empty()) {
        return vec![li];
    }
    for k in li.saturating_add(1)..f.lines.len().min(li.saturating_add(4)) {
        if f.lines.get(k).is_some_and(|l| !l.code.trim().is_empty()) {
            return vec![k];
        }
    }
    Vec::new()
}

/// Scan one reachable function body for all finding kinds.
fn audit_fn(
    g: &Graph,
    idx: usize,
    chain: &[usize],
    allows: &[Allows],
    emitted: &mut HashSet<(Code, String)>,
    report: &mut Report,
) {
    let d = &g.fns[idx];
    let Some((s, e)) = d.body else { return };
    let Some(f) = g.files.get(d.file) else { return };
    let witness = witness(g, chain);
    for li in s..=e.min(f.test_start.saturating_sub(1)) {
        let Some(line) = f.lines.get(li) else { break };
        let code = line.code.as_str();
        if code.trim().starts_with("#[") {
            continue;
        }
        let allowed = allows.get(d.file).and_then(|a| a.get(&li));
        let is_allowed = |kind: &str| allowed.is_some_and(|set| set.contains(kind));
        let loc = format!("{}:{}", f.rel, li.saturating_add(1));

        for pat in PANIC_PATTERNS {
            if find_bounded(code, pat) && !is_allowed("panic") {
                emit(
                    report,
                    emitted,
                    Code::HotPathPanic,
                    &loc,
                    format!(
                        "panic site `{}` on the audited hot path",
                        pat.trim_end_matches('(')
                    ),
                    &witness,
                    "panic",
                );
                break;
            }
        }
        if has_indexing(code) && !is_allowed("index") {
            emit(
                report,
                emitted,
                Code::HotPathIndexing,
                &loc,
                "unchecked `[…]` indexing on the audited hot path".to_string(),
                &witness,
                "index",
            );
        }
        if let Some(divisor) = unchecked_division(code) {
            if !is_allowed("div") {
                emit(
                    report,
                    emitted,
                    Code::HotPathDivision,
                    &loc,
                    format!("division/modulo by non-constant `{divisor}` on the audited hot path"),
                    &witness,
                    "div",
                );
            }
        }
        for pat in ALLOC_PATTERNS {
            if find_bounded(code, pat) && !is_allowed("alloc") {
                emit(
                    report,
                    emitted,
                    Code::HotPathAllocation,
                    &loc,
                    format!(
                        "heap allocation `{}` on the audited hot path",
                        pat.trim_end_matches(['(', '<', ':'])
                    ),
                    &witness,
                    "alloc",
                );
                break;
            }
        }
        for pat in BLOCK_PATTERNS {
            if find_bounded(code, pat) && !is_allowed("block") {
                emit(
                    report,
                    emitted,
                    Code::HotPathBlocking,
                    &loc,
                    format!(
                        "blocking call `{}` on the audited hot path",
                        pat.trim_end_matches('(')
                    ),
                    &witness,
                    "block",
                );
                break;
            }
        }
        if let Some(ty) = narrowing_cast(code) {
            if !is_allowed("cast") {
                emit(
                    report,
                    emitted,
                    Code::HotPathNarrowingCast,
                    &loc,
                    format!("narrowing `as {ty}` cast on the audited hot path"),
                    &witness,
                    "cast",
                );
            }
        }
    }
}

/// The call-chain witness string for a reachable function.
fn witness(g: &Graph, chain: &[usize]) -> String {
    let quals: Vec<String> = chain
        .iter()
        .filter_map(|&i| g.fns.get(i).map(callgraph::FnDef::qual))
        .collect();
    match quals.split_first() {
        Some((root, rest)) if !rest.is_empty() => {
            format!("reachable from root `{root}` via `{}`", rest.join("` → `"))
        }
        Some((root, _)) => format!("in hot-path root `{root}`"),
        None => String::new(),
    }
}

fn emit(
    report: &mut Report,
    emitted: &mut HashSet<(Code, String)>,
    code: Code,
    loc: &str,
    message: String,
    witness: &str,
    kind: &str,
) {
    if !emitted.insert((code, loc.to_string())) {
        return;
    }
    report.push(Diagnostic::error(code, loc, message).with_help(format!(
        "{witness}; justify with `// audit: allow({kind}): <reason>` or restructure"
    )));
}

/// Substring match requiring an identifier boundary before patterns that
/// start with an identifier character (so `debug_assert!(` does not
/// match `assert!(`, and `MyVec::new(` does not match `Vec::new(`).
fn find_bounded(code: &str, pat: &str) -> bool {
    let needs_boundary = pat
        .as_bytes()
        .first()
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
    let mut from = 0;
    while let Some(p) = code.get(from..).and_then(|s| s.find(pat)) {
        let at = from.saturating_add(p);
        if !needs_boundary {
            return true;
        }
        let prev = code.get(..at).and_then(|s| s.bytes().last());
        if !prev.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.') {
            return true;
        }
        from = at.saturating_add(1);
    }
    false
}

/// Unchecked `[…]` indexing: a `[` directly following an expression
/// (identifier, `)`, or `]`), excluding type positions and attributes.
fn has_indexing(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let before = code.get(..i).unwrap_or("").trim_end();
        let Some(&prev) = before.as_bytes().last() else {
            continue;
        };
        if !(is_expr_end(prev)) {
            continue;
        }
        // `mut xs[…]` patterns and `dyn Trait[…]` cannot happen; what can
        // is a keyword directly before (`in arr[..]` never indexes), so
        // check the trailing identifier is not a keyword.
        let mut ws = before.len();
        let bb = before.as_bytes();
        while ws > 0
            && (bb[ws.saturating_sub(1)].is_ascii_alphanumeric()
                || bb[ws.saturating_sub(1)] == b'_')
        {
            ws = ws.saturating_sub(1);
        }
        let word = before.get(ws..).unwrap_or("");
        if matches!(
            word,
            "mut"
                | "ref"
                | "in"
                | "as"
                | "return"
                | "else"
                | "match"
                | "if"
                | "where"
                | "move"
                | "dyn"
                | "impl"
                | "box"
                | "let"
                | "const"
                | "static"
                | "type"
        ) {
            continue;
        }
        return true;
    }
    false
}

fn is_expr_end(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b')' || b == b']'
}

/// Division or modulo whose divisor is not a literal or a
/// `SCREAMING_CASE` constant. Returns the divisor token.
fn unchecked_division(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b != b'/' && b != b'%' {
            i = i.saturating_add(1);
            continue;
        }
        // Skip `/=`-style compound-assign markers to the divisor itself.
        let mut j = i.saturating_add(1);
        if bytes.get(j) == Some(&b'=') {
            j = j.saturating_add(1);
        }
        while bytes.get(j).is_some_and(u8::is_ascii_whitespace) {
            j = j.saturating_add(1);
        }
        let Some(&first) = bytes.get(j) else { break };
        if first.is_ascii_digit() {
            // Literal divisor (`x / 2`, `x % 256`): cannot be zero.
            i = j;
            continue;
        }
        if first == b'(' || is_ident_byte(first) {
            let st = j;
            let mut k = j;
            while k < bytes.len() && is_ident_byte(bytes[k]) {
                k = k.saturating_add(1);
            }
            let tok = code.get(st..k).unwrap_or("(");
            let screaming = !tok.is_empty()
                && tok
                    .bytes()
                    .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
                && tok.bytes().any(|b| b.is_ascii_uppercase());
            if !screaming {
                return Some(if tok.is_empty() {
                    "(…)".to_string()
                } else {
                    tok.to_string()
                });
            }
        }
        i = j.saturating_add(1);
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A narrowing `as` cast target on this line, if any.
fn narrowing_cast(code: &str) -> Option<&'static str> {
    for ty in NARROW_TARGETS {
        let pat = format!(" as {ty}");
        let mut from = 0;
        while let Some(p) = code.get(from..).and_then(|s| s.find(&pat)) {
            let end = from.saturating_add(p).saturating_add(pat.len());
            let next = code.as_bytes().get(end);
            if !next.is_some_and(|b| is_ident_byte(*b)) {
                return Some(ty);
            }
            from = end;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_one(src: &str) -> Report {
        audit_sources(&[("crates/x/src/lib.rs", src)])
    }

    #[test]
    fn clean_hot_path_passes() {
        let r = audit_one(
            "// bcp:hot-path\n\
             fn root(a: &[u64], b: &[u64]) -> u32 {\n\
                 let mut agree = 0u32;\n\
                 for (x, y) in a.iter().zip(b) {\n\
                     agree = agree.saturating_add((!(x ^ y)).count_ones());\n\
                 }\n\
                 agree\n\
             }\n",
        );
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn missing_roots_is_a_config_error_not_a_pass() {
        let r = audit_one("fn quiet() {}\n");
        assert!(r.has_code(Code::AuditConfigError));
    }

    #[test]
    fn debug_assert_is_not_a_panic_site() {
        let r = audit_one("// bcp:hot-path\nfn root(x: usize) {\n    debug_assert!(x < 4);\n}\n");
        assert!(!r.has_code(Code::HotPathPanic), "{}", r.render_text());
    }

    #[test]
    fn literal_divisors_and_screaming_constants_are_fine() {
        let r = audit_one(
            "const WORD_BITS: usize = 64;\n// bcp:hot-path\n\
             fn root(bits: usize) -> (usize, usize) {\n    (bits / 64, bits % WORD_BITS)\n}\n",
        );
        assert!(!r.has_code(Code::HotPathDivision), "{}", r.render_text());
    }

    #[test]
    fn allow_with_reason_suppresses_and_without_reason_is_config_error() {
        let with = audit_one(
            "// bcp:hot-path\nfn root(xs: &[u64], i: usize) -> u64 {\n\
             // audit: allow(index): i is masked to capacity above\n    xs[i]\n}\n",
        );
        assert!(
            !with.has_code(Code::HotPathIndexing),
            "{}",
            with.render_text()
        );
        let without = audit_one(
            "// bcp:hot-path\nfn root(xs: &[u64], i: usize) -> u64 {\n\
             // audit: allow(index)\n    xs[i]\n}\n",
        );
        assert!(without.has_code(Code::AuditConfigError));
    }

    #[test]
    fn unknown_allow_kind_is_a_config_error() {
        let r = audit_one(
            "// bcp:hot-path\nfn root() {\n// audit: allow(everything): please\n    let _ = 1;\n}\n",
        );
        assert!(r.has_code(Code::AuditConfigError));
    }

    #[test]
    fn witness_names_the_root_and_the_chain() {
        let r = audit_one(
            "// bcp:hot-path\nfn hot_entry() { seal() }\n\
             fn seal() { ticket() }\n\
             fn ticket() { let v: Vec<u8> = Vec::new(); drop(v); }\n",
        );
        assert!(r.has_code(Code::HotPathAllocation));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::HotPathAllocation)
            .unwrap();
        let help = d.help.as_deref().unwrap_or("");
        assert!(
            help.contains("reachable from root `hot_entry` via `seal` → `ticket`"),
            "witness missing: {help}"
        );
    }

    #[test]
    fn arc_clone_is_not_an_allocation_but_dot_clone_is() {
        let ok = audit_one(
            "// bcp:hot-path\nfn root(x: &std::sync::Arc<u8>) {\n    let _y = std::sync::Arc::clone(x);\n}\n",
        );
        assert!(
            !ok.has_code(Code::HotPathAllocation),
            "{}",
            ok.render_text()
        );
        let bad =
            audit_one("// bcp:hot-path\nfn root(x: &Vec<u8>) {\n    let _y = x.clone();\n}\n");
        assert!(bad.has_code(Code::HotPathAllocation));
    }

    #[test]
    fn test_modules_are_outside_the_audit() {
        let r = audit_one(
            "// bcp:hot-path\nfn root() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Vec::<u8>::new().push(1); }\n}\n",
        );
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn every_kind_fires_with_its_own_code() {
        let cases: &[(&str, Code)] = &[
            ("let _x = opt.unwrap();", Code::HotPathPanic),
            ("let _x = xs[i];", Code::HotPathIndexing),
            ("let _x = a / b;", Code::HotPathDivision),
            ("let _v: Vec<u8> = Vec::new();", Code::HotPathAllocation),
            ("let _g = m.lock();", Code::HotPathBlocking),
            ("let _c = n as u8;", Code::HotPathNarrowingCast),
        ];
        for (line, code) in cases {
            let src = format!(
                "// bcp:hot-path\n#[allow(unused)]\nfn root(opt: Option<u8>, xs: &[u8], i: usize, a: u64, b: u64, m: &std::sync::Mutex<u8>, n: u64) {{\n    {line}\n}}\n"
            );
            let r = audit_one(&src);
            assert!(
                r.has_code(*code),
                "{line} should fire {code}: {}",
                r.render_text()
            );
        }
    }
}
