//! Source-level call graph over the workspace, feeding the hot-path
//! audit ([`audit`](crate::audit)).
//!
//! The builder extracts every function and method from the workspace
//! sources (module-aware: `impl`/`trait` blocks qualify method names),
//! extracts call tokens from each body, and resolves them to workspace
//! definitions. Resolution is deliberately an *over-approximation*:
//!
//! - `Type::name(…)` and `Self::name(…)` resolve exactly through the
//!   impl-qualified name table.
//! - `self.name(…)` resolves against the enclosing impl type first.
//! - `recv.name(…)` with an unknown receiver resolves to **every**
//!   workspace method of that name — sound for reachability, at the cost
//!   of extra edges. Names that collide with ubiquitous `std`
//!   methods (`push`, `lock`, `get`, …) are excluded via
//!   [`STD_METHOD_NAMES`]; the genuinely hot implementations behind
//!   those names are annotated as `// bcp:hot-path` roots directly, so
//!   excluding the edge never hides them from the audit.
//! - `name(…)` resolves to free functions, same-file first.
//!
//! Unresolved calls are `std`/dependency calls and fall outside the
//! graph; the *patterns* in the audit (panics, allocation, blocking)
//! catch their effects at the call site instead.

use crate::srcmodel::{code_lines, first_test_line, SrcLine};
use std::collections::{HashMap, HashSet, VecDeque};

/// Method names whose unknown-receiver calls are *not* resolved, because
/// they are overwhelmingly `std` collection/sync calls and would smear
/// reachability across unrelated workspace types. Hot implementations
/// that share one of these names must carry their own `// bcp:hot-path`
/// root annotation (and in this workspace, do).
pub(crate) const STD_METHOD_NAMES: &[&str] = &[
    "push",
    "pop",
    "get",
    "get_mut",
    "set",
    "len",
    "is_empty",
    "insert",
    "remove",
    "clear",
    "drain",
    "iter",
    "iter_mut",
    "clone",
    "lock",
    "read",
    "write",
    "take",
    "replace",
    "send",
    "recv",
    "try_send",
    "try_recv",
    "recv_timeout",
    "load",
    "store",
    "next",
    "join",
    "contains",
    "map",
    "filter",
    "find",
    "position",
    "first",
    "last",
    "min",
    "max",
    "sum",
    "count",
    "record",
    "extend",
    "flush",
    "name",
    "new",
    "default",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "zip",
    "wait",
    "wait_timeout",
];

/// Rust keywords that precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "loop", "in", "as", "move", "else", "let",
    "mut", "ref", "break", "continue", "unsafe", "where", "impl", "dyn", "use", "pub", "crate",
    "super", "struct", "enum", "type", "const", "static", "trait", "mod", "box", "await", "yield",
];

/// One function or method extracted from the sources.
pub(crate) struct FnDef {
    /// Bare name (`submit`).
    pub(crate) name: String,
    /// Enclosing `impl`/`trait` type, if any (`Engine`).
    pub(crate) impl_ty: Option<String>,
    /// Index into [`Graph::files`].
    pub(crate) file: usize,
    /// 0-based line of the `fn` keyword.
    pub(crate) sig_line: usize,
    /// 0-based inclusive body span (`{` line ..= `}` line); `None` for
    /// bodyless trait declarations.
    pub(crate) body: Option<(usize, usize)>,
    /// Whether this function has a `self` receiver (method vs associated).
    pub(crate) has_self: bool,
    /// Annotated `// bcp:hot-path` — a reachability root.
    pub(crate) is_root: bool,
    /// Annotated `// audit: cold` — a traversal boundary.
    pub(crate) is_cold: bool,
}

impl FnDef {
    /// Qualified display name: `Engine::submit` or `batcher_loop`.
    pub(crate) fn qual(&self) -> String {
        match &self.impl_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed source file.
pub(crate) struct ParsedFile {
    /// Workspace-relative path (`crates/bcp-serve/src/engine.rs`).
    pub(crate) rel: String,
    pub(crate) lines: Vec<SrcLine>,
    /// First line of the trailing `#[cfg(test)]` module.
    pub(crate) test_start: usize,
}

/// The resolved workspace call graph.
pub(crate) struct Graph {
    pub(crate) files: Vec<ParsedFile>,
    pub(crate) fns: Vec<FnDef>,
    /// Out-edges per function (callee indices, deduplicated, sorted).
    pub(crate) edges: Vec<Vec<usize>>,
}

/// A call token extracted from a body line.
enum Call {
    /// `name(…)` — a free-function call.
    Bare(String),
    /// `recv.name(…)` — receiver token is `self` or unknown (empty).
    Method { receiver: String, name: String },
    /// `Qual::name(…)` — last path segment before `::`.
    Path { qual: String, name: String },
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Build the call graph over `(relative_path, source)` pairs.
pub(crate) fn build(sources: Vec<(String, String)>) -> Graph {
    let mut files = Vec::with_capacity(sources.len());
    for (rel, src) in sources {
        let lines = code_lines(&src);
        let test_start = first_test_line(&lines);
        files.push(ParsedFile {
            rel,
            lines,
            test_start,
        });
    }
    let mut fns = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        extract_fns(fi, f, &mut fns);
    }
    let edges = build_edges(&files, &fns);
    Graph { files, fns, edges }
}

/// What a just-seen declaration header is waiting for (`{` or `;`).
enum Pending {
    Fn {
        name: String,
        sig_line: usize,
        /// Bracket/paren depth inside the signature, so a `;` inside
        /// `[u8; 4]` does not read as a bodyless declaration.
        nest: usize,
    },
    /// `impl`/`trait` header text, accumulated until `{`.
    Block { header: String },
}

/// What an open `{` belongs to.
enum Frame {
    Fn { idx: usize },
    Impl { ty: Option<String> },
    Other,
}

/// Extract all functions in one file into `out`.
fn extract_fns(file_idx: usize, f: &ParsedFile, out: &mut Vec<FnDef>) {
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending: Option<Pending> = None;
    for (li, line) in f.lines.iter().enumerate().take(f.test_start) {
        let block_pending_at_start = matches!(pending, Some(Pending::Block { .. }));
        let bytes = line.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            if is_ident_start(c) {
                let st = i;
                while i < bytes.len() && is_ident(bytes[i]) {
                    i = i.saturating_add(1);
                }
                let ident = &line.code[st..i];
                match &mut pending {
                    None => {
                        if ident == "fn" {
                            // The name may follow on this line; multi-line
                            // `fn\nname` does not survive rustfmt.
                            let rest = bytes.get(i..).unwrap_or(&[]);
                            let skip = rest.iter().take_while(|b| b.is_ascii_whitespace()).count();
                            let ns = i.saturating_add(skip);
                            let mut ne = ns;
                            while ne < bytes.len() && is_ident(bytes[ne]) {
                                ne = ne.saturating_add(1);
                            }
                            if ne > ns {
                                pending = Some(Pending::Fn {
                                    name: line.code[ns..ne].to_string(),
                                    sig_line: li,
                                    nest: 0,
                                });
                                i = ne;
                            }
                        } else if ident == "impl" || ident == "trait" {
                            pending = Some(Pending::Block {
                                header: line.code[st..].to_string(),
                            });
                            // The whole rest of the line is header text;
                            // brace scanning below still sees it.
                        }
                    }
                    Some(Pending::Block { header }) => {
                        // Header continues across lines; appended below.
                        let _ = header;
                    }
                    Some(Pending::Fn { .. }) => {}
                }
                continue;
            }
            match c {
                b'(' | b'[' => {
                    if let Some(Pending::Fn { nest, .. }) = &mut pending {
                        *nest = nest.saturating_add(1);
                    }
                }
                b')' | b']' => {
                    if let Some(Pending::Fn { nest, .. }) = &mut pending {
                        *nest = nest.saturating_sub(1);
                    }
                }
                b';' => {
                    if matches!(&pending, Some(Pending::Fn { nest: 0, .. })) {
                        // Bodyless declaration (trait method signature).
                        if let Some(Pending::Fn { name, sig_line, .. }) = pending.take() {
                            let (is_root, is_cold) = annotations(f, sig_line);
                            out.push(FnDef {
                                name,
                                impl_ty: current_impl(&stack),
                                file: file_idx,
                                sig_line,
                                body: None,
                                has_self: signature_has_self(f, sig_line, li),
                                is_root,
                                is_cold,
                            });
                        }
                    }
                }
                b'{' => match pending.take() {
                    Some(Pending::Fn { name, sig_line, .. }) => {
                        let (is_root, is_cold) = annotations(f, sig_line);
                        out.push(FnDef {
                            name,
                            impl_ty: current_impl(&stack),
                            file: file_idx,
                            sig_line,
                            body: Some((li, li)),
                            has_self: signature_has_self(f, sig_line, li),
                            is_root,
                            is_cold,
                        });
                        stack.push(Frame::Fn {
                            idx: out.len().saturating_sub(1),
                        });
                    }
                    Some(Pending::Block { header }) => {
                        stack.push(Frame::Impl {
                            ty: impl_type(&header),
                        });
                    }
                    None => stack.push(Frame::Other),
                },
                b'}' => {
                    if let Some(Frame::Fn { idx }) = stack.pop() {
                        if let Some(d) = out.get_mut(idx) {
                            if let Some((s, _)) = d.body {
                                d.body = Some((s, li));
                            }
                        }
                    }
                }
                _ => {}
            }
            i = i.saturating_add(1);
        }
        // A header opened on an *earlier* line continues across this one
        // (the opening line's tail was captured at the `impl` keyword).
        if block_pending_at_start {
            if let Some(Pending::Block { header }) = &mut pending {
                header.push(' ');
                header.push_str(&line.code);
            }
        }
    }
}

/// The innermost `impl`/`trait` type on the frame stack.
fn current_impl(stack: &[Frame]) -> Option<String> {
    stack.iter().rev().find_map(|fr| match fr {
        Frame::Impl { ty } => ty.clone(),
        _ => None,
    })
}

/// `// bcp:hot-path` / `// audit: cold` annotations attached above a
/// signature line (through doc comments and attributes).
fn annotations(f: &ParsedFile, sig_line: usize) -> (bool, bool) {
    let mut is_root = f
        .lines
        .get(sig_line)
        .is_some_and(|l| l.comment.trim_start().starts_with("bcp:hot-path"));
    let mut is_cold = f
        .lines
        .get(sig_line)
        .is_some_and(|l| l.comment.trim_start().starts_with("audit: cold"));
    let mut j = sig_line;
    while j > 0 {
        j = j.saturating_sub(1);
        let Some(l) = f.lines.get(j) else { break };
        let code = l.code.trim();
        let attached = code.starts_with("#[") || (code.is_empty() && !l.comment.trim().is_empty());
        if !attached {
            break;
        }
        if l.comment.trim_start().starts_with("bcp:hot-path") {
            is_root = true;
        }
        if l.comment.trim_start().starts_with("audit: cold") {
            is_cold = true;
        }
    }
    (is_root, is_cold)
}

/// Whether the signature starting at `sig_line` (ending by `body_line`)
/// takes a `self` receiver.
fn signature_has_self(f: &ParsedFile, sig_line: usize, body_line: usize) -> bool {
    let mut sig = String::new();
    for li in sig_line..=body_line.min(f.lines.len().saturating_sub(1)) {
        if let Some(l) = f.lines.get(li) {
            sig.push_str(&l.code);
            sig.push(' ');
        }
    }
    let Some(p) = sig.find('(') else { return false };
    let mut rest = sig.get(p.saturating_add(1)..).unwrap_or("").trim_start();
    rest = rest.strip_prefix('&').unwrap_or(rest).trim_start();
    if rest.starts_with('\'') {
        // Skip an explicit lifetime: `&'a self`.
        let after = rest.get(1..).unwrap_or("");
        let skip = after.bytes().take_while(|&b| is_ident(b)).count();
        rest = after.get(skip..).unwrap_or("").trim_start();
    }
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    rest.strip_prefix("self")
        .is_some_and(|a| a.starts_with([',', ')', ':', ' ']) || a.is_empty())
}

/// Extract the implemented/target type name from an `impl`/`trait`
/// header: `impl<T> Slot<T>` → `Slot`, `impl Replica for Synthetic` →
/// `Synthetic`, `pub trait Replica: Send` → `Replica`.
fn impl_type(header: &str) -> Option<String> {
    let h = header.trim_start();
    let h = if let Some(rest) = h.strip_prefix("impl") {
        let rest = skip_generics(rest.trim_start());
        match rest.find(" for ") {
            Some(p) => rest.get(p.saturating_add(5)..).unwrap_or(""),
            None => rest,
        }
    } else {
        // `trait Name…` — `extract_fns` hands us the header starting at
        // the keyword itself.
        h.strip_prefix("trait").unwrap_or(h)
    };
    let h = h.trim_start().trim_start_matches('&').trim_start();
    // Take the leading path, keep its last segment, stop at `<`/space/`{`.
    let end = h
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(h.len());
    let path = h.get(..end).unwrap_or("");
    let seg = path.rsplit("::").next().unwrap_or("");
    (!seg.is_empty() && seg.as_bytes().first().is_some_and(|b| is_ident_start(*b)))
        .then(|| seg.to_string())
}

/// Skip a balanced leading `<…>` generics list.
fn skip_generics(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth = depth.saturating_add(1),
            '>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return s.get(i.saturating_add(1)..).unwrap_or("");
                }
            }
            _ => {}
        }
    }
    ""
}

/// Extract call tokens from one line of comment-stripped code.
fn calls_on_line(code: &str) -> Vec<Call> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident_start(bytes[i]) {
            i = i.saturating_add(1);
            continue;
        }
        let st = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i = i.saturating_add(1);
        }
        let name = &code[st..i];
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        if KEYWORDS.contains(&name) || name == "self" || name == "Self" {
            continue;
        }
        // `fn name(` is the declaration, not a call.
        let before = code.get(..st).unwrap_or("").trim_end();
        if before.ends_with("fn") {
            continue;
        }
        let prev = before.as_bytes().last().copied();
        if prev == Some(b'.') {
            let recv_end = before.len().saturating_sub(1);
            let recv_bytes = before.as_bytes();
            let mut rs = recv_end;
            while rs > 0 && is_ident(recv_bytes[rs.saturating_sub(1)]) {
                rs = rs.saturating_sub(1);
            }
            // `self.f.g(` scans back to `f`, not `self`, so a "self"
            // receiver here is always the direct `self.name(` form.
            let receiver = code.get(rs..recv_end).unwrap_or("");
            let receiver = if receiver
                .as_bytes()
                .first()
                .is_some_and(|b| is_ident_start(*b))
            {
                receiver
            } else {
                ""
            };
            out.push(Call::Method {
                receiver: receiver.to_string(),
                name: name.to_string(),
            });
        } else if before.ends_with("::") {
            let q_end = before.len().saturating_sub(2);
            let q_bytes = before.as_bytes();
            let mut qs = q_end;
            while qs > 0 && is_ident(q_bytes[qs.saturating_sub(1)]) {
                qs = qs.saturating_sub(1);
            }
            let qual = code.get(qs..q_end).unwrap_or("").to_string();
            if !qual.is_empty() {
                out.push(Call::Path {
                    qual,
                    name: name.to_string(),
                });
            }
        } else if name
            .as_bytes()
            .first()
            .is_some_and(|b| b.is_ascii_lowercase() || *b == b'_')
        {
            // Uppercase bare calls are tuple-struct / enum constructors.
            out.push(Call::Bare(name.to_string()));
        }
    }
    out
}

/// Lines in a file carrying an `// audit: external` boundary: the
/// directive's own line if it has code, else the next code line within 3.
pub(crate) fn external_lines(f: &ParsedFile) -> HashSet<usize> {
    directive_target_lines(f, "external")
}

/// Generic directive-target computation shared with the audit's
/// allow-list handling.
pub(crate) fn directive_target_lines(f: &ParsedFile, keyword: &str) -> HashSet<usize> {
    let mut out = HashSet::new();
    for (li, line) in f.lines.iter().enumerate() {
        let c = line.comment.trim_start();
        let Some(rest) = c.strip_prefix("audit:") else {
            continue;
        };
        if !rest.trim_start().starts_with(keyword) {
            continue;
        }
        if !line.code.trim().is_empty() {
            out.insert(li);
        } else {
            for k in li.saturating_add(1)..f.lines.len().min(li.saturating_add(4)) {
                if f.lines.get(k).is_some_and(|l| !l.code.trim().is_empty()) {
                    out.insert(k);
                    break;
                }
            }
        }
    }
    out
}

/// Resolve every body's call tokens into graph edges.
fn build_edges(files: &[ParsedFile], fns: &[FnDef]) -> Vec<Vec<usize>> {
    let mut by_qual: HashMap<String, Vec<usize>> = HashMap::new();
    let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut free_global: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut free_by_file: HashMap<(usize, &str), Vec<usize>> = HashMap::new();
    for (i, d) in fns.iter().enumerate() {
        if d.impl_ty.is_some() {
            by_qual.entry(d.qual()).or_default().push(i);
            if d.has_self {
                methods_by_name.entry(&d.name).or_default().push(i);
            }
        } else {
            free_global.entry(&d.name).or_default().push(i);
            free_by_file.entry((d.file, &d.name)).or_default().push(i);
        }
    }

    let externals: Vec<HashSet<usize>> = files.iter().map(external_lines).collect();
    let mut edges = vec![Vec::new(); fns.len()];
    for (i, d) in fns.iter().enumerate() {
        let Some((s, e)) = d.body else { continue };
        let Some(f) = files.get(d.file) else { continue };
        let mut callees: HashSet<usize> = HashSet::new();
        for li in s..=e.min(f.test_start.saturating_sub(1)) {
            let Some(line) = f.lines.get(li) else { break };
            if externals.get(d.file).is_some_and(|ext| ext.contains(&li)) {
                continue;
            }
            for call in calls_on_line(&line.code) {
                resolve(
                    &call,
                    d,
                    &by_qual,
                    &methods_by_name,
                    &free_global,
                    &free_by_file,
                    &mut callees,
                );
            }
        }
        callees.remove(&i);
        let mut v: Vec<usize> = callees.into_iter().collect();
        v.sort_unstable();
        if let Some(slot) = edges.get_mut(i) {
            *slot = v;
        }
    }
    edges
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &Call,
    caller: &FnDef,
    by_qual: &HashMap<String, Vec<usize>>,
    methods_by_name: &HashMap<&str, Vec<usize>>,
    free_global: &HashMap<&str, Vec<usize>>,
    free_by_file: &HashMap<(usize, &str), Vec<usize>>,
    out: &mut HashSet<usize>,
) {
    match call {
        Call::Path { qual, name } => {
            let ty = if qual == "Self" {
                caller.impl_ty.clone()
            } else {
                Some(qual.clone())
            };
            if let Some(ty) = ty {
                if ty.as_bytes().first().is_some_and(u8::is_ascii_uppercase) {
                    if let Some(v) = by_qual.get(&format!("{ty}::{name}")) {
                        out.extend(v);
                    }
                    return;
                }
            }
            // Lowercase qualifier is a module path: `tracer::stamp(…)`.
            if let Some(v) = free_global.get(name.as_str()) {
                out.extend(v);
            }
        }
        Call::Method { receiver, name } => {
            if receiver == "self" {
                if let Some(ty) = &caller.impl_ty {
                    if let Some(v) = by_qual.get(&format!("{ty}::{name}")) {
                        out.extend(v);
                        return;
                    }
                }
            }
            if STD_METHOD_NAMES.contains(&name.as_str()) {
                return;
            }
            if let Some(v) = methods_by_name.get(name.as_str()) {
                out.extend(v);
            }
        }
        Call::Bare(name) => {
            if let Some(v) = free_by_file.get(&(caller.file, name.as_str())) {
                out.extend(v);
            } else if let Some(v) = free_global.get(name.as_str()) {
                out.extend(v);
            }
        }
    }
}

/// BFS from every `// bcp:hot-path` root. Returns, per function, the
/// witness chain of function indices `root ..= this` (or `None` when
/// unreachable). `// audit: cold` functions are traversal boundaries:
/// neither entered nor expanded.
pub(crate) fn reachable(g: &Graph) -> Vec<Option<Vec<usize>>> {
    let mut parent: Vec<Option<usize>> = vec![None; g.fns.len()];
    let mut seen = vec![false; g.fns.len()];
    let mut queue = VecDeque::new();
    for (i, d) in g.fns.iter().enumerate() {
        if d.is_root && !d.is_cold {
            seen[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in g.edges.get(i).map(Vec::as_slice).unwrap_or(&[]) {
            if seen.get(j).copied().unwrap_or(true) || g.fns.get(j).is_none_or(|d| d.is_cold) {
                continue;
            }
            seen[j] = true;
            parent[j] = Some(i);
            queue.push_back(j);
        }
    }
    let mut chains = vec![None; g.fns.len()];
    for i in 0..g.fns.len() {
        if !seen.get(i).copied().unwrap_or(false) {
            continue;
        }
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(p) = parent.get(cur).copied().flatten() {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        if let Some(slot) = chains.get_mut(i) {
            *slot = Some(chain);
        }
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> Graph {
        build(vec![("crates/x/src/lib.rs".into(), src.into())])
    }

    fn find<'g>(g: &'g Graph, qual: &str) -> &'g FnDef {
        g.fns
            .iter()
            .find(|d| d.qual() == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn impl_methods_are_qualified_and_free_fns_are_not() {
        let g = graph(
            "struct Engine;\n\
             impl Engine {\n    pub fn submit(&self) {}\n    fn helper() {}\n}\n\
             fn batcher_loop() {}\n",
        );
        assert!(find(&g, "Engine::submit").has_self);
        assert!(!find(&g, "Engine::helper").has_self);
        assert!(find(&g, "batcher_loop").impl_ty.is_none());
    }

    #[test]
    fn trait_impl_for_qualifies_by_target_type() {
        let g = graph(
            "trait Replica {\n    fn canary(&self) -> bool;\n}\n\
             struct Synth;\n\
             impl Replica for Synth {\n    fn canary(&self) -> bool { true }\n}\n",
        );
        assert!(find(&g, "Synth::canary").body.is_some());
        assert!(find(&g, "Replica::canary").body.is_none());
    }

    #[test]
    fn roots_and_cold_annotations_attach_through_attributes() {
        let g = graph(
            "struct E;\nimpl E {\n\
             // bcp:hot-path — admission entry\n    #[inline]\n    pub fn submit(&self) {}\n\
             // audit: cold — repair path\n    fn recover(&self) { self.submit() }\n}\n",
        );
        assert!(find(&g, "E::submit").is_root);
        assert!(find(&g, "E::recover").is_cold);
    }

    #[test]
    fn calls_resolve_self_qualified_and_bare() {
        let g = graph(
            "struct E;\nimpl E {\n\
             // bcp:hot-path\n    fn root(&self) {\n        self.step();\n        E::assoc();\n        helper();\n    }\n\
             fn step(&self) {}\n    fn assoc() {}\n}\n\
             fn helper() { leaf() }\nfn leaf() {}\nfn unrelated() {}\n",
        );
        let chains = reachable(&g);
        let reach: Vec<String> = g
            .fns
            .iter()
            .enumerate()
            .filter(|(i, _)| chains[*i].is_some())
            .map(|(_, d)| d.qual())
            .collect();
        assert!(reach.contains(&"E::step".to_string()));
        assert!(reach.contains(&"E::assoc".to_string()));
        assert!(reach.contains(&"leaf".to_string()));
        assert!(!reach.contains(&"unrelated".to_string()));
    }

    #[test]
    fn unknown_receiver_resolves_all_candidates_except_std_names() {
        let g = graph(
            "struct A;\nimpl A {\n    pub fn deliver(&self) {}\n    pub fn push(&self, _x: u8) {}\n}\n\
             struct B;\nimpl B {\n    pub fn deliver(&self) {}\n}\n\
             // bcp:hot-path\nfn root(slot: &A, v: &mut Vec<u8>) {\n    slot.deliver();\n    v.push(1);\n}\n",
        );
        let chains = reachable(&g);
        let reached = |q: &str| {
            g.fns
                .iter()
                .enumerate()
                .any(|(i, d)| d.qual() == q && chains[i].is_some())
        };
        assert!(reached("A::deliver"), "over-approximation reaches A");
        assert!(reached("B::deliver"), "over-approximation reaches B");
        assert!(!reached("A::push"), "std-name methods are not smeared");
    }

    #[test]
    fn witness_chain_runs_root_to_leaf() {
        let g = graph("// bcp:hot-path\nfn root() { mid() }\nfn mid() { leaf() }\nfn leaf() {}\n");
        let chains = reachable(&g);
        let leaf = g.fns.iter().position(|d| d.name == "leaf").unwrap();
        let chain: Vec<String> = chains[leaf]
            .as_ref()
            .unwrap()
            .iter()
            .map(|&i| g.fns[i].qual())
            .collect();
        assert_eq!(chain, ["root", "mid", "leaf"]);
    }

    #[test]
    fn cold_fns_are_boundaries_and_external_lines_cut_edges() {
        let g = graph(
            "// bcp:hot-path\nfn root() {\n\
             cold_fn();\n\
             // audit: external — replica compute is audited at its own roots\n\
             ext_target();\n}\n\
             // audit: cold — teardown\nfn cold_fn() { deep() }\n\
             fn deep() {}\nfn ext_target() {}\n",
        );
        let chains = reachable(&g);
        for name in ["cold_fn", "deep", "ext_target"] {
            let i = g.fns.iter().position(|d| d.name == name).unwrap();
            assert!(chains[i].is_none(), "{name} must not be reachable");
        }
    }

    #[test]
    fn bodyless_declarations_and_multiline_signatures_parse() {
        let g = graph(
            "trait T {\n    fn decl(&self, xs: [u8; 4]) -> bool;\n}\n\
             fn multi(\n    a: usize,\n    b: usize,\n) -> usize {\n    a.saturating_add(b)\n}\n",
        );
        assert!(find(&g, "T::decl").body.is_none());
        assert!(find(&g, "multi").body.is_some());
    }
}
