//! The typed diagnostics engine: stable error codes, severities, source
//! locations, and serializable reports.
//!
//! Every verification pass in this crate emits [`Diagnostic`]s instead of
//! panicking. A [`Code`] is stable across releases — tooling (CI greps,
//! the mutation corpus, dashboards) keys on the `BCP0xx` string, never on
//! the human message text.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Stable diagnostic codes. The numeric bands group related analyses:
///
/// | band      | analysis                                   |
/// |-----------|--------------------------------------------|
/// | `BCP00x`  | graph shape inference                      |
/// | `BCP01x`  | PE×SIMD folding legality                   |
/// | `BCP02x`  | per-layer cycle budgets                    |
/// | `BCP03x`  | streaming rate balance / FIFO deadlock     |
/// | `BCP04x`  | threshold soundness                        |
/// | `BCP05x`  | device resource fit                        |
/// | `BCP06x`  | checker configuration                      |
/// | `BCP10x`  | repo-invariant lints (`bcp lint`)          |
/// | `BCP11x`  | lint configuration                         |
/// | `BCP2xx`  | hot-path audit (`bcp audit`)               |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Code {
    /// `BCP001` — consecutive conv layers disagree on channel count.
    ConvChainMismatch,
    /// `BCP002` — consecutive FC layers disagree on feature count.
    FcChainMismatch,
    /// `BCP003` — first FC fan-in ≠ flattened conv output.
    FlattenMismatch,
    /// `BCP004` — classifier head width ≠ the class count.
    HeadWidthMismatch,
    /// `BCP005` — PE vector length ≠ compute-layer count.
    PeVectorLength,
    /// `BCP006` — SIMD vector length ≠ compute-layer count.
    SimdVectorLength,
    /// `BCP007` — 2×2 pool applied to an odd spatial extent.
    OddPoolExtent,
    /// `BCP008` — spatial extent shrinks below the kernel size.
    SpatialUnderflow,
    /// `BCP009` — pipeline structure broken (stage chain / ordering).
    PipelineStructure,
    /// `BCP010` — folding factor (PE or SIMD) is zero.
    ZeroFolding,
    /// `BCP011` — PE count does not divide the layer's output neurons.
    PeNotDivisor,
    /// `BCP012` — SIMD width does not divide the layer's fan-in.
    SimdNotDivisor,
    /// `BCP020` — a stage's cycles/frame exceeds the target-fps budget.
    CycleBudgetExceeded,
    /// `BCP021` — cycle arithmetic overflows u64 (degenerate dimensioning).
    CycleOverflow,
    /// `BCP030` — zero-depth inter-stage FIFO: the handshake deadlocks.
    FifoDeadlock,
    /// `BCP031` — rate imbalance: a stage idles ≥ 15/16 of steady state.
    StageStarved,
    /// `BCP032` — back-pressure degrades steady-state II below the model.
    BackpressureThroughput,
    /// `BCP040` — threshold outside the accumulator's representable range.
    ThresholdOutOfRange,
    /// `BCP041` — threshold reachable but constant (dead channel).
    DeadThresholdChannel,
    /// `BCP042` — hidden stage is missing its threshold bank.
    MissingThresholds,
    /// `BCP043` — logits stage carries an (ignored) threshold bank.
    ExtraThresholds,
    /// `BCP050` — LUT estimate exceeds the device budget.
    LutOverBudget,
    /// `BCP051` — BRAM18 estimate exceeds the device budget.
    BramOverBudget,
    /// `BCP052` — DSP estimate exceeds the device budget.
    DspOverBudget,
    /// `BCP053` — a resource is above 90 % of the device budget.
    NearBudget,
    /// `BCP060` — checker configuration is itself invalid.
    InvalidConfig,
    /// `BCP100` — an atomic `Ordering::*` use without a `// ordering:`
    /// justification comment.
    UnjustifiedOrdering,
    /// `BCP101` — `unsafe` outside the audited allowlist.
    UnsafeOutsideAllowlist,
    /// `BCP102` — `unwrap()` on a channel send/recv in a serving hot path.
    HotPathChannelUnwrap,
    /// `BCP103` — telemetry metric emitted in code but absent from the
    /// README metrics tables.
    UndocumentedMetric,
    /// `BCP110` — the lint pass itself could not run as configured.
    LintConfigError,
    /// `BCP200` — panic site (`unwrap`/`expect`/`panic!`/…) reachable
    /// from a hot-path root.
    HotPathPanic,
    /// `BCP201` — slice/array indexing without `get` reachable from a
    /// hot-path root.
    HotPathIndexing,
    /// `BCP202` — unchecked division/remainder by a non-literal divisor
    /// reachable from a hot-path root.
    HotPathDivision,
    /// `BCP210` — heap allocation reachable from a hot-path root.
    HotPathAllocation,
    /// `BCP220` — blocking call (lock, I/O, sleep) reachable from a
    /// hot-path root without an `// audit: allow(block)` justification.
    HotPathBlocking,
    /// `BCP230` — unjustified narrowing `as` cast reachable from a
    /// hot-path root.
    HotPathNarrowingCast,
    /// `BCP240` — the audit pass itself could not run as configured.
    AuditConfigError,
}

impl Code {
    /// Every code, in numeric order (drives the README reference table).
    pub const ALL: [Code; 38] = [
        Code::ConvChainMismatch,
        Code::FcChainMismatch,
        Code::FlattenMismatch,
        Code::HeadWidthMismatch,
        Code::PeVectorLength,
        Code::SimdVectorLength,
        Code::OddPoolExtent,
        Code::SpatialUnderflow,
        Code::PipelineStructure,
        Code::ZeroFolding,
        Code::PeNotDivisor,
        Code::SimdNotDivisor,
        Code::CycleBudgetExceeded,
        Code::CycleOverflow,
        Code::FifoDeadlock,
        Code::StageStarved,
        Code::BackpressureThroughput,
        Code::ThresholdOutOfRange,
        Code::DeadThresholdChannel,
        Code::MissingThresholds,
        Code::ExtraThresholds,
        Code::LutOverBudget,
        Code::BramOverBudget,
        Code::DspOverBudget,
        Code::NearBudget,
        Code::InvalidConfig,
        Code::UnjustifiedOrdering,
        Code::UnsafeOutsideAllowlist,
        Code::HotPathChannelUnwrap,
        Code::UndocumentedMetric,
        Code::LintConfigError,
        Code::HotPathPanic,
        Code::HotPathIndexing,
        Code::HotPathDivision,
        Code::HotPathAllocation,
        Code::HotPathBlocking,
        Code::HotPathNarrowingCast,
        Code::AuditConfigError,
    ];

    /// The stable `BCP0xx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ConvChainMismatch => "BCP001",
            Code::FcChainMismatch => "BCP002",
            Code::FlattenMismatch => "BCP003",
            Code::HeadWidthMismatch => "BCP004",
            Code::PeVectorLength => "BCP005",
            Code::SimdVectorLength => "BCP006",
            Code::OddPoolExtent => "BCP007",
            Code::SpatialUnderflow => "BCP008",
            Code::PipelineStructure => "BCP009",
            Code::ZeroFolding => "BCP010",
            Code::PeNotDivisor => "BCP011",
            Code::SimdNotDivisor => "BCP012",
            Code::CycleBudgetExceeded => "BCP020",
            Code::CycleOverflow => "BCP021",
            Code::FifoDeadlock => "BCP030",
            Code::StageStarved => "BCP031",
            Code::BackpressureThroughput => "BCP032",
            Code::ThresholdOutOfRange => "BCP040",
            Code::DeadThresholdChannel => "BCP041",
            Code::MissingThresholds => "BCP042",
            Code::ExtraThresholds => "BCP043",
            Code::LutOverBudget => "BCP050",
            Code::BramOverBudget => "BCP051",
            Code::DspOverBudget => "BCP052",
            Code::NearBudget => "BCP053",
            Code::InvalidConfig => "BCP060",
            Code::UnjustifiedOrdering => "BCP100",
            Code::UnsafeOutsideAllowlist => "BCP101",
            Code::HotPathChannelUnwrap => "BCP102",
            Code::UndocumentedMetric => "BCP103",
            Code::LintConfigError => "BCP110",
            Code::HotPathPanic => "BCP200",
            Code::HotPathIndexing => "BCP201",
            Code::HotPathDivision => "BCP202",
            Code::HotPathAllocation => "BCP210",
            Code::HotPathBlocking => "BCP220",
            Code::HotPathNarrowingCast => "BCP230",
            Code::AuditConfigError => "BCP240",
        }
    }

    /// Parse a stable code string back into the enum.
    pub fn from_str_code(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// One-line description for the reference table.
    pub fn describe(self) -> &'static str {
        match self {
            Code::ConvChainMismatch => "conv channel chain broken (c_out ≠ next c_in)",
            Code::FcChainMismatch => "FC feature chain broken (f_out ≠ next f_in)",
            Code::FlattenMismatch => "first FC fan-in ≠ flattened conv output",
            Code::HeadWidthMismatch => "classifier head width ≠ class count",
            Code::PeVectorLength => "PE vector length ≠ compute-layer count",
            Code::SimdVectorLength => "SIMD vector length ≠ compute-layer count",
            Code::OddPoolExtent => "2×2 pool applied to an odd spatial extent",
            Code::SpatialUnderflow => "spatial extent shrinks below the kernel size",
            Code::PipelineStructure => "pipeline stage chain or ordering broken",
            Code::ZeroFolding => "folding factor (PE or SIMD) is zero",
            Code::PeNotDivisor => "PE count does not divide output neurons",
            Code::SimdNotDivisor => "SIMD width does not divide fan-in",
            Code::CycleBudgetExceeded => "stage cycles/frame exceeds the target-fps budget",
            Code::CycleOverflow => "cycle arithmetic overflows (degenerate dimensioning)",
            Code::FifoDeadlock => "zero-depth inter-stage FIFO deadlocks the handshake",
            Code::StageStarved => "rate imbalance: stage idles ≥ 15/16 of steady state",
            Code::BackpressureThroughput => "back-pressure degrades steady-state II",
            Code::ThresholdOutOfRange => "threshold outside accumulator bit-range",
            Code::DeadThresholdChannel => "threshold constant over the accumulator range",
            Code::MissingThresholds => "hidden stage missing its threshold bank",
            Code::ExtraThresholds => "logits stage carries an ignored threshold bank",
            Code::LutOverBudget => "LUT estimate exceeds device budget",
            Code::BramOverBudget => "BRAM18 estimate exceeds device budget",
            Code::DspOverBudget => "DSP estimate exceeds device budget",
            Code::NearBudget => "resource above 90 % of device budget",
            Code::InvalidConfig => "checker configuration invalid",
            Code::UnjustifiedOrdering => "atomic Ordering without a `// ordering:` justification",
            Code::UnsafeOutsideAllowlist => "unsafe code outside the audited allowlist",
            Code::HotPathChannelUnwrap => "unwrap() on channel send/recv in a serving hot path",
            Code::UndocumentedMetric => "metric emitted in code but missing from README tables",
            Code::LintConfigError => "lint pass could not run as configured",
            Code::HotPathPanic => "panic site reachable from a hot-path root",
            Code::HotPathIndexing => "unchecked indexing reachable from a hot-path root",
            Code::HotPathDivision => "unchecked non-literal division on a hot path",
            Code::HotPathAllocation => "heap allocation reachable from a hot-path root",
            Code::HotPathBlocking => "blocking call reachable from a hot-path root",
            Code::HotPathNarrowingCast => "unjustified narrowing `as` cast on a hot path",
            Code::AuditConfigError => "audit pass could not run as configured",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Code {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Code {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::expected("string", "Code"))?;
        Code::from_str_code(s).ok_or_else(|| serde::Error::custom(format!("unknown code {s}")))
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, never blocks.
    Info,
    /// Suspicious but deployable.
    Warning,
    /// The design is wrong; construction must be refused.
    Error,
}

impl Severity {
    /// Lower-case name (the JSON form).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Severity {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some("info") => Ok(Severity::Info),
            Some("warning") => Ok(Severity::Warning),
            Some("error") => Ok(Severity::Error),
            _ => Err(serde::Error::expected("info|warning|error", "Severity")),
        }
    }
}

/// One finding: a typed code, a severity, and source-location-style
/// context pointing into the architecture or pipeline description
/// (e.g. `CNV.convs[2].c_in` or `n-CNV.stage[4]`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable `BCP0xx` code.
    pub code: Code,
    /// Finding severity.
    pub severity: Severity,
    /// Dotted path into the checked description.
    pub location: String,
    /// Human-readable explanation with the offending numbers.
    pub message: String,
    /// Optional fix suggestion.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(code: Code, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
            help: None,
        }
    }

    /// A warning-severity finding.
    pub fn warning(code: Code, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, location, message)
        }
    }

    /// An info-severity finding.
    pub fn info(code: Code, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, location, message)
        }
    }

    /// Attach a fix suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// `rustc`-style one-liner: `error[BCP011] CNV.pe[1]: …`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        );
        if let Some(h) = &self.help {
            s.push_str(&format!("\n  help: {h}"));
        }
        s
    }
}

/// The outcome of one `check_arch`/`check_pipeline` run: every finding,
/// plus the evaluated and target devices. Serializes to the machine-readable
/// JSON report `bcp check --json` emits.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// What was checked (arch or pipeline name).
    pub subject: String,
    /// Device the resource-fit analysis ran against.
    pub device: String,
    /// The design's paper target device (fit failures there are errors;
    /// elsewhere they degrade to warnings).
    pub target_device: String,
    /// All findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// New empty report.
    pub fn new(
        subject: impl Into<String>,
        device: impl Into<String>,
        target_device: impl Into<String>,
    ) -> Self {
        Report {
            subject: subject.into(),
            device: device.into(),
            target_device: target_device.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// No error-severity findings: the design may be constructed.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any finding carries this code.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Human-readable multi-line report.
    pub fn render_text(&self) -> String {
        let mut s = format!(
            "check {} (device {}, target {}): ",
            self.subject, self.device, self.target_device
        );
        if self.diagnostics.is_empty() {
            s.push_str("clean\n");
            return s;
        }
        s.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        for d in &self.diagnostics {
            s.push_str("  ");
            s.push_str(&d.render().replace('\n', "\n  "));
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;

    #[test]
    fn codes_are_unique_and_parse_back() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert_eq!(Code::from_str_code(c.as_str()), Some(c));
            assert!(c.as_str().starts_with("BCP"));
            assert_eq!(c.as_str().len(), 6);
            assert!(!c.describe().is_empty());
        }
        assert_eq!(Code::from_str_code("BCP999"), None);
    }

    #[test]
    fn codes_are_numerically_ordered() {
        let nums: Vec<u32> = Code::ALL
            .iter()
            .map(|c| c.as_str()[3..].parse().unwrap())
            .collect();
        for w in nums.windows(2) {
            assert!(w[0] < w[1], "codes out of order: {} {}", w[0], w[1]);
        }
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_roundtrips_through_serde_json() {
        let mut r = Report::new("CNV", "XC7Z020", "XC7Z020");
        r.push(
            Diagnostic::error(
                Code::PeNotDivisor,
                "CNV.pe[1]",
                "33 does not divide 64 rows",
            )
            .with_help("use a divisor of 64"),
        );
        r.push(Diagnostic::warning(
            Code::NearBudget,
            "CNV.resources.luts",
            "92% of budget",
        ));
        r.push(Diagnostic::info(Code::StageStarved, "CNV.stage[8]", "idle"));
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Stable code strings appear literally in the JSON.
        assert!(json.contains("\"BCP011\""));
        assert!(json.contains("\"BCP053\""));
        assert!(json.contains("\"error\""));
    }

    #[test]
    fn render_text_lists_findings() {
        let mut r = Report::new("x", "XC7Z010", "XC7Z010");
        assert!(r.render_text().contains("clean"));
        r.push(Diagnostic::error(Code::ZeroFolding, "x.pe[0]", "pe = 0"));
        let t = r.render_text();
        assert!(t.contains("error[BCP010]"));
        assert!(t.contains("1 error(s)"));
        assert!(!r.is_clean());
        assert!(r.has_code(Code::ZeroFolding));
        assert!(!r.has_code(Code::FifoDeadlock));
    }
}
