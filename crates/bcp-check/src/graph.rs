//! The checker's view of a model/accelerator description, and whole-graph
//! shape inference over it.
//!
//! [`ArchSpec`] is a plain-data mirror of `binarycop::Arch` (this crate
//! sits *below* `binarycop` in the dependency order, so it defines its own
//! input type; `Arch::spec()` converts). Shape inference walks the conv
//! trunk and dense head exactly the way `deploy()` would build stages,
//! but instead of asserting it emits localized [`Diagnostic`]s and — when
//! the graph is consistent — a [`StagePlan`] per hardware stage for the
//! downstream folding/timing/rate/resource analyses.

use crate::diag::{Code, Diagnostic};
use serde::{Deserialize, Serialize};

/// One conv layer, as the checker sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// 2×2 max-pool follows this layer.
    pub pool_after: bool,
}

/// One FC layer, as the checker sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FcSpec {
    /// Input features.
    pub f_in: usize,
    /// Output features.
    pub f_out: usize,
}

/// A complete architecture description to verify.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Display name (used in diagnostic locations).
    pub name: String,
    /// Input image edge.
    pub input_size: usize,
    /// Convolution kernel edge (3 for every BinaryCoP prototype).
    pub kernel: usize,
    /// Output class count (4 for BinaryCoP).
    pub classes: usize,
    /// Conv trunk, in order.
    pub convs: Vec<ConvSpec>,
    /// Dense head, in order.
    pub fcs: Vec<FcSpec>,
    /// PE count per compute layer (convs then FCs).
    pub pe: Vec<usize>,
    /// SIMD lanes per compute layer.
    pub simd: Vec<usize>,
    /// OrthrusPE-style XNOR-to-DSP offload (μ-CNV on the Z7010).
    pub dsp_offload: bool,
}

/// What kind of hardware stage a [`StagePlan`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// First conv: fixed-point input MVTU (accumulators scale ×255).
    ConvFixed,
    /// Hidden conv: binary MVTU.
    ConvBinary,
    /// Boolean-OR 2×2 pool.
    Pool,
    /// Hidden dense layer.
    DenseBinary,
    /// Final dense layer emitting logits.
    DenseLogits,
}

/// One planned hardware stage: everything the folding/timing/rate/resource
/// analyses need, derived either from an [`ArchSpec`] (pre-deployment) or
/// from a built `Pipeline` (post-deployment).
#[derive(Clone, Debug)]
pub struct StagePlan {
    /// Stage name (`conv1`, `pool2`, `fc3`, …).
    pub name: String,
    /// Stage kind.
    pub kind: StageKind,
    /// MVTU matrix rows (output neurons); 0 for pool stages.
    pub rows: usize,
    /// MVTU matrix cols (fan-in); 0 for pool stages.
    pub cols: usize,
    /// Input vectors per frame (conv windows / 1 for dense); for pool
    /// stages this is the *output* pixel count (its cycles/frame).
    pub vectors: usize,
    /// PE count (1 for pool stages).
    pub pe: usize,
    /// SIMD lanes (1 for pool stages).
    pub simd: usize,
    /// Compute-layer index into the `pe`/`simd` vectors (`None` for pools).
    pub layer_index: Option<usize>,
}

impl StagePlan {
    /// Weight-memory bits (0 for pool stages).
    pub fn weight_bits(&self) -> u64 {
        match self.kind {
            StageKind::Pool => 0,
            _ => (self.rows as u64).saturating_mul(self.cols as u64),
        }
    }

    /// Cycles per frame under the planned folding, with overflow reported
    /// rather than wrapped. Pool stages take one cycle per output pixel.
    /// Requires positive folding factors (gate on `BCP010` first).
    pub fn cycles_per_frame(&self) -> Option<u64> {
        if self.kind == StageKind::Pool {
            return Some(self.vectors as u64);
        }
        if self.pe == 0 || self.simd == 0 {
            return None;
        }
        let fold = (self.rows.div_ceil(self.pe) as u64)
            .checked_mul(self.cols.div_ceil(self.simd) as u64)?;
        fold.checked_mul(self.vectors as u64)
    }

    /// Whether this stage contains an MVTU (pool stages do not).
    pub fn is_compute(&self) -> bool {
        self.kind != StageKind::Pool
    }
}

/// Shape-inference outcome: diagnostics plus a stage plan when the graph
/// was consistent enough to lay out hardware stages.
pub struct ShapeAnalysis {
    /// Findings from the walk.
    pub diagnostics: Vec<Diagnostic>,
    /// Planned stages in dataflow order; `None` when shape errors make a
    /// layout meaningless.
    pub plan: Option<Vec<StagePlan>>,
}

/// Whole-graph shape inference over an [`ArchSpec`] with mismatch
/// localization. This is the diagnostic twin of `Arch::spatial_plan()` +
/// `Arch::validate()`: instead of `assert!`ing, it reports every
/// inconsistency it can find in one pass.
pub fn infer_shapes(spec: &ArchSpec) -> ShapeAnalysis {
    let mut diags = Vec::new();
    let name = &spec.name;
    let k = spec.kernel;

    if spec.fcs.is_empty() {
        diags.push(Diagnostic::error(
            Code::PipelineStructure,
            format!("{name}.fcs"),
            "architecture has no dense head; the final logits layer is mandatory",
        ));
    }
    if k == 0 {
        diags.push(Diagnostic::error(
            Code::InvalidConfig,
            format!("{name}.kernel"),
            "kernel size must be positive",
        ));
        return ShapeAnalysis {
            diagnostics: diags,
            plan: None,
        };
    }

    // Conv channel chaining.
    for (i, w) in spec.convs.windows(2).enumerate() {
        if w[0].c_out != w[1].c_in {
            let j = i.saturating_add(1);
            diags.push(
                Diagnostic::error(
                    Code::ConvChainMismatch,
                    format!("{name}.convs[{j}].c_in"),
                    format!(
                        "conv{} emits {} channels but conv{} expects {}",
                        j,
                        w[0].c_out,
                        j.saturating_add(1),
                        w[1].c_in
                    ),
                )
                .with_help(format!("set convs[{j}].c_in = {}", w[0].c_out)),
            );
        }
    }

    // Spatial walk: valid k×k convs shrink by k−1; pools halve.
    let mut hw = spec.input_size;
    let mut spatial_ok = true;
    let mut conv_out_hw = Vec::with_capacity(spec.convs.len());
    for (i, conv) in spec.convs.iter().enumerate() {
        let stage = i.saturating_add(1);
        if hw < k {
            diags.push(Diagnostic::error(
                Code::SpatialUnderflow,
                format!("{name}.convs[{i}]"),
                format!("conv{stage} input extent {hw} is below the {k}×{k} kernel"),
            ));
            spatial_ok = false;
            break;
        }
        hw = hw.saturating_sub(k.saturating_sub(1));
        conv_out_hw.push(hw);
        if conv.pool_after {
            if !hw.is_multiple_of(2) {
                diags.push(
                    Diagnostic::error(
                        Code::OddPoolExtent,
                        format!("{name}.convs[{i}].pool_after"),
                        format!("2×2 pool after conv{stage} needs an even extent, got {hw}"),
                    )
                    .with_help("drop the pool or adjust the input size"),
                );
                spatial_ok = false;
                break;
            }
            hw /= 2;
        }
    }

    // Flattened feature count feeding the dense head.
    if spatial_ok {
        let last_c = spec.convs.last().map(|c| c.c_out).unwrap_or(3);
        let flat = last_c
            .checked_mul(hw)
            .and_then(|v| v.checked_mul(hw))
            .unwrap_or(usize::MAX);
        if let Some(fc0) = spec.fcs.first() {
            if fc0.f_in != flat {
                diags.push(
                    Diagnostic::error(
                        Code::FlattenMismatch,
                        format!("{name}.fcs[0].f_in"),
                        format!(
                            "conv trunk flattens to {last_c}×{hw}×{hw} = {flat} features \
                             but fc1 expects {}",
                            fc0.f_in
                        ),
                    )
                    .with_help(format!("set fcs[0].f_in = {flat}")),
                );
            }
        }
    }

    // FC chaining and head width.
    for (i, w) in spec.fcs.windows(2).enumerate() {
        if w[0].f_out != w[1].f_in {
            let j = i.saturating_add(1);
            diags.push(Diagnostic::error(
                Code::FcChainMismatch,
                format!("{name}.fcs[{j}].f_in"),
                format!(
                    "fc{} emits {} features but fc{} expects {}",
                    j,
                    w[0].f_out,
                    j.saturating_add(1),
                    w[1].f_in
                ),
            ));
        }
    }
    if let Some(last) = spec.fcs.last() {
        if last.f_out != spec.classes {
            let i = spec.fcs.len().saturating_sub(1);
            diags.push(Diagnostic::error(
                Code::HeadWidthMismatch,
                format!("{name}.fcs[{i}].f_out"),
                format!(
                    "classifier head emits {} logits but the task has {} classes",
                    last.f_out, spec.classes
                ),
            ));
        }
    }

    // PE/SIMD vector lengths.
    let n_layers = spec.convs.len().saturating_add(spec.fcs.len());
    if spec.pe.len() != n_layers {
        diags.push(Diagnostic::error(
            Code::PeVectorLength,
            format!("{name}.pe"),
            format!(
                "PE vector has {} entries for {n_layers} compute layers",
                spec.pe.len()
            ),
        ));
    }
    if spec.simd.len() != n_layers {
        diags.push(Diagnostic::error(
            Code::SimdVectorLength,
            format!("{name}.simd"),
            format!(
                "SIMD vector has {} entries for {n_layers} compute layers",
                spec.simd.len()
            ),
        ));
    }

    if !diags.is_empty() {
        return ShapeAnalysis {
            diagnostics: diags,
            plan: None,
        };
    }

    // Consistent graph: lay out the hardware stages deploy() would build.
    let mut plan = Vec::new();
    let mut hw = spec.input_size;
    let mut pool_idx = 0usize;
    for (i, conv) in spec.convs.iter().enumerate() {
        let oh = hw.saturating_sub(k.saturating_sub(1));
        let stage_no = i.saturating_add(1);
        plan.push(StagePlan {
            name: format!("conv{stage_no}"),
            kind: if i == 0 {
                StageKind::ConvFixed
            } else {
                StageKind::ConvBinary
            },
            rows: conv.c_out,
            cols: conv
                .c_in
                .checked_mul(k)
                .and_then(|v| v.checked_mul(k))
                .unwrap_or(usize::MAX),
            vectors: oh.saturating_mul(oh),
            pe: spec.pe[i],
            simd: spec.simd[i],
            layer_index: Some(i),
        });
        hw = oh;
        if conv.pool_after {
            pool_idx = pool_idx.saturating_add(1);
            hw /= 2;
            plan.push(StagePlan {
                name: format!("pool{pool_idx}"),
                kind: StageKind::Pool,
                rows: 0,
                cols: 0,
                vectors: hw.saturating_mul(hw),
                pe: 1,
                simd: 1,
                layer_index: None,
            });
        }
    }
    let n_fc = spec.fcs.len();
    for (i, fc) in spec.fcs.iter().enumerate() {
        let li = spec.convs.len().saturating_add(i);
        plan.push(StagePlan {
            name: format!("fc{}", i.saturating_add(1)),
            kind: if i.saturating_add(1) < n_fc {
                StageKind::DenseBinary
            } else {
                StageKind::DenseLogits
            },
            rows: fc.f_out,
            cols: fc.f_in,
            vectors: 1,
            pe: spec.pe[li],
            simd: spec.simd[li],
            layer_index: Some(li),
        });
    }

    ShapeAnalysis {
        diagnostics: diags,
        plan: Some(plan),
    }
}

/// A 2-conv/2-fc toy spec that is fully consistent (shared test fixture).
#[cfg(test)]
pub(crate) fn toy_spec() -> ArchSpec {
    ArchSpec {
        name: "toy".into(),
        input_size: 8,
        kernel: 3,
        classes: 4,
        convs: vec![
            ConvSpec {
                c_in: 3,
                c_out: 8,
                pool_after: false,
            },
            ConvSpec {
                c_in: 8,
                c_out: 8,
                pool_after: true,
            },
        ],
        fcs: vec![
            FcSpec {
                f_in: 32,
                f_out: 16,
            },
            FcSpec { f_in: 16, f_out: 4 },
        ],
        pe: vec![2, 4, 2, 1],
        simd: vec![3, 8, 8, 4],
        dsp_offload: false,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;

    #[test]
    fn consistent_spec_plans_all_stages() {
        let a = infer_shapes(&toy_spec());
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        let plan = a.plan.unwrap();
        // conv1, conv2, pool1, fc1, fc2.
        assert_eq!(plan.len(), 5);
        assert_eq!(plan[0].kind, StageKind::ConvFixed);
        assert_eq!(plan[2].kind, StageKind::Pool);
        assert_eq!(plan[4].kind, StageKind::DenseLogits);
        // 8 → 6 → 4 → pool 2; flat = 8·2·2 = 32 = fc1 fan-in.
        assert_eq!(plan[1].vectors, 16); // 4×4 windows
        assert_eq!(plan[2].vectors, 4); // 2×2 pooled pixels
        assert_eq!(plan[3].cols, 32);
        // Weight bits: conv1 8·27, conv2 8·72, fc1 16·32, fc2 4·16.
        assert_eq!(plan[0].weight_bits(), 8 * 27);
        assert_eq!(plan[2].weight_bits(), 0);
    }

    #[test]
    fn broken_conv_chain_is_localized() {
        let mut s = toy_spec();
        s.convs[1].c_in = 5;
        let a = infer_shapes(&s);
        assert!(a.plan.is_none());
        let d = &a.diagnostics[0];
        assert_eq!(d.code, Code::ConvChainMismatch);
        assert_eq!(d.location, "toy.convs[1].c_in");
        assert!(d.message.contains("8 channels"));
        assert!(d.help.as_deref().unwrap().contains("= 8"));
    }

    #[test]
    fn odd_pool_and_underflow_detected() {
        let mut s = toy_spec();
        s.input_size = 7; // 7→5→3: pool on odd 3.
        let a = infer_shapes(&s);
        assert!(a.diagnostics.iter().any(|d| d.code == Code::OddPoolExtent));

        let mut s = toy_spec();
        s.input_size = 4; // 4→2: below the 3×3 kernel for conv2.
        let a = infer_shapes(&s);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::SpatialUnderflow));
    }

    #[test]
    fn fc_head_checks() {
        let mut s = toy_spec();
        s.fcs[1].f_in = 99;
        let a = infer_shapes(&s);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::FcChainMismatch));

        let mut s = toy_spec();
        s.fcs[1].f_out = 5;
        let a = infer_shapes(&s);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::HeadWidthMismatch));

        let mut s = toy_spec();
        s.fcs[0].f_in = 31;
        let a = infer_shapes(&s);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::FlattenMismatch));
    }

    #[test]
    fn vector_length_checks() {
        let mut s = toy_spec();
        s.pe.pop();
        let a = infer_shapes(&s);
        assert!(a.diagnostics.iter().any(|d| d.code == Code::PeVectorLength));

        let mut s = toy_spec();
        s.simd.push(1);
        let a = infer_shapes(&s);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::SimdVectorLength));
    }

    #[test]
    fn cycles_use_ceiling_division_and_detect_overflow() {
        let p = StagePlan {
            name: "x".into(),
            kind: StageKind::ConvBinary,
            rows: 65,
            cols: 100,
            vectors: 49,
            pe: 16,
            simd: 32,
            layer_index: Some(0),
        };
        assert_eq!(p.cycles_per_frame(), Some(5 * 4 * 49));
        let huge = StagePlan {
            rows: usize::MAX,
            cols: usize::MAX,
            vectors: usize::MAX,
            pe: 1,
            simd: 1,
            ..p
        };
        assert_eq!(huge.cycles_per_frame(), None);
    }
}
