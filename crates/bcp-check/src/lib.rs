//! Static model/accelerator verifier for BinaryCoP designs.
//!
//! Everything here runs *before* any weights are packed or hardware stages
//! are constructed: a broken architecture should be rejected with a typed,
//! localized diagnostic — never an `assert!` panic deep inside `deploy()`.
//! Five analyses cooperate, all funnelling into the [`diag`] engine's
//! stable `BCP0xx` codes:
//!
//! 1. **Shape inference** ([`graph`]) — walks the conv trunk and dense head
//!    of an [`ArchSpec`], localizing every chain/flatten/head mismatch, and
//!    lays out the hardware stages `deploy()` would build.
//! 2. **Folding legality** — PE must divide each layer's output neurons and
//!    SIMD its fan-in, and both must be positive.
//! 3. **Cycle budgets** — each stage's cycles/frame (ceiling-division fold
//!    arithmetic, overflow-checked) against the `target_fps` budget.
//! 4. **Rate balance / FIFO deadlock** — the tandem-queue discrete-event
//!    model (`bcp_finn::cyclesim`) replayed on the planned service times;
//!    zero-capacity FIFOs, back-pressure throttling, and starved stages.
//! 5. **Resource & threshold soundness** — the shared Table II estimator
//!    against the device budget, and (for built pipelines) every folded
//!    batch-norm threshold against its accumulator's reachable range.
//!
//! Entry points: [`check_arch`] for a pre-deployment architecture
//! description, [`check_pipeline`] for a built `bcp_finn::Pipeline`.
//! `binarycop` calls these from `Arch::try_validate` / `deploy` and the
//! `bcp check` CLI subcommand.

#![forbid(unsafe_code)]
#![warn(clippy::arithmetic_side_effects)]

pub mod analyses;
pub mod audit;
pub mod callgraph;
pub mod diag;
pub mod graph;
pub mod lint;
mod srcmodel;

pub use diag::{Code, Diagnostic, Report, Severity};
pub use graph::{infer_shapes, ArchSpec, ConvSpec, FcSpec, ShapeAnalysis, StageKind, StagePlan};

use bcp_finn::device::{Device, Z7010, Z7020};
use bcp_finn::perf::{ClockModel, CLOCK_100MHZ};
use bcp_finn::pipeline::{Pipeline, Stage};

/// Knobs for a verification run.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Device the resource-fit analysis runs against; `None` means the
    /// design's paper target device ([`ArchSpec::target_device`]).
    pub device: Option<Device>,
    /// Frame-rate the cycle-budget analysis must sustain. The paper's
    /// camera scenario needs real-time video, so the default is 30 fps —
    /// far below the ~6400 fps the dimensioned designs reach, but the
    /// budget that *must* hold for the application to work.
    pub target_fps: f64,
    /// Inter-stage FIFO depth for the rate/deadlock analysis.
    pub fifo_depth: usize,
    /// Clock model (100 MHz for every BinaryCoP prototype).
    pub clock: ClockModel,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            device: None,
            target_fps: 30.0,
            fifo_depth: 4,
            clock: CLOCK_100MHZ,
        }
    }
}

impl ArchSpec {
    /// The device this design targets in the paper: the Z7010 for the
    /// DSP-offloaded μ-CNV (Sec. IV-A, OrthrusPE), the Z7020 otherwise.
    /// Resource overruns on the target are errors; on any other device
    /// they are expected and degrade to warnings.
    pub fn target_device(&self) -> Device {
        if self.dsp_offload {
            Z7010
        } else {
            Z7020
        }
    }
}

/// Statically verify an architecture description. Runs shape inference,
/// folding legality, cycle budgets, rate balance, and resource fit; the
/// returned [`Report`] is clean iff a pipeline may be constructed.
pub fn check_arch(spec: &ArchSpec, cfg: &CheckConfig) -> Report {
    let target = spec.target_device();
    let device = cfg.device.unwrap_or(target);
    let mut report = Report::new(&spec.name, device.name, target.name);
    analyses::check_config(cfg, &mut report.diagnostics);

    let shapes = graph::infer_shapes(spec);
    report.diagnostics.extend(shapes.diagnostics);
    let Some(plan) = shapes.plan else {
        return report; // shape errors make the later analyses meaningless
    };

    analyses::check_folding(&spec.name, &plan, &mut report.diagnostics);
    if let Some(service) = analyses::check_cycles(&spec.name, &plan, cfg, &mut report.diagnostics) {
        analyses::check_rates(&spec.name, &plan, &service, cfg, &mut report.diagnostics);
    }
    analyses::check_resources(
        &spec.name,
        &plan,
        spec.dsp_offload,
        &device,
        &target,
        &mut report.diagnostics,
    );
    report
}

/// Statically verify a *built* pipeline: the same folding/cycle/rate/
/// resource analyses as [`check_arch`] (on a plan derived from the real
/// stages), plus threshold soundness, which needs the folded integer
/// thresholds to exist.
pub fn check_pipeline(pipeline: &Pipeline, dsp_offload: bool, cfg: &CheckConfig) -> Report {
    let target = if dsp_offload { Z7010 } else { Z7020 };
    let device = cfg.device.unwrap_or(target);
    let subject = pipeline.name().to_owned();
    let mut report = Report::new(&subject, device.name, target.name);
    analyses::check_config(cfg, &mut report.diagnostics);

    let plan = plan_from_pipeline(pipeline);
    analyses::check_folding(&subject, &plan, &mut report.diagnostics);
    if let Some(service) = analyses::check_cycles(&subject, &plan, cfg, &mut report.diagnostics) {
        analyses::check_rates(&subject, &plan, &service, cfg, &mut report.diagnostics);
    }
    analyses::check_resources(
        &subject,
        &plan,
        dsp_offload,
        &device,
        &target,
        &mut report.diagnostics,
    );
    analyses::check_thresholds(&subject, pipeline, &mut report.diagnostics);
    report
}

/// Derive [`StagePlan`]s from a built pipeline, so the plan-based analyses
/// see exactly the stages the hardware would run. `layer_index` counts
/// compute layers only, matching the `pe`/`simd` vector indexing of the
/// architecture that produced the pipeline.
fn plan_from_pipeline(pipeline: &Pipeline) -> Vec<StagePlan> {
    let mut compute_idx = 0usize;
    pipeline
        .stages()
        .iter()
        .map(|s| {
            let (_, oh, ow) = s.out_dims();
            let f = s.folding();
            let (kind, rows, cols, vectors) = match s {
                Stage::ConvFixed { mvtu, .. } => (
                    StageKind::ConvFixed,
                    mvtu.rows(),
                    mvtu.cols(),
                    oh.saturating_mul(ow),
                ),
                Stage::ConvBinary { mvtu, .. } => (
                    StageKind::ConvBinary,
                    mvtu.rows(),
                    mvtu.cols(),
                    oh.saturating_mul(ow),
                ),
                Stage::PoolOr { .. } => (StageKind::Pool, 0, 0, oh.saturating_mul(ow)),
                Stage::DenseBinary { mvtu, .. } => {
                    (StageKind::DenseBinary, mvtu.rows(), mvtu.cols(), 1)
                }
                Stage::DenseLogits { mvtu, .. } => {
                    (StageKind::DenseLogits, mvtu.rows(), mvtu.cols(), 1)
                }
            };
            let layer_index = if kind == StageKind::Pool {
                None
            } else {
                let i = compute_idx;
                compute_idx = compute_idx.saturating_add(1);
                Some(i)
            };
            StagePlan {
                name: s.name().to_owned(),
                kind,
                rows,
                cols,
                vectors,
                pe: f.pe,
                simd: f.simd,
                layer_index,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};
    use bcp_finn::mvtu::{BinaryMvtu, FixedInputMvtu};
    use bcp_finn::Folding;

    fn w(r: usize, c: usize) -> bcp_bitpack::BitMatrix {
        pack_matrix(r, c, &vec![1.0f32; r * c])
    }

    fn t(r: usize) -> ThresholdUnit {
        ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r])
    }

    fn toy_pipeline() -> Pipeline {
        Pipeline::new(
            "toy-pipe",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(8, 27), t(8), Folding::new(2, 3)),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::ConvBinary {
                    name: "conv2".into(),
                    mvtu: BinaryMvtu::new(w(8, 72), Some(t(8)), Folding::new(4, 8)),
                    k: 3,
                    in_dims: (8, 6, 6),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (8, 4, 4),
                },
                Stage::DenseBinary {
                    name: "fc1".into(),
                    mvtu: BinaryMvtu::new(w(16, 32), Some(t(16)), Folding::new(2, 8)),
                },
                Stage::DenseLogits {
                    name: "fc2".into(),
                    mvtu: BinaryMvtu::new(w(4, 16), None, Folding::new(1, 4)),
                },
            ],
        )
    }

    #[test]
    fn toy_arch_checks_clean() {
        let spec = crate::graph::toy_spec();
        let report = check_arch(&spec, &CheckConfig::default());
        assert!(report.is_clean(), "{}", report.render_text());
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
        assert_eq!(report.device, "XC7Z020");
        assert_eq!(report.target_device, "XC7Z020");
    }

    #[test]
    fn toy_pipeline_checks_clean() {
        let report = check_pipeline(&toy_pipeline(), false, &CheckConfig::default());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn pipeline_plan_reproduces_stage_cycles() {
        let p = toy_pipeline();
        let plan = plan_from_pipeline(&p);
        assert_eq!(plan.len(), p.stages().len());
        for (sp, st) in plan.iter().zip(p.stages()) {
            assert_eq!(
                sp.cycles_per_frame(),
                Some(st.cycles_per_frame()),
                "plan/stage cycle mismatch at {}",
                sp.name
            );
            assert_eq!(sp.weight_bits(), st.weight_bits());
        }
        // Compute layers are indexed skipping pools.
        assert_eq!(plan[2].layer_index, None);
        assert_eq!(plan[3].layer_index, Some(2));
    }

    #[test]
    fn arch_mutations_are_rejected_with_typed_codes() {
        let mut spec = crate::graph::toy_spec();
        spec.pe[1] = 3; // 3 ∤ 8 output channels
        let report = check_arch(&spec, &CheckConfig::default());
        assert!(!report.is_clean());
        assert!(report.has_code(Code::PeNotDivisor));

        let mut spec = crate::graph::toy_spec();
        spec.fcs[0].f_in = 33;
        let report = check_arch(&spec, &CheckConfig::default());
        assert!(report.has_code(Code::FlattenMismatch));
        // Shape errors suppress the downstream analyses entirely.
        assert!(!report.has_code(Code::SimdNotDivisor));
    }

    #[test]
    fn pipeline_threshold_mutation_is_caught() {
        let mut p = toy_pipeline();
        if let Stage::ConvBinary { mvtu, .. } = p.stage_mut(1) {
            // conv2 has 72 inputs: accumulators live in [−72, 72].
            *mvtu = BinaryMvtu::new(
                w(8, 72),
                Some(ThresholdUnit::new(vec![ThresholdChannel::Ge(500); 8])),
                Folding::new(4, 8),
            );
        }
        let report = check_pipeline(&p, false, &CheckConfig::default());
        assert!(report.has_code(Code::ThresholdOutOfRange));
        assert!(!report.is_clean());
    }

    #[test]
    fn device_override_degrades_foreign_overruns_to_warnings() {
        // The toy design fits everything; force a huge one instead.
        let mut spec = crate::graph::toy_spec();
        spec.convs[1].c_out = 512;
        spec.fcs[0].f_in = 512 * 2 * 2;
        spec.pe[1] = 512;
        spec.simd[1] = 72;
        let cfg = CheckConfig {
            device: Some(Z7010),
            ..CheckConfig::default()
        };
        let report = check_arch(&spec, &cfg);
        // Over budget on the Z7010, but the target is the Z7020 → warning.
        assert!(report.has_code(Code::LutOverBudget));
        assert!(report.is_clean(), "{}", report.render_text());
    }
}
