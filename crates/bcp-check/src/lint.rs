//! `bcp lint` — repo-invariant lints for the lock-free serving core.
//!
//! Where the rest of this crate verifies *designs*, this module verifies
//! the *repository*: source-level invariants that `rustc`/`clippy` do not
//! know about but the concurrency story depends on. All findings funnel
//! into the same [`diag`](crate::diag) machinery as the design checks —
//! stable `BCP1xx` codes, `--json` output, exit-1 on violations in CI.
//!
//! | code     | invariant                                                     |
//! |----------|---------------------------------------------------------------|
//! | `BCP100` | every atomic `Ordering::*` carries a `// ordering:` comment   |
//! | `BCP101` | no `unsafe` outside the audited allowlist                     |
//! | `BCP102` | no `unwrap()` on channel send/recv in serving hot paths       |
//! | `BCP103` | every metric name emitted in code appears in README tables    |
//! | `BCP110` | the lint pass itself failed to run as configured              |
//!
//! Scope: non-test code under each crate's `src/` (and the root crate's
//! `src/`). Test modules — everything at and below the first
//! `#[cfg(test)]`/`#[cfg(all(test, …))]` line — are skipped: tests may
//! deliberately violate invariants (the model suite's seeded-bug ring
//! being the canonical example). `vendor/` is excluded: vendored code is
//! audited at import time, not continuously.

use crate::diag::{Code, Diagnostic, Report};
use crate::srcmodel::{code_lines, first_test_line, SrcLine};
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe` (`BCP101`). Every entry is a
/// repo-relative path whose unsafe blocks have been audited and carry
/// `SAFETY:` comments; the lock-free ring is model-checked and
/// Miri-checked on top.
const UNSAFE_ALLOWLIST: &[&str] = &["crates/bcp-trace/src/ring.rs"];

/// Crates whose `src/` is a serving hot path for the purposes of
/// `BCP102`: a panicking channel endpoint there can take down a worker,
/// the batcher, or the collector mid-request.
const HOT_PATH_CRATES: &[&str] = &["crates/bcp-serve/src", "crates/bcp-trace/src"];

/// How many lines above an `Ordering::*` use a `// ordering:` comment
/// may sit (same line also counts). Five covers a multi-line
/// `compare_exchange` call with one justification above it.
const ORDERING_LOOKBACK: usize = 5;

/// Lint the workspace rooted at `root` (the directory containing the
/// top-level `Cargo.toml` and `README.md`). Never panics: I/O problems
/// become `BCP110` diagnostics.
pub fn lint_workspace(root: &Path) -> Report {
    let mut report = Report::new("workspace", "-", "-");
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    match std::fs::read_dir(root.join("crates")) {
        Ok(entries) => {
            for e in entries.flatten() {
                roots.push(e.path().join("src"));
            }
        }
        Err(e) => {
            report.push(Diagnostic::error(
                Code::LintConfigError,
                root.join("crates").display().to_string(),
                format!("cannot enumerate workspace crates: {e}"),
            ));
        }
    }
    for dir in roots {
        collect_rs_files(&dir, &mut files);
    }
    files.sort();

    let readme_patterns = match std::fs::read_to_string(root.join("README.md")) {
        Ok(readme) => readme_metric_patterns(&readme),
        Err(e) => {
            report.push(Diagnostic::error(
                Code::LintConfigError,
                root.join("README.md").display().to_string(),
                format!("cannot read README for the metric-name lint: {e}"),
            ));
            Vec::new()
        }
    };
    let have_readme = !readme_patterns.is_empty();

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                report.push(Diagnostic::error(
                    Code::LintConfigError,
                    rel,
                    format!("cannot read source file: {e}"),
                ));
                continue;
            }
        };
        lint_file(
            &rel,
            &src,
            have_readme.then_some(&readme_patterns),
            &mut report,
        );
    }
    report
}

/// Lint one file's source. `readme_patterns` is `None` when the README
/// was unreadable (the metric lint is skipped; `BCP110` already fired).
fn lint_file(
    rel: &str,
    src: &str,
    readme_patterns: Option<&Vec<Vec<DocSeg>>>,
    report: &mut Report,
) {
    let lines = code_lines(src);
    let test_start = first_test_line(&lines);

    for (i, line) in lines.iter().enumerate() {
        if i >= test_start {
            break;
        }
        let lineno = i.saturating_add(1);
        if has_atomic_ordering(&line.code) && !has_ordering_comment(&lines, i) {
            report.push(
                Diagnostic::error(
                    Code::UnjustifiedOrdering,
                    format!("{rel}:{lineno}"),
                    "atomic Ordering use without a `// ordering:` justification within 5 lines",
                )
                .with_help("document WHY this ordering is sufficient, not what it does"),
            );
        }
        if has_unsafe_token(&line.code) && !UNSAFE_ALLOWLIST.contains(&rel) {
            report.push(
                Diagnostic::error(
                    Code::UnsafeOutsideAllowlist,
                    format!("{rel}:{lineno}"),
                    "unsafe outside the audited allowlist",
                )
                .with_help(
                    "move the unsafety behind an allowlisted module, or extend \
                     UNSAFE_ALLOWLIST after an audit",
                ),
            );
        }
        if HOT_PATH_CRATES.iter().any(|p| rel.starts_with(p)) && is_channel_unwrap(&line.code) {
            report.push(
                Diagnostic::error(
                    Code::HotPathChannelUnwrap,
                    format!("{rel}:{lineno}"),
                    "unwrap() on a channel send/recv in a serving hot path",
                )
                .with_help("a disconnected peer is an expected teardown state — handle the Err"),
            );
        }
    }

    if let Some(patterns) = readme_patterns {
        let head: String = lines[..test_start]
            .iter()
            .map(|l| format!("{}\n", l.with_strings))
            .collect();
        for (name, lineno) in emitted_metric_names(&head) {
            let segs = code_metric_segments(&name);
            if !patterns.iter().any(|p| metric_matches(&segs, p)) {
                report.push(
                    Diagnostic::error(
                        Code::UndocumentedMetric,
                        format!("{rel}:{lineno}"),
                        format!("metric `{name}` is not documented in the README metrics tables"),
                    )
                    .with_help("add it to the Telemetry table in README.md"),
                );
            }
        }
    }
}

// ------------------------------------------------------ token matching --

fn has_atomic_ordering(code: &str) -> bool {
    ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .any(|v| code.contains(&format!("Ordering::{v}")))
}

fn has_ordering_comment(lines: &[SrcLine], at: usize) -> bool {
    let from = at.saturating_sub(ORDERING_LOOKBACK);
    lines[from..=at]
        .iter()
        .any(|l| l.comment.trim_start().starts_with("ordering:"))
}

fn has_unsafe_token(code: &str) -> bool {
    // Word-boundary match: `unsafe` as its own token.
    code.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|w| w == "unsafe")
}

fn is_channel_unwrap(code: &str) -> bool {
    code.contains(".unwrap()")
        && [
            ".send(",
            ".try_send(",
            ".recv()",
            ".try_recv()",
            ".recv_timeout(",
        ]
        .iter()
        .any(|p| code.contains(p))
}

// ------------------------------------------------------ metric matching --

/// A segment of a documented metric pattern from the README.
#[derive(Debug, PartialEq)]
enum DocSeg {
    /// Literal dot-separated segment.
    Lit(String),
    /// `<stage>` / `<i>`-style placeholder: exactly one segment.
    Any,
}

/// A segment of a metric name as emitted in code.
#[derive(Debug, PartialEq)]
enum CodeSeg {
    Lit(String),
    /// A `format!` interpolation (`{w}`, `{base}`, `{}`): one or MORE
    /// segments, since the interpolated value may itself contain dots.
    Interp,
}

/// Extract `(metric-name, line-number)` pairs from non-test source:
/// string (or `format!` template) arguments of `.counter(` / `.gauge(` /
/// `.histogram(`. Dynamic (non-literal) names are not extractable and
/// are vouched for by the caller that builds them from documented parts.
fn emitted_metric_names(code_with_strings: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, line) in code_with_strings.lines().enumerate() {
        let lineno = i.saturating_add(1);
        let mut rest = line;
        while let Some(pos) = ["counter(", "gauge(", "histogram("]
            .iter()
            .filter_map(|m| rest.find(&format!(".{m}")).map(|p| (p, m.len())))
            .min()
        {
            let (at, mlen) = pos;
            let after = &rest[at.saturating_add(mlen).saturating_add(1)..];
            let arg = after
                .trim_start()
                .trim_start_matches('&')
                .trim_start_matches("format!(")
                .trim_start();
            if let Some(stripped) = arg.strip_prefix('"') {
                if let Some(end) = stripped.find('"') {
                    out.push((stripped[..end].to_string(), lineno));
                }
            }
            rest = after;
        }
    }
    out
}

/// Split an emitted metric name into match segments.
fn code_metric_segments(name: &str) -> Vec<CodeSeg> {
    name.split('.')
        .map(|s| {
            if s.contains('{') {
                CodeSeg::Interp
            } else {
                CodeSeg::Lit(s.to_string())
            }
        })
        .collect()
}

/// Pull every backtick-quoted, brace-expanded, dotted name out of the
/// README as a documented metric pattern. Non-metric backtick spans
/// (crate names, CLI flags) never match a real emission, so
/// over-collecting here is harmless.
fn readme_metric_patterns(readme: &str) -> Vec<Vec<DocSeg>> {
    let mut out = Vec::new();
    for span in readme.split('`').skip(1).step_by(2) {
        if !span.contains('.') || span.contains(' ') {
            continue;
        }
        for expanded in brace_expand(span) {
            let segs: Vec<DocSeg> = expanded
                .split('.')
                .map(|s| {
                    if s.starts_with('<') && s.ends_with('>') {
                        DocSeg::Any
                    } else {
                        DocSeg::Lit(s.to_string())
                    }
                })
                .collect();
            if !segs.is_empty() {
                out.push(segs);
            }
        }
    }
    out
}

/// Expand `a.{x,y}.b` into `a.x.b`, `a.y.b` (repeatedly, for multiple
/// groups). A name with unbalanced braces is returned as-is.
fn brace_expand(name: &str) -> Vec<String> {
    let (Some(open), Some(close)) = (name.find('{'), name.find('}')) else {
        return vec![name.to_string()];
    };
    if close < open {
        return vec![name.to_string()];
    }
    let mut out = Vec::new();
    for alt in name[open.saturating_add(1)..close].split(',') {
        let candidate = format!(
            "{}{}{}",
            &name[..open],
            alt,
            &name[close.saturating_add(1)..]
        );
        out.extend(brace_expand(&candidate));
    }
    out
}

/// Whether an emitted name (code side) matches a documented pattern.
fn metric_matches(code: &[CodeSeg], doc: &[DocSeg]) -> bool {
    match (code.first(), doc.first()) {
        (None, None) => true,
        (Some(CodeSeg::Lit(c)), Some(DocSeg::Lit(d))) => {
            c == d && metric_matches(&code[1..], &doc[1..])
        }
        (Some(CodeSeg::Lit(_)), Some(DocSeg::Any)) => metric_matches(&code[1..], &doc[1..]),
        (Some(CodeSeg::Interp), Some(_)) => {
            // An interpolation spans one or more documented segments.
            (1..=doc.len()).any(|k| metric_matches(&code[1..], &doc[k..]))
        }
        _ => false,
    }
}

// -------------------------------------------------------- file walking --

/// Recursively collect `.rs` files under `dir`, skipping `tests/`,
/// `benches/` and `examples/` subtrees (integration tests may violate
/// invariants on purpose). A missing `dir` is fine — not every crate
/// has the standard layout.
pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !matches!(name.as_ref(), "tests" | "benches" | "examples" | "target") {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;

    fn lint_src(rel: &str, src: &str) -> Report {
        let mut r = Report::new("test", "-", "-");
        lint_file(rel, src, None, &mut r);
        r
    }

    #[test]
    fn unjustified_ordering_is_flagged_and_justified_is_not() {
        let bad = "fn f(x: &AtomicUsize) { x.load(Ordering::Acquire); }\n";
        let r = lint_src("crates/x/src/lib.rs", bad);
        assert!(r.has_code(Code::UnjustifiedOrdering), "{}", r.render_text());

        let good = "fn f(x: &AtomicUsize) {\n    // ordering: Acquire — pairs with the Release publish.\n    x.load(Ordering::Acquire);\n}\n";
        let r = lint_src("crates/x/src/lib.rs", good);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn ordering_lookback_is_bounded() {
        let far = format!(
            "// ordering: too far away\n{}x.load(Ordering::Relaxed);\n",
            "let _ = 0;\n".repeat(ORDERING_LOOKBACK + 1)
        );
        let r = lint_src("crates/x/src/lib.rs", &far);
        assert!(r.has_code(Code::UnjustifiedOrdering));
    }

    #[test]
    fn ordering_in_comments_strings_and_tests_is_ignored() {
        let src = concat!(
            "// Ordering::SeqCst in prose is fine.\n",
            "const MSG: &str = \"Ordering::SeqCst\";\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn f(x: &AtomicUsize) { x.load(Ordering::SeqCst); }\n",
            "}\n"
        );
        let r = lint_src("crates/x/src/lib.rs", src);
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn unsafe_respects_the_allowlist() {
        let src = "unsafe { core::hint::unreachable_unchecked() }\n";
        let r = lint_src("crates/x/src/lib.rs", src);
        assert!(r.has_code(Code::UnsafeOutsideAllowlist));
        let r = lint_src("crates/bcp-trace/src/ring.rs", src);
        assert!(
            !r.has_code(Code::UnsafeOutsideAllowlist),
            "{}",
            r.render_text()
        );
        // `unsafe` inside a string or an identifier is not the keyword.
        let r = lint_src("crates/x/src/lib.rs", "let not_unsafe = \"unsafe\";\n");
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn channel_unwrap_is_hot_path_scoped() {
        let src = "tx.send(v).unwrap();\n";
        let r = lint_src("crates/bcp-serve/src/engine.rs", src);
        assert!(r.has_code(Code::HotPathChannelUnwrap));
        let r = lint_src(
            "crates/bcp-trace/src/tracer.rs",
            "let v = rx.recv().unwrap();\n",
        );
        assert!(r.has_code(Code::HotPathChannelUnwrap));
        // Same code outside the hot-path crates is allowed…
        let r = lint_src("crates/bcp-nn/src/train.rs", src);
        assert!(r.is_clean(), "{}", r.render_text());
        // …and non-channel unwraps are not this lint's business.
        let r = lint_src("crates/bcp-serve/src/engine.rs", "let x = opt.unwrap();\n");
        assert!(r.is_clean(), "{}", r.render_text());
    }

    #[test]
    fn metric_names_brace_expand_and_wildcard_match() {
        let patterns = readme_metric_patterns(
            "| `serve.{requests,ok}` and `serve.worker.<i>.batches` counters; `stream.<stage>.{tokens,busy_ns}` |",
        );
        let ok = |name: &str| {
            let segs = code_metric_segments(name);
            patterns.iter().any(|p| metric_matches(&segs, p))
        };
        assert!(ok("serve.requests"));
        assert!(ok("serve.ok"));
        assert!(ok("serve.worker.{w}.batches"));
        assert!(ok("{base}.tokens"), "multi-segment interpolation");
        assert!(!ok("serve.bogus"));
        assert!(!ok("serve.worker.{w}.bogus"));
    }

    #[test]
    fn undocumented_metric_is_flagged() {
        let patterns = readme_metric_patterns("`serve.requests`");
        let mut r = Report::new("t", "-", "-");
        lint_file(
            "crates/x/src/lib.rs",
            "fn m(r: &Registry) { r.counter(\"serve.requests\").inc(); }\n",
            Some(&patterns),
            &mut r,
        );
        assert!(r.is_clean(), "{}", r.render_text());
        let mut r = Report::new("t", "-", "-");
        lint_file(
            "crates/x/src/lib.rs",
            "fn m(r: &Registry) { r.counter(&format!(\"serve.mystery.{x}\")).inc(); }\n",
            Some(&patterns),
            &mut r,
        );
        assert!(r.has_code(Code::UndocumentedMetric), "{}", r.render_text());
    }

    #[test]
    fn missing_root_reports_lint_config_error_not_panic() {
        let r = lint_workspace(Path::new("/nonexistent/bcp-lint-test"));
        assert!(r.has_code(Code::LintConfigError));
    }
}
