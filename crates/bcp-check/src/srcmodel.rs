//! Shared line-oriented source model for the repo-level analyses.
//!
//! Both the invariant lints ([`lint`](crate::lint)) and the hot-path
//! audit ([`audit`](crate::audit)) scan Rust source textually rather
//! than through a full parser: the invariants they check are lexical
//! (tokens, comments, annotations), and a line model that strips
//! comments and blanks string contents is enough to make the matching
//! sound. This module owns that model so the two passes agree on what
//! counts as code.

/// One source line split into executable code and its trailing comment,
/// with string-literal *contents* blanked in `code` (so `"unsafe"` in a
/// message never triggers a lint) but preserved in `with_strings`.
pub(crate) struct SrcLine {
    /// Code with comments removed and string contents replaced by spaces.
    pub(crate) code: String,
    /// The line's comment text (everything after `//`), if any.
    pub(crate) comment: String,
    /// Code with string contents preserved (for metric extraction).
    pub(crate) with_strings: String,
}

/// Split source into [`SrcLine`]s, tracking block comments and string
/// literals (with escapes) across the whole file. Raw strings are not
/// handled; the workspace does not use them in linted positions.
pub(crate) fn code_lines(src: &str) -> Vec<SrcLine> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    for raw in src.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut with_strings = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut chars = raw.chars().peekable();
        let mut in_string = false;
        let mut in_char = false;
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            if in_string || in_char {
                with_strings.push(c);
                if c == '\\' {
                    if let Some(esc) = chars.next() {
                        with_strings.push(esc);
                    }
                } else if in_string && c == '"' {
                    code.push('"');
                    in_string = false;
                } else if in_char && c == '\'' {
                    in_char = false;
                } else {
                    code.push(' ');
                }
                continue;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => {
                    comment = chars.collect::<String>();
                    comment.remove(0);
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                }
                '"' => {
                    in_string = true;
                    code.push('"');
                    with_strings.push('"');
                }
                // A lifetime/label tick is followed by an identifier; a
                // char literal tick is not ambiguous in linted patterns,
                // so only treat `'x'`-shaped sequences as char literals.
                '\'' => {
                    let mut ahead = chars.clone();
                    let is_char = matches!(
                        (ahead.next(), ahead.next()),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char {
                        in_char = true;
                    }
                    code.push(' ');
                    with_strings.push(' ');
                }
                _ => {
                    code.push(c);
                    with_strings.push(c);
                }
            }
        }
        out.push(SrcLine {
            code,
            comment,
            with_strings,
        });
    }
    out
}

/// Index of the first line opening a test module (`#[cfg(test)]` or
/// `#[cfg(all(test, …))]`); everything from there on is skipped. By
/// workspace convention test modules close out their files.
pub(crate) fn first_test_line(lines: &[SrcLine]) -> usize {
    lines
        .iter()
        .position(|l| {
            let t = l.code.trim_start();
            t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test")
        })
        .unwrap_or(lines.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_but_preserved_in_with_strings() {
        let lines = code_lines("let m = \"unsafe unwrap()\"; // trailing\n");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].with_strings.contains("unsafe unwrap()"));
        assert_eq!(lines[0].comment.trim(), "trailing");
    }

    #[test]
    fn block_comments_span_lines() {
        let lines = code_lines("a();\n/* b();\nc(); */ d();\n");
        assert!(lines[0].code.contains("a()"));
        assert!(!lines[1].code.contains("b()"));
        assert!(!lines[2].code.contains("c()"));
        assert!(lines[2].code.contains("d()"));
    }

    #[test]
    fn test_module_boundary_is_found() {
        let lines = code_lines("fn a() {}\n#[cfg(test)]\nmod tests {}\n");
        assert_eq!(first_test_line(&lines), 1);
        let lines = code_lines("fn a() {}\n");
        assert_eq!(first_test_line(&lines), 1);
    }
}
