//! Mutation tests for the hot-path audit (`bcp audit`): each test seeds
//! exactly one violation into an otherwise-clean miniature workspace and
//! pins the diagnostic to its BCP2xx code, its `file:line` location, its
//! message text, and its call-chain witness. A detector that silently
//! stops firing — or fires with a useless witness — fails here, not in
//! production.

use bcp_check::audit::audit_sources;
use bcp_check::{Code, Diagnostic, Report};

/// The single diagnostic carrying `code`, asserting there is exactly one.
fn only(report: &Report, code: Code) -> &Diagnostic {
    let hits: Vec<&Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {code:?} finding, got:\n{}",
        report.render_text()
    );
    hits[0]
}

fn help(d: &Diagnostic) -> &str {
    d.help.as_deref().unwrap_or("")
}

#[test]
fn bcp200_panic_site_in_callee_carries_cross_file_witness() {
    let report = audit_sources(&[
        (
            "crates/x/src/engine.rs",
            "// bcp:hot-path — dispatch entry\n\
             pub fn dispatch(v: Option<u64>) -> u64 {\n\
                 stage(v)\n\
             }\n",
        ),
        (
            "crates/x/src/kernel.rs",
            "pub fn stage(v: Option<u64>) -> u64 {\n\
                 v.unwrap()\n\
             }\n",
        ),
    ]);
    assert!(!report.is_clean());
    let d = only(&report, Code::HotPathPanic);
    assert_eq!(d.location, "crates/x/src/kernel.rs:2");
    assert!(
        d.message
            .contains("panic site `.unwrap()` on the audited hot path"),
        "message: {}",
        d.message
    );
    assert!(
        help(d).contains("reachable from root `dispatch` via `stage`"),
        "witness missing from help: {}",
        help(d)
    );
    assert!(help(d).contains("audit: allow(panic)"), "help: {}", help(d));
}

#[test]
fn bcp200_witness_chain_runs_root_to_leaf() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root() { mid() }\n\
         fn mid() { leaf() }\n\
         fn leaf() { panic!(\"boom\") }\n",
    )]);
    let d = only(&report, Code::HotPathPanic);
    assert_eq!(d.location, "crates/x/src/lib.rs:4");
    assert!(
        help(d).contains("reachable from root `root` via `mid` → `leaf`"),
        "help: {}",
        help(d)
    );
}

#[test]
fn bcp201_unchecked_indexing_in_root_body() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root(xs: &[u64], i: usize) -> u64 {\n\
             xs[i]\n\
         }\n",
    )]);
    let d = only(&report, Code::HotPathIndexing);
    assert_eq!(d.location, "crates/x/src/lib.rs:3");
    assert!(
        d.message.contains("unchecked `[…]` indexing"),
        "message: {}",
        d.message
    );
    assert!(
        help(d).contains("in hot-path root `root`"),
        "a root-body finding gets the root-form witness: {}",
        help(d)
    );
}

#[test]
fn bcp202_division_by_non_constant_names_the_divisor() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root(total: u64, batch: u64) -> u64 {\n\
             total / batch\n\
         }\n",
    )]);
    let d = only(&report, Code::HotPathDivision);
    assert_eq!(d.location, "crates/x/src/lib.rs:3");
    assert!(
        d.message
            .contains("division/modulo by non-constant `batch`"),
        "message: {}",
        d.message
    );
}

#[test]
fn bcp210_heap_allocation_in_reached_method() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "struct Pool;\n\
         impl Pool {\n\
             // bcp:hot-path — per-request checkout\n\
             pub fn checkout(&self) -> Vec<u8> {\n\
                 self.fresh()\n\
             }\n\
             fn fresh(&self) -> Vec<u8> {\n\
                 Vec::new()\n\
             }\n\
         }\n",
    )]);
    let d = only(&report, Code::HotPathAllocation);
    assert_eq!(d.location, "crates/x/src/lib.rs:8");
    assert!(
        d.message.contains("heap allocation `Vec::new`"),
        "message: {}",
        d.message
    );
    assert!(
        help(d).contains("reachable from root `Pool::checkout` via `Pool::fresh`"),
        "help: {}",
        help(d)
    );
}

#[test]
fn bcp220_blocking_lock_on_hot_path() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root(m: &std::sync::Mutex<u64>) -> u64 {\n\
             *m.lock().unwrap()\n\
         }\n",
    )]);
    let d = only(&report, Code::HotPathBlocking);
    assert_eq!(d.location, "crates/x/src/lib.rs:3");
    assert!(
        d.message.contains("blocking call `.lock()`"),
        "message: {}",
        d.message
    );
    // The same line also panics (`unwrap`); both detectors must fire.
    assert!(report.has_code(Code::HotPathPanic));
}

#[test]
fn bcp230_narrowing_cast_names_the_target_type() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root(x: u64) -> u8 {\n\
             x as u8\n\
         }\n",
    )]);
    let d = only(&report, Code::HotPathNarrowingCast);
    assert_eq!(d.location, "crates/x/src/lib.rs:3");
    assert!(
        d.message.contains("narrowing `as u8` cast"),
        "message: {}",
        d.message
    );
}

#[test]
fn widening_cast_is_not_a_finding() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root(x: u8) -> u64 {\n\
             x as u64\n\
         }\n",
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn bcp240_no_roots_refuses_to_pass_vacuously() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "fn quiet() { let _ = Vec::<u8>::new(); }\n",
    )]);
    let d = only(&report, Code::AuditConfigError);
    assert!(
        d.message
            .contains("no `// bcp:hot-path` roots found: the audit would pass vacuously"),
        "message: {}",
        d.message
    );
    // With no roots nothing is reachable, so no BCP2xx body findings —
    // the config error is the only thing keeping this from a false pass.
    assert!(!report.has_code(Code::HotPathAllocation));
    assert!(!report.is_clean());
}

#[test]
fn bcp240_malformed_directives_each_variant() {
    // Unclosed allow.
    let r = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\nfn root() {\n// audit: allow(panic: oops\n    let _ = 1;\n}\n",
    )]);
    assert!(only(&r, Code::AuditConfigError)
        .message
        .contains("unclosed `audit: allow(…)` directive"),);

    // Unknown kind, with the known-kinds help.
    let r = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\nfn root() {\n// audit: allow(everything): please\n    let _ = 1;\n}\n",
    )]);
    let d = only(&r, Code::AuditConfigError);
    assert!(d
        .message
        .contains("unknown audit allow kind(s): everything"));
    assert!(help(d).contains("known kinds: panic, index, div, alloc, block, cast"));

    // Allow without a justification.
    let r = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\nfn root(xs: &[u8]) -> u8 {\n// audit: allow(index)\n    xs[0]\n}\n",
    )]);
    assert!(only(&r, Code::AuditConfigError)
        .message
        .contains("audit allow without a justification"),);

    // `external` without a justification.
    let r = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\nfn root() {\n// audit: external\n    helper();\n}\nfn helper() {}\n",
    )]);
    assert!(only(&r, Code::AuditConfigError)
        .message
        .contains("`audit: external` without a justification"),);

    // `cold` without a justification.
    let r = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\nfn root() {}\n// audit: cold\nfn teardown() {}\n",
    )]);
    assert!(only(&r, Code::AuditConfigError)
        .message
        .contains("`audit: cold` without a justification"),);

    // Unknown directive.
    let r = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\nfn root() {}\n// audit: trustme — honest\nfn other() {}\n",
    )]);
    assert!(only(&r, Code::AuditConfigError)
        .message
        .contains("unknown audit directive"),);
}

#[test]
fn allow_suppresses_only_its_own_kind() {
    // `xs[i]` is allowed, but the `.unwrap()` on the same line is not:
    // a single allow must not blanket the whole line.
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root(xs: &[Option<u64>], i: usize) -> u64 {\n\
             // audit: allow(index): i is pre-masked to capacity\n\
             xs[i].unwrap()\n\
         }\n",
    )]);
    assert!(
        !report.has_code(Code::HotPathIndexing),
        "{}",
        report.render_text()
    );
    let d = only(&report, Code::HotPathPanic);
    assert_eq!(d.location, "crates/x/src/lib.rs:4");
}

#[test]
fn cold_boundary_stops_traversal_before_the_violation() {
    // The panic lives behind an `audit: cold` function: unreachable from
    // the root, so the audit is clean. Deleting the cold marker must
    // resurface it (checked as the second half).
    let cold = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root() { recover() }\n\
         // audit: cold — repair path, never per-request\n\
         fn recover() { deep() }\n\
         fn deep() { panic!(\"repair\") }\n",
    )]);
    assert!(cold.is_clean(), "{}", cold.render_text());

    let hot = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root() { recover() }\n\
         fn recover() { deep() }\n\
         fn deep() { panic!(\"repair\") }\n",
    )]);
    assert!(hot.has_code(Code::HotPathPanic), "{}", hot.render_text());
}

#[test]
fn external_directive_cuts_the_call_edge_on_that_line() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\n\
         fn root() {\n\
             // audit: external — replica compute is audited at its own kernel roots\n\
             replica_compute();\n\
         }\n\
         fn replica_compute() { let _v = vec![0u8; 4]; }\n",
    )]);
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn findings_render_with_code_and_location() {
    let report = audit_sources(&[(
        "crates/x/src/lib.rs",
        "// bcp:hot-path\nfn root(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n",
    )]);
    let text = report.render_text();
    assert!(text.contains("BCP200"), "rendered: {text}");
    assert!(text.contains("crates/x/src/lib.rs:3"), "rendered: {text}");
}
