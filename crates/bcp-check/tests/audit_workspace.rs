//! Self-audit: the workspace's own hot paths must stay clean. This is
//! the same gate CI runs (`bcp audit`), pinned as a test so a violation
//! fails `cargo test` locally before it fails the pipeline.

use bcp_check::audit::audit_workspace;
use bcp_check::Code;
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/bcp-check → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bcp-check sits two levels below the workspace root")
}

#[test]
fn workspace_hot_paths_are_clean() {
    let report = audit_workspace(workspace_root());
    assert!(
        report.is_clean(),
        "the workspace hot-path audit must pass:\n{}",
        report.render_text()
    );
}

#[test]
fn workspace_audit_directives_are_well_formed() {
    let report = audit_workspace(workspace_root());
    assert!(
        !report.has_code(Code::AuditConfigError),
        "malformed audit directive (or no roots) in the workspace:\n{}",
        report.render_text()
    );
}

#[test]
fn workspace_has_a_substantial_root_set() {
    // The audit is only as strong as its root set. The serving entries,
    // worker loop, oneshot delivery, kernels and trace push are all
    // annotated; if a refactor silently drops most of the annotations,
    // the reachability proof quietly shrinks — fail loudly instead.
    let mut count = 0usize;
    let mut stack = vec![workspace_root().join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name()
                    .is_some_and(|n| n == "target" || n == "vendor")
                {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let src = std::fs::read_to_string(&p).unwrap_or_default();
                count += src
                    .lines()
                    .filter(|l| l.trim_start().starts_with("// bcp:hot-path"))
                    .count();
            }
        }
    }
    assert!(
        count >= 10,
        "expected at least 10 `// bcp:hot-path` roots across the workspace, found {count}"
    );
}
