//! Label-preserving augmentations (Sec. IV-A): contrast, brightness,
//! Gaussian noise, horizontal flip, rotation.
//!
//! Every op takes and returns a CHW tensor on the 8-bit grid; outputs are
//! re-quantized so augmented data keeps the camera-interface contract.

use crate::canvas::quantize_u8;
use bcp_tensor::Tensor;
use rand::Rng;

fn chw_dims(img: &Tensor) -> (usize, usize, usize) {
    assert_eq!(
        img.shape().rank(),
        3,
        "augment expects CHW, got {}",
        img.shape()
    );
    (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2))
}

/// Additive brightness shift (clamped, re-quantized).
pub fn brightness(img: &Tensor, delta: f32) -> Tensor {
    img.map(|v| quantize_u8(v + delta))
}

/// Contrast scaling about mid-gray: `0.5 + k·(v − 0.5)`.
pub fn contrast(img: &Tensor, k: f32) -> Tensor {
    img.map(|v| quantize_u8(0.5 + k * (v - 0.5)))
}

/// Additive Gaussian pixel noise with standard deviation `std`.
pub fn gaussian_noise(img: &Tensor, std: f32, rng: &mut impl Rng) -> Tensor {
    let mut out = img.clone();
    for v in out.as_mut_slice() {
        // Box–Muller from two uniforms.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        *v = quantize_u8(*v + n * std);
    }
    out
}

/// Horizontal mirror.
pub fn hflip(img: &Tensor) -> Tensor {
    let (c, h, w) = chw_dims(img);
    let src = img.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ci in 0..c {
        for y in 0..h {
            let base = (ci * h + y) * w;
            for x in 0..w {
                out[base + x] = src[base + (w - 1 - x)];
            }
        }
    }
    Tensor::from_vec(img.shape().clone(), out)
}

/// Rotate about the image center by `degrees` (nearest-neighbour sampling,
/// clamp-to-edge for out-of-bounds source coordinates). Small rotations
/// keep the mask/landmark relationship — and therefore the label — intact.
pub fn rotate(img: &Tensor, degrees: f32) -> Tensor {
    let (c, h, w) = chw_dims(img);
    let rad = degrees.to_radians();
    let (sin, cos) = rad.sin_cos();
    let (cx, cy) = ((w as f32 - 1.0) / 2.0, (h as f32 - 1.0) / 2.0);
    let src = img.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                // Inverse rotation: destination → source.
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let sx = (cos * dx + sin * dy + cx).round();
                let sy = (-sin * dx + cos * dy + cy).round();
                let sx = (sx.max(0.0) as usize).min(w - 1);
                let sy = (sy.max(0.0) as usize).min(h - 1);
                out[(ci * h + y) * w + x] = src[(ci * h + sy) * w + sx];
            }
        }
    }
    Tensor::from_vec(img.shape().clone(), out)
}

/// Apply the paper's random augmentation combination: each op fires
/// independently with moderate strength.
pub fn random_augment(img: &Tensor, rng: &mut impl Rng) -> Tensor {
    let mut out = img.clone();
    if rng.gen_bool(0.5) {
        out = brightness(&out, rng.gen_range(-0.15..0.15));
    }
    if rng.gen_bool(0.5) {
        out = contrast(&out, rng.gen_range(0.7..1.3));
    }
    if rng.gen_bool(0.5) {
        out = hflip(&out);
    }
    if rng.gen_bool(0.3) {
        out = rotate(&out, rng.gen_range(-12.0..12.0));
    }
    if rng.gen_bool(0.4) {
        out = gaussian_noise(&out, rng.gen_range(0.005..0.03), rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::Shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn img() -> Tensor {
        let data: Vec<f32> = (0..3 * 4 * 4)
            .map(|i| quantize_u8(i as f32 / 48.0))
            .collect();
        Tensor::from_vec(Shape::d3(3, 4, 4), data)
    }

    fn on_u8_grid(t: &Tensor) -> bool {
        t.as_slice().iter().all(|&v| {
            let k = (v * 255.0).round();
            (v - k / 255.0).abs() < 1e-6 && (0.0..=1.0).contains(&v)
        })
    }

    #[test]
    fn brightness_shifts_and_clamps() {
        let b = brightness(&img(), 2.0);
        assert!(b.as_slice().iter().all(|&v| v == 1.0));
        let d = brightness(&img(), -2.0);
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
        assert!(on_u8_grid(&brightness(&img(), 0.07)));
    }

    #[test]
    fn contrast_identity_at_one() {
        let c = contrast(&img(), 1.0);
        assert_eq!(c, img());
        // Zero contrast collapses to mid-gray.
        let z = contrast(&img(), 0.0);
        let mid = quantize_u8(0.5);
        assert!(z.as_slice().iter().all(|&v| v == mid));
    }

    #[test]
    fn hflip_is_involution() {
        let f = hflip(&img());
        assert_ne!(f, img());
        assert_eq!(hflip(&f), img());
        // Row contents preserved as sets.
        let orig: f32 = img().as_slice().iter().sum();
        let flip: f32 = f.as_slice().iter().sum();
        assert!((orig - flip).abs() < 1e-5);
    }

    #[test]
    fn rotate_zero_is_identity() {
        assert_eq!(rotate(&img(), 0.0), img());
    }

    #[test]
    fn rotate_360_is_identity() {
        assert_eq!(rotate(&img(), 360.0), img());
    }

    #[test]
    fn rotate_90_moves_pixels() {
        let r = rotate(&img(), 90.0);
        assert_ne!(r, img());
        assert_eq!(r.shape(), img().shape());
    }

    #[test]
    fn noise_perturbs_but_stays_on_grid() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = gaussian_noise(&img(), 0.05, &mut rng);
        assert_ne!(n, img());
        assert!(on_u8_grid(&n));
    }

    #[test]
    fn random_augment_deterministic_per_seed() {
        let a = random_augment(&img(), &mut StdRng::seed_from_u64(3));
        let b = random_augment(&img(), &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert!(on_u8_grid(&a));
        assert_eq!(a.shape(), img().shape());
    }
}
