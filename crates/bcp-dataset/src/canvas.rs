//! Supersampled RGB raster with simple fill primitives.

use bcp_tensor::{Shape, Tensor};

/// An RGB color with components in [0, 1].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rgb(pub f32, pub f32, pub f32);

impl Rgb {
    /// Componentwise scale (for shading), clamped to [0, 1].
    pub fn scale(self, k: f32) -> Rgb {
        Rgb(
            (self.0 * k).clamp(0.0, 1.0),
            (self.1 * k).clamp(0.0, 1.0),
            (self.2 * k).clamp(0.0, 1.0),
        )
    }

    /// Linear blend toward `other` by `t ∈ [0, 1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        Rgb(
            self.0 + (other.0 - self.0) * t,
            self.1 + (other.1 - self.1) * t,
            self.2 + (other.2 - self.2) * t,
        )
    }
}

/// A square RGB canvas, pixel-major (row-major, 3 floats per pixel).
///
/// Faces are drawn in *normalized* coordinates — (0,0) top-left to (1,1)
/// bottom-right — at a supersampled resolution, then box-downsampled to the
/// network input size so 32×32 images keep smooth feature edges.
#[derive(Clone, Debug)]
pub struct Canvas {
    size: usize,
    data: Vec<f32>, // size·size·3, rgb interleaved
}

impl Canvas {
    /// New canvas filled with `background`.
    pub fn new(size: usize, background: Rgb) -> Self {
        assert!(size > 0, "canvas size must be positive");
        let mut data = Vec::with_capacity(size * size * 3);
        for _ in 0..size * size {
            data.extend_from_slice(&[background.0, background.1, background.2]);
        }
        Canvas { size, data }
    }

    /// Canvas edge length in pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Read pixel (x, y).
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        let i = (y * self.size + x) * 3;
        Rgb(self.data[i], self.data[i + 1], self.data[i + 2])
    }

    /// Write pixel (x, y); out-of-bounds writes are ignored (drawing
    /// primitives clip naturally).
    pub fn put(&mut self, x: isize, y: isize, c: Rgb) {
        if x < 0 || y < 0 || x as usize >= self.size || y as usize >= self.size {
            return;
        }
        let i = (y as usize * self.size + x as usize) * 3;
        self.data[i] = c.0;
        self.data[i + 1] = c.1;
        self.data[i + 2] = c.2;
    }

    fn px(&self, v: f32) -> isize {
        (v * self.size as f32).round() as isize
    }

    /// Fill an axis-aligned ellipse given center and radii in normalized
    /// coordinates.
    pub fn fill_ellipse(&mut self, cx: f32, cy: f32, rx: f32, ry: f32, c: Rgb) {
        if rx <= 0.0 || ry <= 0.0 {
            return;
        }
        let (x0, x1) = (self.px(cx - rx), self.px(cx + rx));
        let (y0, y1) = (self.px(cy - ry), self.px(cy + ry));
        let s = self.size as f32;
        for y in y0..=y1 {
            for x in x0..=x1 {
                let fx = (x as f32 + 0.5) / s;
                let fy = (y as f32 + 0.5) / s;
                let dx = (fx - cx) / rx;
                let dy = (fy - cy) / ry;
                if dx * dx + dy * dy <= 1.0 {
                    self.put(x, y, c);
                }
            }
        }
    }

    /// Fill an axis-aligned rectangle in normalized coordinates.
    pub fn fill_rect(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, c: Rgb) {
        let (px0, px1) = (self.px(x0.min(x1)), self.px(x0.max(x1)));
        let (py0, py1) = (self.px(y0.min(y1)), self.px(y0.max(y1)));
        for y in py0..py1 {
            for x in px0..px1 {
                self.put(x, y, c);
            }
        }
    }

    /// Fill a convex polygon given normalized vertices (winding either way),
    /// by point-in-convex-polygon scanline testing.
    pub fn fill_convex_polygon(&mut self, verts: &[(f32, f32)], c: Rgb) {
        assert!(verts.len() >= 3, "polygon needs ≥ 3 vertices");
        let min_x = verts.iter().map(|v| v.0).fold(f32::INFINITY, f32::min);
        let max_x = verts.iter().map(|v| v.0).fold(f32::NEG_INFINITY, f32::max);
        let min_y = verts.iter().map(|v| v.1).fold(f32::INFINITY, f32::min);
        let max_y = verts.iter().map(|v| v.1).fold(f32::NEG_INFINITY, f32::max);
        let s = self.size as f32;
        for y in self.px(min_y)..=self.px(max_y) {
            for x in self.px(min_x)..=self.px(max_x) {
                let fx = (x as f32 + 0.5) / s;
                let fy = (y as f32 + 0.5) / s;
                if point_in_convex(verts, fx, fy) {
                    self.put(x, y, c);
                }
            }
        }
    }

    /// Draw a thick line segment (normalized endpoints + thickness).
    pub fn draw_line(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, thickness: f32, c: Rgb) {
        let steps = (self.size as f32 * ((x1 - x0).abs() + (y1 - y0).abs()).max(0.01)) as usize + 1;
        let r = thickness / 2.0;
        for i in 0..=steps {
            let t = i as f32 / steps as f32;
            let cx = x0 + (x1 - x0) * t;
            let cy = y0 + (y1 - y0) * t;
            self.fill_ellipse(cx, cy, r, r, c);
        }
    }

    /// Box-filter downsample to `target` × `target` and emit as a CHW tensor
    /// with values quantized to the 8-bit grid (`k/255`).
    pub fn downsample_to_tensor(&self, target: usize) -> Tensor {
        assert!(
            target > 0 && self.size.is_multiple_of(target),
            "canvas size {} must be a multiple of target {target}",
            self.size
        );
        let factor = self.size / target;
        let area = (factor * factor) as f32;
        let mut out = vec![0.0f32; 3 * target * target];
        for ty in 0..target {
            for tx in 0..target {
                let mut acc = [0.0f32; 3];
                for dy in 0..factor {
                    for dx in 0..factor {
                        let p = self.get(tx * factor + dx, ty * factor + dy);
                        acc[0] += p.0;
                        acc[1] += p.1;
                        acc[2] += p.2;
                    }
                }
                for ch in 0..3 {
                    let v = acc[ch] / area;
                    out[ch * target * target + ty * target + tx] = quantize_u8(v);
                }
            }
        }
        Tensor::from_vec(Shape::d3(3, target, target), out)
    }
}

/// Snap a `[0,1]` value to the 8-bit grid: `round(v·255)/255`.
#[inline]
pub fn quantize_u8(v: f32) -> f32 {
    (v.clamp(0.0, 1.0) * 255.0).round() / 255.0
}

/// Point-in-convex-polygon: the point must be on a consistent side of every
/// edge.
fn point_in_convex(verts: &[(f32, f32)], px: f32, py: f32) -> bool {
    let n = verts.len();
    let mut sign = 0i32;
    for i in 0..n {
        let (x0, y0) = verts[i];
        let (x1, y1) = verts[(i + 1) % n];
        let cross = (x1 - x0) * (py - y0) - (y1 - y0) * (px - x0);
        let s = if cross > 0.0 {
            1
        } else if cross < 0.0 {
            -1
        } else {
            0
        };
        if s != 0 {
            if sign == 0 {
                sign = s;
            } else if s != sign {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_canvas_is_background() {
        let c = Canvas::new(4, Rgb(0.5, 0.25, 1.0));
        assert_eq!(c.get(3, 3), Rgb(0.5, 0.25, 1.0));
    }

    #[test]
    fn put_clips_out_of_bounds() {
        let mut c = Canvas::new(4, Rgb(0.0, 0.0, 0.0));
        c.put(-1, 2, Rgb(1.0, 1.0, 1.0));
        c.put(4, 0, Rgb(1.0, 1.0, 1.0));
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(c.get(x, y), Rgb(0.0, 0.0, 0.0));
            }
        }
    }

    #[test]
    fn ellipse_center_filled_corner_not() {
        let mut c = Canvas::new(32, Rgb(0.0, 0.0, 0.0));
        c.fill_ellipse(0.5, 0.5, 0.25, 0.25, Rgb(1.0, 0.0, 0.0));
        assert_eq!(c.get(16, 16), Rgb(1.0, 0.0, 0.0));
        assert_eq!(c.get(0, 0), Rgb(0.0, 0.0, 0.0));
    }

    #[test]
    fn rect_covers_expected_pixels() {
        let mut c = Canvas::new(8, Rgb(0.0, 0.0, 0.0));
        c.fill_rect(0.25, 0.25, 0.75, 0.75, Rgb(0.0, 1.0, 0.0));
        assert_eq!(c.get(4, 4), Rgb(0.0, 1.0, 0.0));
        assert_eq!(c.get(0, 0), Rgb(0.0, 0.0, 0.0));
        assert_eq!(c.get(7, 7), Rgb(0.0, 0.0, 0.0));
    }

    #[test]
    fn convex_polygon_fill() {
        let mut c = Canvas::new(16, Rgb(0.0, 0.0, 0.0));
        // A diamond around the center.
        c.fill_convex_polygon(
            &[(0.5, 0.1), (0.9, 0.5), (0.5, 0.9), (0.1, 0.5)],
            Rgb(0.0, 0.0, 1.0),
        );
        assert_eq!(c.get(8, 8), Rgb(0.0, 0.0, 1.0));
        assert_eq!(c.get(0, 0), Rgb(0.0, 0.0, 0.0));
        assert_eq!(c.get(15, 0), Rgb(0.0, 0.0, 0.0));
    }

    #[test]
    fn point_in_convex_both_windings() {
        let cw = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let ccw = [(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)];
        assert!(point_in_convex(&cw, 0.5, 0.5));
        assert!(point_in_convex(&ccw, 0.5, 0.5));
        assert!(!point_in_convex(&cw, 1.5, 0.5));
        assert!(!point_in_convex(&ccw, -0.1, 0.5));
    }

    #[test]
    fn downsample_averages_blocks() {
        let mut c = Canvas::new(4, Rgb(0.0, 0.0, 0.0));
        // Top-left 2×2 block fully red.
        c.fill_rect(0.0, 0.0, 0.5, 0.5, Rgb(1.0, 0.0, 0.0));
        let t = c.downsample_to_tensor(2);
        assert_eq!(t.shape().dims(), &[3, 2, 2]);
        assert_eq!(t.at(&[0, 0, 0]), 1.0); // R of top-left
        assert_eq!(t.at(&[0, 0, 1]), 0.0);
        assert_eq!(t.at(&[0, 1, 1]), 0.0);
    }

    #[test]
    fn downsample_output_is_u8_quantized() {
        let mut c = Canvas::new(8, Rgb(0.3333, 0.777, 0.123));
        c.fill_ellipse(0.5, 0.5, 0.3, 0.3, Rgb(0.9, 0.01, 0.5));
        let t = c.downsample_to_tensor(4);
        for &v in t.as_slice() {
            let k = (v * 255.0).round();
            assert!((v - k / 255.0).abs() < 1e-6, "{v} not on the u8 grid");
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of target")]
    fn downsample_requires_divisible_sizes() {
        Canvas::new(10, Rgb(0.0, 0.0, 0.0)).downsample_to_tensor(4);
    }

    #[test]
    fn rgb_helpers() {
        let c = Rgb(0.4, 0.8, 1.0).scale(2.0);
        assert_eq!(c, Rgb(0.8, 1.0, 1.0));
        let m = Rgb(0.0, 0.0, 0.0).lerp(Rgb(1.0, 0.5, 0.0), 0.5);
        assert_eq!(m, Rgb(0.5, 0.25, 0.0));
    }
}
