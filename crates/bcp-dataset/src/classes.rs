//! The four wear-position classes of Sec. IV-A.

use serde::{Deserialize, Serialize};

/// Mask wear/positioning class (the split of MaskedFace-Net into CMFD +
/// three IMFD sub-classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MaskClass {
    /// CMFD: mask covers nose, mouth and chin.
    CorrectlyMasked,
    /// IMFD Nose: nose exposed, mouth and chin covered.
    NoseExposed,
    /// IMFD Nose and Mouth: mask pulled down to the chin.
    NoseMouthExposed,
    /// IMFD Chin: nose and mouth covered, chin exposed.
    ChinExposed,
}

impl MaskClass {
    /// All classes, in label order.
    pub const ALL: [MaskClass; 4] = [
        MaskClass::CorrectlyMasked,
        MaskClass::NoseExposed,
        MaskClass::NoseMouthExposed,
        MaskClass::ChinExposed,
    ];

    /// Integer label (the network's output index).
    pub fn label(self) -> usize {
        match self {
            MaskClass::CorrectlyMasked => 0,
            MaskClass::NoseExposed => 1,
            MaskClass::NoseMouthExposed => 2,
            MaskClass::ChinExposed => 3,
        }
    }

    /// Class from an integer label.
    pub fn from_label(label: usize) -> MaskClass {
        *Self::ALL
            .get(label)
            .unwrap_or_else(|| panic!("label {label} out of range for 4 classes"))
    }

    /// Short display name, matching Fig. 2's axis labels.
    pub fn short_name(self) -> &'static str {
        match self {
            MaskClass::CorrectlyMasked => "Correct",
            MaskClass::NoseExposed => "Nose",
            MaskClass::NoseMouthExposed => "N+M",
            MaskClass::ChinExposed => "Chin",
        }
    }

    /// Full display name.
    pub fn full_name(self) -> &'static str {
        match self {
            MaskClass::CorrectlyMasked => "Correctly Masked",
            MaskClass::NoseExposed => "Nose Exposed",
            MaskClass::NoseMouthExposed => "Nose and Mouth Exposed",
            MaskClass::ChinExposed => "Chin Exposed",
        }
    }

    /// MaskedFace-Net's raw class share (Sec. IV-A: 51/39/5/5 %).
    pub fn raw_share(self) -> f64 {
        match self {
            MaskClass::CorrectlyMasked => 0.51,
            MaskClass::NoseExposed => 0.39,
            MaskClass::NoseMouthExposed => 0.05,
            MaskClass::ChinExposed => 0.05,
        }
    }

    /// Which facial landmarks the mask must (not) cover for this class:
    /// `(nose_covered, mouth_covered, chin_covered)`.
    pub fn coverage(self) -> (bool, bool, bool) {
        match self {
            MaskClass::CorrectlyMasked => (true, true, true),
            MaskClass::NoseExposed => (false, true, true),
            MaskClass::NoseMouthExposed => (false, false, true),
            MaskClass::ChinExposed => (true, true, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip() {
        for c in MaskClass::ALL {
            assert_eq!(MaskClass::from_label(c.label()), c);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        MaskClass::from_label(4);
    }

    #[test]
    fn raw_shares_sum_to_one() {
        let total: f64 = MaskClass::ALL.iter().map(|c| c.raw_share()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_distinguishes_all_classes() {
        let mut seen = std::collections::HashSet::new();
        for c in MaskClass::ALL {
            assert!(
                seen.insert(c.coverage()),
                "coverage patterns must be unique"
            );
        }
    }

    #[test]
    fn names_match_fig2() {
        assert_eq!(MaskClass::CorrectlyMasked.short_name(), "Correct");
        assert_eq!(MaskClass::NoseMouthExposed.short_name(), "N+M");
    }
}
