//! In-memory dataset: generation, balancing, augmentation, splits.

use crate::augment::random_augment;
use crate::classes::MaskClass;
use crate::generator::{generate_sample, raw_class_sample, GeneratorConfig};
use bcp_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A labelled image set (NCHW images on the 8-bit grid + integer labels).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Images, `N×3×S×S`.
    pub images: Tensor,
    /// One label per image.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Wrap pre-built images/labels (validates counts).
    pub fn new(images: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(images.shape().rank(), 4, "dataset images must be NCHW");
        assert_eq!(
            images.shape().dim(0),
            labels.len(),
            "image count {} vs label count {}",
            images.shape().dim(0),
            labels.len()
        );
        Dataset { images, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image edge length.
    pub fn img_size(&self) -> usize {
        self.images.shape().dim(2)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Sample `i` as a CHW tensor.
    pub fn image(&self, i: usize) -> Tensor {
        self.images.sample(i)
    }

    /// Generate a dataset with MaskedFace-Net's **raw** class imbalance
    /// (51/39/5/5 %), rayon-parallel across samples.
    pub fn generate_raw(cfg: &GeneratorConfig, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let classes: Vec<MaskClass> = (0..n).map(|_| raw_class_sample(&mut rng)).collect();
        Self::generate_classes(cfg, &classes, seed)
    }

    /// Generate a **balanced** dataset: `per_class` samples of each class.
    pub fn generate_balanced(cfg: &GeneratorConfig, per_class: usize, seed: u64) -> Dataset {
        let mut classes = Vec::with_capacity(per_class * 4);
        for class in MaskClass::ALL {
            classes.extend(std::iter::repeat_n(class, per_class));
        }
        // Interleave classes so truncated prefixes stay balanced.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA1A);
        for i in (1..classes.len()).rev() {
            classes.swap(i, rng.gen_range(0..=i));
        }
        Self::generate_classes(cfg, &classes, seed)
    }

    fn generate_classes(cfg: &GeneratorConfig, classes: &[MaskClass], seed: u64) -> Dataset {
        let samples: Vec<(Vec<f32>, usize)> = classes
            .par_iter()
            .enumerate()
            .map(|(i, &class)| {
                let (img, _) = generate_sample(cfg, class, seed.wrapping_add(i as u64 * 7919));
                (img.into_vec(), class.label())
            })
            .collect();
        let s = cfg.img_size;
        let mut data = Vec::with_capacity(classes.len() * 3 * s * s);
        let mut labels = Vec::with_capacity(classes.len());
        for (img, label) in samples {
            data.extend_from_slice(&img);
            labels.push(label);
        }
        Dataset::new(
            Tensor::from_vec(Shape::nchw(classes.len(), 3, s, s), data),
            labels,
        )
    }

    /// The paper's balancing step (Sec. IV-A): randomly subsample the
    /// larger classes down to the smallest class's count.
    pub fn balance_by_subsampling(&self, seed: u64) -> Dataset {
        let counts = self.class_counts();
        let target = *counts.iter().filter(|&&c| c > 0).min().unwrap_or(&0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keep: Vec<usize> = Vec::with_capacity(target * 4);
        for class in 0..4 {
            let mut members: Vec<usize> = (0..self.len())
                .filter(|&i| self.labels[i] == class)
                .collect();
            // Partial Fisher–Yates: choose `target` members uniformly.
            for i in 0..target.min(members.len()) {
                let j = rng.gen_range(i..members.len());
                members.swap(i, j);
            }
            keep.extend_from_slice(&members[..target.min(members.len())]);
        }
        // Shuffle the kept indices so classes interleave.
        for i in (1..keep.len()).rev() {
            keep.swap(i, rng.gen_range(0..=i));
        }
        self.subset(&keep)
    }

    /// Gather a subset by indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (c, h, w) = (
            self.images.shape().dim(1),
            self.images.shape().dim(2),
            self.images.shape().dim(3),
        );
        let stride = c * h * w;
        let src = self.images.as_slice();
        let mut data = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&src[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        Dataset::new(
            Tensor::from_vec(Shape::nchw(indices.len(), c, h, w), data),
            labels,
        )
    }

    /// Append `extra_per_sample` augmented copies of every sample
    /// (labels preserved — the augmentation ops are label-invariant).
    pub fn augmented(&self, extra_per_sample: usize, seed: u64) -> Dataset {
        if extra_per_sample == 0 {
            return self.clone();
        }
        let copies: Vec<(Vec<f32>, usize)> = (0..self.len())
            .into_par_iter()
            .flat_map_iter(|i| {
                let img = self.image(i);
                let label = self.labels[i];
                (0..extra_per_sample).map(move |k| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 20 ^ k as u64);
                    (random_augment(&img, &mut rng).into_vec(), label)
                })
            })
            .collect();
        let (c, h, w) = (
            self.images.shape().dim(1),
            self.images.shape().dim(2),
            self.images.shape().dim(3),
        );
        let total = self.len() + copies.len();
        let mut data = Vec::with_capacity(total * c * h * w);
        data.extend_from_slice(self.images.as_slice());
        let mut labels = self.labels.clone();
        for (img, label) in copies {
            data.extend_from_slice(&img);
            labels.push(label);
        }
        Dataset::new(Tensor::from_vec(Shape::nchw(total, c, h, w), data), labels)
    }

    /// Deterministic shuffled split into (first, second) with `frac` of the
    /// samples in the first part.
    pub fn split(&self, frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&frac),
            "split fraction must be in [0,1]"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..idx.len()).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        let cut = (self.len() as f64 * frac).round() as usize;
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Network-ready inputs: the 8-bit-grid `[0,1]` images mapped to `[−1, 1]`
    /// (the normalization the first conv layer consumes).
    pub fn normalized_images(&self) -> Tensor {
        self.images.map(|v| 2.0 * v - 1.0)
    }

    /// Render the class-distribution table of Sec. IV-A.
    pub fn distribution_table(&self) -> String {
        let counts = self.class_counts();
        let total = self.len().max(1);
        let mut s = String::from("class                     count    share\n");
        for class in MaskClass::ALL {
            let c = counts[class.label()];
            s.push_str(&format!(
                "{:<24} {:>7} {:>7.1}%\n",
                class.full_name(),
                c,
                100.0 * c as f64 / total as f64
            ));
        }
        s.push_str(&format!("{:<24} {:>7}\n", "total", self.len()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig {
            img_size: 16,
            supersample: 2,
        }
    }

    #[test]
    fn raw_generation_is_imbalanced() {
        let ds = Dataset::generate_raw(&small_cfg(), 400, 1);
        assert_eq!(ds.len(), 400);
        let counts = ds.class_counts();
        assert!(
            counts[0] > counts[2] * 3,
            "CMFD should dominate: {counts:?}"
        );
        assert!(
            counts[1] > counts[3] * 3,
            "Nose should dominate: {counts:?}"
        );
    }

    #[test]
    fn balanced_generation_is_exactly_even() {
        let ds = Dataset::generate_balanced(&small_cfg(), 25, 2);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.class_counts(), [25, 25, 25, 25]);
    }

    #[test]
    fn balancing_subsamples_to_minimum() {
        let ds = Dataset::generate_raw(&small_cfg(), 300, 3);
        let min = *ds.class_counts().iter().min().unwrap();
        let balanced = ds.balance_by_subsampling(4);
        assert_eq!(balanced.class_counts(), [min; 4]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate_balanced(&small_cfg(), 5, 7);
        let b = Dataset::generate_balanced(&small_cfg(), 5, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn augmented_grows_and_preserves_labels() {
        let ds = Dataset::generate_balanced(&small_cfg(), 4, 5);
        let aug = ds.augmented(2, 9);
        assert_eq!(aug.len(), ds.len() * 3);
        let base = ds.class_counts();
        let grown = aug.class_counts();
        for c in 0..4 {
            assert_eq!(grown[c], base[c] * 3);
        }
    }

    #[test]
    fn split_partitions_exactly() {
        let ds = Dataset::generate_balanced(&small_cfg(), 10, 6);
        let (train, test) = ds.split(0.8, 11);
        assert_eq!(train.len(), 32);
        assert_eq!(test.len(), 8);
        // Same label multiset overall.
        let mut all = train.labels.clone();
        all.extend_from_slice(&test.labels);
        all.sort_unstable();
        let mut orig = ds.labels.clone();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }

    #[test]
    fn normalized_images_in_unit_interval() {
        let ds = Dataset::generate_balanced(&small_cfg(), 2, 8);
        let norm = ds.normalized_images();
        for &v in norm.as_slice() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn distribution_table_mentions_all_classes() {
        let ds = Dataset::generate_balanced(&small_cfg(), 2, 9);
        let table = ds.distribution_table();
        for class in MaskClass::ALL {
            assert!(table.contains(class.full_name()));
        }
        assert!(table.contains("25.0%"));
    }

    #[test]
    #[should_panic(expected = "image count")]
    fn new_validates_counts() {
        Dataset::new(Tensor::zeros(Shape::nchw(2, 3, 4, 4)), vec![0]);
    }
}
