//! Parametric face model.
//!
//! Faces are sampled over the generalization axes the paper's Grad-CAM
//! analysis probes: skin tone (a wide tone ramp), face shape, age group
//! (Fig. 7: infants and elderly), hair style/color and headgear — including
//! hair in the same light blue as surgical masks (Fig. 8) — plus sunglasses
//! and face paint (Fig. 9).

use crate::canvas::{Canvas, Rgb};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Age group (affects facial proportions and default hair color).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgeGroup {
    /// Larger forehead, smaller features, lower eye line.
    Infant,
    /// Reference proportions.
    Adult,
    /// Gray hair bias and wrinkle lines.
    Elderly,
}

/// Hair style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HairStyle {
    /// No hair drawn.
    Bald,
    /// Hair cap over the top of the head.
    Short,
    /// Hair falling alongside the face.
    Long,
}

/// Headgear over the hair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Headgear {
    /// None.
    None,
    /// A flat cap band across the forehead.
    Cap,
    /// A scarf wrapping the top and sides of the head.
    Headscarf,
}

/// Facial landmark positions in normalized canvas coordinates. The mask
/// renderer keys its four wear positions off these, exactly as
/// MaskedFace-Net keys its deformable mask model off detected key-points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Landmarks {
    /// Face center x.
    pub cx: f32,
    /// Face center y.
    pub cy: f32,
    /// Face half-width.
    pub rx: f32,
    /// Face half-height.
    pub ry: f32,
    /// Eye line y.
    pub eye_y: f32,
    /// Nose tip (x, y).
    pub nose: (f32, f32),
    /// Mouth center (x, y).
    pub mouth: (f32, f32),
    /// Chin point (x, y).
    pub chin: (f32, f32),
}

/// A fully-specified synthetic face.
#[derive(Clone, Debug, PartialEq)]
pub struct FaceParams {
    /// Skin tone.
    pub skin: Rgb,
    /// Face center (normalized).
    pub center: (f32, f32),
    /// Face radii (normalized half-width/half-height).
    pub radii: (f32, f32),
    /// Age group.
    pub age: AgeGroup,
    /// Hair style.
    pub hair: HairStyle,
    /// Hair color.
    pub hair_color: Rgb,
    /// Headgear.
    pub headgear: Headgear,
    /// Headgear color.
    pub headgear_color: Rgb,
    /// Eye/iris color.
    pub eye_color: Rgb,
    /// Sunglasses instead of visible eyes (Fig. 9).
    pub sunglasses: bool,
    /// Face-paint overlay color (Fig. 9).
    pub face_paint: Option<Rgb>,
    /// Background color.
    pub background: Rgb,
}

/// The skin-tone ramp: a light-to-dark interpolation covering the range the
/// paper's demographic-generalization claims address.
pub fn skin_tone(t: f32) -> Rgb {
    let light = Rgb(0.95, 0.80, 0.69);
    let dark = Rgb(0.35, 0.22, 0.14);
    light.lerp(dark, t)
}

/// The canonical surgical-mask light blue — also used for the confusable
/// hair/headgear colors of Fig. 8.
pub const MASK_BLUE: Rgb = Rgb(0.62, 0.78, 0.87);

impl FaceParams {
    /// Sample a face uniformly over the attribute space.
    pub fn sample(rng: &mut impl Rng) -> Self {
        let age = match rng.gen_range(0..10) {
            0..=1 => AgeGroup::Infant,
            2..=7 => AgeGroup::Adult,
            _ => AgeGroup::Elderly,
        };
        let hair = match rng.gen_range(0..10) {
            0 => HairStyle::Bald,
            1..=6 => HairStyle::Short,
            _ => HairStyle::Long,
        };
        let hair_color = match age {
            AgeGroup::Elderly if rng.gen_bool(0.7) => {
                let g = rng.gen_range(0.65..0.9);
                Rgb(g, g, g)
            }
            _ => match rng.gen_range(0..6) {
                0 => Rgb(0.1, 0.08, 0.05),                 // black
                1 => Rgb(0.35, 0.2, 0.08),                 // brown
                2 => Rgb(0.85, 0.7, 0.3),                  // blond
                3 => Rgb(0.55, 0.2, 0.1),                  // red
                4 => MASK_BLUE,                            // Fig. 8 confuser
                _ => Rgb(rng.gen(), rng.gen(), rng.gen()), // dyed
            },
        };
        let headgear = match rng.gen_range(0..10) {
            0..=6 => Headgear::None,
            7..=8 => Headgear::Cap,
            _ => Headgear::Headscarf,
        };
        let headgear_color = if rng.gen_bool(0.3) {
            MASK_BLUE
        } else {
            Rgb(rng.gen(), rng.gen(), rng.gen())
        };
        let base_ry = match age {
            AgeGroup::Infant => rng.gen_range(0.26..0.32),
            _ => rng.gen_range(0.32..0.40),
        };
        let aspect = match age {
            AgeGroup::Infant => rng.gen_range(0.85..1.0), // rounder
            _ => rng.gen_range(0.68..0.85),
        };
        FaceParams {
            skin: skin_tone(rng.gen_range(0.0..1.0)),
            center: (
                0.5 + rng.gen_range(-0.04..0.04),
                0.5 + rng.gen_range(-0.04..0.04),
            ),
            radii: (base_ry * aspect, base_ry),
            age,
            hair,
            hair_color,
            headgear,
            headgear_color,
            eye_color: Rgb(
                rng.gen_range(0.05..0.5),
                rng.gen_range(0.1..0.5),
                rng.gen_range(0.1..0.7),
            ),
            sunglasses: rng.gen_bool(0.08),
            face_paint: rng
                .gen_bool(0.05)
                .then(|| Rgb(rng.gen(), rng.gen(), rng.gen())),
            background: Rgb(
                rng.gen_range(0.1..0.95),
                rng.gen_range(0.1..0.95),
                rng.gen_range(0.1..0.95),
            ),
        }
    }

    /// Landmark positions for this face.
    pub fn landmarks(&self) -> Landmarks {
        let (cx, cy) = self.center;
        let (rx, ry) = self.radii;
        // Infants carry their features lower (larger forehead).
        let shift = match self.age {
            AgeGroup::Infant => 0.10 * ry,
            _ => 0.0,
        };
        Landmarks {
            cx,
            cy,
            rx,
            ry,
            eye_y: cy - 0.18 * ry + shift,
            nose: (cx, cy + 0.10 * ry + shift),
            mouth: (cx, cy + 0.42 * ry + shift * 0.5),
            chin: (cx, cy + 0.82 * ry),
        }
    }

    /// Render the bare (unmasked) face onto a canvas. The mask renderer
    /// draws on top afterwards.
    pub fn render(&self, canvas: &mut Canvas) {
        let lm = self.landmarks();
        let (cx, cy) = self.center;
        let (rx, ry) = self.radii;

        // Long hair sits behind the face.
        if self.hair == HairStyle::Long {
            canvas.fill_ellipse(cx, cy + 0.05, rx * 1.35, ry * 1.2, self.hair_color);
        }

        // Head.
        canvas.fill_ellipse(cx, cy, rx, ry, self.skin);

        // Ears.
        canvas.fill_ellipse(cx - rx, cy, rx * 0.14, ry * 0.16, self.skin.scale(0.95));
        canvas.fill_ellipse(cx + rx, cy, rx * 0.14, ry * 0.16, self.skin.scale(0.95));

        // Short hair / fringe on top.
        match self.hair {
            HairStyle::Short => {
                canvas.fill_ellipse(cx, cy - 0.55 * ry, rx * 0.98, ry * 0.42, self.hair_color);
            }
            HairStyle::Long => {
                canvas.fill_ellipse(cx, cy - 0.55 * ry, rx * 1.05, ry * 0.45, self.hair_color);
            }
            HairStyle::Bald => {}
        }

        // Elderly wrinkles: faint horizontal forehead lines.
        if self.age == AgeGroup::Elderly {
            let w = self.skin.scale(0.8);
            canvas.draw_line(
                cx - rx * 0.5,
                cy - 0.45 * ry,
                cx + rx * 0.5,
                cy - 0.45 * ry,
                0.006,
                w,
            );
            canvas.draw_line(
                cx - rx * 0.45,
                cy - 0.37 * ry,
                cx + rx * 0.45,
                cy - 0.37 * ry,
                0.006,
                w,
            );
        }

        // Eyes / eyebrows or sunglasses.
        let eye_dx = rx * 0.42;
        let eye_r = rx
            * match self.age {
                AgeGroup::Infant => 0.17,
                AgeGroup::Adult => 0.14,
                AgeGroup::Elderly => 0.11,
            };
        if self.sunglasses {
            let dark = Rgb(0.05, 0.05, 0.08);
            canvas.fill_ellipse(cx - eye_dx, lm.eye_y, eye_r * 1.5, eye_r * 1.2, dark);
            canvas.fill_ellipse(cx + eye_dx, lm.eye_y, eye_r * 1.5, eye_r * 1.2, dark);
            canvas.draw_line(cx - eye_dx, lm.eye_y, cx + eye_dx, lm.eye_y, 0.008, dark);
        } else {
            let white = Rgb(0.98, 0.98, 0.98);
            for side in [-1.0f32, 1.0] {
                let ex = cx + side * eye_dx;
                canvas.fill_ellipse(ex, lm.eye_y, eye_r, eye_r * 0.7, white);
                canvas.fill_ellipse(ex, lm.eye_y, eye_r * 0.45, eye_r * 0.45, self.eye_color);
                // Eyebrow.
                canvas.draw_line(
                    ex - eye_r,
                    lm.eye_y - eye_r * 1.2,
                    ex + eye_r,
                    lm.eye_y - eye_r * 1.2,
                    0.008,
                    self.hair_color.scale(0.7),
                );
            }
        }

        // Nose: a small shaded wedge ending at the nose tip.
        let nose_c = self.skin.scale(0.85);
        canvas.fill_convex_polygon(
            &[
                (lm.nose.0, lm.nose.1 - 0.18 * ry),
                (lm.nose.0 - 0.09 * rx, lm.nose.1 + 0.03 * ry),
                (lm.nose.0 + 0.09 * rx, lm.nose.1 + 0.03 * ry),
            ],
            nose_c,
        );

        // Mouth.
        canvas.fill_ellipse(
            lm.mouth.0,
            lm.mouth.1,
            rx * 0.30,
            ry * 0.07,
            Rgb(0.65, 0.25, 0.25),
        );

        // Face paint: a translucent-looking diagonal band (drawn opaque but
        // thin, before the mask so it can also be occluded by it).
        if let Some(paint) = self.face_paint {
            canvas.draw_line(
                cx - rx * 0.7,
                cy - ry * 0.3,
                cx + rx * 0.5,
                cy + ry * 0.4,
                0.02,
                paint,
            );
            canvas.draw_line(
                cx - rx * 0.5,
                cy - ry * 0.45,
                cx + rx * 0.7,
                cy + ry * 0.2,
                0.015,
                paint,
            );
        }

        // Headgear on top of hair.
        match self.headgear {
            Headgear::None => {}
            Headgear::Cap => {
                canvas.fill_rect(
                    cx - rx * 1.02,
                    cy - ry * 0.95,
                    cx + rx * 1.02,
                    cy - ry * 0.55,
                    self.headgear_color,
                );
            }
            Headgear::Headscarf => {
                canvas.fill_ellipse(cx, cy - 0.5 * ry, rx * 1.15, ry * 0.55, self.headgear_color);
                canvas.fill_rect(
                    cx - rx * 1.15,
                    cy - ry * 0.5,
                    cx - rx * 0.85,
                    cy + ry * 0.6,
                    self.headgear_color,
                );
                canvas.fill_rect(
                    cx + rx * 0.85,
                    cy - ry * 0.5,
                    cx + rx * 1.15,
                    cy + ry * 0.6,
                    self.headgear_color,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = FaceParams::sample(&mut StdRng::seed_from_u64(1));
        let b = FaceParams::sample(&mut StdRng::seed_from_u64(1));
        let c = FaceParams::sample(&mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn landmarks_ordered_top_to_bottom() {
        for seed in 0..50 {
            let f = FaceParams::sample(&mut StdRng::seed_from_u64(seed));
            let lm = f.landmarks();
            assert!(lm.eye_y < lm.nose.1, "eyes above nose");
            assert!(lm.nose.1 < lm.mouth.1, "nose above mouth");
            assert!(lm.mouth.1 < lm.chin.1, "mouth above chin");
            // All landmarks inside the face ellipse vertically.
            assert!(lm.chin.1 <= lm.cy + lm.ry + 1e-6);
            assert!(lm.eye_y >= lm.cy - lm.ry);
        }
    }

    #[test]
    fn infant_faces_are_rounder_and_smaller() {
        let mut infant_ry = Vec::new();
        let mut adult_ry = Vec::new();
        for seed in 0..400 {
            let f = FaceParams::sample(&mut StdRng::seed_from_u64(seed));
            match f.age {
                AgeGroup::Infant => infant_ry.push(f.radii.1),
                AgeGroup::Adult => adult_ry.push(f.radii.1),
                _ => {}
            }
        }
        assert!(!infant_ry.is_empty() && !adult_ry.is_empty());
        let mi: f32 = infant_ry.iter().sum::<f32>() / infant_ry.len() as f32;
        let ma: f32 = adult_ry.iter().sum::<f32>() / adult_ry.len() as f32;
        assert!(
            mi < ma,
            "infant mean face height {mi} should be below adult {ma}"
        );
    }

    #[test]
    fn renders_skin_at_center() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = FaceParams::sample(&mut rng);
        let mut c = Canvas::new(96, f.background);
        f.render(&mut c);
        // The nose region is skin-toned (possibly shaded), far from background.
        let lm = f.landmarks();
        let px = c.get(
            (lm.nose.0 * 96.0) as usize,
            ((lm.nose.1 - 0.05) * 96.0) as usize,
        );
        let dist = |a: Rgb, b: Rgb| (a.0 - b.0).abs() + (a.1 - b.1).abs() + (a.2 - b.2).abs();
        assert!(
            dist(px, f.skin) < dist(px, f.background) + 0.5,
            "center pixel {px:?} should be closer to skin {:?}",
            f.skin
        );
    }

    #[test]
    fn skin_tone_ramp_monotone_brightness() {
        let light = skin_tone(0.0);
        let mid = skin_tone(0.5);
        let dark = skin_tone(1.0);
        let lum = |c: Rgb| c.0 + c.1 + c.2;
        assert!(lum(light) > lum(mid) && lum(mid) > lum(dark));
    }

    #[test]
    fn attribute_space_is_covered() {
        // Across many seeds we should see every age group, hair style,
        // headgear kind, sunglasses and face paint.
        let mut ages = std::collections::HashSet::new();
        let mut hairs = std::collections::HashSet::new();
        let mut gears = std::collections::HashSet::new();
        let (mut sun, mut paint, mut blue_hair) = (false, false, false);
        for seed in 0..2000 {
            let f = FaceParams::sample(&mut StdRng::seed_from_u64(seed));
            ages.insert(format!("{:?}", f.age));
            hairs.insert(format!("{:?}", f.hair));
            gears.insert(format!("{:?}", f.headgear));
            sun |= f.sunglasses;
            paint |= f.face_paint.is_some();
            blue_hair |= f.hair_color == MASK_BLUE;
        }
        assert_eq!(ages.len(), 3);
        assert_eq!(hairs.len(), 3);
        assert_eq!(gears.len(), 3);
        assert!(sun && paint && blue_hair);
    }
}
