//! Seeded sample generation and the raw MaskedFace-Net class imbalance.

use crate::canvas::Canvas;
use crate::classes::MaskClass;
use crate::face::FaceParams;
use crate::mask::{place_mask, MaskParams, PlacedMask};
use bcp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rendering configuration.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Final image edge length (the paper resizes to 32).
    pub img_size: usize,
    /// Supersampling factor for rendering (box-downsampled afterwards).
    pub supersample: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            img_size: 32,
            supersample: 3,
        }
    }
}

impl GeneratorConfig {
    /// Canvas resolution before downsampling.
    pub fn canvas_size(&self) -> usize {
        self.img_size * self.supersample
    }
}

/// Full provenance of one generated sample — everything needed to
/// re-render it or to reason about it (Grad-CAM figure selection keys off
/// these attributes).
#[derive(Clone, Debug)]
pub struct SampleSpec {
    /// The face that was drawn.
    pub face: FaceParams,
    /// The mask appearance.
    pub mask: MaskParams,
    /// The placed mask geometry.
    pub placed: PlacedMask,
    /// Ground-truth class.
    pub class: MaskClass,
}

/// Render a (face, mask, class) triple into a CHW tensor.
pub fn render_sample(cfg: &GeneratorConfig, spec: &SampleSpec) -> Tensor {
    let mut canvas = Canvas::new(cfg.canvas_size(), spec.face.background);
    spec.face.render(&mut canvas);
    let lm = spec.face.landmarks();
    spec.placed.render(&mut canvas, &lm, &spec.mask);
    canvas.downsample_to_tensor(cfg.img_size)
}

/// Generate one sample of a given class from a seed. The returned spec's
/// placed-mask coverage is asserted to match the class — the generator
/// never emits a mislabeled image.
pub fn generate_sample(cfg: &GeneratorConfig, class: MaskClass, seed: u64) -> (Tensor, SampleSpec) {
    let mut rng = StdRng::seed_from_u64(seed);
    let face = FaceParams::sample(&mut rng);
    generate_from_face(cfg, class, face, &mut rng)
}

/// Generate with a caller-chosen face (the Grad-CAM figures pin specific
/// attributes: infants, blue hair, sunglasses, …).
pub fn generate_from_face(
    cfg: &GeneratorConfig,
    class: MaskClass,
    face: FaceParams,
    rng: &mut impl Rng,
) -> (Tensor, SampleSpec) {
    let mask = MaskParams::sample(rng);
    let lm = face.landmarks();
    let placed = place_mask(class, &lm, &mask, rng);
    assert_eq!(
        placed.landmark_coverage(&lm),
        class.coverage(),
        "generator produced geometry inconsistent with {class:?}"
    );
    let spec = SampleSpec {
        face,
        mask,
        placed,
        class,
    };
    let img = render_sample(cfg, &spec);
    (img, spec)
}

/// Draw a class according to MaskedFace-Net's raw 51/39/5/5 % distribution.
pub fn raw_class_sample(rng: &mut impl Rng) -> MaskClass {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for class in MaskClass::ALL {
        acc += class.raw_share();
        if u < acc {
            return class;
        }
    }
    MaskClass::ChinExposed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let (a, _) = generate_sample(&cfg, MaskClass::NoseExposed, 5);
        let (b, _) = generate_sample(&cfg, MaskClass::NoseExposed, 5);
        assert_eq!(a, b);
        let (c, _) = generate_sample(&cfg, MaskClass::NoseExposed, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_shape_and_range() {
        let cfg = GeneratorConfig::default();
        let (img, spec) = generate_sample(&cfg, MaskClass::CorrectlyMasked, 1);
        assert_eq!(img.shape().dims(), &[3, 32, 32]);
        assert_eq!(spec.class, MaskClass::CorrectlyMasked);
        for &v in img.as_slice() {
            assert!((0.0..=1.0).contains(&v));
            let k = (v * 255.0).round();
            assert!(
                (v - k / 255.0).abs() < 1e-6,
                "pixels must sit on the u8 grid"
            );
        }
    }

    #[test]
    fn classes_differ_visually() {
        // Same seed (same face), different classes → different pixels.
        let cfg = GeneratorConfig::default();
        let (a, _) = generate_sample(&cfg, MaskClass::CorrectlyMasked, 9);
        let (b, _) = generate_sample(&cfg, MaskClass::NoseMouthExposed, 9);
        let diff: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(
            diff > 1.0,
            "class placement must change the image (diff {diff})"
        );
    }

    #[test]
    fn raw_distribution_matches_paper() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 40_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[raw_class_sample(&mut rng).label()] += 1;
        }
        let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((shares[0] - 0.51).abs() < 0.02, "CMFD share {}", shares[0]);
        assert!((shares[1] - 0.39).abs() < 0.02, "Nose share {}", shares[1]);
        assert!((shares[2] - 0.05).abs() < 0.01, "N+M share {}", shares[2]);
        assert!((shares[3] - 0.05).abs() < 0.01, "Chin share {}", shares[3]);
    }

    #[test]
    fn bigger_config_scales_resolution() {
        let cfg = GeneratorConfig {
            img_size: 64,
            supersample: 2,
        };
        let (img, _) = generate_sample(&cfg, MaskClass::ChinExposed, 2);
        assert_eq!(img.shape().dims(), &[3, 64, 64]);
    }
}
