//! Synthetic MaskedFace-Net substitute.
//!
//! The paper trains on MaskedFace-Net [Cabani et al. 2020]: natural face
//! photos with a deformable surgical-mask model applied at detected facial
//! key-points, split into four classes — correctly masked, nose exposed,
//! nose+mouth exposed, chin exposed. That dataset (133,783 real photographs)
//! is not available here, so this crate generates the closest synthetic
//! equivalent procedurally:
//!
//! - [`canvas`]: a supersampled RGB raster with ellipse/polygon/strip
//!   primitives and box-filter downsampling to the paper's 32×32 input.
//! - [`face`]: a parametric face model — skin tone, face shape, age group
//!   (infant/adult/elderly), eyes, eyebrows, hair style & color (including
//!   the mask-colored light-blue hair of Fig. 8), headgear, sunglasses and
//!   face paint (Fig. 9).
//! - [`mask`]: a deformable key-point mask renderer that produces the four
//!   wear positions of Sec. IV-A, plus double-masking.
//! - [`generator`]: seeded sampling, the raw 51/39/5/5 % class imbalance of
//!   MaskedFace-Net, and the balancing-by-subsampling step of Sec. IV-A.
//! - [`augment`]: the paper's augmentation set — contrast, brightness,
//!   Gaussian noise, flip, rotate — all label-preserving.
//! - [`dataset`]: in-memory dataset with splits, batching and class stats.
//!
//! Every image is quantized to the 8-bit grid (`k/255`), matching the
//! camera→accelerator interface the FINN first layer consumes.

#![forbid(unsafe_code)]

pub mod augment;
pub mod canvas;
pub mod classes;
pub mod dataset;
pub mod face;
pub mod generator;
pub mod mask;
pub mod ppm;
pub mod scene;
pub mod video;

pub use classes::MaskClass;
pub use dataset::Dataset;
pub use generator::{GeneratorConfig, SampleSpec};
