//! Deformable key-point mask renderer.
//!
//! Mirrors the MaskedFace-Net generation process (Sec. II-A): a deformable
//! mask model is positioned against facial key-points, and the *placement*
//! chooses the class — full coverage, nose out, nose+mouth out, or chin out.
//! The mask is a convex hexagon spanning the face width, with ear straps;
//! a second, slightly smaller hexagon renders the double-mask case of
//! Fig. 9.

use crate::canvas::{Canvas, Rgb};
use crate::classes::MaskClass;
use crate::face::Landmarks;
use rand::Rng;

/// Visual mask parameters (placement comes from the class).
#[derive(Clone, Debug, PartialEq)]
pub struct MaskParams {
    /// Main mask color.
    pub color: Rgb,
    /// Second (outer) mask color for double-masking.
    pub double_mask: Option<Rgb>,
    /// Vertex jitter amplitude (normalized units) — the "deformable" part.
    pub jitter: f32,
}

impl MaskParams {
    /// Sample mask appearance: mostly surgical light-blue/white/black, with
    /// occasional double-masking.
    pub fn sample(rng: &mut impl Rng) -> Self {
        let color = match rng.gen_range(0..10) {
            0..=5 => crate::face::MASK_BLUE,
            6..=7 => Rgb(0.93, 0.93, 0.95),            // white
            8 => Rgb(0.12, 0.12, 0.14),                // black
            _ => Rgb(rng.gen(), rng.gen(), rng.gen()), // cloth
        };
        MaskParams {
            color,
            double_mask: rng
                .gen_bool(0.06)
                .then(|| Rgb(rng.gen(), rng.gen(), rng.gen())),
            jitter: 0.01,
        }
    }
}

/// The placed mask: a convex polygon in normalized canvas coordinates.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacedMask {
    /// Hexagon vertices (clockwise).
    pub polygon: Vec<(f32, f32)>,
    /// Class the placement encodes.
    pub class: MaskClass,
}

/// Vertical mask span for a wear class, relative to the landmarks. Margins
/// are ≥ 0.12·ry so the coverage predicate is robust to the vertex jitter.
fn span_for_class(class: MaskClass, lm: &Landmarks) -> (f32, f32) {
    let ry = lm.ry;
    match class {
        // Covers nose bridge to below the chin.
        MaskClass::CorrectlyMasked => (lm.nose.1 - 0.24 * ry, lm.chin.1 + 0.12 * ry),
        // Top edge between nose and mouth: nose pokes out.
        MaskClass::NoseExposed => (lm.nose.1 + 0.14 * ry, lm.chin.1 + 0.12 * ry),
        // Pulled down under the mouth: only the chin is covered.
        MaskClass::NoseMouthExposed => (lm.mouth.1 + 0.14 * ry, lm.chin.1 + 0.12 * ry),
        // Pulled up: nose+mouth covered but the chin pokes out.
        MaskClass::ChinExposed => (lm.nose.1 - 0.24 * ry, lm.chin.1 - 0.14 * ry),
    }
}

/// Place a mask for `class` on a face, with deformable jitter.
pub fn place_mask(
    class: MaskClass,
    lm: &Landmarks,
    params: &MaskParams,
    rng: &mut impl Rng,
) -> PlacedMask {
    let (top, bottom) = span_for_class(class, lm);
    let mid = (top + bottom) / 2.0;
    let w_top = lm.rx * 0.80;
    let w_mid = lm.rx * 1.00;
    let w_bot = lm.rx * 0.55;
    let j = params.jitter;
    let mut jit = |v: f32| v + rng.gen_range(-j..=j);
    let polygon = vec![
        (jit(lm.cx - w_top), jit(top)),
        (jit(lm.cx + w_top), jit(top)),
        (jit(lm.cx + w_mid), jit(mid)),
        (jit(lm.cx + w_bot), jit(bottom)),
        (jit(lm.cx - w_bot), jit(bottom)),
        (jit(lm.cx - w_mid), jit(mid)),
    ];
    PlacedMask { polygon, class }
}

impl PlacedMask {
    /// Whether a normalized point lies under the mask.
    pub fn covers(&self, p: (f32, f32)) -> bool {
        point_in_convex(&self.polygon, p.0, p.1)
    }

    /// Coverage of the three decisive landmarks:
    /// `(nose_covered, mouth_covered, chin_covered)`.
    pub fn landmark_coverage(&self, lm: &Landmarks) -> (bool, bool, bool) {
        (
            self.covers(lm.nose),
            self.covers(lm.mouth),
            self.covers(lm.chin),
        )
    }

    /// Render the mask (and straps / double-mask layer) onto the canvas.
    pub fn render(&self, canvas: &mut Canvas, lm: &Landmarks, params: &MaskParams) {
        // Ear straps from the mask's top corners toward the ears.
        let strap = params.color.scale(0.8);
        let (tl, tr) = (self.polygon[0], self.polygon[1]);
        canvas.draw_line(tl.0, tl.1, lm.cx - lm.rx, lm.cy, 0.008, strap);
        canvas.draw_line(tr.0, tr.1, lm.cx + lm.rx, lm.cy, 0.008, strap);

        canvas.fill_convex_polygon(&self.polygon, params.color);

        // Pleats: two horizontal fold lines.
        let top = tl.1.min(tr.1);
        let bottom = self.polygon[3].1.max(self.polygon[4].1);
        let shade = params.color.scale(0.85);
        for t in [0.38f32, 0.62] {
            let y = top + (bottom - top) * t;
            canvas.draw_line(
                self.polygon[5].0 * 0.98 + 0.01,
                y,
                self.polygon[2].0 * 0.98,
                y,
                0.004,
                shade,
            );
        }

        // Double mask: a slightly inset second layer in a contrasting color.
        if let Some(outer) = params.double_mask {
            let inset: Vec<(f32, f32)> = self
                .polygon
                .iter()
                .map(|&(x, y)| {
                    let cx = lm.cx;
                    let cyv = (top + bottom) / 2.0;
                    (cx + (x - cx) * 0.85, cyv + (y - cyv) * 0.85)
                })
                .collect();
            canvas.fill_convex_polygon(&inset, outer);
        }
    }
}

// Same predicate as the canvas fill uses, duplicated here so coverage
// decisions and rendering can never disagree on the geometry.
fn point_in_convex(verts: &[(f32, f32)], px: f32, py: f32) -> bool {
    let n = verts.len();
    let mut sign = 0i32;
    for i in 0..n {
        let (x0, y0) = verts[i];
        let (x1, y1) = verts[(i + 1) % n];
        let cross = (x1 - x0) * (py - y0) - (y1 - y0) * (px - x0);
        let s = if cross > 0.0 {
            1
        } else if cross < 0.0 {
            -1
        } else {
            0
        };
        if s != 0 {
            if sign == 0 {
                sign = s;
            } else if s != sign {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::FaceParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn landmarks(seed: u64) -> Landmarks {
        FaceParams::sample(&mut StdRng::seed_from_u64(seed)).landmarks()
    }

    #[test]
    fn spans_are_ordered() {
        let lm = landmarks(0);
        for class in MaskClass::ALL {
            let (top, bottom) = span_for_class(class, &lm);
            assert!(top < bottom, "{class:?} span inverted");
        }
    }

    #[test]
    fn placement_coverage_matches_class_for_many_faces() {
        // The central invariant: the placement geometry must realise exactly
        // the coverage pattern the class name promises, for every sampled
        // face and every jitter draw.
        let mut rng = StdRng::seed_from_u64(42);
        for seed in 0..300 {
            let lm = landmarks(seed);
            for class in MaskClass::ALL {
                let params = MaskParams::sample(&mut rng);
                let placed = place_mask(class, &lm, &params, &mut rng);
                assert_eq!(
                    placed.landmark_coverage(&lm),
                    class.coverage(),
                    "face seed {seed}, class {class:?}"
                );
            }
        }
    }

    #[test]
    fn mask_renders_color_at_mouth_when_correct() {
        let mut rng = StdRng::seed_from_u64(7);
        let face = FaceParams::sample(&mut rng);
        let lm = face.landmarks();
        let params = MaskParams {
            color: Rgb(0.0, 1.0, 0.0),
            double_mask: None,
            jitter: 0.0,
        };
        let placed = place_mask(MaskClass::CorrectlyMasked, &lm, &params, &mut rng);
        let mut canvas = Canvas::new(96, Rgb(0.0, 0.0, 0.0));
        face.render(&mut canvas);
        placed.render(&mut canvas, &lm, &params);
        let px = canvas.get((lm.mouth.0 * 96.0) as usize, (lm.mouth.1 * 96.0) as usize);
        assert_eq!(px, Rgb(0.0, 1.0, 0.0), "mouth must be under the mask color");
    }

    #[test]
    fn nose_visible_when_nose_exposed() {
        let mut rng = StdRng::seed_from_u64(8);
        let face = FaceParams::sample(&mut rng);
        let lm = face.landmarks();
        let params = MaskParams {
            color: Rgb(0.0, 1.0, 0.0),
            double_mask: None,
            jitter: 0.0,
        };
        let placed = place_mask(MaskClass::NoseExposed, &lm, &params, &mut rng);
        let mut canvas = Canvas::new(96, Rgb(0.0, 0.0, 0.0));
        face.render(&mut canvas);
        placed.render(&mut canvas, &lm, &params);
        // A point slightly above the nose tip is skin/nose, not mask green.
        let px = canvas.get(
            (lm.nose.0 * 96.0) as usize,
            ((lm.nose.1 - 0.04) * 96.0) as usize,
        );
        assert_ne!(px, Rgb(0.0, 1.0, 0.0));
    }

    #[test]
    fn double_mask_draws_inner_layer() {
        let mut rng = StdRng::seed_from_u64(9);
        let face = FaceParams::sample(&mut rng);
        let lm = face.landmarks();
        let params = MaskParams {
            color: Rgb(0.0, 1.0, 0.0),
            double_mask: Some(Rgb(1.0, 0.0, 0.0)),
            jitter: 0.0,
        };
        let placed = place_mask(MaskClass::CorrectlyMasked, &lm, &params, &mut rng);
        let mut canvas = Canvas::new(96, Rgb(0.0, 0.0, 0.0));
        face.render(&mut canvas);
        placed.render(&mut canvas, &lm, &params);
        // The mask-center pixel shows the outer (second) layer.
        let cy = (placed.polygon[0].1 + placed.polygon[3].1) / 2.0;
        let px = canvas.get((lm.cx * 96.0) as usize, (cy * 96.0) as usize);
        assert_eq!(px, Rgb(1.0, 0.0, 0.0));
    }

    #[test]
    fn sampled_params_mostly_surgical_blue() {
        let mut rng = StdRng::seed_from_u64(10);
        let blue = (0..1000)
            .filter(|_| MaskParams::sample(&mut rng).color == crate::face::MASK_BLUE)
            .count();
        assert!(
            blue > 400,
            "expected majority light-blue masks, got {blue}/1000"
        );
    }
}
