//! PPM (P6) camera-frame input: parsing and resizing to the network input.
//!
//! The deployment CLI accepts binary PPM images — the simplest lossless
//! RGB interchange format — and resizes them to the 32×32 accelerator
//! input with box averaging, mirroring the paper's resize step
//! (Sec. IV-A: "the images are resized to 32×32 pixels").

use crate::canvas::quantize_u8;
use bcp_tensor::{Shape, Tensor};

/// PPM parsing failure.
#[derive(Debug, PartialEq, Eq)]
pub enum PpmError {
    /// Not a P6 file.
    BadMagic,
    /// Header malformed or truncated.
    BadHeader(String),
    /// Unsupported max value (only 255 accepted).
    BadMaxval(u32),
    /// Pixel payload shorter than width×height×3.
    Truncated { expected: usize, got: usize },
}

impl std::fmt::Display for PpmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PpmError::BadMagic => write!(f, "not a binary PPM (P6) file"),
            PpmError::BadHeader(msg) => write!(f, "malformed PPM header: {msg}"),
            PpmError::BadMaxval(v) => write!(f, "unsupported PPM maxval {v} (need 255)"),
            PpmError::Truncated { expected, got } => {
                write!(f, "PPM payload truncated: {got} of {expected} bytes")
            }
        }
    }
}

impl std::error::Error for PpmError {}

/// Read one whitespace/comment-delimited ASCII token from the header.
fn token(bytes: &[u8], pos: &mut usize) -> Result<u32, PpmError> {
    // Skip whitespace and '#' comments.
    loop {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < bytes.len() && bytes[*pos] == b'#' {
            while *pos < bytes.len() && bytes[*pos] != b'\n' {
                *pos += 1;
            }
        } else {
            break;
        }
    }
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if start == *pos {
        return Err(PpmError::BadHeader("expected an integer".into()));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PpmError::BadHeader("integer out of range".into()))
}

/// Decode a binary PPM into a CHW tensor with values on the u8 grid.
pub fn decode_ppm(bytes: &[u8]) -> Result<Tensor, PpmError> {
    if bytes.len() < 2 || &bytes[0..2] != b"P6" {
        return Err(PpmError::BadMagic);
    }
    let mut pos = 2usize;
    let w = token(bytes, &mut pos)? as usize;
    let h = token(bytes, &mut pos)? as usize;
    let maxval = token(bytes, &mut pos)?;
    if maxval != 255 {
        return Err(PpmError::BadMaxval(maxval));
    }
    // Exactly one whitespace byte after maxval.
    pos += 1;
    let expected = w * h * 3;
    let payload = &bytes[pos.min(bytes.len())..];
    if payload.len() < expected {
        return Err(PpmError::Truncated {
            expected,
            got: payload.len(),
        });
    }
    let mut out = vec![0.0f32; 3 * h * w];
    for y in 0..h {
        for x in 0..w {
            for ch in 0..3 {
                out[(ch * h + y) * w + x] = payload[(y * w + x) * 3 + ch] as f32 / 255.0;
            }
        }
    }
    Ok(Tensor::from_vec(Shape::d3(3, h, w), out))
}

/// Box-average resize of a CHW image to `target × target` (handles
/// non-divisible sizes by averaging the covered source box), re-quantized
/// to the u8 grid.
pub fn resize_to(img: &Tensor, target: usize) -> Tensor {
    assert_eq!(img.shape().rank(), 3, "resize expects CHW");
    let (c, h, w) = (img.shape().dim(0), img.shape().dim(1), img.shape().dim(2));
    assert!(target > 0 && h > 0 && w > 0);
    let src = img.as_slice();
    let mut out = vec![0.0f32; c * target * target];
    for ch in 0..c {
        for ty in 0..target {
            let y0 = ty * h / target;
            let y1 = ((ty + 1) * h / target).max(y0 + 1).min(h);
            for tx in 0..target {
                let x0 = tx * w / target;
                let x1 = ((tx + 1) * w / target).max(x0 + 1).min(w);
                let mut acc = 0.0f32;
                for y in y0..y1 {
                    for x in x0..x1 {
                        acc += src[(ch * h + y) * w + x];
                    }
                }
                let area = ((y1 - y0) * (x1 - x0)) as f32;
                out[(ch * target + ty) * target + tx] = quantize_u8(acc / area);
            }
        }
    }
    Tensor::from_vec(Shape::d3(c, target, target), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ppm() -> Vec<u8> {
        // 2×1 image: red pixel, blue pixel.
        let mut b = b"P6\n2 1\n255\n".to_vec();
        b.extend_from_slice(&[255, 0, 0, 0, 0, 255]);
        b
    }

    #[test]
    fn decode_roundtrip_with_writer() {
        // bcp-gradcam's writer and this reader must agree.
        let img = Tensor::from_vec(
            Shape::d3(3, 2, 2),
            [
                1.0, 0.0, 0.5, 0.2, // R plane
                0.0, 1.0, 0.5, 0.4, // G plane
                0.0, 0.0, 0.5, 0.6, // B plane
            ]
            .iter()
            .map(|&v| quantize_u8(v))
            .collect(),
        );
        // Local writer replica (same layout as bcp_gradcam::render::image_ppm).
        let (h, w) = (2usize, 2usize);
        let mut ppm = format!("P6\n{w} {h}\n255\n").into_bytes();
        let plane = h * w;
        for i in 0..plane {
            for ch in 0..3 {
                ppm.push((img.as_slice()[ch * plane + i] * 255.0).round() as u8);
            }
        }
        let decoded = decode_ppm(&ppm).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn decode_known_pixels() {
        let img = decode_ppm(&tiny_ppm()).unwrap();
        assert_eq!(img.shape().dims(), &[3, 1, 2]);
        assert_eq!(img.at(&[0, 0, 0]), 1.0); // red of pixel 0
        assert_eq!(img.at(&[2, 0, 1]), 1.0); // blue of pixel 1
        assert_eq!(img.at(&[1, 0, 0]), 0.0);
    }

    #[test]
    fn decode_handles_comments() {
        let mut b = b"P6\n# a camera comment\n2 1\n# another\n255\n".to_vec();
        b.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        let img = decode_ppm(&b).unwrap();
        assert_eq!(img.shape().dims(), &[3, 1, 2]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode_ppm(b"P5\n1 1\n255\nx"), Err(PpmError::BadMagic));
        assert!(matches!(decode_ppm(b"P6\nxx"), Err(PpmError::BadHeader(_))));
        assert_eq!(
            decode_ppm(b"P6\n1 1\n65535\n\0\0"),
            Err(PpmError::BadMaxval(65535))
        );
        assert!(matches!(
            decode_ppm(b"P6\n2 2\n255\n\0\0\0"),
            Err(PpmError::Truncated { .. })
        ));
    }

    #[test]
    fn resize_identity() {
        let img = decode_ppm(&tiny_ppm()).unwrap();
        let same = resize_to(&img, 1);
        assert_eq!(same.shape().dims(), &[3, 1, 1]);
        // Average of red and blue pixels.
        assert!((same.at(&[0, 0, 0]) - quantize_u8(0.5)).abs() < 1e-6);
    }

    #[test]
    fn resize_downscale_averages() {
        // 4×4 image, top half white, bottom half black → 2×2 resize keeps it.
        let mut data = vec![0.0f32; 3 * 16];
        for ch in 0..3 {
            for y in 0..2 {
                for x in 0..4 {
                    data[(ch * 4 + y) * 4 + x] = 1.0;
                }
            }
        }
        let img = Tensor::from_vec(Shape::d3(3, 4, 4), data);
        let small = resize_to(&img, 2);
        assert_eq!(small.at(&[0, 0, 0]), 1.0);
        assert_eq!(small.at(&[0, 1, 1]), 0.0);
    }

    #[test]
    fn resize_upscale_is_defined() {
        let img = decode_ppm(&tiny_ppm()).unwrap();
        let big = resize_to(&img, 4);
        assert_eq!(big.shape().dims(), &[3, 4, 4]);
        for &v in big.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn resize_output_on_u8_grid() {
        let img = decode_ppm(&tiny_ppm()).unwrap();
        for &v in resize_to(&img, 3).as_slice() {
            let k = (v * 255.0).round();
            assert!((v - k / 255.0).abs() < 1e-6);
        }
    }
}
