//! Crowd-scene composition and tiling.
//!
//! Sec. IV-B: the high-performance configuration "can be used to split
//! large crowd images and classify them at a high-rate to detect uncovered
//! faces in a scene." This module builds such scenes — a grid of faces
//! composed into one large frame — and provides the splitter that recovers
//! the per-face tiles the accelerator consumes.

use crate::classes::MaskClass;
use crate::generator::{generate_sample, raw_class_sample, GeneratorConfig};
use bcp_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// A composed crowd frame with per-tile ground truth.
#[derive(Clone, Debug)]
pub struct CrowdScene {
    /// The full frame, `3 × (grid·tile) × (grid·tile)`.
    pub image: Tensor,
    /// Faces per side.
    pub grid: usize,
    /// Tile edge length (the network input size).
    pub tile: usize,
    /// Ground-truth class per tile, row-major.
    pub labels: Vec<usize>,
}

/// Compose a `grid × grid` crowd scene. Classes follow the raw
/// MaskedFace-Net distribution (a crowd is not balanced).
pub fn generate_crowd_scene(cfg: &GeneratorConfig, grid: usize, seed: u64) -> CrowdScene {
    assert!(grid > 0, "grid must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let classes: Vec<MaskClass> = (0..grid * grid)
        .map(|_| raw_class_sample(&mut rng))
        .collect();
    let tiles: Vec<(Vec<f32>, usize)> = classes
        .par_iter()
        .enumerate()
        .map(|(i, &class)| {
            let (img, _) = generate_sample(cfg, class, seed ^ (i as u64 * 2654435761 + 1));
            (img.into_vec(), class.label())
        })
        .collect();

    let t = cfg.img_size;
    let s = grid * t;
    let mut frame = vec![0.0f32; 3 * s * s];
    let mut labels = Vec::with_capacity(grid * grid);
    for (i, (tile, label)) in tiles.into_iter().enumerate() {
        let (gy, gx) = (i / grid, i % grid);
        for ch in 0..3 {
            for y in 0..t {
                let src = &tile[(ch * t + y) * t..(ch * t + y + 1) * t];
                let dst_base = (ch * s + gy * t + y) * s + gx * t;
                frame[dst_base..dst_base + t].copy_from_slice(src);
            }
        }
        labels.push(label);
    }
    CrowdScene {
        image: Tensor::from_vec(Shape::d3(3, s, s), frame),
        grid,
        tile: t,
        labels,
    }
}

impl CrowdScene {
    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.grid * self.grid
    }

    /// True when the scene holds no tiles.
    pub fn is_empty(&self) -> bool {
        self.grid == 0
    }

    /// Split the frame back into row-major CHW tiles — the inverse of the
    /// composition, and the operation the deployment performs on camera
    /// frames.
    pub fn tiles(&self) -> Vec<Tensor> {
        let (t, s) = (self.tile, self.grid * self.tile);
        let src = self.image.as_slice();
        let mut out = Vec::with_capacity(self.len());
        for gy in 0..self.grid {
            for gx in 0..self.grid {
                let mut tile = vec![0.0f32; 3 * t * t];
                for ch in 0..3 {
                    for y in 0..t {
                        let src_base = (ch * s + gy * t + y) * s + gx * t;
                        let dst_base = (ch * t + y) * t;
                        tile[dst_base..dst_base + t].copy_from_slice(&src[src_base..src_base + t]);
                    }
                }
                out.push(Tensor::from_vec(Shape::d3(3, t, t), tile));
            }
        }
        out
    }

    /// Non-compliance statistics: count of tiles per class.
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GeneratorConfig {
        GeneratorConfig {
            img_size: 16,
            supersample: 2,
        }
    }

    #[test]
    fn scene_dimensions() {
        let scene = generate_crowd_scene(&cfg(), 3, 1);
        assert_eq!(scene.image.shape().dims(), &[3, 48, 48]);
        assert_eq!(scene.len(), 9);
        assert_eq!(scene.labels.len(), 9);
    }

    #[test]
    fn tiling_inverts_composition() {
        let scene = generate_crowd_scene(&cfg(), 2, 3);
        let tiles = scene.tiles();
        assert_eq!(tiles.len(), 4);
        // Each tile must exactly reproduce an independently generated
        // face image? Not directly comparable — but re-composing the tiles
        // must reproduce the frame.
        let t = scene.tile;
        let s = scene.grid * t;
        let mut recomposed = vec![0.0f32; 3 * s * s];
        for (i, tile) in tiles.iter().enumerate() {
            let (gy, gx) = (i / scene.grid, i % scene.grid);
            for ch in 0..3 {
                for y in 0..t {
                    let src = &tile.as_slice()[(ch * t + y) * t..(ch * t + y + 1) * t];
                    let dst = (ch * s + gy * t + y) * s + gx * t;
                    recomposed[dst..dst + t].copy_from_slice(src);
                }
            }
        }
        assert_eq!(recomposed, scene.image.as_slice());
    }

    #[test]
    fn scene_is_deterministic() {
        let a = generate_crowd_scene(&cfg(), 2, 7);
        let b = generate_crowd_scene(&cfg(), 2, 7);
        assert_eq!(a.image, b.image);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn large_scene_is_imbalanced_like_a_crowd() {
        let scene = generate_crowd_scene(&cfg(), 10, 5);
        let counts = scene.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // Correct + Nose dominate under the raw distribution.
        assert!(counts[0] + counts[1] > counts[2] + counts[3]);
    }

    #[test]
    fn tiles_carry_values_on_u8_grid() {
        let scene = generate_crowd_scene(&cfg(), 2, 9);
        for tile in scene.tiles() {
            for &v in tile.as_slice() {
                let k = (v * 255.0).round();
                assert!((v - k / 255.0).abs() < 1e-6);
            }
        }
    }
}
