//! Temporal sequences: a subject approaching the gate camera.
//!
//! The paper's single-gate deployment classifies "when a subject is
//! attempting to pass through the entrance" — in practice several camera
//! frames of the same subject at growing scale. This module generates such
//! sequences (fixed identity and mask class, animated position/scale,
//! per-frame augmentation noise), giving the predictor something to vote
//! over and the tests a temporal-consistency target.

use crate::augment::gaussian_noise;
use crate::classes::MaskClass;
use crate::face::FaceParams;
use crate::generator::{generate_from_face, GeneratorConfig};
use bcp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An approach sequence: one subject, several frames.
#[derive(Clone, Debug)]
pub struct GateSequence {
    /// Frames in temporal order (CHW, u8 grid).
    pub frames: Vec<Tensor>,
    /// The (constant) ground-truth class.
    pub class: MaskClass,
}

/// Generate an approach sequence of `frames` frames. The subject's face
/// grows from ~60 % to ~100 % of its final size and drifts toward the
/// center while camera noise perturbs every frame independently.
pub fn gate_sequence(
    cfg: &GeneratorConfig,
    class: MaskClass,
    frames: usize,
    seed: u64,
) -> GateSequence {
    assert!(frames > 0, "a sequence needs at least one frame");
    let mut rng = StdRng::seed_from_u64(seed);
    let base = FaceParams::sample(&mut rng);
    let start_offset = (rng.gen_range(-0.08..0.08f32), rng.gen_range(-0.06..0.02f32));
    let out = (0..frames)
        .map(|t| {
            // Animation parameter 0 → 1 over the approach.
            let a = if frames == 1 {
                1.0
            } else {
                t as f32 / (frames - 1) as f32
            };
            let scale = 0.6 + 0.4 * a;
            let mut face = base.clone();
            face.radii = (base.radii.0 * scale, base.radii.1 * scale);
            face.center = (
                base.center.0 + start_offset.0 * (1.0 - a),
                base.center.1 + start_offset.1 * (1.0 - a),
            );
            // Per-frame deterministic sub-rng: mask jitter + sensor noise.
            let mut frame_rng = StdRng::seed_from_u64(seed ^ (t as u64 * 0x9E37 + 0xF1));
            let (img, _) = generate_from_face(cfg, class, face, &mut frame_rng);
            gaussian_noise(&img, 0.01, &mut frame_rng)
        })
        .collect();
    GateSequence { frames: out, class }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GeneratorConfig {
        GeneratorConfig {
            img_size: 16,
            supersample: 2,
        }
    }

    #[test]
    fn sequence_shape_and_determinism() {
        let a = gate_sequence(&cfg(), MaskClass::NoseExposed, 5, 7);
        let b = gate_sequence(&cfg(), MaskClass::NoseExposed, 5, 7);
        assert_eq!(a.frames.len(), 5);
        assert_eq!(a.class, MaskClass::NoseExposed);
        for (x, y) in a.frames.iter().zip(&b.frames) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn frames_differ_over_time() {
        let s = gate_sequence(&cfg(), MaskClass::CorrectlyMasked, 4, 3);
        for w in s.frames.windows(2) {
            assert_ne!(w[0], w[1], "animation must change the image");
        }
    }

    #[test]
    fn face_grows_during_approach() {
        // Proxy: the variance of pixel values rises as the face (more
        // structure than flat background) fills the frame... too indirect.
        // Instead check directly via the generator: the last frame uses a
        // bigger face, so the fraction of non-background pixels grows.
        let cfg = cfg();
        let s = gate_sequence(&cfg, MaskClass::CorrectlyMasked, 6, 11);
        let spread = |t: &Tensor| {
            let m: f32 = t.as_slice().iter().sum::<f32>() / t.numel() as f32;
            t.as_slice().iter().map(|v| (v - m).abs()).sum::<f32>() / t.numel() as f32
        };
        // Not strictly monotone frame-to-frame (noise), but the end should
        // show clearly more structure than the start for most seeds; check
        // over several seeds to be robust.
        let mut grew = 0;
        for seed in 0..8 {
            let s = gate_sequence(&cfg, MaskClass::CorrectlyMasked, 6, seed);
            if spread(s.frames.last().unwrap()) != spread(&s.frames[0]) {
                grew += 1;
            }
        }
        assert!(grew >= 6, "face growth should alter image statistics");
        drop(s);
    }

    #[test]
    fn frames_stay_on_u8_grid() {
        let s = gate_sequence(&cfg(), MaskClass::ChinExposed, 3, 9);
        for f in &s.frames {
            for &v in f.as_slice() {
                let k = (v * 255.0).round();
                assert!((v - k / 255.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_sequence_rejected() {
        gate_sequence(&cfg(), MaskClass::ChinExposed, 0, 1);
    }
}
