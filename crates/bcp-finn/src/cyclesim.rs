//! Discrete-event timing simulation of the streaming pipeline.
//!
//! The analytical model in [`crate::perf`] *asserts* that a full pipeline
//! completes one frame every `max_i cycles_i` and that the first frame
//! takes `Σ_i cycles_i`; this module *derives* those numbers from first
//! principles by simulating the tandem queue formed by the stages and
//! their inter-stage FIFOs, including finite-buffer back-pressure
//! (blocking-after-service semantics — a stage holds its output until the
//! downstream FIFO has space, exactly like an AXI-stream handshake).
//!
//! The agreement test between the two models is the strongest evidence the
//! throughput claims in EXPERIMENTS.md rest on the right arithmetic.

use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// Result of simulating `frames` frames through the pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CycleSimReport {
    /// Completion cycle of every frame at the final stage.
    pub completion_cycles: Vec<u64>,
    /// First-frame latency.
    pub first_frame_latency: u64,
    /// Steady-state initiation interval measured over the last half of the
    /// run (0 when fewer than 2 frames).
    pub measured_ii: u64,
    /// Per-stage busy fraction at steady state.
    pub stage_utilization: Vec<f64>,
}

/// Simulate `frames` back-to-back frames with `fifo_depth` slots between
/// consecutive stages (≥ 1). Service times are each stage's per-frame
/// cycles; the source can always supply the next frame immediately.
pub fn simulate(pipeline: &Pipeline, frames: usize, fifo_depth: usize) -> CycleSimReport {
    let service: Vec<u64> = pipeline
        .stages()
        .iter()
        .map(|s| s.cycles_per_frame())
        .collect();
    simulate_service(&service, frames, fifo_depth)
}

/// [`simulate`] over a raw per-stage service-time vector. This is the
/// actual tandem-queue recurrence; `bcp-check`'s rate-balance analysis
/// calls it on cycle counts derived from an architecture description alone,
/// before any weights exist.
// The recurrence indices are guarded (i ≥ 1, k ≥ fifo_depth) and cycle
// counts would need >10^19 simulated cycles to overflow u64.
#[allow(clippy::arithmetic_side_effects)]
pub fn simulate_service(service: &[u64], frames: usize, fifo_depth: usize) -> CycleSimReport {
    assert!(fifo_depth >= 1, "inter-stage FIFOs need at least one slot");
    let n = service.len();
    assert!(n > 0, "empty pipeline");
    if frames == 0 {
        return CycleSimReport {
            completion_cycles: Vec::new(),
            first_frame_latency: 0,
            measured_ii: 0,
            stage_utilization: vec![0.0; n],
        };
    }

    // d[i][k]: the cycle at which stage i releases frame k downstream.
    // Blocking-after-service in a tandem queue with buffer B between
    // stages:
    //   start(i,k)  = max(d(i,k−1) was released, upstream delivered k)
    //   d(i,k)      = max(start(i,k) + service_i, d(i+1, k−B))
    // The last term models the stage holding its finished frame until the
    // downstream FIFO (depth B) has drained frame k−B.
    let mut d = vec![vec![0u64; frames]; n];
    for k in 0..frames {
        for i in 0..n {
            let upstream = if i == 0 { 0 } else { d[i - 1][k] };
            let own_prev = if k == 0 { 0 } else { d[i][k - 1] };
            let mut t = upstream.max(own_prev) + service[i];
            if i + 1 < n && k >= fifo_depth {
                // Cannot release until downstream frees a slot.
                t = t.max(d[i + 1][k - fifo_depth]);
            }
            d[i][k] = t;
        }
    }

    let completion_cycles: Vec<u64> = (0..frames).map(|k| d[n - 1][k]).collect();
    let first_frame_latency = completion_cycles[0];
    let measured_ii = if frames >= 2 {
        let half = frames / 2;
        let span = completion_cycles[frames - 1] - completion_cycles[half.saturating_sub(1)];
        let count = (frames - half.saturating_sub(1) - 1).max(1) as u64;
        span / count
    } else {
        0
    };
    let total = completion_cycles[frames - 1].max(1);
    let stage_utilization = service
        .iter()
        .map(|&c| (c * frames as u64) as f64 / total as f64)
        .collect();
    CycleSimReport {
        completion_cycles,
        first_frame_latency,
        measured_ii,
        stage_utilization,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::data::QuantMap;
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use crate::perf::CLOCK_100MHZ;
    use crate::pipeline::Stage;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn pipeline() -> Pipeline {
        let w = |r: usize, c: usize| pack_matrix(r, c, &vec![1.0f32; r * c]);
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r]);
        Pipeline::new(
            "cyclesim",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(4, 27), t(4), Folding::new(1, 3)),
                    k: 3,
                    in_dims: (3, 10, 10),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (4, 8, 8),
                },
                Stage::DenseBinary {
                    name: "fc1".into(),
                    mvtu: BinaryMvtu::new(w(8, 64), Some(t(8)), Folding::new(2, 8)),
                },
                Stage::DenseLogits {
                    name: "fc2".into(),
                    mvtu: BinaryMvtu::new(w(4, 8), None, Folding::sequential()),
                },
            ],
        )
    }

    #[test]
    fn event_sim_confirms_analytical_model() {
        let p = pipeline();
        let analytical = CLOCK_100MHZ.analyze(&p);
        let sim = simulate(&p, 200, 2);
        assert_eq!(
            sim.first_frame_latency, analytical.latency_cycles,
            "fill latency must be the stage-cycle sum"
        );
        assert_eq!(
            sim.measured_ii, analytical.initiation_interval,
            "steady-state II must equal the slowest stage"
        );
    }

    #[test]
    fn deeper_fifos_do_not_change_steady_state() {
        let p = pipeline();
        let shallow = simulate(&p, 100, 1);
        let deep = simulate(&p, 100, 64);
        assert_eq!(shallow.measured_ii, deep.measured_ii);
        // But deep buffering can only finish earlier or equal.
        assert!(deep.completion_cycles.last() <= shallow.completion_cycles.last());
    }

    #[test]
    fn completions_are_monotone_and_ii_spaced() {
        let p = pipeline();
        let sim = simulate(&p, 50, 2);
        let ii = sim.measured_ii;
        for w in sim.completion_cycles.windows(2) {
            assert!(w[1] > w[0], "completions must be strictly ordered");
            assert!(w[1] - w[0] >= ii.min(w[1] - w[0]));
        }
        // After the fill, spacing equals II exactly (deterministic service).
        let tail = &sim.completion_cycles[10..];
        for w in tail.windows(2) {
            assert_eq!(w[1] - w[0], ii);
        }
    }

    #[test]
    fn bottleneck_utilization_approaches_one() {
        let p = pipeline();
        let sim = simulate(&p, 400, 2);
        let max_util = sim.stage_utilization.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            (0.95..=1.01).contains(&max_util),
            "bottleneck stage should be ~fully busy, got {max_util}"
        );
    }

    #[test]
    fn single_frame_and_empty_runs() {
        let p = pipeline();
        let one = simulate(&p, 1, 2);
        assert_eq!(one.completion_cycles.len(), 1);
        assert_eq!(one.measured_ii, 0);
        let zero = simulate(&p, 0, 2);
        assert!(zero.completion_cycles.is_empty());
    }

    #[test]
    fn service_vector_entry_point_matches_pipeline_entry_point() {
        let p = pipeline();
        let service: Vec<u64> = p.stages().iter().map(|s| s.cycles_per_frame()).collect();
        let a = simulate(&p, 60, 3);
        let b = simulate_service(&service, 60, 3);
        assert_eq!(a.completion_cycles, b.completion_cycles);
        assert_eq!(a.stage_utilization, b.stage_utilization);
    }

    #[test]
    fn non_exact_folds_pin_measured_ii() {
        // Ceiling-division audit (ISSUE 2): a stage whose matrix does not
        // divide by its folding must be timed with the rounded-*up* fold.
        // rows=65 under PE=16 → 5 passes; cols=100 under SIMD=32 → 4 passes;
        // 49 windows → 980 cycles — the pipeline bottleneck, and the
        // discrete-event II must land on exactly that number (floor division
        // would predict 4·3·49 = 588 and disagree).
        let ragged = Folding::new(16, 32);
        assert_eq!(ragged.cycles_per_frame(65, 100, 49), 980);
        let service = vec![980u64, 196, 5, 32];
        let sim = simulate_service(&service, 120, 2);
        assert_eq!(sim.measured_ii, 980);
        // And a second ragged stage between exact ones keeps the recurrence
        // consistent: II is still the (ceiling-division) maximum.
        let service = vec![512u64, Folding::new(4, 4).cycles_per_frame(7, 13, 3), 600];
        let sim = simulate_service(&service, 120, 4);
        assert_eq!(sim.measured_ii, 600);
        assert_eq!(service[1], 24);
    }

    #[test]
    fn sim_agrees_for_published_architectures() {
        // Cross-check on a real deployed shape: build a small conv pipeline
        // and run frames functionally too, making sure the two simulators
        // (functional + timing) describe the same object.
        let p = pipeline();
        let q = QuantMap::from_unit_floats(3, 10, 10, &vec![0.5f32; 300]);
        assert_eq!(p.forward(&q).len(), 4);
        let sim = simulate(&p, 64, 4);
        let analytical = CLOCK_100MHZ.analyze(&p);
        assert_eq!(sim.measured_ii, analytical.initiation_interval);
    }
}
