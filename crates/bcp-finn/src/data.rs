//! On-wire data formats between pipeline stages.

use bcp_bitpack::BitVec64;

/// A binary (±1) feature map: `c` channels of `h×w` bits, bit index
/// `(ch·h + y)·w + x` — the same CHW order `bcp-nn`'s `Flatten` uses, so the
/// dense stages consume conv outputs without reshuffling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinMap {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    bits: BitVec64,
}

impl BinMap {
    /// All-(−1) map.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        BinMap {
            c,
            h,
            w,
            bits: BitVec64::zeros(c.saturating_mul(h).saturating_mul(w)),
        }
    }

    /// Wrap an existing bit vector (length must be `c·h·w`).
    pub fn from_bits(c: usize, h: usize, w: usize, bits: BitVec64) -> Self {
        assert_eq!(
            bits.len(),
            c.saturating_mul(h).saturating_mul(w),
            "bit count does not match {c}×{h}×{w}"
        );
        BinMap { c, h, w, bits }
    }

    /// Build from ±1 floats in CHW order (the nn reference representation).
    pub fn from_signs(c: usize, h: usize, w: usize, signs: &[f32]) -> Self {
        assert_eq!(
            signs.len(),
            c.saturating_mul(h).saturating_mul(w),
            "sign count does not match {c}×{h}×{w}"
        );
        BinMap {
            c,
            h,
            w,
            bits: bcp_bitpack::pack::pack_signs(signs),
        }
    }

    /// Total bit count.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the map holds no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit at (channel, y, x): `true` = +1.
    #[inline]
    // The CHW offset is in range (debug-asserted) and the backing accessor
    // bounds-checks; plain ops keep the per-pixel address math tight.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn get(&self, ch: usize, y: usize, x: usize) -> bool {
        debug_assert!(ch < self.c && y < self.h && x < self.w);
        self.bits.get((ch * self.h + y) * self.w + x)
    }

    /// Set bit at (channel, y, x).
    // Same in-range CHW offset as `get`; the backing accessor bounds-checks.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn set(&mut self, ch: usize, y: usize, x: usize, v: bool) {
        self.bits.set((ch * self.h + y) * self.w + x, v);
    }

    /// The flat bit vector (CHW order), e.g. as dense-stage input.
    pub fn as_bits(&self) -> &BitVec64 {
        &self.bits
    }

    /// Decode to ±1 floats in CHW order.
    pub fn to_signs(&self) -> Vec<f32> {
        self.bits.to_signs()
    }
}

/// A quantized integer feature map — the first pipeline stage's input.
/// A camera byte `q ∈ [0, 255]` maps to `2q − 255 ∈ [−255, 255]` (odd),
/// the integer form of the float normalization `2·(q/255) − 1` scaled by
/// 255. Thresholds for the first layer absorb the ×255.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantMap {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Values in CHW order.
    pub values: Vec<i32>,
}

/// The per-pixel scale of [`QuantMap`] values relative to the float
/// normalization the reference network sees.
pub const INPUT_SCALE: f64 = 255.0;

impl QuantMap {
    /// Quantize a CHW float image with values on the 8-bit grid `[0, 1]`.
    pub fn from_unit_floats(c: usize, h: usize, w: usize, pixels: &[f32]) -> Self {
        assert_eq!(
            pixels.len(),
            c.saturating_mul(h).saturating_mul(w),
            "pixel count does not match {c}×{h}×{w}"
        );
        let values = pixels
            .iter()
            .map(|&v| {
                assert!((0.0..=1.0).contains(&v), "pixel {v} outside [0,1]");
                let q = (v * 255.0).round() as i32;
                q.saturating_mul(2).saturating_sub(255)
            })
            .collect();
        QuantMap { c, h, w, values }
    }

    /// Value at (channel, y, x).
    #[inline]
    // The CHW offset is in range by construction; indexing bounds-checks.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn get(&self, ch: usize, y: usize, x: usize) -> i32 {
        self.values[(ch * self.h + y) * self.w + x]
    }

    /// The float-normalized image the reference network consumes
    /// (`value / 255`).
    pub fn to_normalized_floats(&self) -> Vec<f32> {
        self.values.iter().map(|&v| v as f32 / 255.0).collect()
    }
}

/// A token flowing between pipeline stages.
#[derive(Clone, Debug, PartialEq)]
pub enum StageData {
    /// Quantized integer image (pipeline input).
    Quant(QuantMap),
    /// Binary feature map (between hidden stages).
    Bits(BinMap),
    /// Integer logits (pipeline output).
    Logits(Vec<i64>),
}

impl StageData {
    /// Unwrap as a quantized map; panics with a stage-protocol message
    /// otherwise.
    pub fn expect_quant(self, stage: &str) -> QuantMap {
        match self {
            StageData::Quant(q) => q,
            other => panic!("stage '{stage}' expected a quantized image, got {other:?}"),
        }
    }

    /// Unwrap as a binary map.
    pub fn expect_bits(self, stage: &str) -> BinMap {
        match self {
            StageData::Bits(b) => b,
            other => panic!("stage '{stage}' expected a binary map, got {other:?}"),
        }
    }

    /// Unwrap as logits.
    pub fn expect_logits(self, stage: &str) -> Vec<i64> {
        match self {
            StageData::Logits(l) => l,
            other => panic!("stage '{stage}' expected logits, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binmap_indexing() {
        let mut m = BinMap::zeros(2, 3, 4);
        m.set(1, 2, 3, true);
        assert!(m.get(1, 2, 3));
        assert!(!m.get(0, 2, 3));
        assert_eq!(m.as_bits().count_ones(), 1);
        // Flat position matches CHW arithmetic.
        assert!(m.as_bits().get((3 + 2) * 4 + 3));
    }

    #[test]
    fn binmap_signs_roundtrip() {
        let signs = vec![1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let m = BinMap::from_signs(1, 2, 3, &signs);
        assert_eq!(m.to_signs(), signs);
    }

    #[test]
    fn quantmap_values_odd_and_bounded() {
        let px: Vec<f32> = (0..=255).map(|k| k as f32 / 255.0).collect();
        let q = QuantMap::from_unit_floats(1, 16, 16, &px.repeat(1)[..256]);
        for &v in &q.values {
            assert!((-255..=255).contains(&v));
            assert_eq!(v.rem_euclid(2), 1, "2q−255 must be odd, got {v}");
        }
        // Extremes map to ±255; midpoint 128/255 maps to +1.
        assert_eq!(q.values[0], -255);
        assert_eq!(q.values[255], 255);
        assert_eq!(q.values[128], 1);
    }

    #[test]
    fn quantmap_matches_float_normalization() {
        let px = vec![0.0f32, 1.0, 128.0 / 255.0, 37.0 / 255.0];
        let q = QuantMap::from_unit_floats(1, 2, 2, &px);
        let back = q.to_normalized_floats();
        for (p, b) in px.iter().zip(&back) {
            let expect = 2.0 * p - 1.0;
            assert!((expect - b).abs() < 1e-6, "{expect} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantmap_rejects_out_of_range() {
        QuantMap::from_unit_floats(1, 1, 1, &[1.5]);
    }

    #[test]
    #[should_panic(expected = "expected a binary map")]
    fn stage_data_protocol_mismatch() {
        StageData::Logits(vec![1]).expect_bits("fc1");
    }
}
