//! Target SoC resource budgets.

use serde::{Deserialize, Serialize};

/// An FPGA device's programmable-logic budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// 6-input LUTs.
    pub luts: u64,
    /// 18 Kb block-RAM units (a 36 Kb BRAM counts as two).
    pub bram18: u64,
    /// DSP48 slices.
    pub dsps: u64,
}

/// Xilinx Zynq XC7Z020 — the paper's main target (Sec. IV-A).
pub const Z7020: Device = Device {
    name: "XC7Z020",
    luts: 53_200,
    bram18: 280,
    dsps: 220,
};

/// Xilinx Zynq XC7Z010 — the constrained target μ-CNV fits after DSP
/// offloading (Sec. IV-A, OrthrusPE — paper ref 27).
pub const Z7010: Device = Device {
    name: "XC7Z010",
    luts: 17_600,
    bram18: 120,
    dsps: 80,
};

/// A design's estimated resource usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// LUT count.
    pub luts: u64,
    /// 18 Kb BRAM count.
    pub bram18: u64,
    /// DSP slice count.
    pub dsps: u64,
}

impl ResourceUsage {
    /// Componentwise sum.
    #[allow(clippy::should_implement_trait)] // a named helper, not operator overloading
    pub fn add(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts.saturating_add(other.luts),
            bram18: self.bram18.saturating_add(other.bram18),
            dsps: self.dsps.saturating_add(other.dsps),
        }
    }
}

impl Device {
    /// Whether a design fits this device.
    pub fn fits(&self, usage: &ResourceUsage) -> bool {
        usage.luts <= self.luts && usage.bram18 <= self.bram18 && usage.dsps <= self.dsps
    }

    /// Fractional LUT utilization (>1 = over budget).
    pub fn lut_utilization(&self, usage: &ResourceUsage) -> f64 {
        usage.luts as f64 / self.luts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z7010_smaller_than_z7020() {
        // Read through locals so the comparison isn't const-folded away by
        // the lint (the point is documenting the device relationship).
        let (a, b) = (Z7010, Z7020);
        assert!(a.luts < b.luts);
        assert!(a.bram18 < b.bram18);
        assert!(a.dsps < b.dsps);
    }

    #[test]
    fn fits_checks_every_resource() {
        let ok = ResourceUsage {
            luts: 10_000,
            bram18: 20,
            dsps: 10,
        };
        assert!(Z7010.fits(&ok));
        assert!(!Z7010.fits(&ResourceUsage { luts: 20_000, ..ok }));
        assert!(!Z7010.fits(&ResourceUsage { bram18: 200, ..ok }));
        assert!(!Z7010.fits(&ResourceUsage { dsps: 100, ..ok }));
    }

    #[test]
    fn paper_table2_fits_claims() {
        // Table II utilizations: CNV fits Z7020 but not Z7010; μ-CNV fits
        // Z7010 by LUTs.
        let cnv = ResourceUsage {
            luts: 26_060,
            bram18: 124,
            dsps: 24,
        };
        let ucnv = ResourceUsage {
            luts: 11_738,
            bram18: 14,
            dsps: 27,
        };
        assert!(Z7020.fits(&cnv));
        assert!(!Z7010.fits(&cnv));
        assert!(Z7010.fits(&ucnv));
    }

    #[test]
    fn usage_add() {
        let a = ResourceUsage {
            luts: 1,
            bram18: 2,
            dsps: 3,
        };
        let b = ResourceUsage {
            luts: 10,
            bram18: 20,
            dsps: 30,
        };
        assert_eq!(
            a.add(b),
            ResourceUsage {
                luts: 11,
                bram18: 22,
                dsps: 33
            }
        );
    }
}
