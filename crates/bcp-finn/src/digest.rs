//! Golden integrity digest of a deployed pipeline's parameter memories.
//!
//! At deploy time every packed weight row and every folded threshold table
//! gets a CRC-32 code ([`bcp_bitpack::checksum`]). The sealed
//! [`GoldenDigest`] captures all of them in one pass; re-verifying against
//! a live pipeline localizes any corruption to a `(stage, row)` coordinate
//! — the detection half of `bcp-guard`'s scrub/repair loop. The digest is
//! read-only after capture: repairs mutate the pipeline back toward the
//! digest, never the digest toward the pipeline.

use crate::pipeline::Pipeline;
use bcp_bitpack::checksum::crc32;
use bcp_bitpack::{ThresholdChannel, ThresholdUnit};
use serde::{Deserialize, Serialize};

/// Integrity codes for one pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageDigest {
    stage: usize,
    name: String,
    rows: usize,
    cols: usize,
    row_crcs: Vec<u32>,
    threshold_crc: Option<u32>,
}

impl StageDigest {
    /// Stage index within the pipeline.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Stage name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Weight rows covered (0 for a weightless stage).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Weight columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Golden CRC of weight row `r`.
    pub fn row_crc(&self, r: usize) -> u32 {
        self.row_crcs[r]
    }

    /// Golden CRC of the stage's threshold table, when it has one.
    pub fn threshold_crc(&self) -> Option<u32> {
        self.threshold_crc
    }
}

/// One detected corruption, localized to the memory it hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntegrityFault {
    /// A packed weight row whose CRC no longer matches the golden code.
    WeightRow {
        /// Stage index.
        stage: usize,
        /// Row (output neuron) within the stage's weight matrix.
        row: usize,
    },
    /// A threshold table whose CRC no longer matches.
    Thresholds {
        /// Stage index.
        stage: usize,
    },
}

impl std::fmt::Display for IntegrityFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityFault::WeightRow { stage, row } => {
                write!(f, "weight row {row} of stage {stage} fails its CRC")
            }
            IntegrityFault::Thresholds { stage } => {
                write!(f, "threshold table of stage {stage} fails its CRC")
            }
        }
    }
}

/// Canonical byte serialization of a threshold table, the message its CRC
/// is computed over: one tag byte per channel, plus the little-endian
/// threshold for the comparing variants.
pub fn threshold_bytes(unit: &ThresholdUnit) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(unit.len().saturating_mul(9));
    for ch in unit.channels() {
        match ch {
            ThresholdChannel::Ge(t) => {
                bytes.push(0);
                bytes.extend_from_slice(&t.to_le_bytes());
            }
            ThresholdChannel::Le(t) => {
                bytes.push(1);
                bytes.extend_from_slice(&t.to_le_bytes());
            }
            ThresholdChannel::Const(false) => bytes.push(2),
            ThresholdChannel::Const(true) => bytes.push(3),
        }
    }
    bytes
}

/// Sealed golden digest of every parameter memory in a pipeline.
///
/// Capture once at deploy time; `verify` any number of times afterwards.
/// There is no mutator — a digest can only be replaced by re-capturing
/// from a trusted pipeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenDigest {
    pipeline: String,
    stages: Vec<StageDigest>,
}

impl GoldenDigest {
    /// Hash every weight row and threshold table of `pipeline`.
    pub fn capture(pipeline: &Pipeline) -> Self {
        let stages = pipeline
            .stages()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (rows, cols, row_crcs) = match s.weight_matrix() {
                    Some(m) => (m.rows(), m.cols(), m.row_checksums()),
                    None => (0, 0, Vec::new()),
                };
                StageDigest {
                    stage: i,
                    name: s.name().to_string(),
                    rows,
                    cols,
                    row_crcs,
                    threshold_crc: s.threshold_unit().map(|t| crc32(&threshold_bytes(t))),
                }
            })
            .collect();
        GoldenDigest {
            pipeline: pipeline.name().to_string(),
            stages,
        }
    }

    /// Name of the pipeline the digest was captured from.
    pub fn pipeline_name(&self) -> &str {
        &self.pipeline
    }

    /// Per-stage digests, in stage order.
    pub fn stages(&self) -> &[StageDigest] {
        &self.stages
    }

    /// Total weight rows covered across all stages.
    pub fn total_rows(&self) -> usize {
        self.stages.iter().map(|s| s.rows).sum()
    }

    /// Stages carrying a threshold table.
    pub fn thresholded_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.threshold_crc.is_some())
            .count()
    }

    /// Re-hash one weight row of the live pipeline and compare against the
    /// golden code. Panics if the stage carries no weights or the pipeline
    /// shape diverged from the captured one (programmer error, not a SEU).
    pub fn verify_row(&self, pipeline: &Pipeline, stage: usize, row: usize) -> bool {
        let d = &self.stages[stage];
        let m = pipeline.stages()[stage]
            .weight_matrix()
            .unwrap_or_else(|| panic!("stage {stage} has no weight memory to verify"));
        assert_eq!(
            (m.rows(), m.cols()),
            (d.rows, d.cols),
            "stage {stage} shape diverged from the golden digest"
        );
        bcp_bitpack::checksum::crc32_words(m.row_words(row)) == d.row_crcs[row]
    }

    /// Re-hash one stage's threshold table and compare. `true` when the
    /// stage has no threshold memory (nothing to corrupt).
    pub fn verify_thresholds(&self, pipeline: &Pipeline, stage: usize) -> bool {
        match (
            self.stages[stage].threshold_crc,
            pipeline.stages()[stage].threshold_unit(),
        ) {
            (Some(golden), Some(t)) => crc32(&threshold_bytes(t)) == golden,
            (None, None) => true,
            _ => panic!("stage {stage} threshold presence diverged from the golden digest"),
        }
    }

    /// Full sweep: every weight row and threshold table, returning each
    /// localized corruption found.
    pub fn verify(&self, pipeline: &Pipeline) -> Vec<IntegrityFault> {
        assert_eq!(
            self.stages.len(),
            pipeline.stages().len(),
            "digest covers {} stages but pipeline has {}",
            self.stages.len(),
            pipeline.stages().len()
        );
        let mut faults = Vec::new();
        for d in &self.stages {
            for row in 0..d.rows {
                if !self.verify_row(pipeline, d.stage, row) {
                    faults.push(IntegrityFault::WeightRow {
                        stage: d.stage,
                        row,
                    });
                }
            }
            if d.threshold_crc.is_some() && !self.verify_thresholds(pipeline, d.stage) {
                faults.push(IntegrityFault::Thresholds { stage: d.stage });
            }
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::fault::{apply_fault, FaultRecord};
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use crate::pipeline::Stage;
    use bcp_bitpack::pack::pack_matrix;

    fn pipeline() -> Pipeline {
        let w = |r: usize, c: usize, seed: u64| {
            let mut s = seed | 1;
            let vals: Vec<f32> = (0..r * c)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
                    if s >> 60 & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            pack_matrix(r, c, &vals)
        };
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r]);
        Pipeline::new(
            "digest-test",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(4, 27, 1), t(4), Folding::new(4, 3)),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (4, 6, 6),
                },
                Stage::DenseLogits {
                    name: "fc".into(),
                    mvtu: BinaryMvtu::new(w(4, 36, 2), None, Folding::sequential()),
                },
            ],
        )
    }

    #[test]
    fn clean_pipeline_verifies_clean() {
        let p = pipeline();
        let d = GoldenDigest::capture(&p);
        assert_eq!(d.pipeline_name(), "digest-test");
        assert_eq!(d.total_rows(), 8);
        assert_eq!(d.thresholded_stages(), 1);
        assert!(d.verify(&p).is_empty());
    }

    #[test]
    fn single_flip_is_localized_exactly() {
        let mut p = pipeline();
        let d = GoldenDigest::capture(&p);
        apply_fault(
            &mut p,
            FaultRecord {
                stage: 2,
                row: 3,
                col: 17,
            },
        );
        assert_eq!(
            d.verify(&p),
            vec![IntegrityFault::WeightRow { stage: 2, row: 3 }]
        );
    }

    #[test]
    fn threshold_corruption_is_detected() {
        let mut p = pipeline();
        let d = GoldenDigest::capture(&p);
        p.stage_mut(0).restore_thresholds(ThresholdUnit::new(vec![
            ThresholdChannel::Ge(1),
            ThresholdChannel::Ge(0),
            ThresholdChannel::Ge(0),
            ThresholdChannel::Ge(0),
        ]));
        assert_eq!(d.verify(&p), vec![IntegrityFault::Thresholds { stage: 0 }]);
    }

    #[test]
    fn threshold_bytes_distinguish_variants() {
        // Ge(0), Le(0), Const(false), Const(true) must all hash apart.
        let codes: Vec<u32> = [
            ThresholdChannel::Ge(0),
            ThresholdChannel::Le(0),
            ThresholdChannel::Const(false),
            ThresholdChannel::Const(true),
        ]
        .into_iter()
        .map(|ch| crc32(&threshold_bytes(&ThresholdUnit::new(vec![ch]))))
        .collect();
        let unique: std::collections::HashSet<_> = codes.iter().collect();
        assert_eq!(unique.len(), codes.len());
    }

    #[test]
    fn digest_roundtrips_through_serde() {
        let p = pipeline();
        let d = GoldenDigest::capture(&p);
        let json = serde_json::to_string(&d).unwrap();
        let back: GoldenDigest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        assert!(back.verify(&p).is_empty());
    }
}
