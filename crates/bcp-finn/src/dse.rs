//! PE/SIMD design-space exploration (Sec. III-B / IV-B).
//!
//! "Based on the compute complexity of each layer, the available hardware
//! resources need to be distributed over the corresponding MVTUs, such that
//! all parts of the pipeline have a matched throughput." This module
//! automates that dimensioning: a greedy allocator that repeatedly widens
//! the bottleneck stage (choosing the cheaper of more PEs / more SIMD
//! lanes) until the LUT budget is exhausted or nothing improves.

use crate::folding::Folding;
use crate::resource::{LUT_PER_PE, LUT_PER_STAGE, LUT_PER_SYNAPSE};
use serde::{Deserialize, Serialize};

/// Abstract MVTU workload: a `rows × cols` matrix applied to `vectors`
/// input vectors per frame.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerDims {
    /// Layer name.
    pub name: String,
    /// Output neurons.
    pub rows: usize,
    /// Fan-in.
    pub cols: usize,
    /// Input vectors per frame (OH·OW for conv, 1 for dense).
    pub vectors: usize,
}

impl LayerDims {
    /// Cycles per frame under a folding.
    pub fn cycles(&self, f: Folding) -> u64 {
        f.cycles_per_frame(self.rows, self.cols, self.vectors)
    }

    /// LUT cost of an MVTU with this folding (same constants as the
    /// resource estimator, weight memory excluded — it is folding-invariant
    /// to first order).
    pub fn lut_cost(&self, f: Folding) -> f64 {
        f.parallelism() as f64 * LUT_PER_SYNAPSE + f.pe as f64 * LUT_PER_PE + LUT_PER_STAGE
    }
}

/// DSE outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DseResult {
    /// Chosen folding per layer.
    pub foldings: Vec<Folding>,
    /// Resulting initiation interval (cycles).
    pub initiation_interval: u64,
    /// Total MVTU LUT cost under the model.
    pub luts: f64,
}

/// Smallest divisor of `n` strictly greater than `cur`, if any.
fn next_divisor(n: usize, cur: usize) -> Option<usize> {
    (cur.saturating_add(1)..=n).find(|d| n.is_multiple_of(*d))
}

/// Greedy throughput-matching allocation under a LUT budget.
///
/// Foldings stay exact divisors of the matrix dimensions (no padding
/// waste), exactly like hand-dimensioned FINN designs.
pub fn allocate(layers: &[LayerDims], lut_budget: f64) -> DseResult {
    assert!(!layers.is_empty(), "DSE needs at least one layer");
    let mut foldings = vec![Folding::sequential(); layers.len()];
    let mut spent: f64 = layers
        .iter()
        .zip(&foldings)
        .map(|(l, &f)| l.lut_cost(f))
        .sum();

    loop {
        // Bottleneck stage under current foldings.
        let (bottleneck, _) = layers
            .iter()
            .zip(&foldings)
            .map(|(l, &f)| l.cycles(f))
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .expect("non-empty layers");
        let l = &layers[bottleneck];
        let f = foldings[bottleneck];

        // Candidate upgrades: widen SIMD or add PEs (divisor steps).
        let mut best: Option<(Folding, f64, u64)> = None; // (folding, Δlut, cycles)
        for cand in [
            next_divisor(l.cols, f.simd).map(|s| Folding { pe: f.pe, simd: s }),
            next_divisor(l.rows, f.pe).map(|p| Folding {
                pe: p,
                simd: f.simd,
            }),
        ]
        .into_iter()
        .flatten()
        {
            let delta = l.lut_cost(cand) - l.lut_cost(f);
            let cycles = l.cycles(cand);
            let better = match best {
                None => true,
                // Prefer the bigger cycle reduction per LUT.
                Some((_, bd, bc)) => {
                    let gain = l.cycles(f).saturating_sub(cycles) as f64 / delta.max(1e-9);
                    let bgain = l.cycles(f).saturating_sub(bc) as f64 / bd.max(1e-9);
                    gain > bgain
                }
            };
            if better {
                best = Some((cand, delta, cycles));
            }
        }

        match best {
            Some((cand, delta, cycles)) if spent + delta <= lut_budget && cycles < l.cycles(f) => {
                foldings[bottleneck] = cand;
                spent += delta;
            }
            _ => break, // budget exhausted or bottleneck saturated
        }
    }

    let initiation_interval = layers
        .iter()
        .zip(&foldings)
        .map(|(l, &f)| l.cycles(f))
        .max()
        .unwrap();
    DseResult {
        foldings,
        initiation_interval,
        luts: spent,
    }
}

/// Inverse dimensioning: find the cheapest folding (by the LUT model) that
/// reaches an initiation interval of at most `target_ii` cycles — i.e.
/// "what does X fps cost?". Returns `None` when even full unfolding cannot
/// reach the target.
pub fn allocate_for_target(layers: &[LayerDims], target_ii: u64) -> Option<DseResult> {
    assert!(!layers.is_empty(), "DSE needs at least one layer");
    assert!(target_ii > 0, "target II must be positive");
    let mut foldings = vec![Folding::sequential(); layers.len()];
    loop {
        let (bottleneck, worst) = layers
            .iter()
            .zip(&foldings)
            .map(|(l, &f)| l.cycles(f))
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .expect("non-empty layers");
        if worst <= target_ii {
            break;
        }
        let l = &layers[bottleneck];
        let f = foldings[bottleneck];
        // Cheapest single upgrade step for the bottleneck.
        let mut best: Option<(Folding, f64)> = None;
        for cand in [
            next_divisor(l.cols, f.simd).map(|s| Folding { pe: f.pe, simd: s }),
            next_divisor(l.rows, f.pe).map(|p| Folding {
                pe: p,
                simd: f.simd,
            }),
        ]
        .into_iter()
        .flatten()
        {
            if l.cycles(cand) >= l.cycles(f) {
                continue;
            }
            let delta = l.lut_cost(cand) - l.lut_cost(f);
            if best.is_none() || delta < best.unwrap().1 {
                best = Some((cand, delta));
            }
        }
        match best {
            Some((cand, _)) => foldings[bottleneck] = cand,
            None => return None, // bottleneck fully unfolded, target unreachable
        }
    }
    let initiation_interval = layers
        .iter()
        .zip(&foldings)
        .map(|(l, &f)| l.cycles(f))
        .max()
        .unwrap();
    let luts = layers
        .iter()
        .zip(&foldings)
        .map(|(l, &f)| l.lut_cost(f))
        .sum();
    Some(DseResult {
        foldings,
        initiation_interval,
        luts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnv_like() -> Vec<LayerDims> {
        // The CNV workload shape (Table I on 32×32 inputs).
        vec![
            LayerDims {
                name: "conv1_1".into(),
                rows: 64,
                cols: 27,
                vectors: 900,
            },
            LayerDims {
                name: "conv1_2".into(),
                rows: 64,
                cols: 576,
                vectors: 784,
            },
            LayerDims {
                name: "conv2_1".into(),
                rows: 128,
                cols: 576,
                vectors: 144,
            },
            LayerDims {
                name: "conv2_2".into(),
                rows: 128,
                cols: 1152,
                vectors: 100,
            },
            LayerDims {
                name: "conv3_1".into(),
                rows: 256,
                cols: 1152,
                vectors: 9,
            },
            LayerDims {
                name: "conv3_2".into(),
                rows: 256,
                cols: 2304,
                vectors: 1,
            },
            LayerDims {
                name: "fc1".into(),
                rows: 512,
                cols: 256,
                vectors: 1,
            },
            LayerDims {
                name: "fc2".into(),
                rows: 512,
                cols: 512,
                vectors: 1,
            },
            LayerDims {
                name: "fc3".into(),
                rows: 4,
                cols: 512,
                vectors: 1,
            },
        ]
    }

    #[test]
    fn next_divisor_steps() {
        assert_eq!(next_divisor(64, 1), Some(2));
        assert_eq!(next_divisor(64, 2), Some(4));
        assert_eq!(next_divisor(27, 1), Some(3));
        assert_eq!(next_divisor(27, 9), Some(27));
        assert_eq!(next_divisor(27, 27), None);
    }

    #[test]
    fn allocation_respects_budget_and_improves() {
        let layers = cnv_like();
        let base: f64 = layers
            .iter()
            .map(|l| l.lut_cost(Folding::sequential()))
            .sum();
        let budget = base + 10_000.0;
        let r = allocate(&layers, budget);
        assert!(r.luts <= budget + 1e-6);
        let seq_ii = layers
            .iter()
            .map(|l| l.cycles(Folding::sequential()))
            .max()
            .unwrap();
        assert!(
            r.initiation_interval < seq_ii / 8,
            "DSE should cut the II substantially: {} vs {}",
            r.initiation_interval,
            seq_ii
        );
    }

    #[test]
    fn foldings_are_exact_divisors() {
        let layers = cnv_like();
        let r = allocate(&layers, 30_000.0);
        for (l, f) in layers.iter().zip(&r.foldings) {
            assert!(f.is_exact(l.rows, l.cols), "{}: {:?}", l.name, f);
        }
    }

    #[test]
    fn more_budget_never_hurts() {
        let layers = cnv_like();
        let small = allocate(&layers, 8_000.0);
        let big = allocate(&layers, 40_000.0);
        assert!(big.initiation_interval <= small.initiation_interval);
    }

    #[test]
    fn allocation_is_throughput_matched() {
        // After DSE, no stage should dwarf the others: the bottleneck is
        // within 8× of the median MVTU (folding steps are coarse divisors,
        // perfect matching is impossible).
        let layers = cnv_like();
        let r = allocate(&layers, 40_000.0);
        let mut cycles: Vec<u64> = layers
            .iter()
            .zip(&r.foldings)
            .map(|(l, &f)| l.cycles(f))
            .collect();
        cycles.sort_unstable();
        let median = cycles[cycles.len() / 2];
        assert!(
            r.initiation_interval <= median * 8,
            "II {} vs median {median}",
            r.initiation_interval
        );
    }

    #[test]
    fn inverse_allocation_reaches_target() {
        let layers = cnv_like();
        // ~6400 fps at 100 MHz → II ≤ 15625 cycles.
        let r = allocate_for_target(&layers, 15_625).expect("target reachable");
        assert!(r.initiation_interval <= 15_625);
        // And it should be cheaper than a much more aggressive target.
        let fast = allocate_for_target(&layers, 2_000).expect("target reachable");
        assert!(fast.luts > r.luts, "faster target must cost more LUTs");
        assert!(fast.initiation_interval <= 2_000);
    }

    #[test]
    fn inverse_allocation_detects_unreachable_targets() {
        // conv1_2 fully unfolded still takes 784 cycles (one per window),
        // so a 10-cycle II is impossible.
        let layers = cnv_like();
        assert!(allocate_for_target(&layers, 10).is_none());
    }

    #[test]
    fn inverse_allocation_trivial_target() {
        let layers = cnv_like();
        let seq_ii = layers
            .iter()
            .map(|l| l.cycles(Folding::sequential()))
            .max()
            .unwrap();
        let r = allocate_for_target(&layers, seq_ii).unwrap();
        // Already satisfied sequentially → minimal cost.
        for f in &r.foldings {
            assert_eq!(*f, Folding::sequential());
        }
    }

    #[test]
    fn single_layer_saturates() {
        let layers = vec![LayerDims {
            name: "fc".into(),
            rows: 4,
            cols: 8,
            vectors: 1,
        }];
        let r = allocate(&layers, 1e9);
        // Fully unfolded: 1 cycle per frame.
        assert_eq!(r.initiation_interval, 1);
        assert_eq!(r.foldings[0], Folding { pe: 4, simd: 8 });
    }
}
