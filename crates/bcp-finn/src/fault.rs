//! Weight-memory fault injection.
//!
//! A deployed edge accelerator keeps every parameter in on-chip SRAM;
//! single-event upsets flip individual weight bits. Because a BNN weight
//! *is* one bit, a flip is the worst-case per-parameter perturbation — a
//! full sign change. This module injects deterministic, seedable bit
//! flips into a pipeline's weight memories so robustness can be measured
//! (see the `robustness` experiment), and is also the ablation backing the
//! paper's redundancy argument: binarization's low information capacity
//! means many weights are individually non-critical.

use crate::pipeline::{Pipeline, Stage};
use serde::{Deserialize, Serialize};

/// Record of one injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Stage index within the pipeline.
    pub stage: usize,
    /// Weight row (output neuron).
    pub row: usize,
    /// Weight column (synapse).
    pub col: usize,
}

/// Flip the weight bit described by a record (involutive: applying the
/// same record twice restores the original weights).
pub fn apply_fault(pipeline: &mut Pipeline, fault: FaultRecord) {
    match pipeline.stage_mut(fault.stage) {
        Stage::ConvFixed { mvtu, .. } => mvtu.flip_weight(fault.row, fault.col),
        Stage::ConvBinary { mvtu, .. }
        | Stage::DenseBinary { mvtu, .. }
        | Stage::DenseLogits { mvtu, .. } => mvtu.flip_weight(fault.row, fault.col),
        Stage::PoolOr { name, .. } => {
            panic!("stage '{name}' (OR-pool) has no weight memory to fault")
        }
    }
}

fn stage_weight_dims(stage: &Stage) -> Option<(usize, usize)> {
    match stage {
        Stage::ConvFixed { mvtu, .. } => Some((mvtu.rows(), mvtu.cols())),
        Stage::ConvBinary { mvtu, .. }
        | Stage::DenseBinary { mvtu, .. }
        | Stage::DenseLogits { mvtu, .. } => Some((mvtu.rows(), mvtu.cols())),
        Stage::PoolOr { .. } => None,
    }
}

/// Draw `n` distinct uniform faults over the pipeline's whole weight
/// memory (every bit equally likely), deterministically from `seed`, and
/// apply them. Returns the records (reapply them to undo).
pub fn inject_random_faults(pipeline: &mut Pipeline, n: usize, seed: u64) -> Vec<FaultRecord> {
    // Cumulative bit counts per weight-carrying stage.
    let sizes: Vec<(usize, usize, usize)> = pipeline
        .stages()
        .iter()
        .enumerate()
        .filter_map(|(i, s)| stage_weight_dims(s).map(|(r, c)| (i, r, c)))
        .collect();
    let total_bits: u64 = sizes.iter().map(|&(_, r, c)| (r * c) as u64).sum();
    assert!(
        (n as u64) <= total_bits,
        "cannot inject {n} distinct faults into {total_bits} weight bits"
    );

    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };

    let mut chosen = std::collections::HashSet::new();
    let mut records = Vec::with_capacity(n);
    while records.len() < n {
        let bit = next() % total_bits;
        if !chosen.insert(bit) {
            continue;
        }
        // Locate the bit within the stage list.
        let mut offset = bit;
        for &(stage, rows, cols) in &sizes {
            let bits = (rows * cols) as u64;
            if offset < bits {
                let record = FaultRecord {
                    stage,
                    row: (offset / cols as u64) as usize,
                    col: (offset % cols as u64) as usize,
                };
                apply_fault(pipeline, record);
                records.push(record);
                break;
            }
            offset -= bits;
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::QuantMap;
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn pipeline() -> Pipeline {
        let w = |r: usize, c: usize, seed: u64| {
            let mut s = seed | 1;
            let vals: Vec<f32> = (0..r * c)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
                    if s >> 60 & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            pack_matrix(r, c, &vals)
        };
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r]);
        Pipeline::new(
            "fault-test",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(4, 27, 1), t(4), Folding::new(4, 3)),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (4, 6, 6),
                },
                Stage::DenseLogits {
                    name: "fc".into(),
                    mvtu: BinaryMvtu::new(w(4, 36, 2), None, Folding::sequential()),
                },
            ],
        )
    }

    fn frame(seed: u64) -> QuantMap {
        let px: Vec<f32> = (0..192)
            .map(|i| (((i as u64 * 37 + seed * 11) % 256) as f32) / 255.0)
            .collect();
        QuantMap::from_unit_floats(3, 8, 8, &px)
    }

    #[test]
    fn faults_are_involutive() {
        let clean = pipeline();
        let mut faulty = pipeline();
        let records = inject_random_faults(&mut faulty, 10, 7);
        assert_eq!(records.len(), 10);
        // Undo by reapplying the same records.
        for r in records {
            apply_fault(&mut faulty, r);
        }
        for s in 0..4 {
            assert_eq!(faulty.forward(&frame(s)), clean.forward(&frame(s)));
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let mut a = pipeline();
        let mut b = pipeline();
        let ra = inject_random_faults(&mut a, 5, 42);
        let rb = inject_random_faults(&mut b, 5, 42);
        assert_eq!(ra, rb);
        assert_eq!(a.forward(&frame(0)), b.forward(&frame(0)));
    }

    #[test]
    fn faults_perturb_logits_eventually() {
        let clean = pipeline();
        let mut faulty = pipeline();
        // Flipping a large share of the weights must change something.
        inject_random_faults(&mut faulty, 60, 3);
        let changed = (0..8).any(|s| faulty.forward(&frame(s)) != clean.forward(&frame(s)));
        assert!(changed, "60/252 flipped bits should perturb some logits");
    }

    #[test]
    fn faults_are_distinct_bits() {
        let mut p = pipeline();
        let records = inject_random_faults(&mut p, 50, 9);
        let unique: std::collections::HashSet<_> = records.iter().collect();
        assert_eq!(unique.len(), records.len());
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn too_many_faults_rejected() {
        let mut p = pipeline();
        inject_random_faults(&mut p, 10_000, 0);
    }

    #[test]
    #[should_panic(expected = "no weight memory")]
    fn pool_stage_has_no_weights() {
        let mut p = pipeline();
        apply_fault(
            &mut p,
            FaultRecord {
                stage: 1,
                row: 0,
                col: 0,
            },
        );
    }
}
