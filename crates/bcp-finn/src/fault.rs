//! Weight-memory fault injection.
//!
//! A deployed edge accelerator keeps every parameter in on-chip SRAM;
//! single-event upsets flip individual weight bits. Because a BNN weight
//! *is* one bit, a flip is the worst-case per-parameter perturbation — a
//! full sign change. This module injects deterministic, seedable bit
//! flips into a pipeline's weight memories so robustness can be measured
//! (see the `robustness` experiment), and is also the ablation backing the
//! paper's redundancy argument: binarization's low information capacity
//! means many weights are individually non-critical.

use crate::pipeline::{Pipeline, Stage};
use serde::{Deserialize, Serialize};

/// Record of one injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Stage index within the pipeline.
    pub stage: usize,
    /// Weight row (output neuron).
    pub row: usize,
    /// Weight column (synapse).
    pub col: usize,
}

/// Why a fault record cannot be applied to a pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// Stage index past the end of the pipeline.
    StageOutOfRange {
        /// Offending stage index.
        stage: usize,
        /// Stages in the pipeline.
        stages: usize,
    },
    /// The addressed stage (an OR-pool) carries no parameters.
    NoWeightMemory {
        /// Offending stage index.
        stage: usize,
        /// Stage name.
        name: String,
    },
    /// Row or column outside the stage's weight matrix.
    BitOutOfRange {
        /// Offending record.
        fault: FaultRecord,
        /// The stage's weight matrix dimensions.
        dims: (usize, usize),
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::StageOutOfRange { stage, stages } => {
                write!(f, "stage {stage} out of range ({stages} stages)")
            }
            FaultError::NoWeightMemory { stage, name } => {
                write!(
                    f,
                    "stage {stage} '{name}' (OR-pool) has no weight memory to fault"
                )
            }
            FaultError::BitOutOfRange { fault, dims } => {
                write!(
                    f,
                    "bit ({}, {}) out of range for stage {} ({} × {} weights)",
                    fault.row, fault.col, fault.stage, dims.0, dims.1
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Flip the weight bit described by a record (involutive: applying the
/// same record twice restores the original weights). Returns an error
/// instead of panicking on a weightless stage or out-of-range coordinate.
pub fn try_apply_fault(pipeline: &mut Pipeline, fault: FaultRecord) -> Result<(), FaultError> {
    let stages = pipeline.stages().len();
    if fault.stage >= stages {
        return Err(FaultError::StageOutOfRange {
            stage: fault.stage,
            stages,
        });
    }
    let dims = match stage_weight_dims(&pipeline.stages()[fault.stage]) {
        Some(dims) => dims,
        None => {
            return Err(FaultError::NoWeightMemory {
                stage: fault.stage,
                name: pipeline.stages()[fault.stage].name().to_string(),
            })
        }
    };
    if fault.row >= dims.0 || fault.col >= dims.1 {
        return Err(FaultError::BitOutOfRange { fault, dims });
    }
    match pipeline.stage_mut(fault.stage) {
        Stage::ConvFixed { mvtu, .. } => mvtu.flip_weight(fault.row, fault.col),
        Stage::ConvBinary { mvtu, .. }
        | Stage::DenseBinary { mvtu, .. }
        | Stage::DenseLogits { mvtu, .. } => mvtu.flip_weight(fault.row, fault.col),
        Stage::PoolOr { .. } => unreachable!("weightless stages rejected above"),
    }
    Ok(())
}

/// Panicking convenience wrapper around [`try_apply_fault`] for tests and
/// experiments that construct records they know are valid.
pub fn apply_fault(pipeline: &mut Pipeline, fault: FaultRecord) {
    if let Err(e) = try_apply_fault(pipeline, fault) {
        panic!("{e}");
    }
}

/// Multi-bit upset: flip `k` adjacent column bits starting at
/// `(stage, row, col)`, clamped at the row's end — the MBU burst model
/// (physically adjacent SRAM cells share a word line, so one strike can
/// flip a short run). Involutive like single faults; returns the records
/// actually applied so the burst can be undone.
pub fn apply_burst(
    pipeline: &mut Pipeline,
    stage: usize,
    row: usize,
    col: usize,
    k: usize,
) -> Result<Vec<FaultRecord>, FaultError> {
    assert!(k > 0, "a burst flips at least one bit");
    // Validate the first bit up front so a bad address flips nothing.
    let first = FaultRecord { stage, row, col };
    try_apply_fault(pipeline, first)?;
    let mut records = vec![first];
    let (_, cols) = stage_weight_dims(&pipeline.stages()[stage]).expect("validated above");
    for c in col.saturating_add(1)..col.saturating_add(k).min(cols) {
        let rec = FaultRecord { stage, row, col: c };
        try_apply_fault(pipeline, rec).expect("burst tail within validated row");
        records.push(rec);
    }
    Ok(records)
}

fn stage_weight_dims(stage: &Stage) -> Option<(usize, usize)> {
    match stage {
        Stage::ConvFixed { mvtu, .. } => Some((mvtu.rows(), mvtu.cols())),
        Stage::ConvBinary { mvtu, .. }
        | Stage::DenseBinary { mvtu, .. }
        | Stage::DenseLogits { mvtu, .. } => Some((mvtu.rows(), mvtu.cols())),
        Stage::PoolOr { .. } => None,
    }
}

/// Draw `n` distinct uniform faults over the pipeline's whole weight
/// memory (every bit equally likely), deterministically from `seed`, and
/// apply them. Returns the records (reapply them to undo).
pub fn inject_random_faults(pipeline: &mut Pipeline, n: usize, seed: u64) -> Vec<FaultRecord> {
    // Cumulative bit counts per weight-carrying stage.
    let sizes: Vec<(usize, usize, usize)> = pipeline
        .stages()
        .iter()
        .enumerate()
        .filter_map(|(i, s)| stage_weight_dims(s).map(|(r, c)| (i, r, c)))
        .collect();
    let total_bits: u64 = sizes
        .iter()
        .map(|&(_, r, c)| (r as u64).saturating_mul(c as u64))
        .sum();
    assert!(
        (n as u64) <= total_bits,
        "cannot inject {n} distinct faults into {total_bits} weight bits"
    );

    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };

    let mut chosen = std::collections::HashSet::new();
    let mut records = Vec::with_capacity(n);
    while records.len() < n {
        let bit = next().checked_rem(total_bits).unwrap_or(0);
        if !chosen.insert(bit) {
            continue;
        }
        // Locate the bit within the stage list.
        let mut offset = bit;
        for &(stage, rows, cols) in &sizes {
            let bits = (rows as u64).saturating_mul(cols as u64);
            if offset < bits {
                // offset < bits = rows·cols forces cols ≥ 1.
                let cw = cols as u64;
                let record = FaultRecord {
                    stage,
                    row: offset.checked_div(cw).unwrap_or(0) as usize,
                    col: offset.checked_rem(cw).unwrap_or(0) as usize,
                };
                try_apply_fault(pipeline, record).expect("drawn record is within bounds");
                records.push(record);
                break;
            }
            offset = offset.saturating_sub(bits);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::data::QuantMap;
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn pipeline() -> Pipeline {
        let w = |r: usize, c: usize, seed: u64| {
            let mut s = seed | 1;
            let vals: Vec<f32> = (0..r * c)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
                    if s >> 60 & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            pack_matrix(r, c, &vals)
        };
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r]);
        Pipeline::new(
            "fault-test",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(4, 27, 1), t(4), Folding::new(4, 3)),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (4, 6, 6),
                },
                Stage::DenseLogits {
                    name: "fc".into(),
                    mvtu: BinaryMvtu::new(w(4, 36, 2), None, Folding::sequential()),
                },
            ],
        )
    }

    fn frame(seed: u64) -> QuantMap {
        let px: Vec<f32> = (0..192)
            .map(|i| (((i as u64 * 37 + seed * 11) % 256) as f32) / 255.0)
            .collect();
        QuantMap::from_unit_floats(3, 8, 8, &px)
    }

    #[test]
    fn faults_are_involutive() {
        let clean = pipeline();
        let mut faulty = pipeline();
        let records = inject_random_faults(&mut faulty, 10, 7);
        assert_eq!(records.len(), 10);
        // Undo by reapplying the same records.
        for r in records {
            apply_fault(&mut faulty, r);
        }
        for s in 0..4 {
            assert_eq!(faulty.forward(&frame(s)), clean.forward(&frame(s)));
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let mut a = pipeline();
        let mut b = pipeline();
        let ra = inject_random_faults(&mut a, 5, 42);
        let rb = inject_random_faults(&mut b, 5, 42);
        assert_eq!(ra, rb);
        assert_eq!(a.forward(&frame(0)), b.forward(&frame(0)));
    }

    #[test]
    fn faults_perturb_logits_eventually() {
        let clean = pipeline();
        let mut faulty = pipeline();
        // Flipping a large share of the weights must change something.
        inject_random_faults(&mut faulty, 60, 3);
        let changed = (0..8).any(|s| faulty.forward(&frame(s)) != clean.forward(&frame(s)));
        assert!(changed, "60/252 flipped bits should perturb some logits");
    }

    #[test]
    fn faults_are_distinct_bits() {
        let mut p = pipeline();
        let records = inject_random_faults(&mut p, 50, 9);
        let unique: std::collections::HashSet<_> = records.iter().collect();
        assert_eq!(unique.len(), records.len());
    }

    #[test]
    #[should_panic(expected = "cannot inject")]
    fn too_many_faults_rejected() {
        let mut p = pipeline();
        inject_random_faults(&mut p, 10_000, 0);
    }

    #[test]
    #[should_panic(expected = "no weight memory")]
    fn pool_stage_has_no_weights() {
        let mut p = pipeline();
        apply_fault(
            &mut p,
            FaultRecord {
                stage: 1,
                row: 0,
                col: 0,
            },
        );
    }

    #[test]
    fn try_apply_fault_reports_typed_errors() {
        let mut p = pipeline();
        let rec = |stage, row, col| FaultRecord { stage, row, col };
        assert_eq!(
            try_apply_fault(&mut p, rec(9, 0, 0)),
            Err(FaultError::StageOutOfRange {
                stage: 9,
                stages: 3
            })
        );
        assert_eq!(
            try_apply_fault(&mut p, rec(1, 0, 0)),
            Err(FaultError::NoWeightMemory {
                stage: 1,
                name: "pool1".into()
            })
        );
        assert_eq!(
            try_apply_fault(&mut p, rec(0, 4, 0)),
            Err(FaultError::BitOutOfRange {
                fault: rec(0, 4, 0),
                dims: (4, 27)
            })
        );
        // A failed application must leave the weights untouched.
        assert_eq!(p.forward(&frame(0)), pipeline().forward(&frame(0)));
        assert_eq!(try_apply_fault(&mut p, rec(0, 0, 0)), Ok(()));
    }

    #[test]
    fn burst_flips_adjacent_bits_and_clamps() {
        let mut p = pipeline();
        // Row 0 of stage 0 has 27 columns; a 4-bit burst at col 25 clamps
        // to 2 flips.
        let recs = apply_burst(&mut p, 0, 0, 25, 4).unwrap();
        assert_eq!(
            recs,
            vec![
                FaultRecord {
                    stage: 0,
                    row: 0,
                    col: 25
                },
                FaultRecord {
                    stage: 0,
                    row: 0,
                    col: 26
                }
            ]
        );
        // Undo by reapplying; pipeline must match a clean build.
        for r in recs {
            apply_fault(&mut p, r);
        }
        for s in 0..4 {
            assert_eq!(p.forward(&frame(s)), pipeline().forward(&frame(s)));
        }
    }

    #[test]
    fn burst_rejects_bad_start_without_side_effects() {
        let mut p = pipeline();
        assert!(apply_burst(&mut p, 1, 0, 0, 3).is_err());
        assert_eq!(p.forward(&frame(1)), pipeline().forward(&frame(1)));
    }
}
