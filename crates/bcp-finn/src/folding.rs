//! PE × SIMD folding arithmetic.
//!
//! Each MVTU multiplies a `rows × cols` binary matrix (rows = output
//! neurons, cols = fan-in synapses) against a stream of input vectors.
//! With `pe` processing elements and `simd` lanes per PE, one input vector
//! takes `⌈rows/pe⌉ · ⌈cols/simd⌉` cycles — the *fold*. A convolution's
//! MVTU processes one vector per output pixel, so its per-frame cycle count
//! is `fold · OH · OW`. The slowest stage sets the pipeline's initiation
//! interval (Sec. III-B: "a single under-dimensioned MVTU could throttle
//! the entire pipeline").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a folding is unconstructible (see [`Folding::try_new`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldingError {
    /// `pe == 0`.
    ZeroPe,
    /// `simd == 0`.
    ZeroSimd,
}

impl fmt::Display for FoldingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldingError::ZeroPe => write!(f, "folding factors must be positive (pe = 0)"),
            FoldingError::ZeroSimd => write!(f, "folding factors must be positive (simd = 0)"),
        }
    }
}

impl std::error::Error for FoldingError {}

/// An MVTU dimensioning choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Folding {
    /// Processing elements (output-neuron parallelism).
    pub pe: usize,
    /// SIMD lanes per PE (synapse parallelism).
    pub simd: usize,
}

impl Folding {
    /// New folding; both factors must be positive. Panicking wrapper around
    /// [`Folding::try_new`] for call sites with known-good constants.
    pub fn new(pe: usize, simd: usize) -> Self {
        match Self::try_new(pe, simd) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: static analyzers (`bcp-check`) route this error
    /// into a diagnostic instead of dying mid-pipeline.
    pub fn try_new(pe: usize, simd: usize) -> Result<Self, FoldingError> {
        if pe == 0 {
            return Err(FoldingError::ZeroPe);
        }
        if simd == 0 {
            return Err(FoldingError::ZeroSimd);
        }
        Ok(Folding { pe, simd })
    }

    /// Fully sequential (1 PE, 1 lane).
    pub fn sequential() -> Self {
        Folding { pe: 1, simd: 1 }
    }

    /// Cycles to process one input vector of a `rows × cols` matrix.
    pub fn fold(&self, rows: usize, cols: usize) -> u64 {
        (rows.div_ceil(self.pe) as u64).saturating_mul(cols.div_ceil(self.simd) as u64)
    }

    /// Cycles per frame for an MVTU fed `vectors` input vectors
    /// (`OH·OW` for conv layers, 1 for dense layers).
    pub fn cycles_per_frame(&self, rows: usize, cols: usize, vectors: usize) -> u64 {
        self.fold(rows, cols).saturating_mul(vectors as u64)
    }

    /// Hardware parallelism (synapse ops per cycle).
    pub fn parallelism(&self) -> u64 {
        (self.pe as u64).saturating_mul(self.simd as u64)
    }

    /// Whether the folding divides the matrix exactly (no padding waste).
    pub fn is_exact(&self, rows: usize, cols: usize) -> bool {
        rows.is_multiple_of(self.pe) && cols.is_multiple_of(self.simd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_exact_division() {
        let f = Folding::new(16, 32);
        // 64 rows / 16 PE = 4; 576 cols / 32 SIMD = 18.
        assert_eq!(f.fold(64, 576), 72);
        assert!(f.is_exact(64, 576));
    }

    #[test]
    fn fold_rounds_up_on_ragged_division() {
        let f = Folding::new(16, 32);
        assert_eq!(f.fold(65, 576), 5 * 18);
        assert!(!f.is_exact(65, 576));
    }

    #[test]
    fn sequential_fold_is_matrix_size() {
        let f = Folding::sequential();
        assert_eq!(f.fold(10, 20), 200);
    }

    #[test]
    fn conv_cycles_scale_with_output_pixels() {
        let f = Folding::new(4, 8);
        assert_eq!(f.cycles_per_frame(32, 144, 12 * 12), f.fold(32, 144) * 144);
    }

    #[test]
    fn doubling_pe_halves_cycles_when_divisible() {
        let rows = 64;
        let cols = 128;
        let a = Folding::new(4, 8).fold(rows, cols);
        let b = Folding::new(8, 8).fold(rows, cols);
        assert_eq!(a, 2 * b);
    }

    #[test]
    fn paper_ncnv_bottleneck_supports_6400_fps() {
        // n-CNV (Table I): with the published PE/SIMD vectors the slowest
        // stage folds must allow ~6400 frames/s at 100 MHz, i.e. II ≲
        // 100e6/6400 ≈ 15 625 cycles. Check the widest conv stage:
        // conv2_2: 32×32 input chans→rows=32? rows=C_out=32, cols=32·9=288,
        // 10×10 outputs, PE=16 SIMD=32 → fold=2·9=18 → 1800 cycles.
        let f = Folding::new(16, 32);
        assert!(f.cycles_per_frame(32, 288, 100) <= 15_625);
        // conv1_2: rows=16, cols=144, 28×28 outputs, PE=16 SIMD=16 →
        // fold=1·9=9 → 7056 cycles.
        let f = Folding::new(16, 16);
        assert!(f.cycles_per_frame(16, 144, 28 * 28) <= 15_625);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_folding_rejected() {
        Folding::new(0, 4);
    }

    #[test]
    fn try_new_reports_which_factor_is_zero() {
        assert_eq!(Folding::try_new(0, 4), Err(FoldingError::ZeroPe));
        assert_eq!(Folding::try_new(4, 0), Err(FoldingError::ZeroSimd));
        assert_eq!(Folding::try_new(0, 0), Err(FoldingError::ZeroPe));
        assert_eq!(Folding::try_new(2, 3), Ok(Folding { pe: 2, simd: 3 }));
    }

    #[test]
    fn non_exact_cycles_per_frame_pinned() {
        // Ceiling-division audit (ISSUE 2): every non-exact fold must round
        // *up* — the padded rows/cols still occupy hardware cycles. Pin the
        // exact cycle counts so a future regression to floor division fails.
        let f = Folding::new(16, 32);
        // 65 rows → 5 PE passes (not 4), 100 cols → 4 SIMD passes (not 3).
        assert_eq!(f.fold(65, 100), 5 * 4);
        assert_eq!(f.cycles_per_frame(65, 100, 49), 5 * 4 * 49);
        // One row / one col over an exact boundary costs a whole extra pass.
        assert_eq!(f.fold(64, 576), 4 * 18);
        assert_eq!(f.fold(65, 576), 5 * 18);
        assert_eq!(f.fold(64, 577), 4 * 19);
        // Folding wider than the matrix clamps to a single pass.
        assert_eq!(Folding::new(128, 1024).fold(64, 576), 1);
        // Prime dims never divide: 7×13 under 4×4 → ⌈7/4⌉·⌈13/4⌉ = 2·4.
        assert_eq!(Folding::new(4, 4).cycles_per_frame(7, 13, 3), 2 * 4 * 3);
    }
}
