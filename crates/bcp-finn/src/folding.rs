//! PE × SIMD folding arithmetic.
//!
//! Each MVTU multiplies a `rows × cols` binary matrix (rows = output
//! neurons, cols = fan-in synapses) against a stream of input vectors.
//! With `pe` processing elements and `simd` lanes per PE, one input vector
//! takes `⌈rows/pe⌉ · ⌈cols/simd⌉` cycles — the *fold*. A convolution's
//! MVTU processes one vector per output pixel, so its per-frame cycle count
//! is `fold · OH · OW`. The slowest stage sets the pipeline's initiation
//! interval (Sec. III-B: "a single under-dimensioned MVTU could throttle
//! the entire pipeline").

use serde::{Deserialize, Serialize};

/// An MVTU dimensioning choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Folding {
    /// Processing elements (output-neuron parallelism).
    pub pe: usize,
    /// SIMD lanes per PE (synapse parallelism).
    pub simd: usize,
}

impl Folding {
    /// New folding; both factors must be positive.
    pub fn new(pe: usize, simd: usize) -> Self {
        assert!(pe > 0 && simd > 0, "folding factors must be positive");
        Folding { pe, simd }
    }

    /// Fully sequential (1 PE, 1 lane).
    pub fn sequential() -> Self {
        Folding { pe: 1, simd: 1 }
    }

    /// Cycles to process one input vector of a `rows × cols` matrix.
    pub fn fold(&self, rows: usize, cols: usize) -> u64 {
        (rows.div_ceil(self.pe) as u64) * (cols.div_ceil(self.simd) as u64)
    }

    /// Cycles per frame for an MVTU fed `vectors` input vectors
    /// (`OH·OW` for conv layers, 1 for dense layers).
    pub fn cycles_per_frame(&self, rows: usize, cols: usize, vectors: usize) -> u64 {
        self.fold(rows, cols) * vectors as u64
    }

    /// Hardware parallelism (synapse ops per cycle).
    pub fn parallelism(&self) -> u64 {
        (self.pe * self.simd) as u64
    }

    /// Whether the folding divides the matrix exactly (no padding waste).
    pub fn is_exact(&self, rows: usize, cols: usize) -> bool {
        rows.is_multiple_of(self.pe) && cols.is_multiple_of(self.simd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_exact_division() {
        let f = Folding::new(16, 32);
        // 64 rows / 16 PE = 4; 576 cols / 32 SIMD = 18.
        assert_eq!(f.fold(64, 576), 72);
        assert!(f.is_exact(64, 576));
    }

    #[test]
    fn fold_rounds_up_on_ragged_division() {
        let f = Folding::new(16, 32);
        assert_eq!(f.fold(65, 576), 5 * 18);
        assert!(!f.is_exact(65, 576));
    }

    #[test]
    fn sequential_fold_is_matrix_size() {
        let f = Folding::sequential();
        assert_eq!(f.fold(10, 20), 200);
    }

    #[test]
    fn conv_cycles_scale_with_output_pixels() {
        let f = Folding::new(4, 8);
        assert_eq!(f.cycles_per_frame(32, 144, 12 * 12), f.fold(32, 144) * 144);
    }

    #[test]
    fn doubling_pe_halves_cycles_when_divisible() {
        let rows = 64;
        let cols = 128;
        let a = Folding::new(4, 8).fold(rows, cols);
        let b = Folding::new(8, 8).fold(rows, cols);
        assert_eq!(a, 2 * b);
    }

    #[test]
    fn paper_ncnv_bottleneck_supports_6400_fps() {
        // n-CNV (Table I): with the published PE/SIMD vectors the slowest
        // stage folds must allow ~6400 frames/s at 100 MHz, i.e. II ≲
        // 100e6/6400 ≈ 15 625 cycles. Check the widest conv stage:
        // conv2_2: 32×32 input chans→rows=32? rows=C_out=32, cols=32·9=288,
        // 10×10 outputs, PE=16 SIMD=32 → fold=2·9=18 → 1800 cycles.
        let f = Folding::new(16, 32);
        assert!(f.cycles_per_frame(32, 288, 100) <= 15_625);
        // conv1_2: rows=16, cols=144, 28×28 outputs, PE=16 SIMD=16 →
        // fold=1·9=9 → 7056 cycles.
        let f = Folding::new(16, 16);
        assert!(f.cycles_per_frame(16, 144, 28 * 28) <= 15_625);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_folding_rejected() {
        Folding::new(0, 4);
    }
}
