//! Deployment images: a serializable snapshot of a built accelerator.
//!
//! The deployed artifact of BinaryCoP is not the training checkpoint but
//! the *accelerator configuration*: packed binary weight memories, integer
//! threshold banks, foldings and stage geometry — the software analogue of
//! the FPGA bitstream. [`PipelineImage`] captures exactly that; loading
//! re-runs the pipeline's structural validation, so a corrupted or
//! hand-edited image cannot produce an inconsistent accelerator silently.

use crate::pipeline::{Pipeline, Stage};
use serde::{Deserialize, Serialize};

/// Serializable snapshot of a [`Pipeline`].
#[derive(Clone, Serialize, Deserialize)]
pub struct PipelineImage {
    /// Image-format version (bump on incompatible layout changes).
    pub version: u32,
    /// Pipeline name.
    pub name: String,
    /// The stage chain, weights and thresholds included.
    pub stages: Vec<Stage>,
}

/// Current image-format version.
pub const IMAGE_VERSION: u32 = 1;

impl PipelineImage {
    /// Snapshot a pipeline.
    pub fn capture(pipeline: &Pipeline) -> Self {
        PipelineImage {
            version: IMAGE_VERSION,
            name: pipeline.name().to_string(),
            stages: pipeline.stages().to_vec(),
        }
    }

    /// Rebuild the pipeline, re-running all structural validation. Panics
    /// (like [`Pipeline::new`]) when the image is inconsistent; returns an
    /// error only for version mismatches.
    pub fn restore(self) -> Result<Pipeline, String> {
        if self.version != IMAGE_VERSION {
            return Err(format!(
                "pipeline image version {} unsupported (expected {IMAGE_VERSION})",
                self.version
            ));
        }
        Ok(Pipeline::new(self.name, self.stages))
    }

    /// Total weight bits carried by the image (the "bitstream" payload).
    pub fn weight_bits(&self) -> u64 {
        self.stages.iter().map(|s| s.weight_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::data::QuantMap;
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn pipeline() -> Pipeline {
        let mut state = 99u64;
        let mut w = |r: usize, c: usize| {
            let vals: Vec<f32> = (0..r * c)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                    if state >> 61 & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            pack_matrix(r, c, &vals)
        };
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(1); r]);
        Pipeline::new(
            "img-test",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(4, 27), t(4), Folding::new(2, 3)),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (4, 6, 6),
                },
                Stage::DenseLogits {
                    name: "fc".into(),
                    mvtu: BinaryMvtu::new(w(4, 36), None, Folding::sequential()),
                },
            ],
        )
    }

    fn frame() -> QuantMap {
        let px: Vec<f32> = (0..192).map(|i| (i % 256) as f32 / 255.0).collect();
        QuantMap::from_unit_floats(3, 8, 8, &px)
    }

    #[test]
    fn capture_restore_is_bit_exact() {
        let p = pipeline();
        let img = PipelineImage::capture(&p);
        let restored = img.restore().unwrap();
        assert_eq!(p.forward(&frame()), restored.forward(&frame()));
        assert_eq!(restored.name(), "img-test");
    }

    #[test]
    fn json_roundtrip_preserves_behavior() {
        let p = pipeline();
        let json = serde_json::to_string(&PipelineImage::capture(&p)).unwrap();
        let img: PipelineImage = serde_json::from_str(&json).unwrap();
        let restored = img.restore().unwrap();
        assert_eq!(p.forward(&frame()), restored.forward(&frame()));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut img = PipelineImage::capture(&pipeline());
        img.version = 999;
        assert!(img.restore().is_err());
    }

    #[test]
    fn weight_bits_counts_payload() {
        let img = PipelineImage::capture(&pipeline());
        assert_eq!(img.weight_bits(), 4 * 27 + 4 * 36);
    }

    #[test]
    #[should_panic(expected = "does not feed")]
    fn corrupted_image_fails_validation() {
        let mut img = PipelineImage::capture(&pipeline());
        img.stages.remove(1); // drop the pool: conv output no longer feeds fc
        let _ = img.restore();
    }
}
