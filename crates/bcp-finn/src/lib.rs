//! FINN-style streaming BNN accelerator simulator.
//!
//! The paper deploys BinaryCoP on the Xilinx FINN architecture (Sec. III-B):
//! a pipeline of per-layer hardware stages — a sliding-window unit (SWU)
//! reshaping activations, a matrix-vector-threshold unit (MVTU) doing
//! XNOR/popcount/threshold with a PE×SIMD folding, and boolean-OR max-pool
//! units — synthesized for a Zynq SoC at 100 MHz. No FPGA or vendor tools
//! are available here, so this crate simulates that design at three levels,
//! all sharing one source of truth:
//!
//! 1. **Functional, bit-exact**: every stage computes the same integer
//!    XNOR-popcount-threshold arithmetic the RTL would, on packed words
//!    ([`mvtu`], [`swu`], [`pool`], [`data`]). `binarycop::deploy` proves
//!    the pipeline classifies identically to the trained reference network.
//! 2. **Timing**: an analytical cycle model from the folding arithmetic
//!    ([`folding`], [`perf`]) — initiation interval = the slowest stage's
//!    fold product, throughput = clock / II when the pipeline is full,
//!    latency = sum of stage fills. This is the model behind the paper's
//!    ~6400 fps claim.
//! 3. **Physical**: resource ([`resource`]) and power ([`power`]) estimators
//!    calibrated against Table II, plus device budgets for the Z7020/Z7010
//!    ([`device`]) and the PE/SIMD design-space search of Sec. IV-B
//!    ([`dse`]).
//!
//! [`stream`] additionally *executes* the pipeline as real concurrent
//! dataflow: one thread per stage over bounded channels, the software
//! analogue of Fig. 1's streaming architecture.

#![forbid(unsafe_code)]
#![warn(clippy::arithmetic_side_effects)]

pub mod cyclesim;
pub mod data;
pub mod device;
pub mod digest;
pub mod dse;
pub mod fault;
pub mod folding;
pub mod image;
pub mod mvtu;
pub mod perf;
pub mod pipeline;
pub mod pool;
pub mod power;
pub mod resource;
pub mod stream;
pub mod swu;
pub mod threshold;

pub use data::{BinMap, QuantMap, StageData};
pub use device::Device;
pub use digest::{GoldenDigest, IntegrityFault, StageDigest};
pub use fault::{FaultError, FaultRecord};
pub use folding::{Folding, FoldingError};
pub use pipeline::{Pipeline, Stage};
pub use stream::{
    correlation_report, run_streaming, run_streaming_blocked, CorrelationReport, StreamStats,
};
