//! Matrix-vector-threshold units (MVTU) — Fig. 1's processing elements.
//!
//! A binary MVTU computes, for each output neuron, the XNOR-popcount dot
//! product of its weight row with the input vector (Eq. 3), then compares
//! the integer accumulator against the neuron's threshold (the folded
//! batch-norm + sign, Sec. III-A). The first-layer variant accumulates
//! 8-bit fixed-point pixels against binary weights — ±add instead of
//! XNOR — as FINN's first layer does.

use bcp_bitpack::xnor::xnor_dot_words;
use bcp_bitpack::{
    xnor_gemm_block, xnor_gemm_block_thresholded, BitMatrix, BitPlaneBlock, BitVec64, ThresholdUnit,
};

use crate::folding::Folding;
use serde::{Deserialize, Serialize};

/// MVTU over binary inputs and binary weights.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BinaryMvtu {
    /// Weight matrix: rows = output neurons, cols = fan-in.
    weights: BitMatrix,
    /// Per-neuron thresholds; `None` for the final logits layer.
    thresholds: Option<ThresholdUnit>,
    /// PE×SIMD dimensioning (timing model only — functional results are
    /// fold-invariant, which the tests assert).
    pub folding: Folding,
}

impl BinaryMvtu {
    /// Build; validates threshold bank size.
    pub fn new(weights: BitMatrix, thresholds: Option<ThresholdUnit>, folding: Folding) -> Self {
        if let Some(t) = &thresholds {
            assert_eq!(
                t.len(),
                weights.rows(),
                "threshold bank ({}) must match neuron count ({})",
                t.len(),
                weights.rows()
            );
        }
        BinaryMvtu {
            weights,
            thresholds,
            folding,
        }
    }

    /// Output neuron count.
    pub fn rows(&self) -> usize {
        self.weights.rows()
    }

    /// Fan-in.
    pub fn cols(&self) -> usize {
        self.weights.cols()
    }

    /// Weight matrix access (resource model reads sizes).
    pub fn weights(&self) -> &BitMatrix {
        &self.weights
    }

    /// Whether this unit thresholds (hidden layer) or emits accumulators
    /// (logits layer).
    pub fn has_thresholds(&self) -> bool {
        self.thresholds.is_some()
    }

    /// Threshold bank access (static analysis reads τ ranges).
    pub fn thresholds(&self) -> Option<&ThresholdUnit> {
        self.thresholds.as_ref()
    }

    /// Toggle one weight bit (fault injection).
    pub fn flip_weight(&mut self, r: usize, c: usize) {
        self.weights.flip(r, c);
    }

    /// Replace the threshold bank (the guard layer's repair path — and,
    /// inverted, its corruption hook for tests). Only legal on a unit that
    /// already thresholds; the logits layer has no threshold memory.
    pub fn restore_thresholds(&mut self, thresholds: ThresholdUnit) {
        assert!(
            self.thresholds.is_some(),
            "restore_thresholds() on a logits-mode MVTU"
        );
        assert_eq!(
            thresholds.len(),
            self.weights.rows(),
            "threshold bank ({}) must match neuron count ({})",
            thresholds.len(),
            self.weights.rows()
        );
        self.thresholds = Some(thresholds);
    }

    /// Raw signed accumulators for one input vector.
    // bcp:hot-path — one MVTU pass per hidden layer per frame
    pub fn accumulate(&self, input: &BitVec64) -> Vec<i64> {
        // audit: allow(panic): fan-in mismatch is a programming error, checked once per layer pass
        assert_eq!(
            input.len(),
            self.weights.cols(),
            "input length {} vs fan-in {}",
            input.len(),
            self.weights.cols()
        );
        (0..self.weights.rows())
            .map(|r| xnor_dot_words(self.weights.row_words(r), input.words(), input.len()) as i64)
            // audit: allow(alloc): one accumulator vector per layer pass — layer-level buffer reuse is ROADMAP item 2
            .collect()
    }

    /// Raw signed accumulators for a pre-packed block of input vectors,
    /// one `Vec<i64>` per frame in block order. Runs the register-blocked
    /// multi-frame kernel — each weight row is streamed once for the whole
    /// block — and is bit-identical to [`BinaryMvtu::accumulate`] per frame.
    // Reshape indices are bounded by rows·frames, the size of the kernel's
    // output buffer; plain ops keep the de-interleave loop tight.
    #[allow(clippy::arithmetic_side_effects)]
    // bcp:hot-path — blocked MVTU accumulation, once per layer per micro-batch
    pub fn accumulate_block(&self, block: &BitPlaneBlock) -> Vec<Vec<i64>> {
        if block.frames() == 0 {
            // audit: allow(alloc): Vec::new is capacity-0 (no heap) — the empty-batch early return
            return Vec::new();
        }
        let accs = xnor_gemm_block(&self.weights, block);
        let (rows, frames) = (self.weights.rows(), block.frames());
        (0..frames)
            .map(|f| {
                (0..rows)
                    // audit: allow(index): r < rows and f < frames bound r·frames+f inside the kernel's rows·frames buffer
                    .map(|r| i64::from(accs[r * frames + f]))
                    // audit: allow(alloc): one accumulator vector per frame per layer pass — layer-level buffer reuse is ROADMAP item 2
                    .collect()
            })
            // audit: allow(alloc): one frame-indexed vector per layer pass
            .collect()
    }

    /// [`accumulate_block`](BinaryMvtu::accumulate_block) over unpacked
    /// frames: packs the [`BitPlaneBlock`] and runs the blocked kernel.
    // bcp:hot-path — batched accumulate entry of the logits layer
    pub fn accumulate_batch(&self, inputs: &[BitVec64]) -> Vec<Vec<i64>> {
        if inputs.is_empty() {
            // audit: allow(alloc): Vec::new is capacity-0 (no heap) — the empty-batch early return
            return Vec::new();
        }
        let block = BitPlaneBlock::pack(inputs);
        // audit: allow(panic): fan-in mismatch is a programming error, checked once per layer pass
        assert_eq!(
            block.bits(),
            self.weights.cols(),
            "input length {} vs fan-in {}",
            block.bits(),
            self.weights.cols()
        );
        self.accumulate_block(&block)
    }

    /// Thresholded output bits for a pre-packed block of input vectors,
    /// one packed vector per frame. The folded-threshold compare is fused
    /// into the blocked accumulator loop; results are bit-identical to
    /// [`BinaryMvtu::threshold_bits`] per frame. Panics when built without
    /// thresholds.
    // bcp:hot-path — blocked threshold stage, once per layer per micro-batch
    pub fn threshold_bits_block(&self, block: &BitPlaneBlock) -> Vec<BitVec64> {
        let t = self
            .thresholds
            .as_ref()
            // audit: allow(panic): calling the threshold stage on a logits-mode unit is a wiring error caught at the first frame
            .expect("threshold_bits_block() on a logits-mode MVTU");
        if block.frames() == 0 {
            // audit: allow(alloc): Vec::new is capacity-0 (no heap) — the empty-batch early return
            return Vec::new();
        }
        xnor_gemm_block_thresholded(&self.weights, block, t)
    }

    /// [`threshold_bits_block`](BinaryMvtu::threshold_bits_block) over
    /// unpacked frames: packs the [`BitPlaneBlock`] and runs the fused
    /// kernel.
    // bcp:hot-path — batched threshold entry of every hidden layer
    pub fn threshold_bits_batch(&self, inputs: &[BitVec64]) -> Vec<BitVec64> {
        if inputs.is_empty() {
            // audit: allow(alloc): Vec::new is capacity-0 (no heap) — the empty-batch early return
            return Vec::new();
        }
        let block = BitPlaneBlock::pack(inputs);
        // audit: allow(panic): fan-in mismatch is a programming error, checked once per layer pass
        assert_eq!(
            block.bits(),
            self.weights.cols(),
            "input length {} vs fan-in {}",
            block.bits(),
            self.weights.cols()
        );
        self.threshold_bits_block(&block)
    }

    /// Thresholded output bits for one input vector. Panics when built
    /// without thresholds.
    // bcp:hot-path — threshold stage of every hidden layer
    pub fn threshold_bits(&self, input: &BitVec64) -> BitVec64 {
        let t = self
            .thresholds
            .as_ref()
            // audit: allow(panic): calling the threshold stage on a logits-mode unit is a wiring error caught at the first frame
            .expect("threshold_bits() on a logits-mode MVTU");
        let accs = self.accumulate(input);
        // audit: allow(alloc): one packed output vector per layer pass — layer-level buffer reuse is ROADMAP item 2
        let mut out = BitVec64::zeros(accs.len());
        for (i, &a) in accs.iter().enumerate() {
            if t.apply(i, a) {
                out.set(i, true);
            }
        }
        out
    }
}

/// First-layer MVTU: fixed-point inputs (`2q − 255`), binary weights.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FixedInputMvtu {
    weights: BitMatrix,
    thresholds: ThresholdUnit,
    /// PE×SIMD dimensioning.
    pub folding: Folding,
}

impl FixedInputMvtu {
    /// Build; validates threshold bank size.
    pub fn new(weights: BitMatrix, thresholds: ThresholdUnit, folding: Folding) -> Self {
        assert_eq!(
            thresholds.len(),
            weights.rows(),
            "threshold bank ({}) must match neuron count ({})",
            thresholds.len(),
            weights.rows()
        );
        FixedInputMvtu {
            weights,
            thresholds,
            folding,
        }
    }

    /// Output neuron count.
    pub fn rows(&self) -> usize {
        self.weights.rows()
    }

    /// Fan-in.
    pub fn cols(&self) -> usize {
        self.weights.cols()
    }

    /// Weight matrix access.
    pub fn weights(&self) -> &BitMatrix {
        &self.weights
    }

    /// Threshold bank access (static analysis reads τ ranges).
    pub fn thresholds(&self) -> &ThresholdUnit {
        &self.thresholds
    }

    /// Toggle one weight bit (fault injection).
    pub fn flip_weight(&mut self, r: usize, c: usize) {
        self.weights.flip(r, c);
    }

    /// Replace the threshold bank (guard repair / test corruption hook).
    pub fn restore_thresholds(&mut self, thresholds: ThresholdUnit) {
        assert_eq!(
            thresholds.len(),
            self.weights.rows(),
            "threshold bank ({}) must match neuron count ({})",
            thresholds.len(),
            self.weights.rows()
        );
        self.thresholds = thresholds;
    }

    /// Signed accumulators: `Σ (w ? +x : −x)`.
    // The accumulator is bounded by 255·fan-in ≪ i64::MAX; plain adds keep
    // the per-pixel loop tight.
    #[allow(clippy::arithmetic_side_effects)]
    // bcp:hot-path — first-layer fixed-point accumulation, once per frame
    pub fn accumulate(&self, input: &[i32]) -> Vec<i64> {
        // audit: allow(panic): fan-in mismatch is a programming error, checked once per layer pass
        assert_eq!(
            input.len(),
            self.weights.cols(),
            "input length {} vs fan-in {}",
            input.len(),
            self.weights.cols()
        );
        (0..self.weights.rows())
            .map(|r| {
                let mut acc = 0i64;
                for (c, &x) in input.iter().enumerate() {
                    if self.weights.get(r, c) {
                        acc += x as i64;
                    } else {
                        acc -= x as i64;
                    }
                }
                acc
            })
            // audit: allow(alloc): one accumulator vector per layer pass — layer-level buffer reuse is ROADMAP item 2
            .collect()
    }

    /// Thresholded output bits.
    // bcp:hot-path — first-layer threshold stage, once per frame
    pub fn threshold_bits(&self, input: &[i32]) -> BitVec64 {
        let accs = self.accumulate(input);
        // audit: allow(alloc): one packed output vector per layer pass — layer-level buffer reuse is ROADMAP item 2
        let mut out = BitVec64::zeros(accs.len());
        for (i, &a) in accs.iter().enumerate() {
            if self.thresholds.apply(i, a) {
                out.set(i, true);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::ThresholdChannel;

    fn weights_2x4() -> BitMatrix {
        // Row 0: ++−−, Row 1: +−+−.
        pack_matrix(2, 4, &[1.0, 1.0, -1.0, -1.0, 1.0, -1.0, 1.0, -1.0])
    }

    #[test]
    fn binary_accumulate_known() {
        let m = BinaryMvtu::new(weights_2x4(), None, Folding::sequential());
        let x = BitVec64::from_bools(&[true, true, true, true]); // all +1
                                                                 // Row 0: 1+1−1−1 = 0; Row 1: 1−1+1−1 = 0.
        assert_eq!(m.accumulate(&x), vec![0, 0]);
        let x = BitVec64::from_bools(&[true, true, false, false]);
        // Row 0 agrees everywhere → 4; Row 1: +1−1−1+1 = 0.
        assert_eq!(m.accumulate(&x), vec![4, 0]);
    }

    #[test]
    fn threshold_bits_apply_bank() {
        let t = ThresholdUnit::new(vec![ThresholdChannel::Ge(4), ThresholdChannel::Ge(-1)]);
        let m = BinaryMvtu::new(weights_2x4(), Some(t), Folding::sequential());
        let x = BitVec64::from_bools(&[true, true, false, false]);
        let bits = m.threshold_bits(&x); // accs [4, 0]
        assert!(bits.get(0)); // 4 ≥ 4
        assert!(bits.get(1)); // 0 ≥ −1
    }

    #[test]
    fn fixed_input_accumulate_known() {
        let t = ThresholdUnit::new(vec![ThresholdChannel::Ge(0), ThresholdChannel::Ge(0)]);
        let m = FixedInputMvtu::new(weights_2x4(), t, Folding::sequential());
        let x = vec![255, -255, 1, -1];
        // Row 0 (++−−): 255 − 255 − 1 + 1 = 0; Row 1 (+−+−): 255+255+1+1=512.
        assert_eq!(m.accumulate(&x), vec![0, 512]);
        let bits = m.threshold_bits(&x);
        assert!(bits.get(0) && bits.get(1));
    }

    #[test]
    fn folding_does_not_change_results() {
        // The fold is a scheduling choice; arithmetic must be identical.
        let a = BinaryMvtu::new(weights_2x4(), None, Folding::sequential());
        let b = BinaryMvtu::new(weights_2x4(), None, Folding::new(2, 4));
        let x = BitVec64::from_bools(&[false, true, true, false]);
        assert_eq!(a.accumulate(&x), b.accumulate(&x));
    }

    #[test]
    #[should_panic(expected = "threshold bank")]
    fn threshold_size_checked() {
        let t = ThresholdUnit::new(vec![ThresholdChannel::Ge(0)]);
        BinaryMvtu::new(weights_2x4(), Some(t), Folding::sequential());
    }

    #[test]
    #[should_panic(expected = "logits-mode")]
    fn logits_mode_has_no_threshold_bits() {
        let m = BinaryMvtu::new(weights_2x4(), None, Folding::sequential());
        m.threshold_bits(&BitVec64::zeros(4));
    }

    fn lcg_frames(n: usize, bits: usize, seed: u64) -> Vec<BitVec64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                let bools: Vec<bool> = (0..bits)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        state >> 33 & 1 == 1
                    })
                    .collect();
                BitVec64::from_bools(&bools)
            })
            .collect()
    }

    #[test]
    fn batched_accumulate_matches_per_frame() {
        let m = BinaryMvtu::new(weights_2x4(), None, Folding::sequential());
        for b in [0usize, 1, 3, 4, 5, 9] {
            let frames = lcg_frames(b, 4, 77);
            let batched = m.accumulate_batch(&frames);
            let single: Vec<Vec<i64>> = frames.iter().map(|f| m.accumulate(f)).collect();
            assert_eq!(batched, single, "B={b}");
        }
    }

    #[test]
    fn batched_threshold_matches_per_frame() {
        let t = ThresholdUnit::new(vec![ThresholdChannel::Ge(0), ThresholdChannel::Le(-2)]);
        let m = BinaryMvtu::new(weights_2x4(), Some(t), Folding::sequential());
        for b in [0usize, 1, 2, 6, 7] {
            let frames = lcg_frames(b, 4, 123);
            let batched = m.threshold_bits_batch(&frames);
            let single: Vec<BitVec64> = frames.iter().map(|f| m.threshold_bits(f)).collect();
            assert_eq!(batched, single, "B={b}");
        }
    }

    #[test]
    #[should_panic(expected = "logits-mode")]
    fn logits_mode_has_no_batched_threshold_bits() {
        let m = BinaryMvtu::new(weights_2x4(), None, Folding::sequential());
        m.threshold_bits_batch(&[BitVec64::zeros(4)]);
    }
}
