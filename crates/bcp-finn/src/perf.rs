//! Timing model: latency, initiation interval, throughput.

use crate::pipeline::Pipeline;
use serde::{Deserialize, Serialize};

/// Clock model for a synthesized design. All BinaryCoP prototypes target
/// 100 MHz (Sec. IV-B).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClockModel {
    /// Clock frequency in Hz.
    pub hz: f64,
}

/// The paper's 100 MHz target clock.
pub const CLOCK_100MHZ: ClockModel = ClockModel { hz: 100.0e6 };

/// Performance summary of a pipeline under a clock.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// Initiation interval: cycles between frame completions when the
    /// pipeline is full (= slowest stage's per-frame cycles).
    pub initiation_interval: u64,
    /// Single-frame latency in cycles (sum over stages).
    pub latency_cycles: u64,
    /// Frames per second at steady state (pipeline full).
    pub throughput_fps: f64,
    /// Single-frame latency in microseconds.
    pub latency_us: f64,
    /// Per-stage cycles (diagnostics for throughput matching).
    pub stage_cycles: Vec<u64>,
}

impl ClockModel {
    /// Analyze a pipeline.
    pub fn analyze(&self, pipeline: &Pipeline) -> PerfReport {
        let stage_cycles: Vec<u64> = pipeline
            .stages()
            .iter()
            .map(|s| s.cycles_per_frame())
            .collect();
        let initiation_interval = stage_cycles.iter().copied().max().unwrap_or(1).max(1);
        let latency_cycles: u64 = stage_cycles.iter().sum();
        PerfReport {
            initiation_interval,
            latency_cycles,
            throughput_fps: self.hz / initiation_interval as f64,
            latency_us: latency_cycles as f64 / self.hz * 1e6,
            stage_cycles,
        }
    }
}

impl PerfReport {
    /// Throughput-match quality: slowest/fastest MVTU stage cycle ratio
    /// (1.0 = perfectly matched; Sec. III-B's dimensioning goal). Pool
    /// stages are excluded — they are never the bottleneck.
    pub fn imbalance(&self) -> f64 {
        let relevant: Vec<u64> = self
            .stage_cycles
            .iter()
            .copied()
            .filter(|&c| c > 64) // ignore trivially cheap stages
            .collect();
        if relevant.is_empty() {
            return 1.0;
        }
        let max = *relevant.iter().max().unwrap() as f64;
        let min = *relevant.iter().min().unwrap() as f64;
        max / min
    }

    /// Time to classify `frames` frames streamed back-to-back, in seconds.
    pub fn batch_seconds(&self, frames: usize, clock: &ClockModel) -> f64 {
        if frames == 0 {
            return 0.0;
        }
        // Fill latency for the first frame, II for each subsequent one.
        let steady = (frames as u64)
            .saturating_sub(1)
            .saturating_mul(self.initiation_interval);
        self.latency_cycles.saturating_add(steady) as f64 / clock.hz
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::data::QuantMap;
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use crate::pipeline::Stage;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn pipeline() -> Pipeline {
        let w = |r: usize, c: usize| pack_matrix(r, c, &vec![1.0f32; r * c]);
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r]);
        Pipeline::new(
            "perf",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(2, 27), t(2), Folding::sequential()),
                    k: 3,
                    in_dims: (3, 6, 6),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (2, 4, 4),
                },
                Stage::DenseLogits {
                    name: "fc".into(),
                    mvtu: BinaryMvtu::new(w(4, 8), None, Folding::sequential()),
                },
            ],
        )
    }

    #[test]
    fn ii_is_max_stage_latency_is_sum() {
        let r = CLOCK_100MHZ.analyze(&pipeline());
        // conv1: 2·27·16 = 864; pool: 4; fc: 32.
        assert_eq!(r.stage_cycles, vec![864, 4, 32]);
        assert_eq!(r.initiation_interval, 864);
        assert_eq!(r.latency_cycles, 900);
        assert!((r.throughput_fps - 100.0e6 / 864.0).abs() < 1e-6);
    }

    #[test]
    fn batch_time_amortizes_fill() {
        let r = CLOCK_100MHZ.analyze(&pipeline());
        let one = r.batch_seconds(1, &CLOCK_100MHZ);
        let thousand = r.batch_seconds(1000, &CLOCK_100MHZ);
        assert!((one - 900.0 / 100.0e6).abs() < 1e-12);
        // Steady state dominates: per-frame cost → II.
        let per_frame = thousand / 1000.0;
        assert!((per_frame - 864.0 / 100.0e6).abs() < 1e-9 * 900.0);
        assert_eq!(r.batch_seconds(0, &CLOCK_100MHZ), 0.0);
    }

    #[test]
    fn report_consistent_with_execution() {
        // The functional pipeline and the timing model describe the same
        // object; make sure analyze() doesn't disturb execution.
        let p = pipeline();
        let _ = CLOCK_100MHZ.analyze(&p);
        let q = QuantMap::from_unit_floats(3, 6, 6, &vec![0.5f32; 108]);
        assert_eq!(p.forward(&q).len(), 4);
    }

    #[test]
    fn imbalance_ignores_cheap_stages() {
        let r = CLOCK_100MHZ.analyze(&pipeline());
        // Only conv1 (864) exceeds the 64-cycle floor → perfectly "matched".
        assert_eq!(r.imbalance(), 1.0);
    }
}
