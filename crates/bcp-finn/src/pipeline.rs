//! The streaming stage pipeline (Fig. 1).

use crate::data::{BinMap, QuantMap, StageData};
use crate::folding::Folding;
use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
use crate::pool::or_pool;
use crate::swu::{out_dim, windows_binary, windows_quant};
use bcp_bitpack::BitVec64;
use serde::{Deserialize, Serialize};

/// One hardware stage of the accelerator.
#[derive(Clone, Serialize, Deserialize)]
pub enum Stage {
    /// First layer: SWU over the quantized input image + fixed-point MVTU.
    ConvFixed {
        /// Stage name.
        name: String,
        /// The compute unit.
        mvtu: FixedInputMvtu,
        /// Kernel size.
        k: usize,
        /// Input (channels, height, width).
        in_dims: (usize, usize, usize),
    },
    /// Hidden conv layer: SWU over a binary map + binary MVTU.
    ConvBinary {
        /// Stage name.
        name: String,
        /// The compute unit (must have thresholds).
        mvtu: BinaryMvtu,
        /// Kernel size.
        k: usize,
        /// Input (channels, height, width).
        in_dims: (usize, usize, usize),
    },
    /// Boolean-OR max pool.
    PoolOr {
        /// Stage name.
        name: String,
        /// Window/stride.
        k: usize,
        /// Input (channels, height, width).
        in_dims: (usize, usize, usize),
    },
    /// Hidden dense layer (thresholded binary output).
    DenseBinary {
        /// Stage name.
        name: String,
        /// The compute unit (must have thresholds).
        mvtu: BinaryMvtu,
    },
    /// Final dense layer emitting integer logits.
    DenseLogits {
        /// Stage name.
        name: String,
        /// The compute unit (no thresholds).
        mvtu: BinaryMvtu,
    },
}

impl Stage {
    /// Stage name.
    pub fn name(&self) -> &str {
        match self {
            Stage::ConvFixed { name, .. }
            | Stage::ConvBinary { name, .. }
            | Stage::PoolOr { name, .. }
            | Stage::DenseBinary { name, .. }
            | Stage::DenseLogits { name, .. } => name,
        }
    }

    /// Output (channels, height, width); logits report `(classes, 1, 1)`.
    pub fn out_dims(&self) -> (usize, usize, usize) {
        match self {
            Stage::ConvFixed {
                mvtu, k, in_dims, ..
            } => (mvtu.rows(), out_dim(in_dims.1, *k), out_dim(in_dims.2, *k)),
            Stage::ConvBinary {
                mvtu, k, in_dims, ..
            } => (mvtu.rows(), out_dim(in_dims.1, *k), out_dim(in_dims.2, *k)),
            Stage::PoolOr { k, in_dims, .. } => (
                in_dims.0,
                in_dims.1.checked_div(*k).unwrap_or(0),
                in_dims.2.checked_div(*k).unwrap_or(0),
            ),
            Stage::DenseBinary { mvtu, .. } => (mvtu.rows(), 1, 1),
            Stage::DenseLogits { mvtu, .. } => (mvtu.rows(), 1, 1),
        }
    }

    /// Declared input element count (for chain validation).
    pub fn in_count(&self) -> usize {
        match self {
            Stage::ConvFixed { in_dims, .. }
            | Stage::ConvBinary { in_dims, .. }
            | Stage::PoolOr { in_dims, .. } => in_dims
                .0
                .saturating_mul(in_dims.1)
                .saturating_mul(in_dims.2),
            Stage::DenseBinary { mvtu, .. } | Stage::DenseLogits { mvtu, .. } => mvtu.cols(),
        }
    }

    /// The stage's PE×SIMD folding (pool stages report 1×1).
    pub fn folding(&self) -> Folding {
        match self {
            Stage::ConvFixed { mvtu, .. } => mvtu.folding,
            Stage::ConvBinary { mvtu, .. }
            | Stage::DenseBinary { mvtu, .. }
            | Stage::DenseLogits { mvtu, .. } => mvtu.folding,
            Stage::PoolOr { .. } => Folding::sequential(),
        }
    }

    /// Weight-memory size in bits (0 for pool stages).
    pub fn weight_bits(&self) -> u64 {
        match self {
            Stage::ConvFixed { mvtu, .. } => {
                (mvtu.rows() as u64).saturating_mul(mvtu.cols() as u64)
            }
            Stage::ConvBinary { mvtu, .. }
            | Stage::DenseBinary { mvtu, .. }
            | Stage::DenseLogits { mvtu, .. } => {
                (mvtu.rows() as u64).saturating_mul(mvtu.cols() as u64)
            }
            Stage::PoolOr { .. } => 0,
        }
    }

    /// The stage's packed weight memory (`None` for pool stages, which
    /// carry no parameters).
    pub fn weight_matrix(&self) -> Option<&bcp_bitpack::BitMatrix> {
        match self {
            Stage::ConvFixed { mvtu, .. } => Some(mvtu.weights()),
            Stage::ConvBinary { mvtu, .. }
            | Stage::DenseBinary { mvtu, .. }
            | Stage::DenseLogits { mvtu, .. } => Some(mvtu.weights()),
            Stage::PoolOr { .. } => None,
        }
    }

    /// The stage's folded threshold table (`None` for pool and logits
    /// stages).
    pub fn threshold_unit(&self) -> Option<&bcp_bitpack::ThresholdUnit> {
        match self {
            Stage::ConvFixed { mvtu, .. } => Some(mvtu.thresholds()),
            Stage::ConvBinary { mvtu, .. } | Stage::DenseBinary { mvtu, .. } => mvtu.thresholds(),
            Stage::DenseLogits { .. } | Stage::PoolOr { .. } => None,
        }
    }

    /// Replace the stage's threshold table (guard repair path). Panics on
    /// a stage without threshold memory or on a bank-size mismatch.
    pub fn restore_thresholds(&mut self, thresholds: bcp_bitpack::ThresholdUnit) {
        match self {
            Stage::ConvFixed { mvtu, .. } => mvtu.restore_thresholds(thresholds),
            Stage::ConvBinary { mvtu, .. } | Stage::DenseBinary { mvtu, .. } => {
                mvtu.restore_thresholds(thresholds)
            }
            Stage::DenseLogits { name, .. } | Stage::PoolOr { name, .. } => {
                panic!("stage '{name}' has no threshold memory to restore")
            }
        }
    }

    /// Cycles to process one frame (Sec. III-B folding arithmetic).
    pub fn cycles_per_frame(&self) -> u64 {
        match self {
            Stage::ConvFixed {
                mvtu, k, in_dims, ..
            } => {
                let vecs = out_dim(in_dims.1, *k).saturating_mul(out_dim(in_dims.2, *k));
                mvtu.folding
                    .cycles_per_frame(mvtu.rows(), mvtu.cols(), vecs)
            }
            Stage::ConvBinary {
                mvtu, k, in_dims, ..
            } => {
                let vecs = out_dim(in_dims.1, *k).saturating_mul(out_dim(in_dims.2, *k));
                mvtu.folding
                    .cycles_per_frame(mvtu.rows(), mvtu.cols(), vecs)
            }
            Stage::PoolOr { k, in_dims, .. } => (in_dims.1.checked_div(*k).unwrap_or(0) as u64)
                .saturating_mul(in_dims.2.checked_div(*k).unwrap_or(0) as u64),
            Stage::DenseBinary { mvtu, .. } | Stage::DenseLogits { mvtu, .. } => {
                mvtu.folding.cycles_per_frame(mvtu.rows(), mvtu.cols(), 1)
            }
        }
    }

    /// Process one token. All arithmetic is integer-exact.
    pub fn process(&self, input: StageData) -> StageData {
        match self {
            Stage::ConvFixed {
                name,
                mvtu,
                k,
                in_dims,
            } => {
                let q = input.expect_quant(name);
                assert_eq!(
                    (q.c, q.h, q.w),
                    *in_dims,
                    "stage '{name}' input dims mismatch"
                );
                let (oh, ow) = (out_dim(q.h, *k), out_dim(q.w, *k));
                let mut out = BinMap::zeros(mvtu.rows(), oh, ow);
                for (p, window) in windows_quant(&q, *k).iter().enumerate() {
                    let bits = mvtu.threshold_bits(window);
                    // ow ≥ 1 whenever a window exists, so the divisor is never zero.
                    let (oy, ox) = (
                        p.checked_div(ow).unwrap_or(0),
                        p.checked_rem(ow).unwrap_or(0),
                    );
                    for ch in 0..mvtu.rows() {
                        if bits.get(ch) {
                            out.set(ch, oy, ox, true);
                        }
                    }
                }
                StageData::Bits(out)
            }
            Stage::ConvBinary {
                name,
                mvtu,
                k,
                in_dims,
            } => {
                let b = input.expect_bits(name);
                assert_eq!(
                    (b.c, b.h, b.w),
                    *in_dims,
                    "stage '{name}' input dims mismatch"
                );
                let (oh, ow) = (out_dim(b.h, *k), out_dim(b.w, *k));
                let mut out = BinMap::zeros(mvtu.rows(), oh, ow);
                // The SWU's window vectors are the natural frame batch for
                // the register-blocked kernel: every weight row is streamed
                // once for the whole output map instead of once per pixel.
                let windows = windows_binary(&b, *k);
                for (p, bits) in mvtu.threshold_bits_batch(&windows).iter().enumerate() {
                    // ow ≥ 1 whenever a window exists, so the divisor is never zero.
                    let (oy, ox) = (
                        p.checked_div(ow).unwrap_or(0),
                        p.checked_rem(ow).unwrap_or(0),
                    );
                    for ch in 0..mvtu.rows() {
                        if bits.get(ch) {
                            out.set(ch, oy, ox, true);
                        }
                    }
                }
                StageData::Bits(out)
            }
            Stage::PoolOr { name, k, in_dims } => {
                let b = input.expect_bits(name);
                assert_eq!(
                    (b.c, b.h, b.w),
                    *in_dims,
                    "stage '{name}' input dims mismatch"
                );
                StageData::Bits(or_pool(&b, *k))
            }
            Stage::DenseBinary { name, mvtu } => {
                let b = input.expect_bits(name);
                let flat: &BitVec64 = b.as_bits();
                let bits = mvtu.threshold_bits(flat);
                StageData::Bits(BinMap::from_bits(mvtu.rows(), 1, 1, bits))
            }
            Stage::DenseLogits { name, mvtu } => {
                let b = input.expect_bits(name);
                StageData::Logits(mvtu.accumulate(b.as_bits()))
            }
        }
    }

    /// Process a group of tokens as one micro-batch. Dense stages run the
    /// register-blocked multi-frame kernel (one weight-row stream for the
    /// whole group); conv and pool stages process per token — conv stages
    /// already block over their SWU windows inside [`Stage::process`].
    /// Results are bit-identical to calling [`Stage::process`] per token,
    /// in order, which the tests assert.
    pub fn process_batch(&self, inputs: Vec<StageData>) -> Vec<StageData> {
        if inputs.is_empty() {
            return Vec::new();
        }
        match self {
            Stage::DenseBinary { name, mvtu } => {
                let maps: Vec<BinMap> = inputs.into_iter().map(|t| t.expect_bits(name)).collect();
                let flats: Vec<&BitVec64> = maps.iter().map(BinMap::as_bits).collect();
                let block = bcp_bitpack::BitPlaneBlock::pack_refs(&flats);
                assert_eq!(
                    block.bits(),
                    mvtu.cols(),
                    "stage '{name}' input length {} vs fan-in {}",
                    block.bits(),
                    mvtu.cols()
                );
                mvtu.threshold_bits_block(&block)
                    .into_iter()
                    .map(|bits| StageData::Bits(BinMap::from_bits(mvtu.rows(), 1, 1, bits)))
                    .collect()
            }
            Stage::DenseLogits { name, mvtu } => {
                let maps: Vec<BinMap> = inputs.into_iter().map(|t| t.expect_bits(name)).collect();
                let flats: Vec<&BitVec64> = maps.iter().map(BinMap::as_bits).collect();
                let block = bcp_bitpack::BitPlaneBlock::pack_refs(&flats);
                assert_eq!(
                    block.bits(),
                    mvtu.cols(),
                    "stage '{name}' input length {} vs fan-in {}",
                    block.bits(),
                    mvtu.cols()
                );
                mvtu.accumulate_block(&block)
                    .into_iter()
                    .map(StageData::Logits)
                    .collect()
            }
            Stage::ConvFixed { .. } | Stage::ConvBinary { .. } | Stage::PoolOr { .. } => {
                inputs.into_iter().map(|t| self.process(t)).collect()
            }
        }
    }
}

/// A complete accelerator: an ordered stage chain, validated at build time.
///
/// Cloning produces an independent replica (weights and thresholds are
/// deep-copied), which is how `bcp-serve` gives each worker its own
/// isolated copy of the accelerator.
#[derive(Clone)]
pub struct Pipeline {
    name: String,
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Build and validate the chain: each stage's input element count must
    /// equal its predecessor's output count, and only the last stage may
    /// emit logits.
    pub fn new(name: impl Into<String>, stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        assert!(
            matches!(stages[0], Stage::ConvFixed { .. }),
            "first stage must consume the quantized camera input"
        );
        for pair in stages.windows(2) {
            let (prev, cur) = (&pair[0], &pair[1]);
            let (c, h, w) = prev.out_dims();
            assert_eq!(
                c.saturating_mul(h).saturating_mul(w),
                cur.in_count(),
                "stage '{}' output {}×{}×{} does not feed stage '{}' (expects {} elements)",
                prev.name(),
                c,
                h,
                w,
                cur.name(),
                cur.in_count()
            );
        }
        for (i, s) in stages.iter().enumerate() {
            let is_last = i.saturating_add(1) == stages.len();
            assert_eq!(
                matches!(s, Stage::DenseLogits { .. }),
                is_last,
                "exactly the final stage must be the logits layer"
            );
        }
        Pipeline {
            name: name.into(),
            stages,
        }
    }

    /// Pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stage list.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Mutable stage access (fault injection). Geometry must not change —
    /// callers may only perturb weights/thresholds.
    pub fn stage_mut(&mut self, i: usize) -> &mut Stage {
        &mut self.stages[i]
    }

    /// Run one frame through every stage; returns the class logits.
    pub fn forward(&self, input: &QuantMap) -> Vec<i64> {
        let mut token = StageData::Quant(input.clone());
        for stage in &self.stages {
            token = stage.process(token);
        }
        token.expect_logits("pipeline output")
    }

    /// Run a group of frames through every stage as one micro-batch via
    /// [`Stage::process_batch`]: dense stages stream each weight row once
    /// for the whole group. Returns per-frame logits in input order,
    /// bit-identical to [`Pipeline::forward`] per frame.
    pub fn forward_batch(&self, inputs: &[QuantMap]) -> Vec<Vec<i64>> {
        let mut tokens: Vec<StageData> =
            inputs.iter().map(|q| StageData::Quant(q.clone())).collect();
        for stage in &self.stages {
            tokens = stage.process_batch(tokens);
        }
        tokens
            .into_iter()
            .map(|t| t.expect_logits("pipeline output"))
            .collect()
    }

    /// Run one frame and keep every intermediate token (equivalence tests).
    pub fn forward_trace(&self, input: &QuantMap) -> Vec<StageData> {
        let mut trace = Vec::with_capacity(self.stages.len());
        let mut token = StageData::Quant(input.clone());
        for stage in &self.stages {
            token = stage.process(token);
            trace.push(token.clone());
        }
        trace
    }

    /// Classify one frame: argmax of the logits (first index on ties).
    pub fn classify(&self, input: &QuantMap) -> usize {
        let logits = self.forward(input);
        let mut best = 0usize;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best
    }

    /// Structural description in the layout of Fig. 1: stage kind, dims,
    /// folding, per-frame cycles.
    pub fn describe(&self) -> String {
        let mut s = format!("{} — FINN streaming pipeline\n", self.name);
        s.push_str("  camera → 8-bit quantization →\n");
        for stage in &self.stages {
            let (c, h, w) = stage.out_dims();
            let f = stage.folding();
            let kind = match stage {
                Stage::ConvFixed { .. } => "SWU→MVTU (fixed-input)",
                Stage::ConvBinary { .. } => "SWU→MVTU (XNOR)",
                Stage::PoolOr { .. } => "OR-pool",
                Stage::DenseBinary { .. } => "MVTU (XNOR)",
                Stage::DenseLogits { .. } => "MVTU (accumulate)",
            };
            s.push_str(&format!(
                "  {:<10} {:<24} out {c}×{h}×{w}  PE={:<3} SIMD={:<3} cycles/frame={}\n",
                stage.name(),
                kind,
                f.pe,
                f.simd,
                stage.cycles_per_frame()
            ));
        }
        s.push_str("  → argmax class\n");
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn all_ones_weights(rows: usize, cols: usize) -> bcp_bitpack::BitMatrix {
        pack_matrix(rows, cols, &vec![1.0f32; rows * cols])
    }

    fn ge0(rows: usize) -> ThresholdUnit {
        ThresholdUnit::new(vec![ThresholdChannel::Ge(0); rows])
    }

    /// A tiny but complete pipeline: conv(2ch,3×3) on a 6×6 RGB-ish input →
    /// pool → dense → logits.
    fn tiny_pipeline() -> Pipeline {
        let conv1 = Stage::ConvFixed {
            name: "conv1".into(),
            mvtu: FixedInputMvtu::new(all_ones_weights(2, 3 * 9), ge0(2), Folding::new(2, 9)),
            k: 3,
            in_dims: (3, 6, 6),
        };
        let pool1 = Stage::PoolOr {
            name: "pool1".into(),
            k: 2,
            in_dims: (2, 4, 4),
        };
        let fc1 = Stage::DenseBinary {
            name: "fc1".into(),
            mvtu: BinaryMvtu::new(all_ones_weights(5, 8), Some(ge0(5)), Folding::new(1, 8)),
        };
        let fc2 = Stage::DenseLogits {
            name: "fc2".into(),
            mvtu: BinaryMvtu::new(all_ones_weights(4, 5), None, Folding::sequential()),
        };
        Pipeline::new("tiny", vec![conv1, pool1, fc1, fc2])
    }

    fn white_input() -> QuantMap {
        QuantMap::from_unit_floats(3, 6, 6, &vec![1.0f32; 3 * 36])
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let p = tiny_pipeline();
        let logits = p.forward(&white_input());
        assert_eq!(logits.len(), 4);
        // All-ones weights on an all-bright image: conv accs = 27·255 > 0 →
        // all bits 1; pool keeps 1; fc1 accs = 8 ≥ 0 → all 1; logits all 5.
        assert_eq!(logits, vec![5, 5, 5, 5]);
        assert_eq!(p.classify(&white_input()), 0); // tie → first
    }

    #[test]
    fn forward_batch_matches_per_frame_forward() {
        let p = tiny_pipeline();
        // Frames with varied content, counts spanning empty, single, a full
        // register block, and ragged tails.
        for n in [0usize, 1, 3, 4, 5, 9] {
            let frames: Vec<QuantMap> = (0..n)
                .map(|i| {
                    let px: Vec<f32> = (0..3 * 36)
                        .map(|j| (((i * 53 + j * 17) % 256) as f32) / 255.0)
                        .collect();
                    QuantMap::from_unit_floats(3, 6, 6, &px)
                })
                .collect();
            let batched = p.forward_batch(&frames);
            let single: Vec<Vec<i64>> = frames.iter().map(|f| p.forward(f)).collect();
            assert_eq!(batched, single, "n={n}");
        }
    }

    #[test]
    fn process_batch_matches_process_per_stage() {
        // Drive every stage kind with its own batched tokens and pin the
        // outputs to the per-token path.
        let p = tiny_pipeline();
        let frames: Vec<QuantMap> = (0..6)
            .map(|i| {
                let px: Vec<f32> = (0..3 * 36)
                    .map(|j| (((i * 29 + j * 13) % 256) as f32) / 255.0)
                    .collect();
                QuantMap::from_unit_floats(3, 6, 6, &px)
            })
            .collect();
        let mut batched: Vec<StageData> =
            frames.iter().map(|q| StageData::Quant(q.clone())).collect();
        let mut single: Vec<StageData> =
            frames.iter().map(|q| StageData::Quant(q.clone())).collect();
        for stage in p.stages() {
            batched = stage.process_batch(batched);
            single = single.into_iter().map(|t| stage.process(t)).collect();
            assert_eq!(batched.len(), single.len());
            for (b, s) in batched.iter().zip(&single) {
                match (b, s) {
                    (StageData::Bits(x), StageData::Bits(y)) => assert_eq!(x, y),
                    (StageData::Logits(x), StageData::Logits(y)) => assert_eq!(x, y),
                    other => panic!("token kind mismatch at {}: {other:?}", stage.name()),
                }
            }
        }
    }

    #[test]
    fn trace_exposes_intermediates() {
        let p = tiny_pipeline();
        let trace = p.forward_trace(&white_input());
        assert_eq!(trace.len(), 4);
        match &trace[0] {
            StageData::Bits(b) => assert_eq!((b.c, b.h, b.w), (2, 4, 4)),
            other => panic!("expected bits, got {other:?}"),
        }
        assert!(matches!(trace[3], StageData::Logits(_)));
    }

    #[test]
    fn describe_lists_all_stages() {
        let d = tiny_pipeline().describe();
        for name in ["conv1", "pool1", "fc1", "fc2"] {
            assert!(d.contains(name), "describe() missing {name}:\n{d}");
        }
        assert!(d.contains("OR-pool"));
        assert!(d.contains("SWU→MVTU"));
    }

    #[test]
    fn cycles_follow_folding_model() {
        let p = tiny_pipeline();
        // conv1: fold = ceil(2/2)·ceil(27/9) = 3, 16 output pixels → 48.
        assert_eq!(p.stages()[0].cycles_per_frame(), 48);
        // pool: 2×2 outputs → 4.
        assert_eq!(p.stages()[1].cycles_per_frame(), 4);
        // fc1: ceil(5/1)·ceil(8/8) = 5.
        assert_eq!(p.stages()[2].cycles_per_frame(), 5);
    }

    #[test]
    #[should_panic(expected = "does not feed")]
    fn mismatched_chain_rejected() {
        let conv1 = Stage::ConvFixed {
            name: "conv1".into(),
            mvtu: FixedInputMvtu::new(all_ones_weights(2, 27), ge0(2), Folding::sequential()),
            k: 3,
            in_dims: (3, 6, 6),
        };
        let fc = Stage::DenseLogits {
            name: "fc".into(),
            mvtu: BinaryMvtu::new(all_ones_weights(4, 99), None, Folding::sequential()),
        };
        Pipeline::new("bad", vec![conv1, fc]);
    }

    #[test]
    #[should_panic(expected = "final stage must be the logits layer")]
    fn pipeline_must_end_in_logits() {
        let conv1 = Stage::ConvFixed {
            name: "conv1".into(),
            mvtu: FixedInputMvtu::new(all_ones_weights(2, 27), ge0(2), Folding::sequential()),
            k: 3,
            in_dims: (3, 6, 6),
        };
        Pipeline::new("bad", vec![conv1]);
    }
}
