//! Boolean-OR max-pooling unit.
//!
//! Sec. III-B: "max-pool layers are implemented as boolean OR operations,
//! since a single binary '1' value suffices to make the entire pool window
//! output equal to 1." This unit pools binary maps with non-overlapping
//! 2×2 windows (all BinaryCoP pools).

use crate::data::BinMap;

/// OR-pool a binary map with a `k×k` window and stride `k`.
// Window offsets oy·k+ky < h and ox·k+kx < w by the tiling assert; plain
// ops keep the window walk tight.
#[allow(clippy::arithmetic_side_effects)]
pub fn or_pool(map: &BinMap, k: usize) -> BinMap {
    assert!(
        k > 0 && map.h.is_multiple_of(k) && map.w.is_multiple_of(k),
        "pool window {k} must tile the {}×{} map exactly",
        map.h,
        map.w
    );
    let (oh, ow) = (map.h / k, map.w / k);
    let mut out = BinMap::zeros(map.c, oh, ow);
    for ch in 0..map.c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut any = false;
                'window: for ky in 0..k {
                    for kx in 0..k {
                        if map.get(ch, oy * k + ky, ox * k + kx) {
                            any = true;
                            break 'window;
                        }
                    }
                }
                if any {
                    out.set(ch, oy, ox, true);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;

    #[test]
    fn single_one_dominates_window() {
        let mut m = BinMap::zeros(1, 2, 2);
        m.set(0, 1, 0, true);
        let p = or_pool(&m, 2);
        assert_eq!((p.h, p.w), (1, 1));
        assert!(p.get(0, 0, 0));
    }

    #[test]
    fn all_minus_one_stays_minus_one() {
        let m = BinMap::zeros(3, 4, 4);
        let p = or_pool(&m, 2);
        assert_eq!(p.as_bits().count_ones(), 0);
    }

    #[test]
    fn channels_pool_independently() {
        let mut m = BinMap::zeros(2, 2, 2);
        m.set(0, 0, 0, true);
        let p = or_pool(&m, 2);
        assert!(p.get(0, 0, 0));
        assert!(!p.get(1, 0, 0));
    }

    #[test]
    fn or_pool_equals_float_maxpool_on_signs() {
        // Cross-check against the training-time float max-pool: on ±1 maps,
        // max == OR. This is the hardware-software equivalence the paper's
        // pooling trick relies on.
        use bcp_tensor_testutil::maxpool_signs;
        let mut m = BinMap::zeros(2, 4, 6);
        for (ch, y, x) in [(0, 0, 1), (0, 3, 5), (1, 2, 2), (1, 2, 3)] {
            m.set(ch, y, x, true);
        }
        let p = or_pool(&m, 2);
        let float = maxpool_signs(&m.to_signs(), 2, 4, 6);
        assert_eq!(p.to_signs(), float);
    }

    /// Minimal float max-pool over CHW ±1 data (2×2, stride 2), local to the
    /// tests so this crate does not depend on bcp-tensor.
    mod bcp_tensor_testutil {
        pub fn maxpool_signs(signs: &[f32], c: usize, h: usize, w: usize) -> Vec<f32> {
            let (oh, ow) = (h / 2, w / 2);
            let mut out = Vec::with_capacity(c * oh * ow);
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..2 {
                            for kx in 0..2 {
                                let v = signs[(ch * h + oy * 2 + ky) * w + ox * 2 + kx];
                                best = best.max(v);
                            }
                        }
                        out.push(best);
                    }
                }
            }
            out
        }
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn rejects_non_tiling_window() {
        or_pool(&BinMap::zeros(1, 5, 4), 2);
    }
}
