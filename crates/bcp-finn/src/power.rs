//! Board-level power model.
//!
//! The paper measures power at the board supply (PS + PL, Sec. IV-A) and
//! reports ~1.6 W idle for all prototypes — dominated by the soft-core on
//! the processing system — with classification triggered per subject at a
//! gate, or the pipeline kept full for crowd statistics. This model
//! reproduces that structure:
//!
//! `P(duty) = P_idle + duty · P_dynamic(design)`
//!
//! with the dynamic term proportional to toggling logic (LUT/BRAM/DSP
//! counts at the 100 MHz clock).

use crate::device::ResourceUsage;
use serde::{Deserialize, Serialize};

/// Power model constants.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle board power in watts (PS soft-core + static PL).
    pub idle_w: f64,
    /// Dynamic watts per kLUT of active logic at 100 MHz.
    pub w_per_klut: f64,
    /// Dynamic watts per active BRAM18.
    pub w_per_bram18: f64,
    /// Dynamic watts per active DSP slice.
    pub w_per_dsp: f64,
}

/// Calibrated to the paper: 1.6 W idle; full-rate CNV lands in the
/// 2–2.5 W range typical of Zynq-7020 BNN accelerators.
pub const DEFAULT_POWER: PowerModel = PowerModel {
    idle_w: 1.6,
    w_per_klut: 0.022,
    w_per_bram18: 0.0015,
    w_per_dsp: 0.002,
};

impl PowerModel {
    /// Dynamic power of a design running continuously.
    pub fn dynamic_w(&self, usage: &ResourceUsage) -> f64 {
        usage.luts as f64 / 1000.0 * self.w_per_klut
            + usage.bram18 as f64 * self.w_per_bram18
            + usage.dsps as f64 * self.w_per_dsp
    }

    /// Board power at a compute duty cycle in [0, 1]: duty 0 is the idle
    /// single-gate setting, duty 1 the crowd-statistics setting.
    pub fn board_w(&self, usage: &ResourceUsage, duty: f64) -> f64 {
        assert!((0.0..=1.0).contains(&duty), "duty cycle must be in [0,1]");
        self.idle_w + duty * self.dynamic_w(usage)
    }

    /// Energy per classification in millijoules at full rate.
    pub fn energy_per_frame_mj(&self, usage: &ResourceUsage, fps: f64) -> f64 {
        assert!(fps > 0.0, "fps must be positive");
        self.board_w(usage, 1.0) / fps * 1e3
    }

    /// Duty cycle of a single-gate deployment: `subjects_per_s` triggered
    /// classifications per second, each occupying the pipeline for
    /// `frame_latency_s`.
    pub fn gate_duty(subjects_per_s: f64, frame_latency_s: f64) -> f64 {
        (subjects_per_s * frame_latency_s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CNV_USAGE: ResourceUsage = ResourceUsage {
        luts: 26_060,
        bram18: 124,
        dsps: 24,
    };

    #[test]
    fn idle_power_is_paper_value() {
        assert_eq!(DEFAULT_POWER.board_w(&CNV_USAGE, 0.0), 1.6);
    }

    #[test]
    fn gate_setting_is_nearly_idle() {
        // One subject per 2 s at ~283 µs latency: duty ≈ 1.4e-4.
        let duty = PowerModel::gate_duty(0.5, 283e-6);
        let p = DEFAULT_POWER.board_w(&CNV_USAGE, duty);
        assert!(p < 1.61, "gate power {p} should stay ≈ idle");
    }

    #[test]
    fn full_rate_power_in_plausible_band() {
        let p = DEFAULT_POWER.board_w(&CNV_USAGE, 1.0);
        assert!(
            (1.8..3.0).contains(&p),
            "full-rate CNV power {p} outside 1.8–3 W"
        );
    }

    #[test]
    fn bigger_designs_burn_more() {
        let small = ResourceUsage {
            luts: 11_738,
            bram18: 14,
            dsps: 27,
        };
        assert!(DEFAULT_POWER.board_w(&CNV_USAGE, 1.0) > DEFAULT_POWER.board_w(&small, 1.0));
    }

    #[test]
    fn energy_per_frame_scales_inverse_fps() {
        let e1 = DEFAULT_POWER.energy_per_frame_mj(&CNV_USAGE, 1000.0);
        let e2 = DEFAULT_POWER.energy_per_frame_mj(&CNV_USAGE, 2000.0);
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
        // ~6400 fps: sub-millijoule classifications.
        let e = DEFAULT_POWER.energy_per_frame_mj(&CNV_USAGE, 6400.0);
        assert!(e < 1.0, "energy {e} mJ");
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn duty_out_of_range_rejected() {
        DEFAULT_POWER.board_w(&CNV_USAGE, 1.5);
    }
}
