//! Analytical resource estimator, calibrated against Table II.
//!
//! Per-stage model:
//!
//! - **LUTs**: `pe·simd·LUT_PER_SYNAPSE` for the XNOR + popcount tree,
//!   `pe·LUT_PER_PE` for accumulator + threshold comparator, a fixed
//!   control overhead per stage, plus distributed-RAM LUTs for weight
//!   buffers too small to justify block RAM.
//! - **BRAM18**: weight partitions of ≥ [`LUTRAM_LIMIT_BITS`] bits per PE
//!   go to block RAM, `pe · ⌈bits/pe / 18Kb⌉` units.
//! - **DSPs**: a fixed infrastructure count plus the first layer's
//!   fixed-point MACs; designs flagged `dsp_offload` (μ-CNV on the Z7010,
//!   OrthrusPE, paper ref 27) additionally move XNOR parallelism into DSP slices.
//!
//! With the constants below the model reproduces Table II within ~12 %
//! (exactly for CNV's LUTs); EXPERIMENTS.md records the deltas.

use crate::device::ResourceUsage;
use crate::folding::Folding;
use crate::pipeline::{Pipeline, Stage};

/// LUTs per synapse-bit of parallelism (XNOR gate + popcount-tree share).
pub const LUT_PER_SYNAPSE: f64 = 6.5;
/// LUTs per PE (accumulator register + threshold comparator).
pub const LUT_PER_PE: f64 = 60.0;
/// Control/stream overhead per stage.
pub const LUT_PER_STAGE: f64 = 200.0;
/// Fixed infrastructure (DMA, input quantizer, AXI).
pub const LUT_BASE: f64 = 4000.0;
/// Weight partitions below this bit count use LUTRAM instead of BRAM.
pub const LUTRAM_LIMIT_BITS: u64 = 4096;
/// LUTs per 64 bits of distributed weight RAM.
pub const LUT_PER_64_LUTRAM_BITS: f64 = 1.0;
/// 18 Kb BRAM capacity in bits.
pub const BRAM18_BITS: u64 = 18 * 1024;
/// Fixed DSP infrastructure.
pub const DSP_BASE: u64 = 6;

/// Abstract per-stage input to the resource model: what the estimator needs
/// to know about a stage, without weights or thresholds existing yet.
/// `bcp-check` derives these from an architecture description for its
/// device-fit analysis; [`estimate`] derives them from a built pipeline.
#[derive(Clone, Copy, Debug)]
pub struct StageResourceSpec {
    /// PE×SIMD dimensioning (ignored for pool stages).
    pub folding: Folding,
    /// Weight-memory size in bits (0 for pool stages).
    pub weight_bits: u64,
    /// Boolean-OR pool stage (costs only control logic).
    pub is_pool: bool,
}

/// Estimate resources for a pipeline. `dsp_offload` models the
/// OrthrusPE-style XNOR-to-DSP mapping used to fit the Z7010.
pub fn estimate(pipeline: &Pipeline, dsp_offload: bool) -> ResourceUsage {
    let specs: Vec<StageResourceSpec> = pipeline
        .stages()
        .iter()
        .map(|stage| StageResourceSpec {
            folding: stage.folding(),
            weight_bits: stage.weight_bits(),
            is_pool: matches!(stage, Stage::PoolOr { .. }),
        })
        .collect();
    estimate_specs(&specs, dsp_offload)
}

/// [`estimate`] over abstract stage specs — the shared model both the built
/// pipeline and the pre-deployment static checker are costed with.
pub fn estimate_specs(specs: &[StageResourceSpec], dsp_offload: bool) -> ResourceUsage {
    let mut luts = LUT_BASE;
    let mut bram18 = 0u64;
    let mut total_parallelism = 0u64;
    let mut first_layer_pe = 0u64;

    for (i, spec) in specs.iter().enumerate() {
        let f = spec.folding;
        let bits = spec.weight_bits;
        if spec.is_pool {
            luts += LUT_PER_STAGE / 2.0; // pooling is a trivial OR tree
            continue;
        }
        luts += f.parallelism() as f64 * LUT_PER_SYNAPSE + f.pe as f64 * LUT_PER_PE + LUT_PER_STAGE;
        total_parallelism = total_parallelism.saturating_add(f.parallelism());
        if i == 0 {
            first_layer_pe = f.pe as u64;
        }
        if bits > 0 {
            let per_pe = bits.div_ceil(f.pe as u64);
            if per_pe >= LUTRAM_LIMIT_BITS {
                bram18 = bram18
                    .saturating_add((f.pe as u64).saturating_mul(per_pe.div_ceil(BRAM18_BITS)));
            } else {
                luts += bits as f64 / 64.0 * LUT_PER_64_LUTRAM_BITS;
            }
        }
    }

    let mut dsps = DSP_BASE.saturating_add(first_layer_pe);
    let mut final_luts = luts;
    if dsp_offload {
        // Move a share of the XNOR parallelism into DSP48 slices: each
        // slice absorbs ~16 synapse-bits of LUT logic.
        let offload = total_parallelism.div_ceil(16);
        dsps = dsps.saturating_add(offload);
        final_luts -= offload.saturating_mul(16) as f64 * LUT_PER_SYNAPSE * 0.5;
    }

    ResourceUsage {
        luts: final_luts.max(0.0).round() as u64,
        bram18,
        dsps,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::device::{Z7010, Z7020};
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use crate::pipeline::Stage;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn w(r: usize, c: usize) -> bcp_bitpack::BitMatrix {
        pack_matrix(r, c, &vec![1.0f32; r * c])
    }

    fn t(r: usize) -> ThresholdUnit {
        ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r])
    }

    fn small_pipeline(pe: usize, simd: usize) -> Pipeline {
        Pipeline::new(
            "res",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(
                        w(8, 27),
                        t(8),
                        Folding::new(pe.min(8), simd.min(27)),
                    ),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::ConvBinary {
                    name: "conv2".into(),
                    mvtu: BinaryMvtu::new(
                        w(16, 72),
                        Some(t(16)),
                        Folding::new(pe.min(16), simd.min(72)),
                    ),
                    k: 3,
                    in_dims: (8, 6, 6),
                },
                Stage::DenseLogits {
                    name: "fc".into(),
                    mvtu: BinaryMvtu::new(w(4, 16 * 16), None, Folding::sequential()),
                },
            ],
        )
    }

    #[test]
    fn more_parallelism_costs_more_luts() {
        let slow = estimate(&small_pipeline(1, 1), false);
        let fast = estimate(&small_pipeline(8, 16), false);
        assert!(fast.luts > slow.luts, "{fast:?} vs {slow:?}");
    }

    #[test]
    fn small_weights_use_lutram_not_bram() {
        // All weight partitions here are < 4096 bits → zero BRAM.
        let u = estimate(&small_pipeline(1, 1), false);
        assert_eq!(u.bram18, 0);
    }

    #[test]
    fn big_dense_layer_uses_bram() {
        let p = Pipeline::new(
            "big",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(8, 27), t(8), Folding::sequential()),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::DenseBinary {
                    name: "fc1".into(),
                    // 8·6·6 = 288 inputs × 512 outputs = 147456 bits ≥ limit.
                    mvtu: BinaryMvtu::new(w(512, 288), Some(t(512)), Folding::new(1, 8)),
                },
                Stage::DenseLogits {
                    name: "fc2".into(),
                    mvtu: BinaryMvtu::new(w(4, 512), None, Folding::sequential()),
                },
            ],
        );
        let u = estimate(&p, false);
        assert!(u.bram18 >= 147456 / BRAM18_BITS, "{u:?}");
    }

    #[test]
    fn dsp_offload_trades_luts_for_dsps() {
        let plain = estimate(&small_pipeline(8, 16), false);
        let off = estimate(&small_pipeline(8, 16), true);
        assert!(off.dsps > plain.dsps);
        assert!(off.luts < plain.luts);
    }

    #[test]
    fn spec_entry_point_matches_pipeline_entry_point() {
        let p = small_pipeline(8, 16);
        let specs: Vec<StageResourceSpec> = p
            .stages()
            .iter()
            .map(|s| StageResourceSpec {
                folding: s.folding(),
                weight_bits: s.weight_bits(),
                is_pool: matches!(s, Stage::PoolOr { .. }),
            })
            .collect();
        for offload in [false, true] {
            assert_eq!(estimate(&p, offload), estimate_specs(&specs, offload));
        }
    }

    #[test]
    fn fits_expected_devices() {
        let u = estimate(&small_pipeline(8, 16), false);
        assert!(Z7020.fits(&u));
        assert!(Z7010.fits(&u) || u.luts <= Z7010.luts); // tiny design fits both
    }
}
