//! Threaded dataflow execution of a pipeline.
//!
//! Fig. 1's architecture is a free-running chain of hardware stages joined
//! by AXI streams. This module is its software analogue: one OS thread per
//! stage, bounded crossbeam channels as the streams (back-pressure
//! included), frames flowing in FIFO order. Results are bit-identical to
//! [`Pipeline::forward`] — the tests assert it — but stages genuinely
//! overlap in time, which is what gives a full pipeline its throughput.
//!
//! # Instrumentation
//!
//! Every run accounts each stage thread's time into three exhaustive,
//! non-overlapping buckets (their fractions sum to 1 per stage):
//!
//! * **busy** — inside `Stage::process`;
//! * **idle** — blocked in `recv()` waiting for upstream (a starved stage);
//! * **blocked** — blocked in `send()` waiting for downstream FIFO space
//!   (back-pressure from a bottleneck stage).
//!
//! The input-FIFO depth is sampled once per token received, giving a mean
//! occupancy per stage — the software analogue of an AXI-stream FIFO
//! fill-level probe. [`StreamStats::record_into`] exports everything to a
//! [`bcp_telemetry::Registry`]; [`correlation_report`] compares the
//! measured busy-time distribution against the analytical
//! `cycles_per_frame` model that [`crate::cyclesim`] also uses.

use crate::data::{QuantMap, StageData};
use crate::pipeline::Pipeline;
use bcp_telemetry::Registry;
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use std::time::Instant;

/// Per-stage timing breakdown from one streaming run.
#[derive(Clone, Debug, Default)]
pub struct StageTimings {
    /// Stage name (from the pipeline).
    pub name: String,
    /// Nanoseconds inside `Stage::process`.
    pub busy_ns: u64,
    /// Nanoseconds blocked waiting for input (starvation).
    pub idle_ns: u64,
    /// Nanoseconds blocked waiting for output FIFO space (back-pressure).
    pub blocked_ns: u64,
    /// Sum of input-FIFO depth samples (one sample per token, taken right
    /// after `recv` returns, i.e. the backlog left behind).
    pub occupancy_sum: u64,
    /// Number of occupancy samples (= tokens received).
    pub occupancy_samples: u64,
}

impl StageTimings {
    fn total_ns(&self) -> u64 {
        self.busy_ns
            .saturating_add(self.idle_ns)
            .saturating_add(self.blocked_ns)
    }

    /// Fraction of this stage thread's loop time spent processing.
    pub fn busy_frac(&self) -> f64 {
        self.frac(self.busy_ns)
    }

    /// Fraction spent starved for input.
    pub fn idle_frac(&self) -> f64 {
        self.frac(self.idle_ns)
    }

    /// Fraction spent blocked on downstream back-pressure.
    pub fn blocked_frac(&self) -> f64 {
        self.frac(self.blocked_ns)
    }

    fn frac(&self, part: u64) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            part as f64 / total as f64
        }
    }

    /// Mean input-FIFO depth observed (0 when no tokens flowed).
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }
}

/// Execution statistics from a streaming run.
#[derive(Clone, Debug)]
pub struct StreamStats {
    /// Frames processed.
    pub frames: usize,
    /// Tokens processed per stage (all equal to `frames` on success).
    pub per_stage_processed: Vec<u64>,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Per-stage busy/idle/blocked breakdown and FIFO occupancy.
    pub stages: Vec<StageTimings>,
}

impl StreamStats {
    /// Fold another run's statistics into this one: frame/token counts,
    /// wall time and every per-stage bucket add up, so a serving engine can
    /// accumulate one aggregate `StreamStats` over many micro-batches (and
    /// many workers) and still feed it to [`correlation_report`] — the
    /// report only uses busy-time *shares*, which are well-defined on sums.
    /// Both runs must come from pipelines with the same stage list.
    pub fn merge(&mut self, other: &StreamStats) {
        assert_eq!(
            self.stages.len(),
            other.stages.len(),
            "cannot merge stats from pipelines with different stage counts"
        );
        self.frames = self.frames.saturating_add(other.frames);
        self.wall_seconds += other.wall_seconds;
        for (mine, theirs) in self
            .per_stage_processed
            .iter_mut()
            .zip(&other.per_stage_processed)
        {
            *mine = mine.saturating_add(*theirs);
        }
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            assert_eq!(mine.name, theirs.name, "stage order mismatch in merge");
            mine.busy_ns = mine.busy_ns.saturating_add(theirs.busy_ns);
            mine.idle_ns = mine.idle_ns.saturating_add(theirs.idle_ns);
            mine.blocked_ns = mine.blocked_ns.saturating_add(theirs.blocked_ns);
            mine.occupancy_sum = mine.occupancy_sum.saturating_add(theirs.occupancy_sum);
            mine.occupancy_samples = mine
                .occupancy_samples
                .saturating_add(theirs.occupancy_samples);
        }
    }

    /// Export this run into a telemetry registry under the `stream.`
    /// namespace: per stage `stream.<name>.tokens`/`…_ns` counters and
    /// `…_frac`/`mean_occupancy` gauges, plus run-level `stream.frames`
    /// and `stream.wall_ns`.
    pub fn record_into(&self, registry: &Registry) {
        registry.counter("stream.frames").add(self.frames as u64);
        registry
            .counter("stream.wall_ns")
            .add((self.wall_seconds * 1e9) as u64);
        for (timing, &tokens) in self.stages.iter().zip(&self.per_stage_processed) {
            let base = format!("stream.{}", timing.name);
            registry.counter(&format!("{base}.tokens")).add(tokens);
            registry
                .counter(&format!("{base}.busy_ns"))
                .add(timing.busy_ns);
            registry
                .counter(&format!("{base}.idle_ns"))
                .add(timing.idle_ns);
            registry
                .counter(&format!("{base}.blocked_ns"))
                .add(timing.blocked_ns);
            registry
                .gauge(&format!("{base}.busy_frac"))
                .set(timing.busy_frac());
            registry
                .gauge(&format!("{base}.idle_frac"))
                .set(timing.idle_frac());
            registry
                .gauge(&format!("{base}.blocked_frac"))
                .set(timing.blocked_frac());
            registry
                .gauge(&format!("{base}.mean_occupancy"))
                .set(timing.mean_occupancy());
        }
    }

    /// Per-stage busy time normalized per frame: `(stage name, ns/frame)`
    /// in pipeline order. This is the compute-segment decomposition a
    /// request tracer attaches to its spans — busy time only, because
    /// idle/blocked time on a stage thread overlaps other stages' work
    /// and would double-count wall time.
    pub fn stage_busy_per_frame(&self) -> Vec<(String, u64)> {
        let frames = self.frames.max(1) as u64;
        self.stages
            .iter()
            .map(|s| (s.name.clone(), s.busy_ns.checked_div(frames).unwrap_or(0)))
            .collect()
    }
}

/// Stream `frames` through the pipeline with one thread per stage and
/// `channel_depth`-deep FIFOs between stages. Returns the per-frame logits
/// in input order plus run statistics. Each channel token carries one
/// frame; see [`run_streaming_blocked`] for multi-frame tokens.
pub fn run_streaming(
    pipeline: &Pipeline,
    frames: &[QuantMap],
    channel_depth: usize,
) -> (Vec<Vec<i64>>, StreamStats) {
    run_streaming_blocked(pipeline, frames, channel_depth, 1)
}

/// [`run_streaming`] with multi-frame channel tokens: frames are grouped
/// into blocks of up to `block_frames` (the last token is ragged when the
/// frame count is not a multiple), and every stage processes a whole block
/// per token via [`crate::pipeline::Stage::process_batch`] — dense stages
/// stream each weight row once per block through the register-blocked
/// GEMM. Results are bit-identical to [`Pipeline::forward`] per frame and
/// arrive in input order.
///
/// Accounting: `per_stage_processed` counts *frames* (so it still sums to
/// the frame count), while occupancy is sampled once per channel token —
/// `occupancy_samples` therefore counts blocks, not frames, when
/// `block_frames > 1`.
pub fn run_streaming_blocked(
    pipeline: &Pipeline,
    frames: &[QuantMap],
    channel_depth: usize,
    block_frames: usize,
) -> (Vec<Vec<i64>>, StreamStats) {
    assert!(channel_depth > 0, "channel depth must be positive");
    assert!(block_frames > 0, "block width must be positive");
    let n_stages = pipeline.stages().len();
    let processed = Mutex::new(vec![0u64; n_stages]);
    let timings = Mutex::new(vec![StageTimings::default(); n_stages]);
    let start = Instant::now();

    // Build the channel chain: input → s0 → s1 → … → output. Stage i
    // receives from rxs[i] and sends into txs[i]. Tokens are frame groups.
    let (input_tx, first_rx) = bounded::<Vec<StageData>>(channel_depth);
    let mut rxs = vec![first_rx];
    let mut txs = Vec::with_capacity(n_stages);
    for _ in 0..n_stages.saturating_sub(1) {
        let (tx, rx) = bounded::<Vec<StageData>>(channel_depth);
        txs.push(tx);
        rxs.push(rx);
    }
    let (last_tx, output_rx) = bounded::<Vec<StageData>>(channel_depth);
    txs.push(last_tx);

    let mut results = Vec::with_capacity(frames.len());
    crossbeam::thread::scope(|scope| {
        // Stage workers.
        for (i, (stage, (rx, tx))) in pipeline
            .stages()
            .iter()
            .zip(rxs.into_iter().zip(txs))
            .enumerate()
        {
            let processed = &processed;
            let timings = &timings;
            scope.spawn(move |_| {
                let mut local = StageTimings {
                    name: stage.name().to_string(),
                    ..Default::default()
                };
                loop {
                    let t_wait = Instant::now();
                    let token = match rx.recv() {
                        Ok(t) => t,
                        Err(_) => break, // upstream hung up and drained
                    };
                    local.idle_ns = local
                        .idle_ns
                        .saturating_add(t_wait.elapsed().as_nanos() as u64);
                    // Backlog left in our FIFO after taking one token.
                    local.occupancy_sum = local.occupancy_sum.saturating_add(rx.len() as u64);
                    local.occupancy_samples = local.occupancy_samples.saturating_add(1);

                    let group = token.len() as u64;
                    let t_busy = Instant::now();
                    let out = stage.process_batch(token);
                    local.busy_ns = local
                        .busy_ns
                        .saturating_add(t_busy.elapsed().as_nanos() as u64);
                    {
                        let mut done = processed.lock();
                        done[i] = done[i].saturating_add(group);
                    }

                    let t_send = Instant::now();
                    let sent = tx.send(out);
                    local.blocked_ns = local
                        .blocked_ns
                        .saturating_add(t_send.elapsed().as_nanos() as u64);
                    if sent.is_err() {
                        break; // downstream hung up
                    }
                }
                // rx closed: drop tx to propagate shutdown downstream.
                timings.lock()[i] = local;
            });
        }

        // Feeder.
        scope.spawn(move |_| {
            for chunk in frames.chunks(block_frames) {
                let token: Vec<StageData> = chunk
                    .iter()
                    .map(|frame| StageData::Quant(frame.clone()))
                    .collect();
                if input_tx.send(token).is_err() {
                    break;
                }
            }
            // input_tx drops here, closing the chain.
        });

        // Collector (this thread).
        while let Ok(token) = output_rx.recv() {
            for t in token {
                results.push(t.expect_logits("stream output"));
            }
        }
    })
    .expect("stage thread panicked");

    let stats = StreamStats {
        frames: frames.len(),
        per_stage_processed: processed.into_inner(),
        wall_seconds: start.elapsed().as_secs_f64(),
        stages: timings.into_inner(),
    };
    (results, stats)
}

/// One stage's row in a [`CorrelationReport`].
#[derive(Clone, Debug)]
pub struct StageCorrelation {
    /// Stage name.
    pub name: String,
    /// This stage's share of total measured busy time, in `[0, 1]`.
    pub measured_share: f64,
    /// This stage's share of total `cycles_per_frame` under the analytical
    /// model (what [`crate::cyclesim`] schedules with), in `[0, 1]`.
    pub model_share: f64,
    /// Relative model error `(measured − model) / model`, as a percentage
    /// clamped to ±999 % so a degenerate stage cannot blow up the report.
    pub error_pct: f64,
}

/// Measured-vs-model comparison for a streaming run: does the wall time
/// observed per stage distribute the way the cycle model predicts?
#[derive(Clone, Debug)]
pub struct CorrelationReport {
    /// Per-stage comparison rows, pipeline order.
    pub stages: Vec<StageCorrelation>,
}

impl CorrelationReport {
    /// Largest absolute per-stage error in percent.
    pub fn max_abs_error_pct(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.error_pct.abs())
            .fold(0.0, f64::max)
    }

    /// Terminal-friendly table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("stage           measured%  model%   error%\n");
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<15} {:>8.1} {:>7.1} {:>+8.1}",
                s.name,
                s.measured_share * 100.0,
                s.model_share * 100.0,
                s.error_pct
            );
        }
        out
    }
}

/// Compare a run's measured per-stage busy time against the analytical
/// cycle model. Shares are used rather than absolute times so the clock
/// frequency and host speed drop out; the error says where the software
/// stages and the hardware model disagree about *relative* cost.
pub fn correlation_report(pipeline: &Pipeline, stats: &StreamStats) -> CorrelationReport {
    let model: Vec<u64> = pipeline
        .stages()
        .iter()
        .map(|s| s.cycles_per_frame())
        .collect();
    let model_total: u64 = model.iter().sum::<u64>().max(1);
    let busy_total: u64 = stats.stages.iter().map(|t| t.busy_ns).sum::<u64>().max(1);
    let stages = stats
        .stages
        .iter()
        .zip(&model)
        .map(|(t, &cycles)| {
            let measured_share = t.busy_ns as f64 / busy_total as f64;
            let model_share = cycles as f64 / model_total as f64;
            let error_pct = if model_share > 0.0 {
                (((measured_share - model_share) / model_share) * 100.0).clamp(-999.0, 999.0)
            } else {
                999.0
            };
            StageCorrelation {
                name: t.name.clone(),
                measured_share,
                model_share,
                error_pct,
            }
        })
        .collect();
    CorrelationReport { stages }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use crate::pipeline::Stage;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn pipeline() -> Pipeline {
        // Pseudo-random ±1 weights so different frames produce different
        // logits.
        let mut state = 0x12345678u64;
        let mut w = |r: usize, c: usize| {
            let vals: Vec<f32> = (0..r * c)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state >> 62 & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            pack_matrix(r, c, &vals)
        };
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r]);
        Pipeline::new(
            "stream-test",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(4, 27), t(4), Folding::new(4, 9)),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (4, 6, 6),
                },
                Stage::DenseBinary {
                    name: "fc1".into(),
                    mvtu: BinaryMvtu::new(w(16, 36), Some(t(16)), Folding::new(4, 36)),
                },
                Stage::DenseLogits {
                    name: "fc2".into(),
                    mvtu: BinaryMvtu::new(w(4, 16), None, Folding::sequential()),
                },
            ],
        )
    }

    fn frames(n: usize) -> Vec<QuantMap> {
        (0..n)
            .map(|i| {
                let px: Vec<f32> = (0..3 * 64)
                    .map(|j| (((i * 31 + j * 7) % 256) as f32) / 255.0)
                    .collect();
                QuantMap::from_unit_floats(3, 8, 8, &px)
            })
            .collect()
    }

    #[test]
    fn streaming_matches_sequential_forward() {
        let p = pipeline();
        let fs = frames(24);
        let (streamed, stats) = run_streaming(&p, &fs, 4);
        assert_eq!(streamed.len(), 24);
        for (frame, got) in fs.iter().zip(&streamed) {
            assert_eq!(got, &p.forward(frame), "streaming must be bit-exact");
        }
        assert_eq!(stats.per_stage_processed, vec![24; 4]);
        assert_eq!(stats.frames, 24);
    }

    #[test]
    fn blocked_streaming_matches_sequential_forward() {
        let p = pipeline();
        let fs = frames(21); // ragged: 21 frames over blocks of 8 → 8+8+5
        for block in [1usize, 3, 8, 32] {
            let (streamed, stats) = run_streaming_blocked(&p, &fs, 4, block);
            assert_eq!(streamed.len(), 21, "block={block}");
            for (frame, got) in fs.iter().zip(&streamed) {
                assert_eq!(got, &p.forward(frame), "block={block} must be bit-exact");
            }
            // per_stage_processed counts frames regardless of blocking.
            assert_eq!(stats.per_stage_processed, vec![21; 4], "block={block}");
            assert_eq!(stats.frames, 21);
        }
    }

    #[test]
    fn blocked_streaming_samples_occupancy_per_token() {
        let p = pipeline();
        let fs = frames(16);
        let (_, stats) = run_streaming_blocked(&p, &fs, 4, 8);
        for t in &stats.stages {
            assert_eq!(
                t.occupancy_samples, 2,
                "{}: 16 frames / blocks of 8",
                t.name
            );
        }
    }

    #[test]
    fn order_is_preserved() {
        let p = pipeline();
        let fs = frames(16);
        let (streamed, _) = run_streaming(&p, &fs, 2);
        let sequential: Vec<Vec<i64>> = fs.iter().map(|f| p.forward(f)).collect();
        assert_eq!(streamed, sequential);
    }

    #[test]
    fn empty_input_is_fine() {
        let p = pipeline();
        let (streamed, stats) = run_streaming(&p, &[], 2);
        assert!(streamed.is_empty());
        assert_eq!(stats.per_stage_processed, vec![0; 4]);
    }

    #[test]
    fn depth_one_channels_still_complete() {
        // Minimal buffering maximizes back-pressure; the run must still
        // finish and stay correct.
        let p = pipeline();
        let fs = frames(8);
        let (streamed, _) = run_streaming(&p, &fs, 1);
        assert_eq!(streamed.len(), 8);
        assert_eq!(streamed[7], p.forward(&fs[7]));
    }

    #[test]
    fn stage_time_fractions_partition_the_loop() {
        let p = pipeline();
        let fs = frames(32);
        let (_, stats) = run_streaming(&p, &fs, 2);
        assert_eq!(stats.stages.len(), 4);
        for t in &stats.stages {
            assert!(!t.name.is_empty());
            assert_eq!(t.occupancy_samples, 32, "{}", t.name);
            let sum = t.busy_frac() + t.idle_frac() + t.blocked_frac();
            // busy/idle/blocked are exhaustive and non-overlapping by
            // construction; only float rounding can move the sum off 1.
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{}: fractions sum to {sum}",
                t.name
            );
            assert!(t.busy_ns > 0, "{} never did work", t.name);
            assert!(
                t.mean_occupancy() <= 2.0,
                "{} occupancy beyond FIFO depth",
                t.name
            );
        }
    }

    #[test]
    fn stats_export_to_registry() {
        let r = bcp_telemetry::Registry::new();
        let p = pipeline();
        let fs = frames(12);
        let (_, stats) = run_streaming(&p, &fs, 4);
        stats.record_into(&r);
        let snap = r.snapshot();
        assert_eq!(snap.counters["stream.frames"], 12);
        assert_eq!(snap.counters["stream.conv1.tokens"], 12);
        assert_eq!(snap.counters["stream.fc2.tokens"], 12);
        let f = snap.gauges["stream.pool1.busy_frac"]
            + snap.gauges["stream.pool1.idle_frac"]
            + snap.gauges["stream.pool1.blocked_frac"];
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merged_stats_add_up_and_still_correlate() {
        let p = pipeline();
        let (_, a) = run_streaming(&p, &frames(10), 4);
        let (_, b) = run_streaming(&p, &frames(6), 4);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.frames, 16);
        assert_eq!(merged.per_stage_processed, vec![16; 4]);
        for (m, (x, y)) in merged.stages.iter().zip(a.stages.iter().zip(&b.stages)) {
            assert_eq!(m.busy_ns, x.busy_ns + y.busy_ns);
            assert_eq!(
                m.occupancy_samples,
                x.occupancy_samples + y.occupancy_samples
            );
        }
        // The merged stats remain a valid correlation-report input.
        let report = correlation_report(&p, &merged);
        let s: f64 = report.stages.iter().map(|r| r.measured_share).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different stage counts")]
    fn merge_rejects_mismatched_pipelines() {
        let p = pipeline();
        let (_, a) = run_streaming(&p, &frames(2), 2);
        let mut short = a.clone();
        short.stages.pop();
        short.per_stage_processed.pop();
        let mut a = a;
        a.merge(&short);
    }

    #[test]
    fn correlation_report_shares_are_distributions() {
        let p = pipeline();
        let fs = frames(48);
        let (_, stats) = run_streaming(&p, &fs, 4);
        let report = correlation_report(&p, &stats);
        assert_eq!(report.stages.len(), 4);
        let m: f64 = report.stages.iter().map(|s| s.measured_share).sum();
        let c: f64 = report.stages.iter().map(|s| s.model_share).sum();
        assert!((m - 1.0).abs() < 1e-9, "measured shares sum {m}");
        assert!((c - 1.0).abs() < 1e-9, "model shares sum {c}");
        for s in &report.stages {
            assert!(s.error_pct.is_finite());
            assert!(s.error_pct.abs() <= 999.0, "{}: unbounded error", s.name);
        }
        let text = report.render_text();
        assert!(text.contains("conv1") && text.contains("error%"));
    }
}
