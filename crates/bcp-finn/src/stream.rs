//! Threaded dataflow execution of a pipeline.
//!
//! Fig. 1's architecture is a free-running chain of hardware stages joined
//! by AXI streams. This module is its software analogue: one OS thread per
//! stage, bounded crossbeam channels as the streams (back-pressure
//! included), frames flowing in FIFO order. Results are bit-identical to
//! [`Pipeline::forward`] — the tests assert it — but stages genuinely
//! overlap in time, which is what gives a full pipeline its throughput.

use crate::data::{QuantMap, StageData};
use crate::pipeline::Pipeline;
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use std::time::Instant;

/// Execution statistics from a streaming run.
#[derive(Clone, Debug)]
pub struct StreamStats {
    /// Frames processed.
    pub frames: usize,
    /// Tokens processed per stage (all equal to `frames` on success).
    pub per_stage_processed: Vec<u64>,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
}

/// Stream `frames` through the pipeline with one thread per stage and
/// `channel_depth`-deep FIFOs between stages. Returns the per-frame logits
/// in input order plus run statistics.
pub fn run_streaming(
    pipeline: &Pipeline,
    frames: &[QuantMap],
    channel_depth: usize,
) -> (Vec<Vec<i64>>, StreamStats) {
    assert!(channel_depth > 0, "channel depth must be positive");
    let n_stages = pipeline.stages().len();
    let processed = Mutex::new(vec![0u64; n_stages]);
    let start = Instant::now();

    // Build the channel chain: input → s0 → s1 → … → output. Stage i
    // receives from rxs[i] and sends into txs[i].
    let (input_tx, first_rx) = bounded::<StageData>(channel_depth);
    let mut rxs = vec![first_rx];
    let mut txs = Vec::with_capacity(n_stages);
    for _ in 0..n_stages - 1 {
        let (tx, rx) = bounded::<StageData>(channel_depth);
        txs.push(tx);
        rxs.push(rx);
    }
    let (last_tx, output_rx) = bounded::<StageData>(channel_depth);
    txs.push(last_tx);

    let mut results = Vec::with_capacity(frames.len());
    crossbeam::thread::scope(|scope| {
        // Stage workers.
        for (i, (stage, (rx, tx))) in pipeline
            .stages()
            .iter()
            .zip(rxs.into_iter().zip(txs))
            .enumerate()
        {
            let processed = &processed;
            scope.spawn(move |_| {
                while let Ok(token) = rx.recv() {
                    let out = stage.process(token);
                    processed.lock()[i] += 1;
                    if tx.send(out).is_err() {
                        break; // downstream hung up
                    }
                }
                // rx closed: drop tx to propagate shutdown downstream.
            });
        }

        // Feeder.
        scope.spawn(move |_| {
            for frame in frames {
                if input_tx.send(StageData::Quant(frame.clone())).is_err() {
                    break;
                }
            }
            // input_tx drops here, closing the chain.
        });

        // Collector (this thread).
        while let Ok(token) = output_rx.recv() {
            results.push(token.expect_logits("stream output"));
        }
    })
    .expect("stage thread panicked");

    let stats = StreamStats {
        frames: frames.len(),
        per_stage_processed: processed.into_inner(),
        wall_seconds: start.elapsed().as_secs_f64(),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folding::Folding;
    use crate::mvtu::{BinaryMvtu, FixedInputMvtu};
    use crate::pipeline::Stage;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

    fn pipeline() -> Pipeline {
        // Pseudo-random ±1 weights so different frames produce different
        // logits.
        let mut state = 0x12345678u64;
        let mut w = |r: usize, c: usize| {
            let vals: Vec<f32> = (0..r * c)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state >> 62 & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            pack_matrix(r, c, &vals)
        };
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r]);
        Pipeline::new(
            "stream-test",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(4, 27), t(4), Folding::new(4, 9)),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::PoolOr { name: "pool1".into(), k: 2, in_dims: (4, 6, 6) },
                Stage::DenseBinary {
                    name: "fc1".into(),
                    mvtu: BinaryMvtu::new(w(16, 36), Some(t(16)), Folding::new(4, 36)),
                },
                Stage::DenseLogits {
                    name: "fc2".into(),
                    mvtu: BinaryMvtu::new(w(4, 16), None, Folding::sequential()),
                },
            ],
        )
    }

    fn frames(n: usize) -> Vec<QuantMap> {
        (0..n)
            .map(|i| {
                let px: Vec<f32> = (0..3 * 64)
                    .map(|j| (((i * 31 + j * 7) % 256) as f32) / 255.0)
                    .collect();
                QuantMap::from_unit_floats(3, 8, 8, &px)
            })
            .collect()
    }

    #[test]
    fn streaming_matches_sequential_forward() {
        let p = pipeline();
        let fs = frames(24);
        let (streamed, stats) = run_streaming(&p, &fs, 4);
        assert_eq!(streamed.len(), 24);
        for (frame, got) in fs.iter().zip(&streamed) {
            assert_eq!(got, &p.forward(frame), "streaming must be bit-exact");
        }
        assert_eq!(stats.per_stage_processed, vec![24; 4]);
        assert_eq!(stats.frames, 24);
    }

    #[test]
    fn order_is_preserved() {
        let p = pipeline();
        let fs = frames(16);
        let (streamed, _) = run_streaming(&p, &fs, 2);
        let sequential: Vec<Vec<i64>> = fs.iter().map(|f| p.forward(f)).collect();
        assert_eq!(streamed, sequential);
    }

    #[test]
    fn empty_input_is_fine() {
        let p = pipeline();
        let (streamed, stats) = run_streaming(&p, &[], 2);
        assert!(streamed.is_empty());
        assert_eq!(stats.per_stage_processed, vec![0; 4]);
    }

    #[test]
    fn depth_one_channels_still_complete() {
        // Minimal buffering maximizes back-pressure; the run must still
        // finish and stay correct.
        let p = pipeline();
        let fs = frames(8);
        let (streamed, _) = run_streaming(&p, &fs, 1);
        assert_eq!(streamed.len(), 8);
        assert_eq!(streamed[7], p.forward(&fs[7]));
    }
}
