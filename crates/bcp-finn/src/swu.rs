//! Sliding-window unit (SWU).
//!
//! Sec. III-B: "for convolutional layers, an additional sliding-window unit
//! reshapes the binarized activation maps to create a single, wide input
//! feature map memory, which can efficiently be accessed by the
//! corresponding MVTU." Functionally this is im2col over bits: for every
//! output pixel, gather the `C·K·K` window bits in (channel, ky, kx) order —
//! the exact order the weight matrix rows use.

use crate::data::{BinMap, QuantMap};
use bcp_bitpack::BitVec64;

/// Output spatial extent for a K×K window, stride 1, no padding (all
/// BinaryCoP convolutions; padding/stride generality lives in the training
/// path, the deployed networks never use it).
pub fn out_dim(extent: usize, k: usize) -> usize {
    assert!(extent >= k, "window k={k} does not fit extent {extent}");
    extent.saturating_sub(k).saturating_add(1)
}

/// Gather the binary window vectors for a K×K convolution: one
/// `C·K·K`-bit vector per output pixel, output pixels row-major.
// Window offsets oy+ky and ox+kx stay within the map by out_dim's contract;
// plain ops keep the per-pixel gather tight.
#[allow(clippy::arithmetic_side_effects)]
pub fn windows_binary(map: &BinMap, k: usize) -> Vec<BitVec64> {
    let (oh, ow) = (out_dim(map.h, k), out_dim(map.w, k));
    let mut out = Vec::with_capacity(oh * ow);
    for oy in 0..oh {
        for ox in 0..ow {
            let mut v = BitVec64::zeros(map.c * k * k);
            let mut idx = 0usize;
            for ch in 0..map.c {
                for ky in 0..k {
                    for kx in 0..k {
                        if map.get(ch, oy + ky, ox + kx) {
                            v.set(idx, true);
                        }
                        idx += 1;
                    }
                }
            }
            out.push(v);
        }
    }
    out
}

/// Gather integer window vectors for the first (fixed-point-input) layer,
/// same ordering as [`windows_binary`].
// Same in-range window offsets as [`windows_binary`].
#[allow(clippy::arithmetic_side_effects)]
pub fn windows_quant(map: &QuantMap, k: usize) -> Vec<Vec<i32>> {
    let (oh, ow) = (out_dim(map.h, k), out_dim(map.w, k));
    let mut out = Vec::with_capacity(oh * ow);
    for oy in 0..oh {
        for ox in 0..ow {
            let mut v = Vec::with_capacity(map.c * k * k);
            for ch in 0..map.c {
                for ky in 0..k {
                    for kx in 0..k {
                        v.push(map.get(ch, oy + ky, ox + kx));
                    }
                }
            }
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dim_matches_cnv_geometry() {
        assert_eq!(out_dim(32, 3), 30);
        assert_eq!(out_dim(5, 3), 3);
        assert_eq!(out_dim(3, 3), 1);
    }

    #[test]
    fn window_count_and_length() {
        let map = BinMap::zeros(4, 6, 5);
        let ws = windows_binary(&map, 3);
        assert_eq!(ws.len(), 4 * 3);
        assert!(ws.iter().all(|w| w.len() == 4 * 9));
    }

    #[test]
    fn window_ordering_is_channel_major() {
        // Set one bit per position and check where it lands in the window.
        let mut map = BinMap::zeros(2, 3, 3);
        map.set(1, 2, 0, true); // channel 1, ky=2, kx=0 of the only window
        let ws = windows_binary(&map, 3);
        assert_eq!(ws.len(), 1);
        let idx = (3 + 2) * 3; // (ch·K + ky)·K + kx
        assert!(ws[0].get(idx));
        assert_eq!(ws[0].count_ones(), 1);
    }

    #[test]
    fn windows_shift_with_output_pixel() {
        let mut map = BinMap::zeros(1, 3, 4);
        map.set(0, 1, 2, true);
        let ws = windows_binary(&map, 3);
        // Output pixels (0,0) and (0,1): bit (0,1,2) appears at window
        // offsets (ky=1,kx=2)→5 and (ky=1,kx=1)→4 respectively.
        assert!(ws[0].get(5));
        assert!(ws[1].get(4));
    }

    #[test]
    fn quant_windows_match_binary_layout() {
        let mut q = QuantMap {
            c: 2,
            h: 3,
            w: 3,
            values: vec![0; 18],
        };
        q.values[3 * 3 + 2] = 77; // channel 1, y 0, x 2
        let ws = windows_quant(&q, 3);
        assert_eq!(ws.len(), 1);
        let idx = 3 * 3 + 2;
        assert_eq!(ws[0][idx], 77);
        assert_eq!(ws[0].iter().filter(|&&v| v != 0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_window_panics() {
        out_dim(2, 3);
    }
}
