//! Threshold derivation for pipeline stages, including the first layer's
//! input-scale correction.

use bcp_bitpack::{ThresholdChannel, ThresholdUnit};

/// Derive a threshold bank from batch-norm statistics collected on the
/// *float* activation scale, for an accumulator that is `scale` × the float
/// value.
///
/// The first MVTU accumulates integer pixel values `2q − 255` while the
/// reference network saw `(2q − 255)/255`; its thresholds therefore need
/// `scale = 255`. Binary stages use `scale = 1`.
///
/// Algebra: `sign(γ·(a/s − μ)/σ + β)` over integers `a` equals
/// `sign(γ·(a − sμ)/(sσ) + β)`, i.e. the unscaled derivation with
/// `μ' = s·μ` and `var' = s²·var` (and `eps' = s²·eps`, keeping σ' = s·σ).
pub fn scaled_threshold_unit(
    gamma: &[f32],
    beta: &[f32],
    mean: &[f32],
    var: &[f32],
    eps: f32,
    scale: f64,
) -> ThresholdUnit {
    assert!(scale > 0.0, "scale must be positive");
    assert!(
        gamma.len() == beta.len() && beta.len() == mean.len() && mean.len() == var.len(),
        "batch-norm parameter slices must share a length"
    );
    let channels = (0..gamma.len())
        .map(|c| {
            ThresholdChannel::from_batchnorm(
                gamma[c] as f64,
                beta[c] as f64,
                mean[c] as f64 * scale,
                var[c] as f64 * scale * scale,
                eps as f64 * scale * scale,
            )
        })
        .collect();
    ThresholdUnit::new(channels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_bitpack::threshold::batchnorm_sign_reference;

    #[test]
    fn scale_one_matches_plain_derivation() {
        let gamma = [1.0f32, -0.5, 0.0];
        let beta = [0.2f32, 0.1, -0.3];
        let mean = [3.0f32, -2.0, 0.0];
        let var = [4.0f32, 1.0, 2.0];
        let a = scaled_threshold_unit(&gamma, &beta, &mean, &var, 1e-5, 1.0);
        let b = ThresholdUnit::from_batchnorm(&gamma, &beta, &mean, &var, 1e-5);
        assert_eq!(a.channels(), b.channels());
    }

    #[test]
    fn scaled_thresholds_match_float_semantics() {
        // For integer accumulators a, the scaled threshold must equal
        // sign(batchnorm(a/255)) computed in f64.
        let gamma = [1.3f64, -0.8, 2.0, 0.4];
        let beta = [0.5f64, -0.2, 0.0, 1.0];
        let mean = [0.1f64, -0.05, 0.2, 0.0];
        let var = [0.5f64, 0.25, 1.0, 0.01];
        let eps = 1e-5;
        let unit = scaled_threshold_unit(
            &gamma.map(|v| v as f32),
            &beta.map(|v| v as f32),
            &mean.map(|v| v as f32),
            &var.map(|v| v as f32),
            eps as f32,
            255.0,
        );
        for c in 0..4 {
            for a in (-255 * 27..=255 * 27).step_by(97) {
                // Reference on the float scale: accumulator value a/255.
                let sigma = (var[c] + eps).sqrt();
                let float_ref = gamma[c] * (a as f64 / 255.0 - mean[c]) / sigma + beta[c] >= 0.0;
                assert_eq!(unit.apply(c, a), float_ref, "channel {c}, acc {a}");
            }
        }
    }

    #[test]
    fn unscaled_reference_still_agrees() {
        // Sanity: batchnorm_sign_reference is the scale-1 special case.
        let unit = scaled_threshold_unit(&[2.0], &[0.3], &[1.0], &[0.7], 1e-5, 1.0);
        for a in -50..=50 {
            assert_eq!(
                unit.apply(0, a),
                batchnorm_sign_reference(a, 2.0, 0.3, 1.0, 0.7, 1e-5)
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn rejects_nonpositive_scale() {
        scaled_threshold_unit(&[1.0], &[0.0], &[0.0], &[1.0], 1e-5, 0.0);
    }
}
