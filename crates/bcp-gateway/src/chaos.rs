//! Deterministic chaos plans: timed fault injection against a live
//! gateway.
//!
//! A plan is a semicolon-separated event list, each event pinned to a
//! millisecond offset from plan start, so a run is reproducible
//! schedule-for-schedule:
//!
//! ```text
//! kill:0@100          kill shard 0 at t=100ms
//! revive:0@400        revive shard 0 at t=400ms
//! slowloris@50+500    at t=50ms, trickle a partial frame and hold 500ms
//! garbage@60          at t=60ms, send 64 bytes of garbage
//! disconnect@70       at t=70ms, hang up mid-frame
//! flood:9@80x200      at t=80ms, fire 200 requests as tenant 9
//! ```
//!
//! The executor runs on the caller's thread (wrap in `thread::scope` to
//! overlap with load) and returns a [`ChaosReport`] of what each
//! injection observed — the *assertable* half of the harness: garbage
//! must come back `BadRequest`, slowloris must get cut, flood responses
//! must tally exactly one response per request.

use crate::client::{GatewayClient, Tally};
use crate::protocol::{encode_request, RequestFrame, Status};
use crate::server::Gateway;
use bcp_serve::canary_frame;
use std::time::{Duration, Instant};

/// One timed injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Hard-stop a shard.
    Kill { shard: usize, at_ms: u64 },
    /// Rebuild a shard's replica pool and return it to service.
    Revive { shard: usize, at_ms: u64 },
    /// Open a connection, send a partial frame, go silent for `hold_ms`.
    Slowloris { at_ms: u64, hold_ms: u64 },
    /// Send bytes that decode to nothing.
    Garbage { at_ms: u64 },
    /// Hang up halfway through a frame.
    Disconnect { at_ms: u64 },
    /// Fire `requests` back-to-back requests as one tenant.
    Flood {
        tenant: u32,
        at_ms: u64,
        requests: u32,
    },
}

impl ChaosEvent {
    /// When this event fires, in ms from plan start.
    pub fn at_ms(&self) -> u64 {
        match *self {
            ChaosEvent::Kill { at_ms, .. }
            | ChaosEvent::Revive { at_ms, .. }
            | ChaosEvent::Slowloris { at_ms, .. }
            | ChaosEvent::Garbage { at_ms }
            | ChaosEvent::Disconnect { at_ms }
            | ChaosEvent::Flood { at_ms, .. } => at_ms,
        }
    }
}

/// A plan that failed to parse, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosParseError {
    /// The offending event token.
    pub token: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl std::fmt::Display for ChaosParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad chaos event `{}`: {}", self.token, self.reason)
    }
}

impl std::error::Error for ChaosParseError {}

/// A parsed, time-sorted injection schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Events in firing order.
    pub events: Vec<ChaosEvent>,
}

fn num<T: std::str::FromStr>(
    s: &str,
    token: &str,
    what: &'static str,
) -> Result<T, ChaosParseError> {
    s.parse().map_err(|_| ChaosParseError {
        token: token.to_string(),
        reason: what,
    })
}

impl ChaosPlan {
    /// Parse the `kill:0@100;flood:9@80x200;…` grammar.
    pub fn parse(s: &str) -> Result<ChaosPlan, ChaosParseError> {
        let mut events = Vec::new();
        for token in s.split(';').map(str::trim).filter(|t| !t.is_empty()) {
            let err = |reason| ChaosParseError {
                token: token.to_string(),
                reason,
            };
            let (head, at) = token.split_once('@').ok_or(err("missing `@<ms>`"))?;
            let event = match head.split_once(':') {
                Some(("kill", shard)) => ChaosEvent::Kill {
                    shard: num(shard, token, "bad shard index")?,
                    at_ms: num(at, token, "bad time offset")?,
                },
                Some(("revive", shard)) => ChaosEvent::Revive {
                    shard: num(shard, token, "bad shard index")?,
                    at_ms: num(at, token, "bad time offset")?,
                },
                Some(("flood", tenant)) => {
                    let (at, n) = at.split_once('x').ok_or(err("flood needs `x<requests>`"))?;
                    ChaosEvent::Flood {
                        tenant: num(tenant, token, "bad tenant id")?,
                        at_ms: num(at, token, "bad time offset")?,
                        requests: num(n, token, "bad request count")?,
                    }
                }
                Some(_) => return Err(err("unknown event kind")),
                None => match head {
                    "slowloris" => {
                        let (at, hold) = at
                            .split_once('+')
                            .ok_or(err("slowloris needs `+<hold_ms>`"))?;
                        ChaosEvent::Slowloris {
                            at_ms: num(at, token, "bad time offset")?,
                            hold_ms: num(hold, token, "bad hold duration")?,
                        }
                    }
                    "garbage" => ChaosEvent::Garbage {
                        at_ms: num(at, token, "bad time offset")?,
                    },
                    "disconnect" => ChaosEvent::Disconnect {
                        at_ms: num(at, token, "bad time offset")?,
                    },
                    _ => return Err(err("unknown event kind")),
                },
            };
            events.push(event);
        }
        events.sort_by_key(ChaosEvent::at_ms);
        Ok(ChaosPlan { events })
    }
}

/// What the injections observed — the assertable record of a chaos run.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Shards killed.
    pub kills: u64,
    /// Shards revived.
    pub revives: u64,
    /// Slowloris connections the server cut (it must cut all of them).
    pub slowloris_cut: u64,
    /// Slowloris connections still alive after the hold — always a bug.
    pub slowloris_survived: u64,
    /// Garbage connections answered with `BadRequest` then closed.
    pub garbage_rejected: u64,
    /// Garbage connections mishandled (wrong status, or no answer).
    pub garbage_mishandled: u64,
    /// Mid-frame disconnects injected.
    pub disconnects: u64,
    /// Outcomes of flood requests (exactly one response per request).
    pub flood: Tally,
    /// Flood requests fired.
    pub flood_sent: u64,
}

impl ChaosReport {
    /// True when every injection was handled the way the server
    /// contract promises.
    pub fn clean(&self) -> bool {
        self.slowloris_survived == 0
            && self.garbage_mishandled == 0
            && self.flood.wrong == 0
            && self
                .flood
                .responses()
                .saturating_add(self.flood.wire_errors)
                == self.flood_sent
    }

    /// Stable JSON rendering for bench artifacts.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kills\":{},\"revives\":{},\"slowloris_cut\":{},\"slowloris_survived\":{},\
             \"garbage_rejected\":{},\"garbage_mishandled\":{},\"disconnects\":{},\
             \"flood_sent\":{},\"flood\":{},\"clean\":{}}}",
            self.kills,
            self.revives,
            self.slowloris_cut,
            self.slowloris_survived,
            self.garbage_rejected,
            self.garbage_mishandled,
            self.disconnects,
            self.flood_sent,
            self.flood.to_json(),
            self.clean(),
        )
    }
}

/// Execute `plan` against a live gateway, blocking until the last event
/// has fired and been observed.
pub fn run(plan: &ChaosPlan, gateway: &Gateway) -> ChaosReport {
    let t0 = Instant::now();
    let addr = gateway.local_addr();
    let mut report = ChaosReport::default();
    for event in &plan.events {
        let at = Duration::from_millis(event.at_ms());
        let elapsed = t0.elapsed();
        if at > elapsed {
            std::thread::sleep(at.saturating_sub(elapsed));
        }
        match *event {
            ChaosEvent::Kill { shard, .. } => {
                if let Some(s) = gateway.router().shards().get(shard) {
                    s.kill();
                    report.kills = report.kills.saturating_add(1);
                }
            }
            ChaosEvent::Revive { shard, .. } => {
                if let Some(s) = gateway.router().shards().get(shard) {
                    s.revive();
                    report.revives = report.revives.saturating_add(1);
                }
            }
            ChaosEvent::Slowloris { hold_ms, .. } => {
                let cut = inject_slowloris(addr, Duration::from_millis(hold_ms));
                if cut {
                    report.slowloris_cut = report.slowloris_cut.saturating_add(1);
                } else {
                    report.slowloris_survived = report.slowloris_survived.saturating_add(1);
                }
            }
            ChaosEvent::Garbage { .. } => {
                if inject_garbage(addr) {
                    report.garbage_rejected = report.garbage_rejected.saturating_add(1);
                } else {
                    report.garbage_mishandled = report.garbage_mishandled.saturating_add(1);
                }
            }
            ChaosEvent::Disconnect { .. } => {
                inject_disconnect(addr);
                report.disconnects = report.disconnects.saturating_add(1);
            }
            ChaosEvent::Flood {
                tenant, requests, ..
            } => {
                inject_flood(addr, tenant, requests, &mut report);
            }
        }
    }
    report
}

/// Trickle a partial frame, hold, then see whether the server (rightly)
/// cut us. Returns true when cut.
fn inject_slowloris(addr: std::net::SocketAddr, hold: Duration) -> bool {
    let Ok(mut client) = GatewayClient::connect(addr) else {
        return false;
    };
    let full = encode_request(&RequestFrame::from_tensor(0, 0, 0, &canary_frame(3, 8, 8)));
    if client.send_raw(&full[..10]).is_err() {
        return true;
    }
    std::thread::sleep(hold);
    // A cut connection refuses the rest of the frame (or the read of a
    // response that will never come).
    client.send_raw(&full[10..]).is_err() || client.read_response().is_err()
}

/// Send garbage; a correct server answers exactly one `BadRequest` and
/// closes. Returns true on that exact behavior.
fn inject_garbage(addr: std::net::SocketAddr) -> bool {
    let Ok(mut client) = GatewayClient::connect(addr) else {
        return false;
    };
    if client.send_raw(&[0x55u8; 64]).is_err() {
        return false;
    }
    match client.read_response() {
        Ok(resp) => resp.status == Status::BadRequest,
        Err(_) => false,
    }
}

/// Hang up mid-frame; nothing to observe client-side.
fn inject_disconnect(addr: std::net::SocketAddr) {
    if let Ok(mut client) = GatewayClient::connect(addr) {
        let full = encode_request(&RequestFrame::from_tensor(0, 0, 0, &canary_frame(3, 8, 8)));
        let _ = client.send_raw(&full[..20.min(full.len())]);
    }
}

/// Fire `requests` back-to-back frames as `tenant`, recording one tally
/// entry per request — the exactly-one-response check rides on this.
fn inject_flood(addr: std::net::SocketAddr, tenant: u32, requests: u32, report: &mut ChaosReport) {
    let frame = canary_frame(3, 8, 8);
    let Ok(mut client) = GatewayClient::connect(addr) else {
        report.flood_sent = report.flood_sent.saturating_add(u64::from(requests));
        report.flood.wire_errors = report.flood.wire_errors.saturating_add(u64::from(requests));
        return;
    };
    for i in 0..requests {
        report.flood_sent = report.flood_sent.saturating_add(1);
        let id = 0x000F_100D_0000_u64.saturating_add(u64::from(i));
        match client.classify(tenant, id, 1_000, &frame) {
            Ok(resp) => report.flood.record(&resp, None),
            Err(_) => report.flood.record_wire_error(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;

    #[test]
    fn plan_grammar_round_trips() {
        let plan = ChaosPlan::parse(
            "kill:0@100; revive:0@400;slowloris@50+500;garbage@60;disconnect@70;flood:9@80x200",
        )
        .unwrap();
        assert_eq!(plan.events.len(), 6);
        // Sorted by firing time.
        let times: Vec<u64> = plan.events.iter().map(ChaosEvent::at_ms).collect();
        assert_eq!(times, vec![50, 60, 70, 80, 100, 400]);
        assert!(plan.events.contains(&ChaosEvent::Flood {
            tenant: 9,
            at_ms: 80,
            requests: 200
        }));
        assert!(plan.events.contains(&ChaosEvent::Slowloris {
            at_ms: 50,
            hold_ms: 500
        }));
    }

    #[test]
    fn empty_plan_is_fine_and_errors_are_typed() {
        assert_eq!(ChaosPlan::parse("").unwrap().events.len(), 0);
        assert_eq!(ChaosPlan::parse("  ;  ").unwrap().events.len(), 0);
        for bad in [
            "kill:0",
            "kill:x@100",
            "warp:0@100",
            "slowloris@50",
            "flood:9@80",
            "flood:9@80xnope",
            "nonsense",
        ] {
            let e = ChaosPlan::parse(bad).unwrap_err();
            assert!(!e.reason.is_empty(), "{bad} should fail with a reason");
            assert!(e.to_string().contains("bad chaos event"));
        }
    }
}
