//! A small blocking client for the gateway protocol, plus the outcome
//! [`Tally`] the benches and fault tests reconcile against server-side
//! counters.

use crate::protocol::{
    decode_response, encode_metrics_request, encode_request, DecodeError, RequestFrame,
    ResponseFrame, Status, RESPONSE_LEN,
};
use bcp_tensor::Tensor;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure talking to the gateway.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes the codec rejects.
    Decode(DecodeError),
    /// The server closed the connection mid-response.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Decode(e) => write!(f, "decode: {e}"),
            WireError::Closed => write!(f, "connection closed mid-response"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e)
        }
    }
}

/// One connection speaking the gateway protocol.
pub struct GatewayClient {
    stream: TcpStream,
}

impl GatewayClient {
    /// Connect with a generous response timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<GatewayClient, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(GatewayClient { stream })
    }

    /// Classify one frame; blocks for the response.
    pub fn classify(
        &mut self,
        tenant: u32,
        request_id: u64,
        deadline_ms: u32,
        frame: &Tensor,
    ) -> Result<ResponseFrame, WireError> {
        let req = RequestFrame::from_tensor(tenant, request_id, deadline_ms, frame);
        self.stream.write_all(&encode_request(&req))?;
        self.read_response()
    }

    /// Fetch the server's `Registry::render_text` dump.
    pub fn metrics(&mut self) -> Result<String, WireError> {
        self.stream.write_all(&encode_metrics_request())?;
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len) as usize;
        let mut text = vec![0u8; len.min(16 * 1024 * 1024)];
        self.stream.read_exact(&mut text)?;
        Ok(String::from_utf8_lossy(&text).into_owned())
    }

    /// Write raw bytes (chaos: garbage, partial frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Read one response frame off the wire.
    pub fn read_response(&mut self) -> Result<ResponseFrame, WireError> {
        let mut buf = [0u8; RESPONSE_LEN];
        self.stream.read_exact(&mut buf)?;
        decode_response(&buf).map_err(WireError::Decode)
    }
}

/// Outcome counts by wire status, plus correctness accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Responses seen, indexed by `Status as u8`.
    pub by_status: [u64; 10],
    /// `Ok` responses whose class disagreed with the expected label.
    pub wrong: u64,
    /// Requests that died on the wire (I/O error, closed connection).
    pub wire_errors: u64,
}

impl Tally {
    /// Record one response, checking `Ok` answers against `expect` when
    /// given.
    pub fn record(&mut self, resp: &ResponseFrame, expect: Option<u8>) {
        let i = (resp.status.to_u8() as usize).min(self.by_status.len().saturating_sub(1));
        self.by_status[i] = self.by_status[i].saturating_add(1);
        if resp.status == Status::Ok {
            if let Some(want) = expect {
                if resp.class != want {
                    self.wrong = self.wrong.saturating_add(1);
                }
            }
        }
    }

    /// Record a request that never produced a response frame.
    pub fn record_wire_error(&mut self) {
        self.wire_errors = self.wire_errors.saturating_add(1);
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        for (a, b) in self.by_status.iter_mut().zip(other.by_status.iter()) {
            *a = a.saturating_add(*b);
        }
        self.wrong = self.wrong.saturating_add(other.wrong);
        self.wire_errors = self.wire_errors.saturating_add(other.wire_errors);
    }

    /// Count for one status.
    pub fn count(&self, status: Status) -> u64 {
        self.by_status[(status.to_u8() as usize).min(self.by_status.len().saturating_sub(1))]
    }

    /// Responses observed (any status).
    pub fn responses(&self) -> u64 {
        self.by_status
            .iter()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Render as a stable JSON object keyed by status name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for status in Status::ALL {
            out.push_str(&format!("\"{}\":{},", status.name(), self.count(status)));
        }
        out.push_str(&format!(
            "\"wrong\":{},\"wire_errors\":{}}}",
            self.wrong, self.wire_errors
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;

    #[test]
    fn tally_merge_and_json_are_consistent() {
        let mut a = Tally::default();
        let ok = ResponseFrame {
            request_id: 1,
            status: Status::Ok,
            class: 2,
            shard: 0,
        };
        a.record(&ok, Some(2));
        a.record(&ok, Some(3)); // wrong answer
        let mut b = Tally::default();
        b.record(
            &ResponseFrame {
                request_id: 2,
                status: Status::Throttled,
                class: 0,
                shard: 0,
            },
            None,
        );
        b.record_wire_error();
        a.merge(&b);
        assert_eq!(a.count(Status::Ok), 2);
        assert_eq!(a.count(Status::Throttled), 1);
        assert_eq!(a.wrong, 1);
        assert_eq!(a.wire_errors, 1);
        assert_eq!(a.responses(), 3);
        let json = a.to_json();
        assert!(json.contains("\"ok\":2"));
        assert!(json.contains("\"throttled\":1"));
        assert!(json.contains("\"wrong\":1"));
        assert!(json.ends_with('}'));
    }
}
