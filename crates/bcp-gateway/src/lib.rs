//! # bcp-gateway — the fault-tolerant TCP front door
//!
//! BinaryCoP's deployment story is many entry gates (tenants) streaming
//! face crops at a shared classifier appliance. This crate is the network
//! boundary that makes the serving stack real: a `std::net` TCP listener
//! (no external deps) speaking a tiny length-prefixed binary protocol,
//! feeding the existing `bcp-serve` admission machinery through three
//! layers:
//!
//! 1. **[`protocol`]** — versioned wire framing with typed decode errors.
//!    Truncation, garbage, oversize and shape-lying length prefixes are
//!    all rejected before a byte of payload is buffered; nothing a client
//!    sends can panic the server or kill the accept loop.
//! 2. **[`tenant`]** — per-tenant token-bucket rate limiting and absolute
//!    quotas, in exact integer micro-token math. One flooding tenant
//!    starves only itself.
//! 3. **[`shard`]** — N independent engine instances behind a
//!    consistent-hash router: per-shard health states and probes,
//!    retry-with-jittered-backoff failover, every retry bounded by the
//!    deadline budget the client shipped in its request header
//!    (propagated end-to-end via `Engine::submit_with_deadline`).
//!
//! Robustness is proven, not claimed: **[`chaos`]** runs deterministic
//! timed injection plans (shard kills, slowloris reads, mid-frame
//! disconnects, malformed bytes, tenant floods) against a live gateway
//! and returns an assertable report — `tests/gateway_fault.rs` and
//! `bcp gateway-bench --chaos <plan>` turn those reports into hard
//! pass/fail gates: exactly-one-response accounting, rebalance within a
//! probe interval, zero wrong answers.
//!
//! ```no_run
//! use bcp_gateway::{Gateway, GatewayClient, GatewayConfig, ShardSpec};
//! use bcp_serve::{canary_frame, ServeConfig};
//!
//! let specs = (0..3)
//!     .map(|_| ShardSpec::synthetic(2, ServeConfig::default()))
//!     .collect();
//! let gw = Gateway::start(specs, GatewayConfig::default(), None).unwrap();
//! let mut client = GatewayClient::connect(gw.local_addr()).unwrap();
//! let resp = client.classify(7, 1, 250, &canary_frame(3, 8, 8)).unwrap();
//! println!("tenant 7 got class {} from shard {}", resp.class, resp.shard);
//! gw.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::arithmetic_side_effects)]

pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod tenant;

pub use chaos::{ChaosEvent, ChaosParseError, ChaosPlan, ChaosReport};
pub use client::{GatewayClient, Tally, WireError};
pub use protocol::{DecodeError, Message, RequestFrame, ResponseFrame, Status};
pub use server::{Gateway, GatewayConfig};
pub use shard::{DispatchOutcome, Router, Shard, ShardSpec, ShardState};
pub use tenant::{Admission, TenantPolicy, TenantTable};
