//! The gateway wire protocol: a tiny length-prefixed binary framing.
//!
//! Everything is little-endian. A client speaks two message kinds:
//!
//! ```text
//! request  := magic "BCP1" (u32) | version (u8) | tenant (u32)
//!           | request_id (u64)   | deadline_ms (u32, 0 = server default)
//!           | channels (u8) | height (u16) | width (u16)
//!           | payload_len (u32)  | payload (payload_len bytes, f32 LE)
//! metrics  := magic "BCPM" (u32) | version (u8)
//! ```
//!
//! and the server answers a request with a fixed 16-byte response
//! (`magic "BCPR" | version | request_id | status | class | shard`) and a
//! metrics message with `len (u32) | Registry::render_text bytes`.
//!
//! The codec is a pure function over byte slices so the proptest suite can
//! hammer it with truncations and garbage without sockets. Decoding NEVER
//! panics and NEVER allocates before the length prefix has been validated
//! against [`MAX_PAYLOAD`] and against the shape the header claims — an
//! attacker-controlled `payload_len` can cost at most one bounded read.

use bcp_serve::ServeError;
use bcp_tensor::{Shape, Tensor};

/// Magic prefix of a classification request ("BCP1" as LE bytes).
pub const REQUEST_MAGIC: u32 = u32::from_le_bytes(*b"BCP1");
/// Magic prefix of a response frame ("BCPR").
pub const RESPONSE_MAGIC: u32 = u32::from_le_bytes(*b"BCPR");
/// Magic prefix of a metrics-dump request ("BCPM").
pub const METRICS_MAGIC: u32 = u32::from_le_bytes(*b"BCPM");

/// The one protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Fixed size of a request header, up to and including `payload_len`.
pub const REQUEST_HEADER_LEN: usize = 30;
/// Fixed size of a metrics-dump request.
pub const METRICS_REQUEST_LEN: usize = 5;
/// Fixed size of a response frame.
pub const RESPONSE_LEN: usize = 16;

/// Hard cap on a request payload. 4 MiB is ~1M f32 pixels — two orders
/// of magnitude above the 3×32×32 frames BinaryCoP classifies — so real
/// clients never hit it while a hostile length prefix cannot drive an
/// unbounded allocation.
pub const MAX_PAYLOAD: u32 = 4 * 1024 * 1024;

/// Typed decode failure. `Truncated` is retryable by reading more bytes;
/// every other variant is a protocol violation worth closing the
/// connection over (after answering [`Status::BadRequest`] if possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends before the message does.
    Truncated { needed: usize, got: usize },
    /// First four bytes are neither "BCP1" nor "BCPM".
    BadMagic { got: u32 },
    /// Version byte this build does not speak.
    UnsupportedVersion { got: u8 },
    /// `payload_len` exceeds [`MAX_PAYLOAD`].
    Oversize { len: u32, max: u32 },
    /// `payload_len` disagrees with `channels × height × width × 4`.
    LengthMismatch { expect: u64, got: u32 },
    /// A declared dimension is zero — there is no frame to classify.
    EmptyFrame,
    /// Response status byte outside the known [`Status`] range.
    BadStatus { got: u8 },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated message: need {needed} bytes, have {got}")
            }
            DecodeError::BadMagic { got } => write!(f, "bad magic {got:#010x}"),
            DecodeError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build: {VERSION})"
                )
            }
            DecodeError::Oversize { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            DecodeError::LengthMismatch { expect, got } => {
                write!(f, "payload length {got} != shape-implied {expect}")
            }
            DecodeError::EmptyFrame => write!(f, "frame has a zero dimension"),
            DecodeError::BadStatus { got } => write!(f, "unknown response status {got}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Response status byte. `Ok` carries a valid class; everything else
/// explains which stage refused the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Classified; `class` holds the label.
    Ok = 0,
    /// Tenant exceeded its token-bucket rate; retry after a refill.
    Throttled = 1,
    /// Tenant spent its absolute request quota; no retry will help.
    QuotaExhausted = 2,
    /// Every shard's admission queue was full under `Reject`.
    Rejected = 3,
    /// The request was shed by `ShedOldest` on every shard tried.
    Shed = 4,
    /// The deadline budget expired before a shard produced an answer.
    DeadlineExpired = 5,
    /// No shard was healthy enough to accept the request.
    NoHealthyShard = 6,
    /// A worker faulted mid-batch and failover could not complete in
    /// budget.
    WorkerFault = 7,
    /// The gateway (or every shard) is draining for shutdown.
    ShuttingDown = 8,
    /// The request itself was malformed.
    BadRequest = 9,
}

impl Status {
    /// All statuses, in wire order — handy for tallying benches.
    pub const ALL: [Status; 10] = [
        Status::Ok,
        Status::Throttled,
        Status::QuotaExhausted,
        Status::Rejected,
        Status::Shed,
        Status::DeadlineExpired,
        Status::NoHealthyShard,
        Status::WorkerFault,
        Status::ShuttingDown,
        Status::BadRequest,
    ];

    /// Wire byte for this status.
    pub fn to_u8(self) -> u8 {
        // audit: allow(cast): unit-only enum with discriminants 0..=9;
        // `as u8` is lossless by construction.
        self as u8
    }

    /// Parse a wire byte back into a status.
    pub fn from_u8(b: u8) -> Result<Status, DecodeError> {
        Status::ALL
            .get(b as usize)
            .copied()
            .ok_or(DecodeError::BadStatus { got: b })
    }

    /// Short lowercase name, used as a telemetry/tally key.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Throttled => "throttled",
            Status::QuotaExhausted => "quota_exhausted",
            Status::Rejected => "rejected",
            Status::Shed => "shed",
            Status::DeadlineExpired => "deadline_expired",
            Status::NoHealthyShard => "no_healthy_shard",
            Status::WorkerFault => "worker_fault",
            Status::ShuttingDown => "shutting_down",
            Status::BadRequest => "bad_request",
        }
    }

    /// Map an engine-side refusal onto the wire. `None` of the engine's
    /// errors are invisible to clients: each refusal names its stage.
    pub fn from_serve_error(e: &ServeError) -> Status {
        match e {
            ServeError::Rejected => Status::Rejected,
            ServeError::Shed => Status::Shed,
            ServeError::DeadlineExpired => Status::DeadlineExpired,
            ServeError::WorkerFault { .. } => Status::WorkerFault,
            ServeError::NoHealthyWorkers => Status::NoHealthyShard,
            ServeError::ShuttingDown => Status::ShuttingDown,
        }
    }
}

/// A decoded classification request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Tenant this request bills against (token bucket + quota).
    pub tenant: u32,
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Remaining deadline budget in milliseconds; 0 means "server
    /// default". The budget covers queueing, compute AND failover
    /// retries.
    pub deadline_ms: u32,
    /// Frame shape.
    pub channels: u8,
    /// Frame shape.
    pub height: u16,
    /// Frame shape.
    pub width: u16,
    /// Row-major pixels, `channels × height × width` of them.
    pub pixels: Vec<f32>,
}

impl RequestFrame {
    /// Build a request from a tensor (client side).
    pub fn from_tensor(tenant: u32, request_id: u64, deadline_ms: u32, frame: &Tensor) -> Self {
        let dims = frame.shape().dims().to_vec();
        let (c, h, w) = match dims.as_slice() {
            [c, h, w] => (*c, *h, *w),
            _ => (1, 1, frame.as_slice().len()),
        };
        RequestFrame {
            tenant,
            request_id,
            deadline_ms,
            channels: c.min(u8::MAX as usize) as u8,
            height: h.min(u16::MAX as usize) as u16,
            width: w.min(u16::MAX as usize) as u16,
            pixels: frame.as_slice().to_vec(),
        }
    }

    /// Reassemble the tensor (server side). `decode_message` has already
    /// enforced `pixels.len() == channels·height·width`, so the panic in
    /// `Tensor::from_vec` is unreachable for wire-decoded frames.
    pub fn pixel_tensor(&self) -> Tensor {
        Tensor::from_vec(
            Shape::d3(
                self.channels as usize,
                self.height as usize,
                self.width as usize,
            ),
            // audit: allow(alloc): the engine needs an owned pixel buffer
            // per request; one bounded (≤ MAX_PAYLOAD) copy.
            self.pixels.clone(),
        )
    }

    /// Payload length this frame will declare on the wire.
    pub fn payload_len(&self) -> usize {
        self.pixels.len().saturating_mul(4)
    }
}

/// A decoded response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Echo of the request's correlation id.
    pub request_id: u64,
    /// What happened.
    pub status: Status,
    /// Class label when `status == Ok`, else 0.
    pub class: u8,
    /// Which shard answered (or last refused).
    pub shard: u8,
}

/// Any client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Classify a frame.
    Request(RequestFrame),
    /// Dump the telemetry registry as text.
    MetricsDump,
}

fn le_u16(buf: &[u8], at: usize) -> u16 {
    let mut b = [0u8; 2];
    // audit: allow(index): callers index only after an explicit
    // `buf.len() >= needed` check; a miss is a decoder bug, not input.
    b.copy_from_slice(&buf[at..at.saturating_add(2)]);
    u16::from_le_bytes(b)
}

fn le_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    // audit: allow(index): callers index only after an explicit
    // `buf.len() >= needed` check; a miss is a decoder bug, not input.
    b.copy_from_slice(&buf[at..at.saturating_add(4)]);
    u32::from_le_bytes(b)
}

fn le_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    // audit: allow(index): callers index only after an explicit
    // `buf.len() >= needed` check; a miss is a decoder bug, not input.
    b.copy_from_slice(&buf[at..at.saturating_add(8)]);
    u64::from_le_bytes(b)
}

/// Encode a classification request.
pub fn encode_request(req: &RequestFrame) -> Vec<u8> {
    let payload_len = req.payload_len();
    let mut out = Vec::with_capacity(REQUEST_HEADER_LEN.saturating_add(payload_len));
    out.extend_from_slice(&REQUEST_MAGIC.to_le_bytes());
    out.push(VERSION);
    out.extend_from_slice(&req.tenant.to_le_bytes());
    out.extend_from_slice(&req.request_id.to_le_bytes());
    out.extend_from_slice(&req.deadline_ms.to_le_bytes());
    out.push(req.channels);
    out.extend_from_slice(&req.height.to_le_bytes());
    out.extend_from_slice(&req.width.to_le_bytes());
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    for px in &req.pixels {
        out.extend_from_slice(&px.to_le_bytes());
    }
    out
}

/// Encode a metrics-dump request.
pub fn encode_metrics_request() -> [u8; METRICS_REQUEST_LEN] {
    let m = METRICS_MAGIC.to_le_bytes();
    [m[0], m[1], m[2], m[3], VERSION]
}

/// Encode a response frame.
pub fn encode_response(resp: &ResponseFrame) -> [u8; RESPONSE_LEN] {
    let mut out = [0u8; RESPONSE_LEN];
    // audit: allow(index): fixed offsets into a [u8; RESPONSE_LEN] array.
    out[0..4].copy_from_slice(&RESPONSE_MAGIC.to_le_bytes());
    // audit: allow(index): fixed offsets into a [u8; RESPONSE_LEN] array.
    out[4] = VERSION;
    // audit: allow(index): fixed offsets into a [u8; RESPONSE_LEN] array.
    out[5..13].copy_from_slice(&resp.request_id.to_le_bytes());
    // audit: allow(index): fixed offsets into a [u8; RESPONSE_LEN] array.
    out[13] = resp.status.to_u8();
    // audit: allow(index): fixed offsets into a [u8; RESPONSE_LEN] array.
    out[14] = resp.class;
    // audit: allow(index): fixed offsets into a [u8; RESPONSE_LEN] array.
    out[15] = resp.shard;
    out
}

/// Validate a request header's declared payload length against its
/// declared shape, BEFORE any allocation. Returns the payload length in
/// bytes. This is the choke point that keeps hostile length prefixes
/// harmless: `Oversize` fires before `LengthMismatch`, and both fire
/// before a single payload byte is buffered.
pub fn validate_header(
    channels: u8,
    height: u16,
    width: u16,
    payload_len: u32,
) -> Result<usize, DecodeError> {
    if payload_len > MAX_PAYLOAD {
        return Err(DecodeError::Oversize {
            len: payload_len,
            max: MAX_PAYLOAD,
        });
    }
    if channels == 0 || height == 0 || width == 0 {
        return Err(DecodeError::EmptyFrame);
    }
    let expect = (channels as u64)
        .saturating_mul(height as u64)
        .saturating_mul(width as u64)
        .saturating_mul(4);
    if expect != payload_len as u64 {
        return Err(DecodeError::LengthMismatch {
            expect,
            got: payload_len,
        });
    }
    Ok(payload_len as usize)
}

/// Decode one message from the front of `buf`. On success returns the
/// message and the number of bytes it consumed (so a buffered reader can
/// advance). `Truncated` means "read more and retry"; anything else is
/// fatal for the connection.
pub fn decode_message(buf: &[u8]) -> Result<(Message, usize), DecodeError> {
    if buf.len() < 4 {
        return Err(DecodeError::Truncated {
            needed: 4,
            got: buf.len(),
        });
    }
    let magic = le_u32(buf, 0);
    if magic == METRICS_MAGIC {
        if buf.len() < METRICS_REQUEST_LEN {
            return Err(DecodeError::Truncated {
                needed: METRICS_REQUEST_LEN,
                got: buf.len(),
            });
        }
        // audit: allow(index): guarded by the length check above.
        if buf[4] != VERSION {
            // audit: allow(index): same guarded offset.
            return Err(DecodeError::UnsupportedVersion { got: buf[4] });
        }
        return Ok((Message::MetricsDump, METRICS_REQUEST_LEN));
    }
    if magic != REQUEST_MAGIC {
        return Err(DecodeError::BadMagic { got: magic });
    }
    if buf.len() < REQUEST_HEADER_LEN {
        return Err(DecodeError::Truncated {
            needed: REQUEST_HEADER_LEN,
            got: buf.len(),
        });
    }
    // audit: allow(index): guarded by the REQUEST_HEADER_LEN check above.
    if buf[4] != VERSION {
        // audit: allow(index): same guarded offset.
        return Err(DecodeError::UnsupportedVersion { got: buf[4] });
    }
    let tenant = le_u32(buf, 5);
    let request_id = le_u64(buf, 9);
    let deadline_ms = le_u32(buf, 17);
    // audit: allow(index): guarded by the REQUEST_HEADER_LEN check above.
    let channels = buf[21];
    let height = le_u16(buf, 22);
    let width = le_u16(buf, 24);
    let payload_len = le_u32(buf, 26);
    let payload = validate_header(channels, height, width, payload_len)?;
    let total = REQUEST_HEADER_LEN.saturating_add(payload);
    if buf.len() < total {
        return Err(DecodeError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    // Only now — header fully validated — do we allocate, and at most
    // MAX_PAYLOAD/4 floats.
    // audit: allow(alloc): capacity bounded by validate_header ≤ MAX_PAYLOAD/4.
    let mut pixels = Vec::with_capacity(payload / 4);
    let mut at = REQUEST_HEADER_LEN;
    while at < total {
        // audit: allow(alloc): push into the pre-sized, bounded vector.
        pixels.push(f32::from_le_bytes([
            // audit: allow(index): `at + 3 < total ≤ buf.len()` — checked above.
            buf[at],
            // audit: allow(index): same bound.
            buf[at.saturating_add(1)],
            // audit: allow(index): same bound.
            buf[at.saturating_add(2)],
            // audit: allow(index): same bound.
            buf[at.saturating_add(3)],
        ]));
        at = at.saturating_add(4);
    }
    Ok((
        Message::Request(RequestFrame {
            tenant,
            request_id,
            deadline_ms,
            channels,
            height,
            width,
            pixels,
        }),
        total,
    ))
}

/// Decode a 16-byte response frame.
pub fn decode_response(buf: &[u8]) -> Result<ResponseFrame, DecodeError> {
    if buf.len() < RESPONSE_LEN {
        return Err(DecodeError::Truncated {
            needed: RESPONSE_LEN,
            got: buf.len(),
        });
    }
    let magic = le_u32(buf, 0);
    if magic != RESPONSE_MAGIC {
        return Err(DecodeError::BadMagic { got: magic });
    }
    if buf[4] != VERSION {
        return Err(DecodeError::UnsupportedVersion { got: buf[4] });
    }
    Ok(ResponseFrame {
        request_id: le_u64(buf, 5),
        status: Status::from_u8(buf[13])?,
        class: buf[14],
        shard: buf[15],
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use bcp_serve::canary_frame;

    fn sample() -> RequestFrame {
        RequestFrame::from_tensor(7, 42, 250, &canary_frame(3, 8, 8))
    }

    #[test]
    fn request_round_trips() {
        let req = sample();
        let bytes = encode_request(&req);
        let (msg, used) = decode_message(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(msg, Message::Request(req));
    }

    #[test]
    fn response_round_trips_every_status() {
        for (i, status) in Status::ALL.into_iter().enumerate() {
            let resp = ResponseFrame {
                request_id: 0xdead_beef_0000 + i as u64,
                status,
                class: (i % 4) as u8,
                shard: i as u8,
            };
            assert_eq!(decode_response(&encode_response(&resp)), Ok(resp));
            assert_eq!(Status::from_u8(status.to_u8()), Ok(status));
        }
        assert!(matches!(
            Status::from_u8(10),
            Err(DecodeError::BadStatus { got: 10 })
        ));
    }

    #[test]
    fn truncation_is_typed_at_every_prefix_length() {
        let bytes = encode_request(&sample());
        for cut in 0..bytes.len() {
            match decode_message(&bytes[..cut]) {
                Err(DecodeError::Truncated { needed, got }) => {
                    assert_eq!(got, cut);
                    assert!(needed > cut);
                }
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn oversize_length_prefix_is_rejected_before_allocation() {
        let mut bytes = encode_request(&sample());
        bytes[26..30].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_message(&bytes),
            Err(DecodeError::Oversize {
                len: u32::MAX,
                max: MAX_PAYLOAD
            })
        );
    }

    #[test]
    fn shape_length_disagreement_is_rejected() {
        let mut bytes = encode_request(&sample());
        let lied = 3 * 8 * 8 * 4 + 4;
        bytes[26..30].copy_from_slice(&(lied as u32).to_le_bytes());
        assert_eq!(
            decode_message(&bytes),
            Err(DecodeError::LengthMismatch {
                expect: 3 * 8 * 8 * 4,
                got: lied as u32,
            })
        );
    }

    #[test]
    fn zero_dimension_is_rejected() {
        let mut bytes = encode_request(&sample());
        bytes[21] = 0;
        assert_eq!(decode_message(&bytes), Err(DecodeError::EmptyFrame));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = encode_request(&sample());
        bytes[4] = 9;
        assert_eq!(
            decode_message(&bytes),
            Err(DecodeError::UnsupportedVersion { got: 9 })
        );
        let garbage = [0x55u8; 64];
        assert!(matches!(
            decode_message(&garbage),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn metrics_request_decodes() {
        let bytes = encode_metrics_request();
        assert_eq!(
            decode_message(&bytes),
            Ok((Message::MetricsDump, METRICS_REQUEST_LEN))
        );
    }

    #[test]
    fn tensor_round_trip_preserves_pixels() {
        let t = canary_frame(3, 5, 9);
        let req = RequestFrame::from_tensor(1, 2, 3, &t);
        let back = req.pixel_tensor();
        assert_eq!(back.shape().dims(), t.shape().dims());
        assert_eq!(back.as_slice(), t.as_slice());
    }
}
