//! The TCP front door: accept loop, per-connection protocol pump,
//! admission, dispatch, and the health prober.
//!
//! One thread per connection. Each connection runs a buffered decode
//! loop: bytes accumulate until [`decode_message`] yields a full
//! message, a typed decode error, or a timeout verdict. The failure
//! modes are all non-fatal to everyone but the offending client:
//!
//! * **malformed bytes** → one `BadRequest` response, connection closed,
//!   accept loop untouched (`gateway.decode_errors`);
//! * **slowloris** (bytes trickling mid-frame slower than
//!   `read_timeout`) → connection closed (`gateway.read_timeouts`); an
//!   *idle* connection between frames is fine and costs nothing;
//! * **mid-frame disconnect** → no response owed — the request never
//!   fully arrived (`gateway.disconnects`);
//! * **tenant flood** → the tenant's own token bucket throttles it;
//!   other tenants' admission is untouched.
//!
//! Every fully-decoded request gets exactly one response frame:
//! `gateway.responses == gateway.frames` is a checked invariant in the
//! fault-injection tests, with `bad_request` replies (to bytes that never
//! formed a frame) accounted separately.

use crate::protocol::{
    decode_message, encode_response, DecodeError, Message, RequestFrame, ResponseFrame, Status,
};
use crate::shard::{Router, ShardSpec};
use crate::tenant::{Admission, TenantPolicy, TenantTable};
use bcp_serve::canary_frame;
use bcp_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use bcp_telemetry::{Counter, Histogram, Registry};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything tunable about the front door.
#[derive(Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Deadline budget applied when a request says `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Read-tick granularity: a connection mid-frame that delivers no
    /// byte for this long is a slowloris and is cut; idle connections
    /// between frames are only polled at this cadence for shutdown.
    pub read_timeout: Duration,
    /// Admission limits for tenants without an override.
    pub tenant_policy: TenantPolicy,
    /// Per-tenant admission overrides.
    pub tenant_overrides: Vec<(u32, TenantPolicy)>,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// Health-probe cadence; bounds the rebalance window after a shard
    /// kill or revive.
    pub probe_interval: Duration,
    /// Deadline budget of one health probe.
    pub probe_budget: Duration,
    /// Frame the health prober classifies; must match the replicas'
    /// expected input shape. `None` falls back to a 3×8×8 gradient frame,
    /// which suits shape-agnostic replicas (e.g. the synthetic one).
    pub probe_frame: Option<bcp_tensor::Tensor>,
    /// First backoff step of the failover retry loop.
    pub backoff_base: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            default_deadline: Duration::from_secs(2),
            read_timeout: Duration::from_millis(100),
            tenant_policy: TenantPolicy::default(),
            tenant_overrides: Vec::new(),
            vnodes: 16,
            probe_interval: Duration::from_millis(50),
            probe_budget: Duration::from_millis(500),
            probe_frame: None,
            backoff_base: Duration::from_micros(200),
        }
    }
}

struct Ctx {
    cfg: GatewayConfig,
    router: Router,
    tenants: TenantTable,
    registry: Registry,
    start: Instant,
    shutdown: AtomicBool,
    active: AtomicU64,
    connections: Counter,
    frames: Counter,
    responses: Counter,
    bad_requests: Counter,
    decode_errors: Counter,
    read_timeouts: Counter,
    disconnects: Counter,
    latency: Histogram,
    /// Per-status response counters, pre-interned at startup so the
    /// response path never formats a metric name or takes the registry
    /// lock. Indexed by `Status as u8`.
    status_counters: [Counter; Status::ALL.len()],
}

impl Ctx {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn set_active(&self, delta: i64) {
        // ordering: Relaxed — a monitoring count only; no code makes
        // decisions from it, and the gauge tolerates momentary skew.
        let now = if delta >= 0 {
            self.active
                .fetch_add(delta.unsigned_abs(), Ordering::Relaxed)
                .saturating_add(delta.unsigned_abs())
        } else {
            // ordering: Relaxed — same monitoring-only count as above.
            self.active
                .fetch_sub(delta.unsigned_abs(), Ordering::Relaxed)
                .saturating_sub(delta.unsigned_abs())
        };
        self.registry
            .gauge("gateway.active_connections")
            .set(now as f64);
    }
}

/// A running gateway: accept loop + prober + N shards behind a router.
/// Dropping without [`shutdown`](Gateway::shutdown) leaks the listener
/// thread; tests always shut down.
pub struct Gateway {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    accept: Option<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Gateway {
    /// Bind, stand up one shard per spec, and start serving.
    pub fn start(
        specs: Vec<ShardSpec>,
        cfg: GatewayConfig,
        registry: Option<Registry>,
    ) -> std::io::Result<Gateway> {
        let registry = registry.unwrap_or_default();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let router = Router::new(specs, cfg.vnodes, cfg.backoff_base, Some(registry.clone()));
        let mut tenants = TenantTable::new(cfg.tenant_policy, Some(registry.clone()));
        for (t, p) in &cfg.tenant_overrides {
            tenants = tenants.with_override(*t, *p);
        }
        let ctx = Arc::new(Ctx {
            router,
            tenants,
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            connections: registry.counter("gateway.connections"),
            frames: registry.counter("gateway.frames"),
            responses: registry.counter("gateway.responses"),
            bad_requests: registry.counter("gateway.bad_requests"),
            decode_errors: registry.counter("gateway.decode_errors"),
            read_timeouts: registry.counter("gateway.read_timeouts"),
            disconnects: registry.counter("gateway.disconnects"),
            latency: registry.histogram("gateway.latency_ns"),
            status_counters: Status::ALL
                .map(|s| registry.counter(&format!("gateway.status.{}", s.name()))),
            registry,
            cfg,
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let ctx = Arc::clone(&ctx);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&listener, &ctx, &conns))
        };
        let prober = {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || prober_loop(&ctx))
        };
        Ok(Gateway {
            addr,
            ctx,
            accept: Some(accept),
            prober: Some(prober),
            conns,
        })
    }

    /// Where clients connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard router (chaos plans kill/revive through it).
    pub fn router(&self) -> &Router {
        &self.ctx.router
    }

    /// The metric registry this gateway reports into.
    pub fn registry(&self) -> &Registry {
        &self.ctx.registry
    }

    /// Stop accepting, join every connection, drain every shard.
    pub fn shutdown(mut self) {
        // ordering: Relaxed — the flag is a shutdown request, observed by
        // loops at their next poll tick; no data is published under it.
        self.ctx.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conns.lock());
        for h in handles {
            let _ = h.join();
        }
        for shard in self.ctx.router.shards() {
            shard.stop();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    ctx: &Arc<Ctx>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // ordering: Relaxed — shutdown-flag poll; see `shutdown`.
                if ctx.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        // ordering: Relaxed — shutdown-flag poll; see `shutdown`.
        if ctx.shutdown.load(Ordering::Relaxed) {
            return;
        }
        ctx.connections.inc();
        ctx.set_active(1);
        let ctx2 = Arc::clone(ctx);
        let handle = std::thread::spawn(move || {
            serve_conn(stream, &ctx2);
            ctx2.set_active(-1);
        });
        conns.lock().push(handle);
    }
}

fn prober_loop(ctx: &Arc<Ctx>) {
    let probe = ctx
        .cfg
        .probe_frame
        .clone()
        .unwrap_or_else(|| canary_frame(3, 8, 8));
    // ordering: Relaxed — shutdown-flag poll; see `shutdown`.
    while !ctx.shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(ctx.cfg.probe_interval);
        for shard in ctx.router.shards() {
            shard.probe(&probe, ctx.cfg.probe_budget);
        }
    }
}

/// One connection's lifetime: accumulate bytes, decode, dispatch, answer.
// bcp:hot-path — per-connection read/dispatch loop of the front door
fn serve_conn(mut stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    // audit: allow(alloc): per-connection reassembly buffer, reused for
    // every frame on the connection.
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every complete message already buffered.
        while !buf.is_empty() {
            match decode_message(&buf) {
                Ok((msg, used)) => {
                    buf.drain(..used);
                    if !handle_message(msg, &mut stream, ctx) {
                        return;
                    }
                }
                Err(DecodeError::Truncated { .. }) => break,
                Err(_) => {
                    // Typed protocol violation: answer once, hang up. The
                    // accept loop (and every other tenant) is unaffected.
                    ctx.decode_errors.inc();
                    ctx.bad_requests.inc();
                    let resp = ResponseFrame {
                        request_id: 0,
                        status: Status::BadRequest,
                        class: 0,
                        shard: 0,
                    };
                    let _ = stream.write_all(&encode_response(&resp));
                    return;
                }
            }
        }
        // ordering: Relaxed — shutdown-flag poll; see `Gateway::shutdown`.
        if ctx.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    // Client vanished mid-frame: no request ever formed,
                    // so no response is owed.
                    ctx.disconnects.inc();
                }
                return;
            }
            Ok(n) => {
                // audit: allow(alloc, index): growth is bounded by one
                // validated frame (MAX_PAYLOAD) plus a read chunk; `n` is
                // the byte count `read` just returned, ≤ chunk.len().
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !buf.is_empty() {
                    // Slowloris: mid-frame and silent for a full read
                    // tick. Cut it loose; idle clients (empty buffer)
                    // just loop and poll the shutdown flag.
                    ctx.read_timeouts.inc();
                    return;
                }
            }
            Err(_) => {
                if !buf.is_empty() {
                    ctx.disconnects.inc();
                }
                return;
            }
        }
    }
}

/// Handle one decoded message. Returns `false` when the connection
/// should close.
// bcp:hot-path — per-request admission → dispatch → response
fn handle_message(msg: Message, stream: &mut TcpStream, ctx: &Ctx) -> bool {
    match msg {
        Message::Request(req) => {
            ctx.frames.inc();
            let t0 = Instant::now();
            let resp = answer(&req, ctx);
            ctx.latency.record_duration(t0.elapsed());
            ctx.responses.inc();
            status_counter(ctx, resp.status);
            stream.write_all(&encode_response(&resp)).is_ok()
        }
        Message::MetricsDump => handle_metrics(stream, ctx),
    }
}

// audit: cold — metrics scrape, not request traffic.
fn handle_metrics(stream: &mut TcpStream, ctx: &Ctx) -> bool {
    let text = ctx.registry.render_text();
    let len = u32::try_from(text.len()).unwrap_or(u32::MAX);
    if stream.write_all(&len.to_le_bytes()).is_err() {
        return false;
    }
    stream.write_all(text.as_bytes()).is_ok()
}

/// Admission + dispatch for one decoded request.
// bcp:hot-path — the request path proper
fn answer(req: &RequestFrame, ctx: &Ctx) -> ResponseFrame {
    let refuse = |status: Status| ResponseFrame {
        request_id: req.request_id,
        status,
        class: 0,
        shard: 0,
    };
    match ctx.tenants.admit(req.tenant, ctx.now_ns()) {
        Admission::Admitted => {}
        Admission::Throttled => return refuse(Status::Throttled),
        Admission::QuotaExhausted => return refuse(Status::QuotaExhausted),
    }
    let budget = if req.deadline_ms == 0 {
        ctx.cfg.default_deadline
    } else {
        Duration::from_millis(u64::from(req.deadline_ms))
    };
    let deadline = Instant::now().checked_add(budget);
    let frame = req.pixel_tensor();
    let out = ctx
        .router
        .dispatch(req.tenant, &frame, deadline, req.request_id);
    ResponseFrame {
        request_id: req.request_id,
        status: out.status(),
        class: match out.result {
            Ok(class) => u8::try_from(class.label()).unwrap_or(u8::MAX),
            Err(_) => 0,
        },
        shard: u8::try_from(out.shard).unwrap_or(u8::MAX),
    }
}

// bcp:hot-path — per-response status accounting
fn status_counter(ctx: &Ctx, status: Status) {
    // audit: allow(index): Status::to_u8 < Status::ALL.len() by
    // construction; counters were pre-interned at startup.
    ctx.status_counters[status.to_u8() as usize].inc();
}
