//! Shard handles and the consistent-hash router with deadline-bounded
//! failover.
//!
//! A **shard** is one independent [`Engine`] instance with its own
//! replica pool — capacity scales by process-like unit, not just by
//! worker thread. The gateway owns N shards behind [`Router`], which
//! consistent-hashes tenants onto them so a tenant's traffic has an
//! affinity shard (warm batches) but every tenant also has a total
//! preference order over all shards for failover.
//!
//! Failure handling is layered:
//! * each shard publishes an Up/Suspect/Down byte ([`ShardStateCell`],
//!   same single-writer-ish relaxed-atomic pattern as the engine's
//!   `WorkerStateCell`);
//! * a health prober (driven by the server) classifies a canary frame
//!   against each shard on a fixed interval, promoting Suspect → Up and
//!   demoting unresponsive shards to Down — this bounds the rebalance
//!   window after a kill or a revive to one probe interval;
//! * dispatch itself walks the tenant's preference order with
//!   jittered exponential backoff between attempts, every attempt and
//!   every backoff bounded by the request's remaining deadline budget, so
//!   retries can never spend more time than the client offered.

use crate::protocol::Status;
use bcp_dataset::MaskClass;
use bcp_serve::{Engine, Replica, ServeConfig, ServeError};
use bcp_sync::atomic::{AtomicU8, Ordering};
use bcp_telemetry::{Counter, Gauge, Registry};
use bcp_tensor::Tensor;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a shard builds (and rebuilds) its replica pool. The factory is the
/// revive path: after a kill, calling it again stands up a fresh pool.
#[derive(Clone)]
pub struct ShardSpec {
    /// Replica pool factory.
    pub make: Arc<dyn Fn() -> Vec<Box<dyn Replica>> + Send + Sync>,
    /// Engine configuration for this shard.
    pub cfg: ServeConfig,
}

impl ShardSpec {
    /// Spec serving `workers` synthetic replicas — the model-free
    /// configuration used by tests and the chaos harness.
    pub fn synthetic(workers: usize, cfg: ServeConfig) -> ShardSpec {
        ShardSpec {
            make: Arc::new(move || {
                (0..workers)
                    .map(|_| Box::new(bcp_serve::SyntheticReplica::new()) as Box<dyn Replica>)
                    .collect()
            }),
            cfg,
        }
    }
}

/// Health of one shard, as seen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardState {
    /// Serving; preferred by dispatch.
    Up = 0,
    /// Freshly revived or recently faulted; dispatch uses it only when no
    /// Up shard accepts, and the prober decides its fate.
    Suspect = 1,
    /// Not serving (killed or failed probes); skipped until revived.
    Down = 2,
}

impl ShardState {
    fn from_u8(b: u8) -> ShardState {
        match b {
            0 => ShardState::Up,
            1 => ShardState::Suspect,
            _ => ShardState::Down,
        }
    }
}

/// Lock-free shard-state byte, mirroring `WorkerStateCell` in bcp-serve.
pub struct ShardStateCell(AtomicU8);

impl ShardStateCell {
    /// Cell starting in `state`.
    pub fn new(state: ShardState) -> ShardStateCell {
        ShardStateCell(AtomicU8::new(state as u8))
    }

    /// Current state.
    pub fn load(&self) -> ShardState {
        // ordering: Relaxed — the byte carries no payload to acquire;
        // dispatch needs only *some* recent value and tolerates bounded
        // staleness (a stale Up costs one failed attempt, which failover
        // absorbs).
        ShardState::from_u8(self.0.load(Ordering::Relaxed))
    }

    /// Transition to `state`.
    pub fn store(&self, state: ShardState) {
        // ordering: Relaxed — state transitions publish no associated
        // data; the engine swap they describe is separately synchronized
        // through the shard's RwLock.
        self.0.store(state as u8, Ordering::Relaxed);
    }
}

/// One engine instance plus its health state and lifecycle (kill/revive).
pub struct Shard {
    id: usize,
    spec: ShardSpec,
    engine: RwLock<Option<Engine>>,
    state: ShardStateCell,
    registry: Option<Registry>,
    state_gauge: Option<Gauge>,
    dispatched: Option<Counter>,
    ok: Option<Counter>,
    failed: Option<Counter>,
    probes: Option<Counter>,
    probe_failures: Option<Counter>,
    killed: Option<Counter>,
    revived: Option<Counter>,
}

impl Shard {
    // audit: cold — shard construction happens once at gateway start (and
    // on revive), never per request.
    fn start(id: usize, spec: ShardSpec, registry: Option<Registry>) -> Shard {
        let engine = Engine::start((spec.make)(), spec.cfg.clone(), registry.clone());
        let c = |suffix: &str| {
            registry
                .as_ref()
                .map(|r| r.counter(&format!("gateway.shard.{id}.{suffix}")))
        };
        let shard = Shard {
            id,
            spec,
            engine: RwLock::new(Some(engine)),
            state: ShardStateCell::new(ShardState::Up),
            state_gauge: registry
                .as_ref()
                .map(|r| r.gauge(&format!("gateway.shard.{id}.state"))),
            dispatched: c("dispatched"),
            ok: c("ok"),
            failed: c("failed"),
            probes: c("probes"),
            probe_failures: c("probe_failures"),
            killed: c("killed"),
            revived: c("revived"),
            registry,
        };
        shard.publish_state(ShardState::Up);
        shard
    }

    /// Shard index within the router.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current health state.
    pub fn state(&self) -> ShardState {
        self.state.load()
    }

    fn publish_state(&self, state: ShardState) {
        self.state.store(state);
        if let Some(g) = &self.state_gauge {
            // audit: allow(cast): unit-only enum, discriminants 0..=2;
            // both casts are lossless.
            g.set(state as u8 as f64);
        }
    }

    /// Submit one frame and wait for its completion, all bounded by
    /// `deadline`. The engine read-guard is dropped before blocking on
    /// the ticket so [`kill`](Shard::kill) can take the write lock while
    /// requests are in flight.
    // bcp:hot-path — per-request shard submission on the dispatch path
    pub fn classify_with_deadline(
        &self,
        frame: &Tensor,
        deadline: Option<Instant>,
    ) -> Result<MaskClass, ServeError> {
        if let Some(c) = &self.dispatched {
            c.inc();
        }
        let ticket = {
            // audit: allow(block): shard-lifecycle RwLock; read-acquired
            // per request, write-contended only during kill/revive.
            let guard = self.engine.read();
            let Some(engine) = guard.as_ref() else {
                if let Some(c) = &self.failed {
                    c.inc();
                }
                return Err(ServeError::ShuttingDown);
            };
            match engine.submit_with_deadline(frame, deadline) {
                Ok(t) => t,
                Err(e) => {
                    if let Some(c) = &self.failed {
                        c.inc();
                    }
                    return Err(e);
                }
            }
        };
        // audit: allow(block): the whole point — park this connection's
        // thread until its completion arrives, bounded by the deadline
        // the engine enforces; other connections have their own threads.
        match ticket.wait() {
            Ok(class) => {
                if let Some(c) = &self.ok {
                    c.inc();
                }
                Ok(class)
            }
            Err(e) => {
                if let Some(c) = &self.failed {
                    c.inc();
                }
                Err(e)
            }
        }
    }

    /// Hard-stop this shard (chaos hook): mark Down, take the engine out
    /// of service, and drain it. In-flight tickets still resolve — the
    /// engine's drain path guarantees exactly-one-response — but new
    /// submissions refuse with `ShuttingDown` and fail over.
    // audit: cold — chaos/lifecycle operation, never on the request path.
    pub fn kill(&self) {
        self.stop();
        if let Some(c) = &self.killed {
            c.inc();
        }
    }

    /// Orderly removal from service (gateway shutdown): identical drain
    /// semantics to [`Shard::kill`], but not counted as a kill — the
    /// `gateway.shard.<id>.killed` ledger records only chaos/operator
    /// kills, so tests can assert on it exactly.
    /// audit: cold — lifecycle operation, never on the request path.
    pub fn stop(&self) {
        self.publish_state(ShardState::Down);
        let engine = {
            let mut guard = self.engine.write();
            if let Some(e) = guard.as_ref() {
                e.begin_drain();
            }
            guard.take()
        };
        if let Some(e) = engine {
            e.shutdown();
        }
    }

    /// Rebuild the replica pool from the spec and return to service as
    /// Suspect; the next successful health probe promotes it to Up.
    // audit: cold — chaos/lifecycle operation, never on the request path.
    pub fn revive(&self) {
        let engine = Engine::start(
            (self.spec.make)(),
            self.spec.cfg.clone(),
            self.registry.clone(),
        );
        *self.engine.write() = Some(engine);
        self.publish_state(ShardState::Suspect);
        if let Some(c) = &self.revived {
            c.inc();
        }
    }

    /// One health probe: classify `frame` within `budget`. Success
    /// promotes to Up, failure demotes to Down. Returns the verdict.
    // audit: cold — runs on the prober thread at probe_interval, not per
    // request.
    pub fn probe(&self, frame: &Tensor, budget: Duration) -> bool {
        if let Some(c) = &self.probes {
            c.inc();
        }
        let deadline = Instant::now().checked_add(budget);
        let healthy = self.classify_with_deadline(frame, deadline).is_ok();
        match (healthy, self.state.load()) {
            (true, ShardState::Up) => {}
            (true, _) => self.publish_state(ShardState::Up),
            (false, _) => {
                if let Some(c) = &self.probe_failures {
                    c.inc();
                }
                self.publish_state(ShardState::Down);
            }
        }
        healthy
    }
}

/// SplitMix64 — the ring and tenant hash. Deterministic across runs.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Xorshift64* jitter source for backoff, seeded per (request, attempt)
/// so retry timing is deterministic given the request id.
fn jitter(seed: u64) -> u64 {
    let mut x = seed | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545f4914f6cdd1d)
}

/// Everything dispatch learned about one request's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// The answer, or the wire status explaining the refusal.
    pub result: Result<MaskClass, Status>,
    /// Shard that answered (or the last one tried).
    pub shard: usize,
    /// Total submission attempts (1 = no failover).
    pub attempts: u32,
}

impl DispatchOutcome {
    /// Wire status for this outcome.
    pub fn status(&self) -> Status {
        match self.result {
            Ok(_) => Status::Ok,
            Err(s) => s,
        }
    }
}

/// Consistent-hash router over a fixed shard set.
pub struct Router {
    shards: Vec<Arc<Shard>>,
    /// Sorted hash ring of (point, shard index).
    ring: Vec<(u64, usize)>,
    backoff_base: Duration,
    failovers: Option<Counter>,
    retries: Option<Counter>,
}

impl Router {
    /// Stand up one shard per spec and hash them onto a ring with
    /// `vnodes` virtual nodes each.
    // audit: cold — router construction happens once at gateway start.
    pub fn new(
        specs: Vec<ShardSpec>,
        vnodes: usize,
        backoff_base: Duration,
        registry: Option<Registry>,
    ) -> Router {
        let shards: Vec<Arc<Shard>> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Arc::new(Shard::start(i, spec, registry.clone())))
            .collect();
        let mut ring = Vec::with_capacity(shards.len().saturating_mul(vnodes.max(1)));
        for i in 0..shards.len() {
            for v in 0..vnodes.max(1) {
                let point = splitmix64(((i as u64) << 32) | v as u64);
                ring.push((point, i));
            }
        }
        ring.sort_unstable();
        Router {
            shards,
            ring,
            backoff_base,
            failovers: registry.as_ref().map(|r| r.counter("gateway.failovers")),
            retries: registry.as_ref().map(|r| r.counter("gateway.retries")),
        }
    }

    /// The shard set (chaos and probing iterate it).
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// A tenant's full preference order: walk the ring clockwise from the
    /// tenant's hash point, collecting each distinct shard once.
    // bcp:hot-path — computed per request to pick the affinity shard
    pub fn preference(&self, tenant: u32) -> Vec<usize> {
        // audit: allow(alloc): order vector is bounded by the shard count
        // (single digits), reused for the whole retry walk.
        let mut order = Vec::with_capacity(self.shards.len());
        if self.ring.is_empty() {
            return order;
        }
        let h = splitmix64(tenant as u64);
        let start = self.ring.partition_point(|&(p, _)| p < h);
        for step in 0..self.ring.len() {
            let at = start.saturating_add(step).checked_rem(self.ring.len());
            let Some(at) = at else { break };
            // audit: allow(index): `at < ring.len()` by the mod above.
            let (_, shard) = self.ring[at];
            if !order.contains(&shard) {
                // audit: allow(alloc): push into the pre-sized order vector.
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }

    /// Route one admitted frame: try the tenant's preference order, Up
    /// shards first, then everything as a last resort, with jittered
    /// exponential backoff between attempts — all bounded by `deadline`.
    // bcp:hot-path — per-request dispatch and failover loop
    pub fn dispatch(
        &self,
        tenant: u32,
        frame: &Tensor,
        deadline: Option<Instant>,
        request_id: u64,
    ) -> DispatchOutcome {
        let order = self.preference(tenant);
        if order.is_empty() {
            return DispatchOutcome {
                result: Err(Status::NoHealthyShard),
                shard: 0,
                attempts: 0,
            };
        }
        // audit: allow(alloc): attempt plan is 2× the shard count at most.
        let mut plan = Vec::with_capacity(order.len().saturating_mul(2));
        for &s in &order {
            // audit: allow(index): preference() yields indices < shards.len().
            if self.shards[s].state() == ShardState::Up {
                // audit: allow(alloc): push into the pre-sized plan vector.
                plan.push(s);
            }
        }
        // Last-resort pass: every shard in preference order, regardless
        // of advertised state — a stale Down must not lose a request the
        // shard could still answer.
        plan.extend_from_slice(&order);

        let mut attempts: u32 = 0;
        let mut last: Option<(ServeError, usize)> = None;
        for (i, &s) in plan.iter().enumerate() {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    break;
                }
            }
            if attempts > 0 {
                if let Some(c) = &self.retries {
                    c.inc();
                }
                self.backoff(attempts, request_id, deadline);
            }
            attempts = attempts.saturating_add(1);
            // audit: allow(index): plan holds indices < shards.len().
            match self.shards[s].classify_with_deadline(frame, deadline) {
                Ok(class) => {
                    if i > 0 {
                        if let Some(c) = &self.failovers {
                            c.inc();
                        }
                    }
                    return DispatchOutcome {
                        result: Ok(class),
                        shard: s,
                        attempts,
                    };
                }
                Err(ServeError::DeadlineExpired) => {
                    // The budget is spent; retrying elsewhere cannot help.
                    return DispatchOutcome {
                        result: Err(Status::DeadlineExpired),
                        shard: s,
                        attempts,
                    };
                }
                Err(e) => {
                    // audit: allow(index): plan holds indices < shards.len().
                    let hit = &self.shards[s];
                    match e {
                        ServeError::ShuttingDown | ServeError::NoHealthyWorkers => {
                            hit.publish_state(ShardState::Down);
                        }
                        ServeError::WorkerFault { .. } if hit.state() == ShardState::Up => {
                            hit.publish_state(ShardState::Suspect);
                        }
                        // Queue-full refusals are overload, not illness.
                        _ => {}
                    }
                    last = Some((e, s));
                }
            }
        }
        let (status, shard) = match last {
            // Every attempt refused because engines were gone: the
            // gateway as a whole has no healthy shard.
            Some((ServeError::ShuttingDown | ServeError::NoHealthyWorkers, s)) => {
                (Status::NoHealthyShard, s)
            }
            Some((e, s)) => (Status::from_serve_error(&e), s),
            // Deadline elapsed before the first attempt.
            // audit: allow(index): order verified non-empty at entry.
            None => (Status::DeadlineExpired, order[0]),
        };
        DispatchOutcome {
            result: Err(status),
            shard,
            attempts,
        }
    }

    /// Sleep `base × 2^(attempt-1)` plus up to 50% deterministic jitter,
    /// clamped so the nap never outlives the remaining deadline.
    fn backoff(&self, attempt: u32, request_id: u64, deadline: Option<Instant>) {
        let exp = attempt.saturating_sub(1).min(6);
        let base_ns = self.backoff_base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let nap_ns = base_ns.saturating_mul(1u64 << exp);
        let j = jitter(request_id ^ u64::from(attempt));
        let jitter_ns = nap_ns / 2;
        let jitter_ns = if jitter_ns == 0 {
            0
        } else {
            j.checked_rem(jitter_ns).unwrap_or(0)
        };
        let mut nap = Duration::from_nanos(nap_ns.saturating_add(jitter_ns));
        if let Some(d) = deadline {
            let remaining = d.saturating_duration_since(Instant::now());
            nap = nap.min(remaining);
        }
        if !nap.is_zero() {
            // audit: allow(block): deliberate jittered failover backoff,
            // strictly bounded by the request's remaining deadline.
            std::thread::sleep(nap);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use bcp_serve::canary_frame;

    fn router(n: usize) -> Router {
        let specs = (0..n)
            .map(|_| ShardSpec::synthetic(1, ServeConfig::default()))
            .collect();
        Router::new(specs, 16, Duration::from_micros(100), None)
    }

    #[test]
    fn preference_is_a_permutation_and_stable() {
        let r = router(4);
        for tenant in 0..64u32 {
            let a = r.preference(tenant);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "tenant {tenant}: {a:?}");
            assert_eq!(a, r.preference(tenant));
        }
        r.shards().iter().for_each(|s| s.kill());
    }

    #[test]
    fn tenants_spread_across_shards() {
        let r = router(4);
        let mut first = [0usize; 4];
        for tenant in 0..256u32 {
            first[r.preference(tenant)[0]] += 1;
        }
        for (i, &n) in first.iter().enumerate() {
            assert!(n > 16, "shard {i} owns only {n}/256 tenants: {first:?}");
        }
        r.shards().iter().for_each(|s| s.kill());
    }

    #[test]
    fn dispatch_answers_and_fails_over_after_kill() {
        let r = router(3);
        let frame = canary_frame(3, 8, 8);
        let mut reference = bcp_serve::SyntheticReplica::new();
        let want = reference.infer_batch(std::slice::from_ref(&frame))[0];
        let out = r.dispatch(5, &frame, None, 1);
        assert_eq!(out.result, Ok(want));
        assert_eq!(out.attempts, 1);

        // Kill the tenant's affinity shard: dispatch must fail over and
        // still produce the same answer.
        let affinity = r.preference(5)[0];
        r.shards()[affinity].kill();
        assert_eq!(r.shards()[affinity].state(), ShardState::Down);
        let out = r.dispatch(5, &frame, None, 2);
        assert_eq!(out.result, Ok(want));
        assert_ne!(out.shard, affinity);
        r.shards().iter().for_each(|s| s.kill());
    }

    #[test]
    fn all_shards_down_is_no_healthy_shard() {
        let r = router(2);
        r.shards().iter().for_each(|s| s.kill());
        let frame = canary_frame(3, 8, 8);
        let out = r.dispatch(1, &frame, None, 3);
        assert_eq!(out.result, Err(Status::NoHealthyShard));
    }

    #[test]
    fn revive_and_probe_restore_service() {
        let r = router(1);
        let frame = canary_frame(3, 8, 8);
        r.shards()[0].kill();
        assert!(!r.shards()[0].probe(&frame, Duration::from_millis(100)));
        r.shards()[0].revive();
        assert_eq!(r.shards()[0].state(), ShardState::Suspect);
        assert!(r.shards()[0].probe(&frame, Duration::from_secs(5)));
        assert_eq!(r.shards()[0].state(), ShardState::Up);
        let out = r.dispatch(1, &frame, None, 4);
        assert!(out.result.is_ok());
        r.shards().iter().for_each(|s| s.kill());
    }

    #[test]
    fn expired_deadline_never_dispatches() {
        let r = router(2);
        let frame = canary_frame(3, 8, 8);
        let past = Instant::now() - Duration::from_millis(1);
        let out = r.dispatch(1, &frame, Some(past), 5);
        assert_eq!(out.result, Err(Status::DeadlineExpired));
        assert_eq!(out.attempts, 0);
        r.shards().iter().for_each(|s| s.kill());
    }
}
