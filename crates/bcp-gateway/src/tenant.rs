//! Per-tenant admission: token-bucket rate limiting and absolute quotas.
//!
//! Every decoded request names a tenant (an entry gate, in BinaryCoP's
//! access-control deployment). Before a frame is allowed anywhere near the
//! shard router it must pass two checks:
//!
//! 1. **Rate**: a token bucket refilled at `rate_per_s` tokens/second up
//!    to a `burst` cap. Buckets are kept in *micro-tokens* (×10⁶) so the
//!    refill math is exact integer arithmetic — `refill(elapsed_ns)` is a
//!    pure function of elapsed time, which is what makes the unit tests
//!    and the chaos harness deterministic.
//! 2. **Quota**: an optional absolute cap on admitted requests, for
//!    tenants sold a fixed budget. Unlike throttling, quota exhaustion is
//!    permanent.
//!
//! A misbehaving tenant can only ever burn its own bucket: the table is
//! keyed by tenant id, so one gate flooding the door never starves the
//! others of admission capacity (shard capacity is protected separately
//! by the engine's own backpressure).

use bcp_telemetry::{Counter, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Micro-tokens per token.
const MICRO: u64 = 1_000_000;

/// Admission limits for one tenant (or the table-wide default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Sustained admission rate, tokens (requests) per second.
    pub rate_per_s: u64,
    /// Bucket capacity: how many requests may land back-to-back after an
    /// idle period.
    pub burst: u64,
    /// Absolute lifetime cap on admitted requests, if any.
    pub quota: Option<u64>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        // Generous defaults: benches override these downward to provoke
        // throttling on purpose.
        TenantPolicy {
            rate_per_s: 10_000,
            burst: 1_000,
            quota: None,
        }
    }
}

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Token taken (and quota consumed); proceed to the router.
    Admitted,
    /// Bucket empty; the client should retry after a refill interval.
    Throttled,
    /// Quota spent; no retry will ever help.
    QuotaExhausted,
}

/// Deterministic token bucket in micro-token units.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    micro: u64,
    burst_micro: u64,
    rate_per_s: u64,
}

impl TokenBucket {
    /// A full bucket.
    pub fn new(rate_per_s: u64, burst: u64) -> TokenBucket {
        let burst_micro = burst.saturating_mul(MICRO);
        TokenBucket {
            micro: burst_micro,
            burst_micro,
            rate_per_s,
        }
    }

    /// Credit `elapsed_ns` nanoseconds of refill. Pure integer math:
    /// `micro += elapsed_ns × rate_per_s / 1000`, clamped to the burst
    /// cap (10⁶ micro-tokens per token, 10⁹ ns per second).
    pub fn refill(&mut self, elapsed_ns: u64) {
        let gained = (elapsed_ns as u128).saturating_mul(self.rate_per_s as u128) / 1000;
        let gained = u64::try_from(gained).unwrap_or(u64::MAX);
        self.micro = self.micro.saturating_add(gained).min(self.burst_micro);
    }

    /// Take one token if available.
    pub fn try_take(&mut self) -> bool {
        if self.micro >= MICRO {
            self.micro = self.micro.saturating_sub(MICRO);
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (for tests and introspection).
    pub fn available(&self) -> u64 {
        self.micro / MICRO
    }
}

struct TenantEntry {
    bucket: TokenBucket,
    last_ns: u64,
    used: u64,
    quota: Option<u64>,
    admitted: Option<Counter>,
    throttled: Option<Counter>,
    quota_exhausted: Option<Counter>,
}

/// Shared admission state for all tenants.
pub struct TenantTable {
    default_policy: TenantPolicy,
    overrides: HashMap<u32, TenantPolicy>,
    entries: Mutex<HashMap<u32, TenantEntry>>,
    registry: Option<Registry>,
}

impl TenantTable {
    /// Table where every tenant gets `default_policy` until overridden.
    pub fn new(default_policy: TenantPolicy, registry: Option<Registry>) -> TenantTable {
        TenantTable {
            default_policy,
            overrides: HashMap::new(),
            entries: Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// Pin a specific policy for one tenant (builder-style, pre-serving).
    pub fn with_override(mut self, tenant: u32, policy: TenantPolicy) -> TenantTable {
        self.overrides.insert(tenant, policy);
        self
    }

    /// Policy that applies to `tenant`.
    pub fn policy_of(&self, tenant: u32) -> TenantPolicy {
        self.overrides
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_policy)
    }

    // audit: cold — per-tenant state is created once per tenant lifetime,
    // not per request; the steady-state admit path only touches an
    // existing entry.
    fn make_entry(&self, tenant: u32) -> TenantEntry {
        let policy = self.policy_of(tenant);
        let c = |suffix: &str| {
            self.registry
                .as_ref()
                .map(|r| r.counter(&format!("gateway.tenant.{tenant}.{suffix}")))
        };
        TenantEntry {
            bucket: TokenBucket::new(policy.rate_per_s, policy.burst),
            last_ns: 0,
            used: 0,
            quota: policy.quota,
            admitted: c("admitted"),
            throttled: c("throttled"),
            quota_exhausted: c("quota_exhausted"),
        }
    }

    /// Run the admission check for one request. `now_ns` is a monotonic
    /// nanosecond clock (the gateway uses time since server start);
    /// passing it explicitly keeps the bucket math deterministic under
    /// test.
    // bcp:hot-path — every decoded request passes through admission
    pub fn admit(&self, tenant: u32, now_ns: u64) -> Admission {
        // audit: allow(block): per-table mutex; held for O(1) bucket math,
        // no I/O or allocation in the steady state.
        let mut entries = self.entries.lock();
        // audit: allow(alloc): first-sight tenant registration only; the
        // entry (and its interned counter names) live for the table's
        // lifetime.
        let entry = entries
            .entry(tenant)
            .or_insert_with(|| self.make_entry(tenant));
        let elapsed = now_ns.saturating_sub(entry.last_ns);
        entry.last_ns = now_ns;
        entry.bucket.refill(elapsed);
        if let Some(q) = entry.quota {
            if entry.used >= q {
                if let Some(c) = &entry.quota_exhausted {
                    c.inc();
                }
                return Admission::QuotaExhausted;
            }
        }
        if entry.bucket.try_take() {
            entry.used = entry.used.saturating_add(1);
            if let Some(c) = &entry.admitted {
                c.inc();
            }
            Admission::Admitted
        } else {
            if let Some(c) = &entry.throttled {
                c.inc();
            }
            Admission::Throttled
        }
    }

    /// Requests admitted so far for `tenant`.
    pub fn used(&self, tenant: u32) -> u64 {
        self.entries.lock().get(&tenant).map_or(0, |e| e.used)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(10, 3);
        assert_eq!(b.available(), 3);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take());
    }

    #[test]
    fn refill_math_is_exact() {
        let mut b = TokenBucket::new(1000, 10);
        while b.try_take() {}
        // 1000 tokens/s = 1 token per millisecond.
        b.refill(1_000_000);
        assert_eq!(b.available(), 1);
        b.refill(500_000);
        b.refill(500_000);
        assert_eq!(b.available(), 2);
        // Refill never exceeds burst.
        b.refill(3_600_000_000_000);
        assert_eq!(b.available(), 10);
    }

    #[test]
    fn refill_saturates_on_hostile_inputs() {
        let mut b = TokenBucket::new(u64::MAX, u64::MAX);
        b.refill(u64::MAX);
        assert!(b.try_take());
    }

    #[test]
    fn admission_throttles_past_burst() {
        let t = TenantTable::new(
            TenantPolicy {
                rate_per_s: 1000,
                burst: 5,
                quota: None,
            },
            None,
        );
        let mut admitted = 0;
        for _ in 0..8 {
            if t.admit(7, 0) == Admission::Admitted {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 5);
        assert_eq!(t.admit(7, 0), Admission::Throttled);
        // One millisecond later there is exactly one fresh token.
        assert_eq!(t.admit(7, 1_000_000), Admission::Admitted);
        assert_eq!(t.admit(7, 1_000_000), Admission::Throttled);
    }

    #[test]
    fn quota_is_permanent_and_per_tenant() {
        let t = TenantTable::new(
            TenantPolicy {
                rate_per_s: 1_000_000,
                burst: 100,
                quota: Some(2),
            },
            None,
        )
        .with_override(
            9,
            TenantPolicy {
                rate_per_s: 1_000_000,
                burst: 100,
                quota: None,
            },
        );
        assert_eq!(t.admit(1, 0), Admission::Admitted);
        assert_eq!(t.admit(1, 0), Admission::Admitted);
        // Quota outlasts any refill.
        assert_eq!(t.admit(1, 60_000_000_000), Admission::QuotaExhausted);
        assert_eq!(t.used(1), 2);
        // Tenant 9 is unaffected by tenant 1's exhaustion.
        for _ in 0..10 {
            assert_eq!(t.admit(9, 0), Admission::Admitted);
        }
    }

    #[test]
    fn counters_reconcile_with_outcomes() {
        let r = Registry::new();
        let t = TenantTable::new(
            TenantPolicy {
                rate_per_s: 1000,
                burst: 2,
                quota: Some(3),
            },
            Some(r.clone()),
        );
        let mut tally = [0u64; 3];
        for i in 0..6 {
            match t.admit(4, i * 600_000_000) {
                Admission::Admitted => tally[0] += 1,
                Admission::Throttled => tally[1] += 1,
                Admission::QuotaExhausted => tally[2] += 1,
            }
        }
        assert_eq!(r.counter("gateway.tenant.4.admitted").get(), tally[0]);
        assert_eq!(r.counter("gateway.tenant.4.throttled").get(), tally[1]);
        assert_eq!(
            r.counter("gateway.tenant.4.quota_exhausted").get(),
            tally[2]
        );
        assert_eq!(tally[0], 3);
    }
}
