//! End-to-end tests over a real TCP socket: correct answers, per-tenant
//! isolation, hostile-client containment, and the metrics dump.

#![allow(clippy::arithmetic_side_effects)]

use bcp_gateway::{
    chaos, ChaosPlan, Gateway, GatewayClient, GatewayConfig, ShardSpec, Status, TenantPolicy,
};
use bcp_serve::{canary_frame, Replica, ServeConfig, SyntheticReplica};
use std::time::Duration;

fn gateway(shards: usize, cfg: GatewayConfig) -> Gateway {
    let specs = (0..shards)
        .map(|_| ShardSpec::synthetic(2, ServeConfig::default()))
        .collect();
    Gateway::start(specs, cfg, None).expect("bind")
}

fn expected_class(frame: &bcp_tensor::Tensor) -> u8 {
    let mut reference = SyntheticReplica::new();
    reference.infer_batch(std::slice::from_ref(frame))[0].label() as u8
}

#[test]
fn classifies_over_the_wire_with_correct_answers() {
    let gw = gateway(2, GatewayConfig::default());
    let mut client = GatewayClient::connect(gw.local_addr()).unwrap();
    for i in 0..20u64 {
        let frame = canary_frame(3, 8 + (i as usize % 3), 8);
        let resp = client.classify(7, i, 1_000, &frame).unwrap();
        assert_eq!(resp.request_id, i);
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.class, expected_class(&frame), "request {i}");
    }
    gw.shutdown();
}

#[test]
fn tenants_are_isolated_under_flood() {
    // Tenant 1 gets a starved bucket; tenant 2 a roomy one. Flood as
    // tenant 1 and interleave tenant 2: tenant 2 must never be throttled.
    let cfg = GatewayConfig {
        tenant_overrides: vec![
            (
                1,
                TenantPolicy {
                    rate_per_s: 10,
                    burst: 3,
                    quota: None,
                },
            ),
            (
                2,
                TenantPolicy {
                    rate_per_s: 100_000,
                    burst: 10_000,
                    quota: None,
                },
            ),
        ],
        ..GatewayConfig::default()
    };
    let gw = gateway(1, cfg);
    let frame = canary_frame(3, 8, 8);
    let mut noisy = GatewayClient::connect(gw.local_addr()).unwrap();
    let mut polite = GatewayClient::connect(gw.local_addr()).unwrap();
    let mut throttled = 0u32;
    for i in 0..40u64 {
        let n = noisy.classify(1, i, 1_000, &frame).unwrap();
        if n.status == Status::Throttled {
            throttled += 1;
        }
        let p = polite.classify(2, 1_000 + i, 1_000, &frame).unwrap();
        assert_eq!(p.status, Status::Ok, "polite tenant throttled at {i}");
    }
    assert!(
        throttled > 20,
        "noisy tenant should mostly throttle: {throttled}"
    );
    gw.shutdown();
}

#[test]
fn quota_exhaustion_is_permanent() {
    let cfg = GatewayConfig {
        tenant_overrides: vec![(
            5,
            TenantPolicy {
                rate_per_s: 100_000,
                burst: 1_000,
                quota: Some(4),
            },
        )],
        ..GatewayConfig::default()
    };
    let gw = gateway(1, cfg);
    let frame = canary_frame(3, 8, 8);
    let mut client = GatewayClient::connect(gw.local_addr()).unwrap();
    let mut tally = [0u32; 2];
    for i in 0..10u64 {
        let resp = client.classify(5, i, 1_000, &frame).unwrap();
        match resp.status {
            Status::Ok => tally[0] += 1,
            Status::QuotaExhausted => tally[1] += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert_eq!(tally, [4, 6]);
    gw.shutdown();
}

#[test]
fn hostile_clients_do_not_stall_polite_ones() {
    let cfg = GatewayConfig {
        read_timeout: Duration::from_millis(50),
        ..GatewayConfig::default()
    };
    let gw = gateway(1, cfg);
    let plan = ChaosPlan::parse("garbage@0;slowloris@0+150;disconnect@0;garbage@5").unwrap();
    let report = std::thread::scope(|s| {
        let chaos_thread = s.spawn(|| chaos::run(&plan, &gw));
        // Polite traffic concurrent with every injection.
        let mut client = GatewayClient::connect(gw.local_addr()).unwrap();
        let frame = canary_frame(3, 8, 8);
        for i in 0..50u64 {
            let resp = client.classify(3, i, 2_000, &frame).unwrap();
            assert_eq!(resp.status, Status::Ok, "polite request {i} failed");
        }
        chaos_thread.join().unwrap()
    });
    assert!(
        report.clean(),
        "chaos report not clean: {}",
        report.to_json()
    );
    assert_eq!(report.garbage_rejected, 2);
    assert_eq!(report.slowloris_cut, 1);
    assert_eq!(report.disconnects, 1);

    // The server accounted for each hostile connection the typed way.
    let m = gw.registry().snapshot();
    let count = |name: &str| m.counters.get(name).copied().unwrap_or(0);
    assert_eq!(count("gateway.decode_errors"), 2);
    assert_eq!(count("gateway.read_timeouts"), 1);
    assert_eq!(count("gateway.disconnects"), 1);
    // Exactly-one-response: every decoded frame answered.
    assert_eq!(count("gateway.frames"), count("gateway.responses"));
    gw.shutdown();
}

#[test]
fn metrics_dump_over_the_wire() {
    let gw = gateway(1, GatewayConfig::default());
    let mut client = GatewayClient::connect(gw.local_addr()).unwrap();
    let frame = canary_frame(3, 8, 8);
    for i in 0..5u64 {
        client.classify(1, i, 1_000, &frame).unwrap();
    }
    let text = client.metrics().unwrap();
    assert!(text.contains("gateway.frames"), "dump:\n{text}");
    assert!(text.contains("gateway.responses"), "dump:\n{text}");
    assert!(text.contains("gateway.tenant.1.admitted"), "dump:\n{text}");
    assert!(text.contains("serve.requests"), "dump:\n{text}");
    gw.shutdown();
}

#[test]
fn deadline_budget_is_enforced_end_to_end() {
    // One slow worker (5ms/frame): a 1ms budget must expire, a roomy one
    // must succeed — and the expiry must come back over the wire as a
    // typed status, not a hang.
    let specs = vec![ShardSpec {
        make: std::sync::Arc::new(|| {
            vec![
                Box::new(SyntheticReplica::with_delay(Duration::from_millis(5)))
                    as Box<dyn Replica>,
            ]
        }),
        cfg: ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        },
    }];
    let gw = Gateway::start(specs, GatewayConfig::default(), None).unwrap();
    let mut client = GatewayClient::connect(gw.local_addr()).unwrap();
    let frame = canary_frame(3, 8, 8);
    // Saturate so queueing makes a 1ms budget hopeless.
    let mut expired = 0u32;
    for i in 0..10u64 {
        let resp = client.classify(1, i, 1, &frame).unwrap();
        if resp.status == Status::DeadlineExpired {
            expired += 1;
        }
    }
    assert!(expired > 0, "1ms budget against 5ms compute should expire");
    let roomy = client.classify(1, 99, 5_000, &frame).unwrap();
    assert_eq!(roomy.status, Status::Ok);
    gw.shutdown();
}
