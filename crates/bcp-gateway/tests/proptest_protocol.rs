//! Property-based wall around the wire codec: random frames round-trip
//! bit-exactly, and no byte stream an attacker can construct — truncated,
//! mutated, garbage, or length-lying — ever panics the decoder or talks
//! it into an unbounded allocation.

#![allow(clippy::arithmetic_side_effects)]

use bcp_gateway::protocol::{
    decode_message, decode_response, encode_request, encode_response, DecodeError, Message,
    RequestFrame, ResponseFrame, Status, MAX_PAYLOAD, REQUEST_HEADER_LEN,
};
use proptest::prelude::*;

fn frame(
    tenant: u32,
    request_id: u64,
    deadline_ms: u32,
    c: usize,
    h: usize,
    w: usize,
    raw: Vec<f32>,
) -> RequestFrame {
    let n = c * h * w;
    let mut pixels = raw;
    pixels.resize(n, 0.5);
    pixels.truncate(n);
    RequestFrame {
        tenant,
        request_id,
        deadline_ms,
        channels: c as u8,
        height: h as u16,
        width: w as u16,
        pixels,
    }
}

proptest! {
    #[test]
    fn random_frames_round_trip(
        tenant in any::<u32>(),
        request_id in any::<u64>(),
        deadline_ms in any::<u32>(),
        c in 1usize..5,
        h in 1usize..17,
        w in 1usize..17,
        raw in collection::vec(0.0f32..1.0, 0usize..512),
    ) {
        let req = frame(tenant, request_id, deadline_ms, c, h, w, raw);
        let bytes = encode_request(&req);
        let (msg, used) = decode_message(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(msg, Message::Request(req));
    }

    #[test]
    fn every_truncation_is_a_typed_truncated_error(
        c in 1usize..4,
        h in 1usize..9,
        w in 1usize..9,
        cut_seed in any::<u64>(),
    ) {
        let req = frame(3, 9, 100, c, h, w, Vec::new());
        let bytes = encode_request(&req);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match decode_message(&bytes[..cut]) {
            Err(DecodeError::Truncated { needed, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(needed > cut);
                // The bound a buffered reader may trust: `needed` can
                // never demand more than one max-size frame.
                prop_assert!(needed <= REQUEST_HEADER_LEN + MAX_PAYLOAD as usize);
            }
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }

    #[test]
    fn garbage_never_panics_and_never_demands_unbounded_memory(
        bytes in collection::vec(any::<u8>(), 0usize..256),
    ) {
        match decode_message(&bytes) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(DecodeError::Truncated { needed, .. }) => {
                prop_assert!(needed <= REQUEST_HEADER_LEN + MAX_PAYLOAD as usize);
            }
            Err(_) => {} // typed rejection is exactly the contract
        }
    }

    #[test]
    fn single_byte_mutations_never_panic(
        c in 1usize..4,
        h in 1usize..9,
        w in 1usize..9,
        at_seed in any::<u64>(),
        val in any::<u8>(),
    ) {
        let req = frame(1, 2, 3, c, h, w, Vec::new());
        let mut bytes = encode_request(&req);
        let at = (at_seed % bytes.len() as u64) as usize;
        bytes[at] = val;
        // Any outcome is fine except a panic or an absurd length demand.
        if let Err(DecodeError::Truncated { needed, .. }) = decode_message(&bytes) {
            prop_assert!(needed <= REQUEST_HEADER_LEN + MAX_PAYLOAD as usize);
        }
    }

    #[test]
    fn lying_length_prefixes_are_rejected_before_payload(
        c in 1usize..4,
        h in 1usize..9,
        w in 1usize..9,
        lie in any::<u32>(),
    ) {
        let req = frame(1, 2, 3, c, h, w, Vec::new());
        let honest = req.payload_len() as u32;
        prop_assume!(lie != honest);
        let mut bytes = encode_request(&req);
        bytes[26..30].copy_from_slice(&lie.to_le_bytes());
        match decode_message(&bytes) {
            Err(DecodeError::Oversize { len, max }) => {
                prop_assert_eq!(len, lie);
                prop_assert_eq!(max, MAX_PAYLOAD);
                prop_assert!(lie > MAX_PAYLOAD);
            }
            Err(DecodeError::LengthMismatch { expect, got }) => {
                prop_assert_eq!(got, lie);
                prop_assert_eq!(expect, honest as u64);
            }
            other => prop_assert!(false, "lie {} gave {:?}", lie, other),
        }
    }

    #[test]
    fn responses_round_trip_and_reject_unknown_statuses(
        request_id in any::<u64>(),
        status_byte in 0u8..10,
        class in any::<u8>(),
        shard in any::<u8>(),
        bad_byte in 10u8..255,
    ) {
        let resp = ResponseFrame {
            request_id,
            status: Status::from_u8(status_byte).unwrap(),
            class,
            shard,
        };
        let mut bytes = encode_response(&resp);
        prop_assert_eq!(decode_response(&bytes), Ok(resp));
        bytes[13] = bad_byte;
        prop_assert_eq!(
            decode_response(&bytes),
            Err(DecodeError::BadStatus { got: bad_byte })
        );
    }
}
