//! Grad-CAM interpretability (Sec. III-C).
//!
//! BinaryCoP's networks shrink 32×32 inputs to 5×5 at `conv2_2` without a
//! global-average-pooling head, so plain CAM does not apply; the paper uses
//! Grad-CAM [Selvaraju et al. 2017]: the gradient of a class logit with
//! respect to a convolutional layer's output is average-pooled per channel
//! into importance weights, the weighted channel sum is rectified, and the
//! result is upsampled over the input as an attention heat map.
//!
//! - [`gradcam`]: the computation over `bcp-nn` networks (works unchanged
//!   for binary and FP32 models — the STE provides the gradients for BNNs).
//! - [`render`]: ASCII heat maps and PPM overlays for the paper's
//!   Figs. 3–9.

#![forbid(unsafe_code)]

pub mod render;
pub mod stats;

use bcp_nn::{Mode, Sequential};
use bcp_tensor::{Shape, Tensor};

/// One sample's class-discriminative localization map, normalized to
/// [0, 1] at the network input resolution.
#[derive(Clone, Debug)]
pub struct CamMap {
    /// Heat values, `size × size`, in [0, 1].
    pub heat: Tensor,
    /// The class the map explains.
    pub class: usize,
}

/// Compute Grad-CAM maps for a batch at the layer named `target_layer`
/// (e.g. `"conv2_2"` — the paper's choice, 5×5 spatial). `classes` selects
/// the logit to explain per sample. Returns one map per sample, upsampled
/// to `out_size`.
pub fn gradcam(
    net: &mut Sequential,
    input: &Tensor,
    classes: &[usize],
    target_layer: &str,
    out_size: usize,
) -> Vec<CamMap> {
    assert_eq!(input.shape().rank(), 4, "gradcam input must be NCHW");
    let n = input.shape().dim(0);
    assert_eq!(classes.len(), n, "one class per sample required");
    let layer_idx = net
        .index_of(target_layer)
        .unwrap_or_else(|| panic!("network has no layer named '{target_layer}'"));

    // Forward in eval mode (running batch-norm stats, caches populated).
    let outs = net.forward_collect(input, Mode::Eval);
    let activations = outs[layer_idx].clone();
    assert_eq!(
        activations.shape().rank(),
        4,
        "target layer '{target_layer}' must produce an NCHW activation"
    );
    let logits = outs.last().expect("non-empty network").clone();
    assert_eq!(logits.shape().rank(), 2, "network must end in logits");
    let c_out = logits.shape().dim(1);

    // Seed: one-hot at the chosen logit per sample.
    let mut seed = Tensor::zeros(logits.shape().clone());
    for (s, &cls) in classes.iter().enumerate() {
        assert!(cls < c_out, "class {cls} out of range ({c_out} logits)");
        *seed.at_mut(&[s, cls]) = 1.0;
    }
    let grads = net.backward_to(&seed, layer_idx);
    assert_eq!(
        grads.shape(),
        activations.shape(),
        "gradient/activation mismatch"
    );

    let (c, h, w) = (
        activations.shape().dim(1),
        activations.shape().dim(2),
        activations.shape().dim(3),
    );
    let plane = h * w;
    let mut maps = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // s indexes three parallel arrays
    for s in 0..n {
        // α_k: spatially averaged gradient per channel (Einstein-summation
        // reduction of the paper).
        let mut cam = vec![0.0f32; plane];
        for ch in 0..c {
            let base = ((s * c) + ch) * plane;
            let g = &grads.as_slice()[base..base + plane];
            let a = &activations.as_slice()[base..base + plane];
            let alpha: f32 = g.iter().sum::<f32>() / plane as f32;
            for (acc, &av) in cam.iter_mut().zip(a) {
                *acc += alpha * av;
            }
        }
        // ReLU + normalize to [0, 1].
        for v in &mut cam {
            *v = v.max(0.0);
        }
        let max = cam.iter().copied().fold(0.0f32, f32::max);
        if max > 0.0 {
            for v in &mut cam {
                *v /= max;
            }
        }
        let small = Tensor::from_vec(Shape::d2(h, w), cam);
        maps.push(CamMap {
            heat: upsample_bilinear(&small, out_size),
            class: classes[s],
        });
    }
    maps
}

/// Plain CAM [Zhou et al. 2016] for networks with a GAP → FC head:
/// `CAM_c = Σ_k W_fc[c, k] · A_k` at the conv layer feeding the GAP.
///
/// BinaryCoP's deployed models have no GAP head (Sec. III-C), so this
/// exists for methodology validation: on a GAP-headed model, CAM and
/// Grad-CAM at the same layer provably produce the same normalized map —
/// asserted by this crate's tests, which pins both implementations.
pub fn cam(
    net: &mut Sequential,
    input: &Tensor,
    classes: &[usize],
    target_layer: &str,
    fc_layer: &str,
    out_size: usize,
) -> Vec<CamMap> {
    use bcp_nn::linear::Linear;
    assert_eq!(input.shape().rank(), 4, "cam input must be NCHW");
    let n = input.shape().dim(0);
    assert_eq!(classes.len(), n, "one class per sample required");
    let layer_idx = net
        .index_of(target_layer)
        .unwrap_or_else(|| panic!("network has no layer named '{target_layer}'"));
    let fc_idx = net
        .index_of(fc_layer)
        .unwrap_or_else(|| panic!("network has no layer named '{fc_layer}'"));

    let outs = net.forward_collect(input, Mode::Eval);
    let activations = outs[layer_idx].clone();
    assert_eq!(
        activations.shape().rank(),
        4,
        "target layer must be convolutional"
    );
    let fc = net
        .layer_as::<Linear>(fc_idx)
        .unwrap_or_else(|| panic!("layer '{fc_layer}' is not a Linear"));
    let weights = fc.weight(); // classes × C
    let (c, h, w) = (
        activations.shape().dim(1),
        activations.shape().dim(2),
        activations.shape().dim(3),
    );
    assert_eq!(
        weights.shape().dim(1),
        c,
        "FC fan-in must equal the target layer's channels (GAP head required)"
    );
    let plane = h * w;
    let mut maps = Vec::with_capacity(n);
    for (s, &cls) in classes.iter().enumerate() {
        let mut heat = vec![0.0f32; plane];
        for ch in 0..c {
            let wgt = weights.at(&[cls, ch]);
            let base = (s * c + ch) * plane;
            let a = &activations.as_slice()[base..base + plane];
            for (acc, &av) in heat.iter_mut().zip(a) {
                *acc += wgt * av;
            }
        }
        for v in &mut heat {
            *v = v.max(0.0);
        }
        let max = heat.iter().copied().fold(0.0f32, f32::max);
        if max > 0.0 {
            for v in &mut heat {
                *v /= max;
            }
        }
        let small = Tensor::from_vec(Shape::d2(h, w), heat);
        maps.push(CamMap {
            heat: upsample_bilinear(&small, out_size),
            class: cls,
        });
    }
    maps
}

/// Bilinear upsampling of a rank-2 map to `target × target`.
pub fn upsample_bilinear(map: &Tensor, target: usize) -> Tensor {
    assert_eq!(map.shape().rank(), 2, "upsample expects a rank-2 map");
    let (h, w) = (map.shape().dim(0), map.shape().dim(1));
    assert!(h > 0 && w > 0 && target > 0);
    let src = map.as_slice();
    let mut out = vec![0.0f32; target * target];
    for ty in 0..target {
        for tx in 0..target {
            // Align corners: map the target grid onto the source grid.
            let fy = if target == 1 {
                0.0
            } else {
                ty as f32 * (h - 1) as f32 / (target - 1) as f32
            };
            let fx = if target == 1 {
                0.0
            } else {
                tx as f32 * (w - 1) as f32 / (target - 1) as f32
            };
            let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
            let (y1, x1) = ((y0 + 1).min(h - 1), (x0 + 1).min(w - 1));
            let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
            let v = src[y0 * w + x0] * (1.0 - dy) * (1.0 - dx)
                + src[y0 * w + x1] * (1.0 - dy) * dx
                + src[y1 * w + x0] * dy * (1.0 - dx)
                + src[y1 * w + x1] * dy * dx;
            out[ty * target + tx] = v;
        }
    }
    Tensor::from_vec(Shape::d2(target, target), out)
}

/// Centroid of a heat map (row, col) — a compact summary for the "where is
/// the model looking" assertions in the experiments.
pub fn heat_centroid(map: &Tensor) -> (f32, f32) {
    assert_eq!(map.shape().rank(), 2);
    let (h, w) = (map.shape().dim(0), map.shape().dim(1));
    let mut total = 0.0f32;
    let (mut ry, mut rx) = (0.0f32, 0.0f32);
    for y in 0..h {
        for x in 0..w {
            let v = map.as_slice()[y * w + x];
            total += v;
            ry += v * y as f32;
            rx += v * x as f32;
        }
    }
    if total == 0.0 {
        ((h as f32 - 1.0) / 2.0, (w as f32 - 1.0) / 2.0)
    } else {
        (ry / total, rx / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_nn::activation::{Relu, SignSte};
    use bcp_nn::batchnorm::BatchNorm;
    use bcp_nn::conv::{BinaryConv2d, Conv2d};
    use bcp_nn::flatten::Flatten;
    use bcp_nn::linear::Linear;
    use bcp_tensor::init::uniform;
    use bcp_tensor::Conv2dSpec;

    fn tiny_bnn() -> Sequential {
        Sequential::new("tiny-bnn")
            .push(BinaryConv2d::new("conv1", Conv2dSpec::new(3, 4, 3, 0), 1))
            .push(BatchNorm::new("bn1", 4))
            .push(SignSte::new("sign1"))
            .push(BinaryConv2d::new("conv2", Conv2dSpec::new(4, 8, 3, 0), 2))
            .push(BatchNorm::new("bn2", 8))
            .push(SignSte::new("sign2"))
            .push(Flatten::new("flat"))
            .push(Linear::new("fc", 8 * 4 * 4, 4, true, 3))
    }

    #[test]
    fn maps_have_expected_shape_and_range() {
        let mut net = tiny_bnn();
        let x = uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0, 5);
        let maps = gradcam(&mut net, &x, &[0, 3], "conv2", 8);
        assert_eq!(maps.len(), 2);
        for m in &maps {
            assert_eq!(m.heat.shape().dims(), &[8, 8]);
            for &v in m.heat.as_slice() {
                assert!((0.0..=1.0).contains(&v), "heat {v} outside [0,1]");
            }
        }
        assert_eq!(maps[1].class, 3);
    }

    #[test]
    fn works_on_fp32_networks_too() {
        let mut net = Sequential::new("fp32")
            .push(Conv2d::new("conv1", Conv2dSpec::new(3, 4, 3, 0), 1))
            .push(BatchNorm::new("bn1", 4))
            .push(Relu::new("relu1"))
            .push(Flatten::new("flat"))
            .push(Linear::new("fc", 4 * 6 * 6, 2, true, 2));
        let x = uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0, 9);
        let maps = gradcam(&mut net, &x, &[1], "conv1", 8);
        assert_eq!(maps[0].heat.shape().dims(), &[8, 8]);
    }

    #[test]
    fn different_classes_can_differ() {
        let mut net = tiny_bnn();
        let x = uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0, 11);
        let a = gradcam(&mut net, &x, &[0], "conv2", 8);
        let mut net2 = tiny_bnn();
        let b = gradcam(&mut net2, &x, &[1], "conv2", 8);
        // Not guaranteed different in general, but with random weights the
        // maps should rarely coincide exactly; allow equality only if both
        // are all-zero (dead ReLU case).
        let same = a[0].heat == b[0].heat;
        let a_zero = a[0].heat.as_slice().iter().all(|&v| v == 0.0);
        assert!(!same || a_zero);
    }

    #[test]
    #[should_panic(expected = "no layer named")]
    fn unknown_layer_panics() {
        let mut net = tiny_bnn();
        let x = uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0, 5);
        gradcam(&mut net, &x, &[0], "conv9", 8);
    }

    #[test]
    fn cam_equals_gradcam_on_gap_headed_model() {
        // The methodology identity behind Sec. III-C: with a GAP → FC head,
        // Grad-CAM's channel weights are exactly the FC weights (scaled by
        // 1/HW), so the normalized maps coincide. This pins both
        // implementations against each other.
        use bcp_nn::pool::GlobalAvgPool;
        let make = || {
            Sequential::new("gap-head")
                .push(Conv2d::new("conv1", Conv2dSpec::new(3, 6, 3, 0), 1))
                .push(BatchNorm::new("bn1", 6))
                .push(Relu::new("relu1"))
                .push(GlobalAvgPool::new("gap"))
                .push(Linear::new("fc", 6, 4, false, 2))
        };
        let x = uniform(Shape::nchw(2, 3, 10, 10), -1.0, 1.0, 3);
        for cls in 0..4 {
            let mut net_a = make();
            let via_cam = cam(&mut net_a, &x, &[cls, cls], "relu1", "fc", 10);
            let mut net_b = make();
            let via_gradcam = gradcam(&mut net_b, &x, &[cls, cls], "relu1", 10);
            for (a, g) in via_cam.iter().zip(&via_gradcam) {
                for (va, vg) in a.heat.as_slice().iter().zip(g.heat.as_slice()) {
                    assert!(
                        (va - vg).abs() < 1e-4,
                        "CAM {va} vs Grad-CAM {vg} diverged (class {cls})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "GAP head required")]
    fn cam_rejects_non_gap_heads() {
        let mut net = tiny_bnn();
        let x = uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0, 4);
        // fc fan-in is 8·4·4, not the 8 channels of conv2 → must panic.
        cam(&mut net, &x, &[0], "conv2", "fc", 8);
    }

    #[test]
    fn upsample_identity_and_interpolation() {
        let m = Tensor::from_vec(Shape::d2(2, 2), vec![0.0, 1.0, 1.0, 0.0]);
        let same = upsample_bilinear(&m, 2);
        assert_eq!(same, m);
        let up = upsample_bilinear(&m, 3);
        // Center is the average of the four corners = 0.5.
        assert!((up.at(&[1, 1]) - 0.5).abs() < 1e-6);
        assert_eq!(up.at(&[0, 0]), 0.0);
        assert_eq!(up.at(&[0, 2]), 1.0);
    }

    #[test]
    fn centroid_tracks_mass() {
        let mut m = Tensor::zeros(Shape::d2(5, 5));
        *m.at_mut(&[4, 0]) = 1.0;
        assert_eq!(heat_centroid(&m), (4.0, 0.0));
        let uniform_map = Tensor::ones(Shape::d2(5, 5));
        assert_eq!(heat_centroid(&uniform_map), (2.0, 2.0));
        // Empty map falls back to the center.
        assert_eq!(heat_centroid(&Tensor::zeros(Shape::d2(5, 5))), (2.0, 2.0));
    }
}
