//! Heat-map rendering: ASCII (terminal) and PPM overlays (files).
//!
//! The paper overlays Grad-CAM heat maps on the raw inputs (Figs. 3–9);
//! `overlay_ppm` reproduces that with a jet-style colormap blended onto the
//! RGB input, and `ascii` gives a terminal-friendly rendering used by the
//! experiment binaries.

use bcp_tensor::Tensor;

/// Density ramp for ASCII rendering, light to heavy.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Render a [0, 1] heat map as ASCII art, one character per cell.
pub fn ascii(map: &Tensor) -> String {
    assert_eq!(map.shape().rank(), 2, "ascii expects a rank-2 heat map");
    let (h, w) = (map.shape().dim(0), map.shape().dim(1));
    let mut s = String::with_capacity(h * (w + 1));
    for y in 0..h {
        for x in 0..w {
            let v = map.as_slice()[y * w + x].clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            s.push(RAMP[idx] as char);
        }
        s.push('\n');
    }
    s
}

/// Jet-style colormap: blue → cyan → yellow → red over [0, 1].
pub fn jet(v: f32) -> (f32, f32, f32) {
    let v = v.clamp(0.0, 1.0);
    let r = (4.0 * v - 2.0).clamp(0.0, 1.0);
    let g = (2.0 - (4.0 * v - 2.0).abs()).clamp(0.0, 1.0);
    let b = (2.0 - 4.0 * v).clamp(0.0, 1.0);
    (r, g, b)
}

/// Blend a heat map over a CHW RGB image (both `size × size`) and encode as
/// a binary PPM (P6). `alpha` is the heat layer's opacity.
pub fn overlay_ppm(image: &Tensor, heat: &Tensor, alpha: f32) -> Vec<u8> {
    assert_eq!(image.shape().rank(), 3, "overlay expects a CHW image");
    assert_eq!(image.shape().dim(0), 3, "overlay expects 3 channels");
    let (h, w) = (image.shape().dim(1), image.shape().dim(2));
    assert_eq!(
        heat.shape().dims(),
        &[h, w],
        "heat map must match the image size"
    );
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
    let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
    let plane = h * w;
    let px = image.as_slice();
    for i in 0..plane {
        let hv = heat.as_slice()[i];
        let (hr, hg, hb) = jet(hv);
        // Heat opacity additionally scales with the heat value so cold
        // regions show the raw image (matching the paper's overlays).
        let a = alpha * hv;
        for (ch, hc) in [(0, hr), (1, hg), (2, hb)] {
            let base = px[ch * plane + i].clamp(0.0, 1.0);
            let v = base * (1.0 - a) + hc * a;
            out.push((v * 255.0).round() as u8);
        }
    }
    out
}

/// Encode a plain CHW RGB image as binary PPM (P6) — used to dump the raw
/// inputs next to their overlays.
pub fn image_ppm(image: &Tensor) -> Vec<u8> {
    assert_eq!(image.shape().rank(), 3, "expects a CHW image");
    assert_eq!(image.shape().dim(0), 3, "expects 3 channels");
    let (h, w) = (image.shape().dim(1), image.shape().dim(2));
    let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
    let plane = h * w;
    let px = image.as_slice();
    for i in 0..plane {
        for ch in 0..3 {
            out.push((px[ch * plane + i].clamp(0.0, 1.0) * 255.0).round() as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::Shape;

    #[test]
    fn ascii_uses_ramp_extremes() {
        let m = Tensor::from_vec(Shape::d2(1, 3), vec![0.0, 0.5, 1.0]);
        let s = ascii(&m);
        assert_eq!(s.chars().next(), Some(' '));
        assert_eq!(s.chars().nth(2), Some('@'));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn ascii_dimensions() {
        let m = Tensor::zeros(Shape::d2(4, 7));
        let s = ascii(&m);
        assert_eq!(s.lines().count(), 4);
        assert!(s.lines().all(|l| l.len() == 7));
    }

    #[test]
    fn jet_endpoints() {
        let (r0, _, b0) = jet(0.0);
        let (r1, _, b1) = jet(1.0);
        assert!(b0 > 0.9 && r0 < 0.1, "low heat should be blue");
        assert!(r1 > 0.9 && b1 < 0.1, "high heat should be red");
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Tensor::zeros(Shape::d3(3, 4, 5));
        let heat = Tensor::zeros(Shape::d2(4, 5));
        let ppm = overlay_ppm(&img, &heat, 0.5);
        assert!(ppm.starts_with(b"P6\n5 4\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 4 * 5);
    }

    #[test]
    fn zero_heat_preserves_image() {
        let img = Tensor::full(Shape::d3(3, 2, 2), 0.5);
        let heat = Tensor::zeros(Shape::d2(2, 2));
        let over = overlay_ppm(&img, &heat, 0.8);
        let plain = image_ppm(&img);
        assert_eq!(over, plain, "cold overlay must equal the raw image");
    }

    #[test]
    fn hot_heat_tints_red() {
        let img = Tensor::zeros(Shape::d3(3, 1, 1));
        let heat = Tensor::ones(Shape::d2(1, 1));
        let ppm = overlay_ppm(&img, &heat, 1.0);
        let (r, g, b) = (ppm[11], ppm[12], ppm[13]);
        assert!(
            r > 200 && g < 120 && b < 60,
            "hot pixel should be red, got {r},{g},{b}"
        );
    }

    #[test]
    #[should_panic(expected = "match the image size")]
    fn mismatched_heat_rejected() {
        overlay_ppm(
            &Tensor::zeros(Shape::d3(3, 4, 4)),
            &Tensor::zeros(Shape::d2(2, 2)),
            0.5,
        );
    }
}
