//! Aggregate attention statistics.
//!
//! The paper's Grad-CAM analysis is qualitative (per-image heat maps);
//! this module adds the quantitative backing used by the experiment
//! reports: per-class mean attention maps over a dataset and
//! region-of-interest mass fractions ("how much of the model's attention
//! sits on the mask-decisive band?").

use crate::CamMap;
use bcp_tensor::{Shape, Tensor};

/// Running mean of heat maps.
#[derive(Clone, Debug)]
pub struct AttentionAccumulator {
    sum: Tensor,
    count: usize,
}

impl AttentionAccumulator {
    /// New accumulator for `size × size` maps.
    pub fn new(size: usize) -> Self {
        AttentionAccumulator {
            sum: Tensor::zeros(Shape::d2(size, size)),
            count: 0,
        }
    }

    /// Add one map.
    pub fn add(&mut self, map: &CamMap) {
        assert_eq!(map.heat.shape(), self.sum.shape(), "map size mismatch");
        for (s, &h) in self.sum.as_mut_slice().iter_mut().zip(map.heat.as_slice()) {
            *s += h;
        }
        self.count += 1;
    }

    /// Number of maps accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The mean attention map (zeros when empty).
    pub fn mean(&self) -> Tensor {
        if self.count == 0 {
            return self.sum.clone();
        }
        let n = self.count as f32;
        self.sum.map(|v| v / n)
    }
}

/// Fraction of a map's attention mass inside a region predicate
/// `(row, col) → bool`. Returns 0 for an all-zero map.
pub fn region_fraction(map: &Tensor, region: impl Fn(usize, usize) -> bool) -> f32 {
    assert_eq!(map.shape().rank(), 2, "expects a rank-2 heat map");
    let (h, w) = (map.shape().dim(0), map.shape().dim(1));
    let mut inside = 0.0f32;
    let mut total = 0.0f32;
    for y in 0..h {
        for x in 0..w {
            let v = map.as_slice()[y * w + x];
            total += v;
            if region(y, x) {
                inside += v;
            }
        }
    }
    if total == 0.0 {
        0.0
    } else {
        inside / total
    }
}

/// The mask-decisive band for a `size × size` face crop: the lower-center
/// region where the mask (and the nose/mouth/chin landmarks) sit —
/// rows 40–95 %, the middle 70 % of columns.
pub fn mask_band(size: usize) -> impl Fn(usize, usize) -> bool {
    let top = size * 2 / 5;
    let bottom = size * 19 / 20;
    let left = size * 3 / 20;
    let right = size - left;
    move |y, x| (top..bottom).contains(&y) && (left..right).contains(&x)
}

/// Area fraction of a region predicate — the chance level for
/// [`region_fraction`] under uniform attention.
pub fn region_area_fraction(size: usize, region: impl Fn(usize, usize) -> bool) -> f32 {
    let mut inside = 0usize;
    for y in 0..size {
        for x in 0..size {
            if region(y, x) {
                inside += 1;
            }
        }
    }
    inside as f32 / (size * size) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam(size: usize, hot: &[(usize, usize)]) -> CamMap {
        let mut heat = Tensor::zeros(Shape::d2(size, size));
        for &(y, x) in hot {
            *heat.at_mut(&[y, x]) = 1.0;
        }
        CamMap { heat, class: 0 }
    }

    #[test]
    fn accumulator_means() {
        let mut acc = AttentionAccumulator::new(4);
        assert_eq!(acc.count(), 0);
        acc.add(&cam(4, &[(0, 0)]));
        acc.add(&cam(4, &[(0, 0), (3, 3)]));
        let mean = acc.mean();
        assert_eq!(mean.at(&[0, 0]), 1.0);
        assert_eq!(mean.at(&[3, 3]), 0.5);
        assert_eq!(mean.at(&[1, 1]), 0.0);
        assert_eq!(acc.count(), 2);
    }

    #[test]
    fn empty_accumulator_mean_is_zero() {
        let acc = AttentionAccumulator::new(3);
        assert!(acc.mean().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn region_fraction_counts_mass() {
        let map = cam(4, &[(0, 0), (3, 3), (3, 2)]).heat;
        // Bottom-row region contains 2 of 3 units of mass.
        let f = region_fraction(&map, |y, _| y == 3);
        assert!((f - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(
            region_fraction(&Tensor::zeros(Shape::d2(4, 4)), |_, _| true),
            0.0
        );
    }

    #[test]
    fn mask_band_covers_lower_center() {
        let band = mask_band(32);
        assert!(band(20, 16), "mouth region inside");
        assert!(band(14, 16), "nose line inside");
        assert!(!band(2, 16), "forehead outside");
        assert!(!band(20, 0), "left edge outside");
        let area = region_area_fraction(32, mask_band(32));
        assert!(
            (0.3..0.5).contains(&area),
            "band area {area} should be ~38%"
        );
    }
}
