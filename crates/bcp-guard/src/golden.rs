//! Compressed golden copies of a pipeline's parameter memories — the
//! repair half of the guard layer.
//!
//! The [`GoldenDigest`](bcp_finn::GoldenDigest) can *detect* and localize
//! corruption; restoring the flipped bits needs the original data. A
//! [`GoldenStore`] keeps a per-row copy of every packed weight memory
//! (run-length compressed when that is actually smaller — random ±1 rows
//! are incompressible, so the store falls back to raw words rather than
//! pretending) plus a clone of every folded threshold table. Repair is
//! involutive bit surgery: XOR the live row against the golden row and
//! flip exactly the differing bits through the existing fault path, so a
//! repaired row is bit-identical to the deployed one.

use bcp_finn::fault::{try_apply_fault, FaultRecord};
use bcp_finn::Pipeline;
use serde::{Deserialize, Serialize};

/// One row's golden words, stored in whichever encoding is smaller.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Blob {
    /// Verbatim packed words (the honest fallback — random ±1 weight rows
    /// do not compress).
    Raw(Vec<u64>),
    /// Run-length pairs `(count, word)` for rows dominated by repeats
    /// (e.g. all-(−1) initializations).
    Rle(Vec<(u32, u64)>),
}

impl Blob {
    /// Encode `words`, picking the smaller of raw and run-length form.
    pub fn compress(words: &[u64]) -> Blob {
        let mut runs: Vec<(u32, u64)> = Vec::new();
        for &w in words {
            match runs.last_mut() {
                Some((n, prev)) if *prev == w && *n < u32::MAX => *n = n.wrapping_add(1),
                _ => runs.push((1, w)),
            }
        }
        // A raw word is 8 bytes; an RLE pair serializes to 12.
        if runs.len().saturating_mul(12) < words.len().saturating_mul(8) {
            Blob::Rle(runs)
        } else {
            Blob::Raw(words.to_vec())
        }
    }

    /// Decode back to packed words.
    pub fn decode(&self) -> Vec<u64> {
        match self {
            Blob::Raw(words) => words.clone(),
            Blob::Rle(runs) => {
                let mut out = Vec::new();
                for &(n, w) in runs {
                    out.extend(std::iter::repeat_n(w, n as usize));
                }
                out
            }
        }
    }

    /// Approximate serialized size of this encoding.
    pub fn stored_bytes(&self) -> usize {
        match self {
            Blob::Raw(words) => words.len().saturating_mul(8),
            Blob::Rle(runs) => runs.len().saturating_mul(12),
        }
    }
}

/// Golden parameter copies for one stage.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct StageGolden {
    /// Weight rows/cols (0×0 for a weightless stage).
    rows: usize,
    cols: usize,
    row_words: Vec<Blob>,
    thresholds: Option<bcp_bitpack::ThresholdUnit>,
}

/// Compressed golden copy of every parameter memory in a pipeline,
/// indexed by stage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GoldenStore {
    stages: Vec<StageGolden>,
}

impl GoldenStore {
    /// Snapshot `pipeline`'s weights and thresholds.
    pub fn capture(pipeline: &Pipeline) -> GoldenStore {
        let stages = pipeline
            .stages()
            .iter()
            .map(|s| {
                let (rows, cols, row_words) = match s.weight_matrix() {
                    Some(m) => (
                        m.rows(),
                        m.cols(),
                        (0..m.rows())
                            .map(|r| Blob::compress(m.row_words(r)))
                            .collect(),
                    ),
                    None => (0, 0, Vec::new()),
                };
                StageGolden {
                    rows,
                    cols,
                    row_words,
                    thresholds: s.threshold_unit().cloned(),
                }
            })
            .collect();
        GoldenStore { stages }
    }

    /// Bytes the store actually holds (post-compression).
    pub fn stored_bytes(&self) -> usize {
        self.stages
            .iter()
            .map(|s| {
                s.row_words
                    .iter()
                    .map(Blob::stored_bytes)
                    .fold(0usize, usize::saturating_add)
            })
            .fold(0usize, usize::saturating_add)
    }

    /// Bytes an uncompressed copy of the weight memories would take.
    pub fn raw_bytes(&self) -> usize {
        self.stages
            .iter()
            .map(|s| {
                s.row_words
                    .iter()
                    .map(|b| b.decode().len().saturating_mul(8))
                    .fold(0usize, usize::saturating_add)
            })
            .fold(0usize, usize::saturating_add)
    }

    /// Golden words of one weight row.
    // audit: cold — golden-store decode runs on the scrub/repair path, never per-request (shares its name with BitMatrix::row_words)
    pub fn row_words(&self, stage: usize, row: usize) -> Vec<u64> {
        self.stages[stage].row_words[row].decode()
    }

    /// Golden threshold table of one stage, when it has one.
    pub fn thresholds(&self, stage: usize) -> Option<&bcp_bitpack::ThresholdUnit> {
        self.stages[stage].thresholds.as_ref()
    }

    /// Restore weight row `(stage, row)` to its golden content by flipping
    /// exactly the differing bits (involutive surgery through the fault
    /// path — no new weight mutators). Returns the number of bits flipped.
    pub fn repair_row(&self, pipeline: &mut Pipeline, stage: usize, row: usize) -> usize {
        let golden = self.row_words(stage, row);
        let current: Vec<u64> = pipeline.stages()[stage]
            .weight_matrix()
            .unwrap_or_else(|| panic!("stage {stage} has no weight memory to repair"))
            .row_words(row)
            .to_vec();
        assert_eq!(
            golden.len(),
            current.len(),
            "stage {stage} row {row} shape diverged from the golden store"
        );
        let mut flipped = 0usize;
        for (w_idx, (cur, gold)) in current.iter().zip(golden.iter()).enumerate() {
            let mut diff = cur ^ gold;
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                let col = w_idx.saturating_mul(64).saturating_add(bit);
                try_apply_fault(pipeline, FaultRecord { stage, row, col })
                    .expect("padding is zero in both copies, so every diff bit is a valid column");
                flipped = flipped.saturating_add(1);
                diff &= diff.wrapping_sub(1);
            }
        }
        flipped
    }

    /// Restore the threshold table of `stage` from the golden clone.
    /// Panics when the stage never had thresholds (nothing golden to
    /// restore).
    pub fn repair_thresholds(&self, pipeline: &mut Pipeline, stage: usize) {
        let golden = self
            .thresholds(stage)
            .unwrap_or_else(|| panic!("stage {stage} has no golden threshold table"))
            .clone();
        pipeline.stage_mut(stage).restore_thresholds(golden);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_roundtrips_both_encodings() {
        let repeated = vec![0xAAAA_AAAA_AAAA_AAAAu64; 16];
        let blob = Blob::compress(&repeated);
        assert!(matches!(blob, Blob::Rle(_)));
        assert_eq!(blob.decode(), repeated);
        assert!(blob.stored_bytes() < repeated.len().saturating_mul(8));

        let varied: Vec<u64> = (0u64..16).map(|i| i ^ 0xDEAD_BEEF).collect();
        let blob = Blob::compress(&varied);
        assert!(
            matches!(blob, Blob::Raw(_)),
            "incompressible data stays raw"
        );
        assert_eq!(blob.decode(), varied);
        assert_eq!(blob.stored_bytes(), 128);
    }

    #[test]
    fn blob_empty_and_single() {
        assert_eq!(Blob::compress(&[]).decode(), Vec::<u64>::new());
        assert_eq!(Blob::compress(&[7]).decode(), vec![7]);
    }
}
