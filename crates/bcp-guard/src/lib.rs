//! Weight-memory integrity guard for deployed BinaryCoP pipelines.
//!
//! The paper's robustness story (Sec. IV) is statistical: a BNN tolerates
//! scattered bit flips because binarization leaves individual weights
//! non-critical. This crate adds the complementary *engineering* story —
//! detect and undo the flips before they accumulate:
//!
//! - [`bcp_finn::GoldenDigest`] (captured at deploy time) holds a CRC-32
//!   per packed weight row and per folded threshold table. CRC-32's
//!   minimum distance is ≥ 4 below 91 607 bits, so every ≤3-bit upset
//!   inside a row is detected with certainty.
//! - [`GoldenStore`] keeps a compressed golden copy of the same memories
//!   (run-length when smaller, raw otherwise) and repairs a dirty row by
//!   flipping exactly the differing bits back — bit-exact, involutive.
//! - [`Scrubber`] walks the memories incrementally, a few rows per
//!   [`Scrubber::tick`], so a serving worker can interleave scrubbing with
//!   inference; it emits `guard.scrub.*` telemetry (rows scanned, faults
//!   detected/repaired, sweep-latency histogram).
//!
//! `bcp-serve` builds its quarantine → repair → probation worker lifecycle
//! on top of these pieces; `bcp scrub-bench` measures the end-to-end
//! detection/repair rate and scrub overhead.
#![forbid(unsafe_code)]
#![warn(clippy::arithmetic_side_effects)]

pub mod golden;
pub mod scrub;

pub use golden::{Blob, GoldenStore};
pub use scrub::{ScrubReport, Scrubber};
