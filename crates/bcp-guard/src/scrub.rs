//! Incremental weight-memory scrubber.
//!
//! Hardware memory scrubbers walk SRAM in the background, re-checking ECC
//! a few words at a time so faults are found before they accumulate. The
//! [`Scrubber`] is the simulator's analogue: it splits a pipeline's
//! parameter memories into *scrub units* — one per packed weight row plus
//! one per folded threshold table — and each [`Scrubber::tick`] verifies
//! the next few units against the sealed golden digest, repairing any
//! mismatch from the compressed golden copy on the spot. Ticks are cheap
//! and bounded, so a serving worker can interleave them between inference
//! batches (`ServeConfig::background_scrub`); a full pass over all units
//! is one *sweep*, and sweep latency is tracked as a histogram.

use crate::golden::GoldenStore;
use bcp_finn::{GoldenDigest, IntegrityFault, Pipeline};
use bcp_telemetry::{Counter, Histogram, Registry};
use std::time::Instant;

/// One unit of scrub work: small enough to verify between two inference
/// batches without a measurable latency spike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScrubUnit {
    /// Re-hash one packed weight row.
    WeightRow { stage: usize, row: usize },
    /// Re-hash one stage's threshold table.
    Thresholds { stage: usize },
}

/// Pre-resolved `guard.scrub.*` telemetry handles.
struct Metrics {
    rows_scanned: Counter,
    faults_detected: Counter,
    faults_repaired: Counter,
    bits_flipped: Counter,
    sweeps: Counter,
    sweep_ns: Histogram,
}

impl Metrics {
    fn new(registry: &Registry) -> Metrics {
        Metrics {
            rows_scanned: registry.counter("guard.scrub.rows_scanned"),
            faults_detected: registry.counter("guard.scrub.faults_detected"),
            faults_repaired: registry.counter("guard.scrub.faults_repaired"),
            bits_flipped: registry.counter("guard.scrub.bits_flipped"),
            sweeps: registry.counter("guard.scrub.sweeps"),
            sweep_ns: registry.histogram("guard.scrub.sweep_ns"),
        }
    }
}

/// What one scrub call found and fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Scrub units examined.
    pub units_scanned: u64,
    /// Units whose CRC mismatched the golden digest.
    pub faults_detected: u64,
    /// Units restored to golden content (always equals detections here —
    /// the golden store is assumed intact, as a radiation-hardened or
    /// off-chip copy would be).
    pub faults_repaired: u64,
    /// Individual weight bits flipped back.
    pub bits_flipped: u64,
    /// Full sweeps completed during this call.
    pub sweeps_completed: u64,
}

impl ScrubReport {
    fn absorb(&mut self, other: ScrubReport) {
        self.units_scanned = self.units_scanned.saturating_add(other.units_scanned);
        self.faults_detected = self.faults_detected.saturating_add(other.faults_detected);
        self.faults_repaired = self.faults_repaired.saturating_add(other.faults_repaired);
        self.bits_flipped = self.bits_flipped.saturating_add(other.bits_flipped);
        self.sweeps_completed = self.sweeps_completed.saturating_add(other.sweeps_completed);
    }
}

/// Background integrity scrubber for one pipeline.
///
/// Owns the sealed golden digest (detection) and the compressed golden
/// store (repair); keeps a cursor over the scrub units so work resumes
/// where the last tick stopped.
pub struct Scrubber {
    digest: GoldenDigest,
    store: GoldenStore,
    units: Vec<ScrubUnit>,
    cursor: usize,
    sweep_start: Option<Instant>,
    metrics: Option<Metrics>,
}

impl Scrubber {
    /// Capture golden state from a trusted (freshly deployed) pipeline.
    pub fn new(pipeline: &Pipeline) -> Scrubber {
        let digest = GoldenDigest::capture(pipeline);
        let store = GoldenStore::capture(pipeline);
        let mut units = Vec::new();
        for d in digest.stages() {
            for row in 0..d.rows() {
                units.push(ScrubUnit::WeightRow {
                    stage: d.stage(),
                    row,
                });
            }
            if d.threshold_crc().is_some() {
                units.push(ScrubUnit::Thresholds { stage: d.stage() });
            }
        }
        Scrubber {
            digest,
            store,
            units,
            cursor: 0,
            sweep_start: None,
            metrics: None,
        }
    }

    /// Emit `guard.scrub.*` metrics into `registry`.
    pub fn with_telemetry(mut self, registry: &Registry) -> Scrubber {
        self.metrics = Some(Metrics::new(registry));
        self
    }

    /// Scrub units per full sweep.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The sealed digest captured at construction.
    pub fn digest(&self) -> &GoldenDigest {
        &self.digest
    }

    /// The compressed golden copy captured at construction.
    pub fn store(&self) -> &GoldenStore {
        &self.store
    }

    /// Detection-only pass over the whole pipeline (no repair, no cursor
    /// movement).
    pub fn audit(&self, pipeline: &Pipeline) -> Vec<IntegrityFault> {
        self.digest.verify(pipeline)
    }

    /// Verify-and-repair the next `n` scrub units, wrapping at the end of
    /// the memory (one wrap = one completed sweep, recorded in the
    /// `guard.scrub.sweep_ns` histogram).
    pub fn tick(&mut self, pipeline: &mut Pipeline, n: usize) -> ScrubReport {
        let mut report = ScrubReport::default();
        if self.units.is_empty() {
            return report;
        }
        for _ in 0..n {
            if self.cursor == 0 && self.sweep_start.is_none() {
                self.sweep_start = Some(Instant::now());
            }
            report.absorb(self.scan_unit(pipeline, self.units[self.cursor]));
            report.units_scanned = report.units_scanned.saturating_add(1);
            let next = self.cursor.saturating_add(1);
            if next >= self.units.len() {
                self.cursor = 0;
                report.sweeps_completed = report.sweeps_completed.saturating_add(1);
                if let Some(started) = self.sweep_start.take() {
                    if let Some(m) = &self.metrics {
                        m.sweeps.inc();
                        m.sweep_ns.record_duration(started.elapsed());
                    }
                }
            } else {
                self.cursor = next;
            }
        }
        report
    }

    /// One complete sweep from the current cursor position.
    pub fn full_sweep(&mut self, pipeline: &mut Pipeline) -> ScrubReport {
        self.tick(pipeline, self.units.len())
    }

    /// Repair one localized fault (as returned by [`Scrubber::audit`]).
    /// Returns the bits flipped back (0 for a threshold restore, whose
    /// grain is the whole table).
    pub fn repair(&self, pipeline: &mut Pipeline, fault: IntegrityFault) -> u64 {
        match fault {
            IntegrityFault::WeightRow { stage, row } => {
                self.store.repair_row(pipeline, stage, row) as u64
            }
            IntegrityFault::Thresholds { stage } => {
                self.store.repair_thresholds(pipeline, stage);
                0
            }
        }
    }

    fn scan_unit(&self, pipeline: &mut Pipeline, unit: ScrubUnit) -> ScrubReport {
        let mut report = ScrubReport::default();
        match unit {
            ScrubUnit::WeightRow { stage, row } => {
                if let Some(m) = &self.metrics {
                    m.rows_scanned.inc();
                }
                if !self.digest.verify_row(pipeline, stage, row) {
                    report.faults_detected = 1;
                    let bits = self.store.repair_row(pipeline, stage, row) as u64;
                    report.bits_flipped = bits;
                    assert!(
                        self.digest.verify_row(pipeline, stage, row),
                        "row ({stage}, {row}) still dirty after repair"
                    );
                    report.faults_repaired = 1;
                    if let Some(m) = &self.metrics {
                        m.faults_detected.inc();
                        m.faults_repaired.inc();
                        m.bits_flipped.add(bits);
                    }
                }
            }
            ScrubUnit::Thresholds { stage } => {
                if !self.digest.verify_thresholds(pipeline, stage) {
                    report.faults_detected = 1;
                    self.store.repair_thresholds(pipeline, stage);
                    assert!(
                        self.digest.verify_thresholds(pipeline, stage),
                        "thresholds of stage {stage} still dirty after repair"
                    );
                    report.faults_repaired = 1;
                    if let Some(m) = &self.metrics {
                        m.faults_detected.inc();
                        m.faults_repaired.inc();
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_bitpack::pack::pack_matrix;
    use bcp_bitpack::{ThresholdChannel, ThresholdUnit};
    use bcp_finn::fault::{apply_burst, inject_random_faults};
    use bcp_finn::folding::Folding;
    use bcp_finn::mvtu::{BinaryMvtu, FixedInputMvtu};
    use bcp_finn::Stage;

    fn pipeline() -> Pipeline {
        let w = |r: usize, c: usize, seed: u64| {
            let mut s = seed | 1;
            let vals: Vec<f32> = (0..r.saturating_mul(c))
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(3);
                    if s >> 60 & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            pack_matrix(r, c, &vals)
        };
        let t = |r: usize| ThresholdUnit::new(vec![ThresholdChannel::Ge(0); r]);
        Pipeline::new(
            "scrub-test",
            vec![
                Stage::ConvFixed {
                    name: "conv1".into(),
                    mvtu: FixedInputMvtu::new(w(4, 27, 1), t(4), Folding::new(4, 3)),
                    k: 3,
                    in_dims: (3, 8, 8),
                },
                Stage::PoolOr {
                    name: "pool1".into(),
                    k: 2,
                    in_dims: (4, 6, 6),
                },
                Stage::DenseLogits {
                    name: "fc".into(),
                    mvtu: BinaryMvtu::new(w(4, 36, 2), None, Folding::sequential()),
                },
            ],
        )
    }

    #[test]
    fn unit_count_covers_rows_and_threshold_tables() {
        let p = pipeline();
        let s = Scrubber::new(&p);
        // 4 + 4 weight rows, one thresholded stage.
        assert_eq!(s.unit_count(), 9);
    }

    #[test]
    fn clean_sweep_finds_nothing() {
        let mut p = pipeline();
        let mut s = Scrubber::new(&p);
        let r = s.full_sweep(&mut p);
        assert_eq!(r.units_scanned, 9);
        assert_eq!(r.faults_detected, 0);
        assert_eq!(r.sweeps_completed, 1);
    }

    #[test]
    fn one_sweep_repairs_every_injected_fault() {
        let mut p = pipeline();
        let clean = pipeline();
        let mut s = Scrubber::new(&p);
        let records = inject_random_faults(&mut p, 24, 99);
        assert!(!s.audit(&p).is_empty());
        let r = s.full_sweep(&mut p);
        assert_eq!(r.faults_repaired, r.faults_detected);
        assert!(r.faults_detected > 0);
        assert_eq!(r.bits_flipped, records.len() as u64);
        assert!(s.audit(&p).is_empty());
        // Bit-exact restore, not just CRC-happy: forwards agree everywhere.
        let frame = bcp_finn::QuantMap::from_unit_floats(
            3,
            8,
            8,
            &(0..192)
                .map(|i| (i % 256) as f32 / 255.0)
                .collect::<Vec<_>>(),
        );
        assert_eq!(p.forward(&frame), clean.forward(&frame));
    }

    #[test]
    fn incremental_ticks_cover_the_memory_and_wrap() {
        let mut p = pipeline();
        let mut s = Scrubber::new(&p);
        apply_burst(&mut p, 2, 1, 30, 3).unwrap();
        // 3 units per tick: fault in stage 2 row 1 (unit index 6) is found
        // on the third tick.
        assert_eq!(s.tick(&mut p, 3).faults_detected, 0);
        assert_eq!(s.tick(&mut p, 3).faults_detected, 0);
        let r = s.tick(&mut p, 3);
        assert_eq!(r.faults_detected, 1);
        assert_eq!(r.bits_flipped, 3);
        assert_eq!(r.sweeps_completed, 1);
        // Next sweep is clean.
        assert_eq!(s.full_sweep(&mut p).faults_detected, 0);
    }

    #[test]
    fn threshold_corruption_is_scrubbed_back() {
        let mut p = pipeline();
        let mut s = Scrubber::new(&p);
        p.stage_mut(0).restore_thresholds(ThresholdUnit::new(vec![
            ThresholdChannel::Ge(7),
            ThresholdChannel::Ge(0),
            ThresholdChannel::Ge(0),
            ThresholdChannel::Ge(0),
        ]));
        let r = s.full_sweep(&mut p);
        assert_eq!(r.faults_detected, 1);
        assert_eq!(r.faults_repaired, 1);
        assert_eq!(r.bits_flipped, 0);
        assert!(s.audit(&p).is_empty());
    }

    #[test]
    fn telemetry_counters_track_the_report() {
        let registry = Registry::new();
        let mut p = pipeline();
        let mut s = Scrubber::new(&p).with_telemetry(&registry);
        inject_random_faults(&mut p, 8, 5);
        let r = s.full_sweep(&mut p);
        assert_eq!(
            registry.counter("guard.scrub.faults_detected").get(),
            r.faults_detected
        );
        assert_eq!(
            registry.counter("guard.scrub.faults_repaired").get(),
            r.faults_repaired
        );
        assert_eq!(registry.counter("guard.scrub.rows_scanned").get(), 8);
        assert_eq!(registry.counter("guard.scrub.sweeps").get(), 1);
        assert_eq!(registry.counter("guard.scrub.bits_flipped").get(), 8);
    }
}
