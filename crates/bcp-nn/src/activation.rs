//! Activation layers: the binarizing [`SignSte`] plus float baselines.

use crate::layer::{take_cache, Layer, Mode};
use bcp_tensor::Tensor;

/// Binarizing activation: forward is Eq. 1's `sign()` (ties at 0 → +1);
/// backward is the straight-through estimator with the canonical clipping
/// `d sign(x)/dx ≈ 1{|x| ≤ 1}` [Hubara et al. 2016], without which gradients
/// either vanish (true derivative is 0 a.e.) or explode (unclipped STE).
pub struct SignSte {
    name: String,
    cache_x: Option<Tensor>,
}

impl SignSte {
    /// New sign activation.
    pub fn new(name: impl Into<String>) -> Self {
        SignSte {
            name: name.into(),
            cache_x: None,
        }
    }
}

impl Layer for SignSte {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = x.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = take_cache(&mut self.cache_x, &self.name);
        dy.zip(&x, |g, v| if v.abs() <= 1.0 { g } else { 0.0 })
    }
}

/// Rectified linear unit (FP32 baseline network).
pub struct Relu {
    name: String,
    cache_x: Option<Tensor>,
}

impl Relu {
    /// New ReLU.
    pub fn new(name: impl Into<String>) -> Self {
        Relu {
            name: name.into(),
            cache_x: None,
        }
    }
}

impl Layer for Relu {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = x.map(|v| v.max(0.0));
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = take_cache(&mut self.cache_x, &self.name);
        dy.zip(&x, |g, v| if v > 0.0 { g } else { 0.0 })
    }
}

/// Hard tanh: `clamp(x, −1, 1)`. Used in BinaryNet-style stacks as the
/// float stand-in for sign during ablations.
pub struct HardTanh {
    name: String,
    cache_x: Option<Tensor>,
}

impl HardTanh {
    /// New hard-tanh.
    pub fn new(name: impl Into<String>) -> Self {
        HardTanh {
            name: name.into(),
            cache_x: None,
        }
    }
}

impl Layer for HardTanh {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = x.map(|v| v.clamp(-1.0, 1.0));
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = take_cache(&mut self.cache_x, &self.name);
        dy.zip(&x, |g, v| if (-1.0..=1.0).contains(&v) { g } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::Shape;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v)
    }

    #[test]
    fn sign_forward_matches_eq1() {
        let mut s = SignSte::new("sign");
        let y = s.forward(&t(vec![-2.0, -0.1, 0.0, 0.1, 2.0]), Mode::Train);
        assert_eq!(y.as_slice(), &[-1.0, -1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn sign_backward_clips_outside_unit_interval() {
        let mut s = SignSte::new("sign");
        let x = t(vec![-2.0, -1.0, 0.0, 1.0, 2.0]);
        let _ = s.forward(&x, Mode::Train);
        let dx = s.backward(&t(vec![1.0; 5]));
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sign_matches_bitpack_convention() {
        // The nn sign and the bit-packing sign must agree on every input,
        // including the ±0 ties — otherwise training-time inference and
        // deployed inference diverge.
        let mut s = SignSte::new("sign");
        let xs = vec![-1.5f32, -0.0, 0.0, 1e-30, -1e-30, 3.0];
        let y = s.forward(&t(xs.clone()), Mode::Train);
        for (x, y) in xs.iter().zip(y.as_slice()) {
            assert_eq!(*y, bcp_bitpack::pack::sign_f32(*x));
        }
    }

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new("relu");
        let x = t(vec![-1.0, 0.0, 2.0]);
        let y = r.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let dx = r.backward(&t(vec![5.0, 5.0, 5.0]));
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn hardtanh_saturates() {
        let mut h = HardTanh::new("ht");
        let x = t(vec![-3.0, -0.5, 0.5, 3.0]);
        let y = h.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
        let dx = h.backward(&t(vec![1.0; 4]));
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }
}
