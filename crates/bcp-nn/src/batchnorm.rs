//! Batch normalization (per-channel), the layer FINN folds into threshold
//! units at deployment.
//!
//! Works on rank-2 `N×F` (dense) and rank-4 `N×C×H×W` (conv) activations;
//! the normalized axis is always dimension 1. Training mode uses biased
//! batch statistics and maintains exponential running statistics; eval mode
//! normalizes with the running statistics — exactly the statistics
//! `bcp_bitpack::threshold` consumes when deriving integer thresholds.

use crate::layer::{take_cache, Layer, Mode};
use crate::param::Param;
use bcp_tensor::{Shape, Tensor};

/// Numerical-stability constant shared with the threshold derivation.
pub const BN_EPS: f32 = 1e-5;

/// Per-channel batch normalization with affine parameters.
pub struct BatchNorm {
    name: String,
    channels: usize,
    /// Scale γ.
    gamma: Param,
    /// Shift β.
    beta: Param,
    /// Exponential running mean (eval statistics).
    running_mean: Vec<f32>,
    /// Exponential running (biased) variance.
    running_var: Vec<f32>,
    /// Running-stat update rate.
    momentum: f32,
    cache: Option<BnCache>,
}

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    shape: Shape,
}

/// Decompose an activation shape into (outer, channels, inner): rank-2
/// `N×F` → (N, F, 1); rank-4 `N×C×H×W` → (N, C, H·W).
fn decompose(shape: &Shape) -> (usize, usize, usize) {
    match shape.rank() {
        2 => (shape.dim(0), shape.dim(1), 1),
        4 => (shape.dim(0), shape.dim(1), shape.dim(2) * shape.dim(3)),
        r => panic!("BatchNorm supports rank 2 or 4 activations, got rank {r} ({shape})"),
    }
}

impl BatchNorm {
    /// Identity-initialised batch-norm (γ=1, β=0, running stats 0/1).
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        BatchNorm {
            name: name.into(),
            channels,
            gamma: Param::new("gamma", Tensor::ones(Shape::d1(channels))),
            beta: Param::new("beta", Tensor::zeros(Shape::d1(channels))),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// γ values (threshold export).
    pub fn gamma(&self) -> &[f32] {
        self.gamma.value.as_slice()
    }

    /// β values (threshold export).
    pub fn beta(&self) -> &[f32] {
        self.beta.value.as_slice()
    }

    /// Running mean (threshold export).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running biased variance (threshold export).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// Overwrite the affine parameters and running statistics — used by
    /// tests and by deserialization.
    // audit: cold — parameter restore runs at load time, never per-request (shares its name with the engine's Shared::set_state)
    pub fn set_state(&mut self, gamma: Vec<f32>, beta: Vec<f32>, mean: Vec<f32>, var: Vec<f32>) {
        assert!(
            gamma.len() == self.channels
                && beta.len() == self.channels
                && mean.len() == self.channels
                && var.len() == self.channels,
            "state length must equal channel count {}",
            self.channels
        );
        self.gamma.value = Tensor::from_vec(Shape::d1(self.channels), gamma);
        self.beta.value = Tensor::from_vec(Shape::d1(self.channels), beta);
        self.running_mean = mean;
        self.running_var = var;
    }

    #[allow(clippy::needless_range_loop)] // symmetric per-channel loops read clearer
    fn batch_stats(&self, x: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (n, c, l) = decompose(x.shape());
        assert_eq!(
            c, self.channels,
            "channel mismatch: {} vs {}",
            c, self.channels
        );
        let count = (n * l) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        let src = x.as_slice();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * l;
                mean[ci] += src[base..base + l].iter().sum::<f32>();
            }
        }
        for m in &mut mean {
            *m /= count;
        }
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * l;
                let m = mean[ci];
                var[ci] += src[base..base + l]
                    .iter()
                    .map(|&v| (v - m) * (v - m))
                    .sum::<f32>();
            }
        }
        for v in &mut var {
            *v /= count;
        }
        (mean, var)
    }

    fn normalize(&self, x: &Tensor, mean: &[f32], var: &[f32]) -> (Tensor, Vec<f32>) {
        let (n, c, l) = decompose(x.shape());
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + BN_EPS).sqrt()).collect();
        let mut xhat = vec![0.0f32; x.numel()];
        let src = x.as_slice();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * l;
                let (m, s) = (mean[ci], inv_std[ci]);
                for i in base..base + l {
                    xhat[i] = (src[i] - m) * s;
                }
            }
        }
        (Tensor::from_vec(x.shape().clone(), xhat), inv_std)
    }

    fn affine(&self, xhat: &Tensor) -> Tensor {
        let (n, c, l) = decompose(xhat.shape());
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        let src = xhat.as_slice();
        let mut out = vec![0.0f32; xhat.numel()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * l;
                for i in base..base + l {
                    out[i] = g[ci] * src[i] + b[ci];
                }
            }
        }
        Tensor::from_vec(xhat.shape().clone(), out)
    }
}

impl Layer for BatchNorm {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (mean, var) = match mode {
            Mode::Train => {
                let (mean, var) = self.batch_stats(x);
                for c in 0..self.channels {
                    self.running_mean[c] =
                        (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                    self.running_var[c] =
                        (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
                }
                (mean, var)
            }
            Mode::Eval => (self.running_mean.clone(), self.running_var.clone()),
        };
        let (xhat, inv_std) = self.normalize(x, &mean, &var);
        let y = self.affine(&xhat);
        self.cache = Some(BnCache {
            xhat,
            inv_std,
            shape: x.shape().clone(),
        });
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let BnCache {
            xhat,
            inv_std,
            shape,
        } = take_cache(&mut self.cache, &self.name);
        assert_eq!(*dy.shape(), shape, "backward shape mismatch");
        let (n, c, l) = decompose(&shape);
        let count = (n * l) as f32;
        let dys = dy.as_slice();
        let xh = xhat.as_slice();

        // Per-channel reductions.
        let mut dbeta = vec![0.0f32; c];
        let mut dgamma = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * l;
                for i in base..base + l {
                    dbeta[ci] += dys[i];
                    dgamma[ci] += dys[i] * xh[i];
                }
            }
        }

        // dx = γ·inv_std · (dy − dβ/m − x̂·dγ/m)   (batch-stats gradient).
        let g = self.gamma.value.as_slice();
        let mut dx = vec![0.0f32; dy.numel()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * l;
                let k = g[ci] * inv_std[ci];
                let mb = dbeta[ci] / count;
                let mg = dgamma[ci] / count;
                for i in base..base + l {
                    dx[i] = k * (dys[i] - mb - xh[i] * mg);
                }
            }
        }
        self.gamma
            .accumulate_grad(&Tensor::from_vec(Shape::d1(c), dgamma));
        self.beta
            .accumulate_grad(&Tensor::from_vec(Shape::d1(c), dbeta));
        Tensor::from_vec(shape, dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::init::uniform;
    use bcp_tensor::ops;

    #[test]
    fn train_forward_normalizes_to_zero_mean_unit_var() {
        let mut bn = BatchNorm::new("bn", 3);
        let x = uniform(Shape::nchw(4, 3, 5, 5), -3.0, 7.0, 1);
        let y = bn.forward(&x, Mode::Train);
        let (m, v) = ops::channel_mean_var(&y);
        for c in 0..3 {
            assert!(m[c].abs() < 1e-4, "channel {c} mean {}", m[c]);
            assert!((v[c] - 1.0).abs() < 1e-2, "channel {c} var {}", v[c]);
        }
    }

    #[test]
    fn affine_applied_after_normalization() {
        let mut bn = BatchNorm::new("bn", 1);
        bn.set_state(vec![2.0], vec![3.0], vec![0.0], vec![1.0]);
        let x = Tensor::from_vec(Shape::d2(2, 1), vec![-1.0, 1.0]);
        let y = bn.forward(&x, Mode::Train);
        // Batch stats: mean 0, var 1 → x̂ = x/√(1+ε) ≈ x; y = 2x̂ + 3.
        assert!((y.as_slice()[0] - 1.0).abs() < 1e-3);
        assert!((y.as_slice()[1] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new("bn", 1);
        bn.set_state(vec![1.0], vec![0.0], vec![10.0], vec![4.0]);
        let x = Tensor::from_vec(Shape::d2(1, 1), vec![12.0]);
        let y = bn.forward(&x, Mode::Eval);
        // (12 − 10)/2 = 1.
        assert!((y.as_slice()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm::new("bn", 1);
        let x = Tensor::from_vec(Shape::d2(4, 1), vec![10.0, 10.0, 10.0, 10.0]);
        for _ in 0..100 {
            bn.forward(&x, Mode::Train);
        }
        assert!((bn.running_mean()[0] - 10.0).abs() < 1e-2);
        assert!(bn.running_var()[0] < 1e-2);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut bn = BatchNorm::new("bn", 2);
        bn.set_state(
            vec![1.5, -0.5],
            vec![0.2, 0.1],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        );
        let x = uniform(Shape::nchw(2, 2, 3, 3), -1.0, 1.0, 5);
        // Loss = Σ y².
        let y = bn.forward(&x, Mode::Train);
        let dy = y.map(|v| 2.0 * v);
        let dx = bn.backward(&dy);
        let eps = 1e-2f32;
        let loss = |bn: &mut BatchNorm, xx: &Tensor| -> f32 {
            bn.forward(xx, Mode::Train)
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum()
        };
        for probe in [0usize, 9, x.numel() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut bnp = BatchNorm::new("bn", 2);
            bnp.set_state(
                vec![1.5, -0.5],
                vec![0.2, 0.1],
                vec![0.0, 0.0],
                vec![1.0, 1.0],
            );
            let fp = loss(&mut bnp, &xp);
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let mut bnm = BatchNorm::new("bn", 2);
            bnm.set_state(
                vec![1.5, -0.5],
                vec![0.2, 0.1],
                vec![0.0, 0.0],
                vec![1.0, 1.0],
            );
            let fm = loss(&mut bnm, &xm);
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = dx.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "dx[{probe}] numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gamma_beta_gradients() {
        let mut bn = BatchNorm::new("bn", 1);
        let x = Tensor::from_vec(Shape::d2(2, 1), vec![-1.0, 1.0]);
        let y = bn.forward(&x, Mode::Train);
        let dy = Tensor::ones(y.shape().clone());
        bn.backward(&dy);
        // dβ = Σ dy = 2; dγ = Σ dy·x̂ = x̂₀ + x̂₁ = 0 (antisymmetric batch).
        bn.visit_params(&mut |p| match p.name.as_str() {
            "beta" => assert_eq!(p.grad.as_slice(), &[2.0]),
            "gamma" => assert!(p.grad.as_slice()[0].abs() < 1e-5),
            _ => unreachable!(),
        });
    }

    #[test]
    #[should_panic(expected = "rank 2 or 4")]
    fn rejects_rank3() {
        let mut bn = BatchNorm::new("bn", 2);
        bn.forward(&Tensor::zeros(Shape::d3(1, 2, 3)), Mode::Train);
    }
}
