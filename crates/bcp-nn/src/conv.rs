//! Convolution layers: float [`Conv2d`] and [`BinaryConv2d`] with latent
//! weights + STE.

use crate::layer::{take_cache, Layer, Mode};
use crate::param::Param;
use bcp_tensor::init::kaiming;
use bcp_tensor::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_forward, Conv2dSpec, Tensor,
};

/// Full-precision 2-D convolution (the FP32-CNV baseline of the Grad-CAM
/// comparison). Bias-free: every conv is followed by batch-norm.
pub struct Conv2d {
    name: String,
    spec: Conv2dSpec,
    weight: Param,
    cache: Option<(Tensor, (usize, usize))>, // (x, input h/w)
}

impl Conv2d {
    /// Kaiming-initialised convolution.
    pub fn new(name: impl Into<String>, spec: Conv2dSpec, seed: u64) -> Self {
        let fan_in = spec.c_in * spec.window.k * spec.window.k;
        let w = kaiming(spec.weight_shape(), fan_in, seed);
        Conv2d {
            name: name.into(),
            spec,
            weight: Param::new("weight", w),
            cache: None,
        }
    }

    /// Layer geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Read-only weight access.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for Conv2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = conv2d_forward(x, &self.weight.value, self.spec);
        self.cache = Some((x.clone(), (x.shape().dim(2), x.shape().dim(3))));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, in_hw) = take_cache(&mut self.cache, &self.name);
        let dw = conv2d_backward_weight(&x, dy, self.spec);
        self.weight.accumulate_grad(&dw);
        conv2d_backward_input(&self.weight.value, dy, self.spec, in_hw)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }
}

/// Convolution with binarized weights (Eq. 2: `B = sign(W)`), computed over
/// whatever activations the previous layer produced — binary ±1 maps for all
/// layers after the first sign activation, raw pixels for Conv1.1.
///
/// Backward: the STE treats `d sign(W)/dW` as identity, so the latent weight
/// receives exactly the binary-weight gradient; the optimizer's unit clip
/// keeps latents in [−1, 1].
pub struct BinaryConv2d {
    name: String,
    spec: Conv2dSpec,
    weight: Param,
    cache: Option<(Tensor, Tensor, (usize, usize))>, // (x, sign(W), input h/w)
}

impl BinaryConv2d {
    /// Kaiming-initialised latent weights.
    pub fn new(name: impl Into<String>, spec: Conv2dSpec, seed: u64) -> Self {
        let fan_in = spec.c_in * spec.window.k * spec.window.k;
        let w = kaiming(spec.weight_shape(), fan_in, seed);
        BinaryConv2d {
            name: name.into(),
            spec,
            weight: Param::latent("weight", w),
            cache: None,
        }
    }

    /// Layer geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Latent weights (export/tests).
    pub fn latent_weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Binarized weights by the Eq. 1 convention (ties at 0 → +1).
    pub fn binary_weight(&self) -> Tensor {
        self.weight.value.map(|w| if w >= 0.0 { 1.0 } else { -1.0 })
    }
}

impl Layer for BinaryConv2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let wb = self.binary_weight();
        let y = conv2d_forward(x, &wb, self.spec);
        self.cache = Some((x.clone(), wb, (x.shape().dim(2), x.shape().dim(3))));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, wb, in_hw) = take_cache(&mut self.cache, &self.name);
        let dw = conv2d_backward_weight(&x, dy, self.spec);
        self.weight.accumulate_grad(&dw);
        conv2d_backward_input(&wb, dy, self.spec, in_hw)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::init::uniform;
    use bcp_tensor::Shape;

    #[test]
    fn conv_shapes_and_param_count() {
        let spec = Conv2dSpec::new(3, 16, 3, 0);
        let mut l = Conv2d::new("conv1_1", spec, 0);
        assert_eq!(l.param_count(), 3 * 16 * 9);
        let x = uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0, 1);
        let y = l.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[2, 16, 6, 6]);
        let dx = l.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn binary_conv_uses_sign_weights() {
        let spec = Conv2dSpec::new(1, 1, 1, 0);
        let mut l = BinaryConv2d::new("bconv", spec, 0);
        l.visit_params(&mut |p| {
            p.value = Tensor::from_vec(Shape(vec![1, 1, 1, 1]), vec![-0.3]);
        });
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let y = l.forward(&x, Mode::Train);
        // Weight binarizes to −1 → output = −x.
        assert_eq!(y.as_slice(), &[-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn binary_conv_ste_latent_gradient() {
        let spec = Conv2dSpec::new(1, 1, 1, 0);
        let mut l = BinaryConv2d::new("bconv", spec, 0);
        l.visit_params(&mut |p| {
            p.value = Tensor::from_vec(Shape(vec![1, 1, 1, 1]), vec![-0.3]);
        });
        let x = Tensor::from_vec(Shape::nchw(1, 1, 1, 2), vec![2.0, 3.0]);
        let y = l.forward(&x, Mode::Train);
        let dx = l.backward(&Tensor::ones(y.shape().clone()));
        // dW = Σ x = 5 regardless of the binarization; dx uses the binary −1.
        l.visit_params(&mut |p| assert_eq!(p.grad.as_slice(), &[5.0]));
        assert_eq!(dx.as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn binary_conv_output_is_integral_on_binary_inputs() {
        // ±1 inputs ⊙ ±1 weights summed over fan-in → integer accumulators
        // with fan-in parity: the arithmetic the XNOR datapath reproduces.
        let spec = Conv2dSpec::new(2, 4, 3, 0);
        let mut l = BinaryConv2d::new("bconv", spec, 3);
        let x =
            uniform(Shape::nchw(1, 2, 5, 5), -1.0, 1.0, 4)
                .map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let y = l.forward(&x, Mode::Train);
        let fan_in = 2 * 9i32;
        for &v in y.as_slice() {
            let i = v as i32;
            assert_eq!(i as f32, v, "accumulator must be an integer, got {v}");
            assert!(i.abs() <= fan_in);
            assert_eq!((i - fan_in).rem_euclid(2), 0, "parity must match fan-in");
        }
    }
}
