//! Flattening between the convolutional trunk and the dense head.

use crate::layer::{take_cache, Layer, Mode};
use bcp_tensor::{Shape, Tensor};

/// Reshape `N×C×H×W` → `N×(C·H·W)` (and route gradients back).
pub struct Flatten {
    name: String,
    cache_shape: Option<Shape>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten {
            name: name.into(),
            cache_shape: None,
        }
    }
}

impl Layer for Flatten {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(
            x.shape().rank(),
            4,
            "Flatten expects NCHW, got {}",
            x.shape()
        );
        let n = x.shape().dim(0);
        let f = x.numel() / n;
        self.cache_shape = Some(x.shape().clone());
        x.reshaped(Shape::d2(n, f))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let shape = take_cache(&mut self.cache_shape, &self.name);
        dy.reshaped(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut fl = Flatten::new("flatten");
        let x = Tensor::from_vec(Shape::nchw(2, 2, 1, 2), (0..8).map(|i| i as f32).collect());
        let y = fl.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[2, 4]);
        let dx = fl.backward(&y);
        assert_eq!(dx, x);
    }
}
