//! Numeric gradient checking.
//!
//! Central finite differences against the analytic backward pass — the
//! standard correctness oracle for hand-written autodiff. Used by the
//! per-layer unit tests and by whole-network checks; exposed publicly so
//! downstream crates (and users adding custom layers) can verify their
//! backward implementations the same way.

use crate::layer::{Layer, Mode};
use crate::sequential::Sequential;
use bcp_tensor::Tensor;

/// Result of one gradient comparison.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckReport {
    /// Largest absolute deviation found.
    pub max_abs_err: f32,
    /// Largest deviation relative to `1 + |analytic|`.
    pub max_rel_err: f32,
    /// Number of coordinates probed.
    pub probes: usize,
}

impl GradCheckReport {
    /// Whether every probe stayed within `tol` relative error.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Probe indices: ends, middle, and a deterministic scatter.
fn probe_indices(n: usize, probes: usize) -> Vec<usize> {
    assert!(n > 0, "cannot probe an empty tensor");
    let mut idx: Vec<usize> = (0..probes)
        .map(|k| (k * 2654435761usize.wrapping_add(k)) % n)
        .collect();
    idx.push(0);
    idx.push(n - 1);
    idx.push(n / 2);
    idx.sort_unstable();
    idx.dedup();
    idx
}

/// Check a single layer's **input** gradient for the scalar loss
/// `L = Σ y²/2` (so `dL/dy = y`, exercising non-uniform output gradients).
///
/// `make_layer` must build a fresh, identically-initialised layer each
/// call (finite differences re-run the forward pass from scratch).
pub fn check_input_gradient<L: Layer>(
    mut make_layer: impl FnMut() -> L,
    x: &Tensor,
    eps: f32,
    probes: usize,
) -> GradCheckReport {
    let loss = |layer: &mut L, input: &Tensor| -> f32 {
        let y = layer.forward(input, Mode::Train);
        y.as_slice().iter().map(|v| v * v / 2.0).sum()
    };
    // Analytic.
    let mut layer = make_layer();
    let y = layer.forward(x, Mode::Train);
    let dx = layer.backward(&y);
    // Numeric.
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let idx = probe_indices(x.numel(), probes);
    for &i in &idx {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let mut lp = make_layer();
        let fp = loss(&mut lp, &xp);
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let mut lm = make_layer();
        let fm = loss(&mut lm, &xm);
        let numeric = (fp - fm) / (2.0 * eps);
        let analytic = dx.as_slice()[i];
        let abs = (numeric - analytic).abs();
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(abs / (1.0 + analytic.abs()));
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        probes: idx.len(),
    }
}

/// Check a whole network's input gradient under `L = Σ y²/2`.
///
/// Only meaningful for networks of **smooth** layers (float convolutions,
/// batch-norm, ReLU away from kinks): sign/STE layers deliberately have a
/// surrogate gradient that finite differences cannot reproduce.
pub fn check_network_input_gradient(
    mut make_net: impl FnMut() -> Sequential,
    x: &Tensor,
    eps: f32,
    probes: usize,
) -> GradCheckReport {
    let loss = |net: &mut Sequential, input: &Tensor| -> f32 {
        let y = net.forward(input, Mode::Train);
        y.as_slice().iter().map(|v| v * v / 2.0).sum()
    };
    let mut net = make_net();
    let y = net.forward(x, Mode::Train);
    let dx = net.backward(&y);
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let idx = probe_indices(x.numel(), probes);
    for &i in &idx {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let fp = loss(&mut make_net(), &xp);
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let fm = loss(&mut make_net(), &xm);
        let numeric = (fp - fm) / (2.0 * eps);
        let analytic = dx.as_slice()[i];
        let abs = (numeric - analytic).abs();
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(abs / (1.0 + analytic.abs()));
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        probes: idx.len(),
    }
}

/// Check every **parameter** gradient of a network under `L = Σ y²/2`,
/// probing `probes` coordinates of each parameter tensor.
pub fn check_parameter_gradients(
    mut make_net: impl FnMut() -> Sequential,
    x: &Tensor,
    eps: f32,
    probes: usize,
) -> GradCheckReport {
    // Analytic gradients.
    let mut net = make_net();
    let y = net.forward(x, Mode::Train);
    net.backward(&y);
    let mut analytic: Vec<(String, Vec<f32>)> = Vec::new();
    net.visit_named_params(&mut |layer, p| {
        analytic.push((format!("{layer}.{}", p.name), p.grad.as_slice().to_vec()));
    });

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut total_probes = 0usize;
    for (pi, (_, grads)) in analytic.iter().enumerate() {
        for &ci in &probe_indices(grads.len(), probes) {
            let eval = |delta: f32, make: &mut dyn FnMut() -> Sequential| -> f32 {
                let mut net = make();
                let mut counter = 0usize;
                net.visit_params(&mut |p| {
                    if counter == pi {
                        p.value.as_mut_slice()[ci] += delta;
                    }
                    counter += 1;
                });
                let y = net.forward(x, Mode::Train);
                y.as_slice().iter().map(|v| v * v / 2.0).sum()
            };
            let fp = eval(eps, &mut make_net);
            let fm = eval(-eps, &mut make_net);
            let numeric = (fp - fm) / (2.0 * eps);
            let a = grads[ci];
            let abs = (numeric - a).abs();
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(abs / (1.0 + a.abs()));
            total_probes += 1;
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        probes: total_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::batchnorm::BatchNorm;
    use crate::conv::Conv2d;
    use crate::flatten::Flatten;
    use crate::linear::Linear;
    use crate::pool::MaxPool2d;
    use bcp_tensor::init::uniform;
    use bcp_tensor::{Conv2dSpec, Shape};

    #[test]
    fn single_float_layer_passes() {
        let x = uniform(Shape::d2(3, 5), -1.0, 1.0, 1);
        let report = check_input_gradient(|| Linear::new("fc", 5, 4, true, 2), &x, 1e-2, 6);
        assert!(report.passes(2e-2), "{report:?}");
        assert!(report.probes >= 3);
    }

    #[test]
    fn whole_float_stack_passes() {
        // conv → bn → relu → pool → flatten → fc: the complete smooth path.
        let make = || {
            Sequential::new("gc")
                .push(Conv2d::new("conv", Conv2dSpec::new(2, 4, 3, 1), 3))
                .push(BatchNorm::new("bn", 4))
                .push(Relu::new("relu"))
                .push(MaxPool2d::two_by_two("pool"))
                .push(Flatten::new("flat"))
                .push(Linear::new("fc", 4 * 3 * 3, 3, true, 4))
        };
        // Seed picked so no probe straddles a ReLU/max-pool kink (where
        // central differences and the one-sided analytic gradient rightly
        // disagree); re-baseline it if the init RNG stream ever changes.
        let x = uniform(Shape::nchw(2, 2, 6, 6), -1.0, 1.0, 7);
        let report = check_network_input_gradient(make, &x, 1e-2, 8);
        assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn parameter_gradients_pass() {
        let make = || {
            Sequential::new("gc2")
                .push(Flatten::new("flat"))
                .push(Linear::new("fc1", 8, 6, true, 7))
                .push(Relu::new("relu"))
                .push(Linear::new("fc2", 6, 2, true, 8))
        };
        let x = uniform(Shape::nchw(3, 2, 2, 2), -1.0, 1.0, 9);
        let report = check_parameter_gradients(make, &x, 1e-2, 4);
        assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn detects_a_broken_gradient() {
        // A deliberately wrong layer: forward is 2x but backward claims
        // identity. The checker must flag it.
        struct Broken;
        impl Layer for Broken {
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn name(&self) -> &str {
                "broken"
            }
            fn forward(&mut self, x: &Tensor, _m: Mode) -> Tensor {
                x.map(|v| 2.0 * v)
            }
            fn backward(&mut self, dy: &Tensor) -> Tensor {
                dy.clone() // wrong: should be 2·dy
            }
        }
        let x = uniform(Shape::d1(6), -1.0, 1.0, 11);
        let report = check_input_gradient(|| Broken, &x, 1e-2, 4);
        assert!(
            !report.passes(1e-1),
            "checker failed to flag a broken backward: {report:?}"
        );
    }

    #[test]
    fn probe_indices_cover_ends() {
        let idx = probe_indices(10, 3);
        assert!(idx.contains(&0) && idx.contains(&9));
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }
}
