//! The layer object interface.

use crate::param::Param;
use bcp_tensor::Tensor;

/// Forward-pass mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Batch statistics, caching for backward.
    Train,
    /// Running statistics; caches are still populated so Grad-CAM can
    /// backpropagate through an evaluation pass.
    Eval,
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches whatever `backward` needs, and
/// `backward` must be called at most once per forward (it consumes the
/// cache). Parameter gradients accumulate into [`Param::grad`]; callers
/// reset them between optimizer steps via [`Layer::zero_grad`].
pub trait Layer: Send + std::any::Any {
    /// Upcast for concrete-layer access (deployment export, Grad-CAM).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// A short human-readable layer name (used in state dicts and the
    /// pipeline descriptions, so it must be unique within a network).
    fn name(&self) -> &str;

    /// Compute the layer output, caching for a subsequent backward pass.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Propagate the output gradient to the input gradient, accumulating
    /// parameter gradients along the way. Panics when no forward pass is
    /// cached.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Visit all trainable parameters (default: none).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Reset all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total trainable scalar count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }
}

/// Take a cached tensor out of an `Option`, with a consistent panic message
/// when `backward` runs without a preceding `forward`.
pub(crate) fn take_cache<T>(cache: &mut Option<T>, layer: &str) -> T {
    cache
        .take()
        .unwrap_or_else(|| panic!("backward() on '{layer}' without a cached forward pass"))
}
