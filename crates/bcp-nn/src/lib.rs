//! From-scratch BNN training framework for BinaryCoP.
//!
//! Implements the training method of Sec. III-A: full-precision *latent*
//! weights are kept throughout training; forward passes binarize weights
//! (and activations, via the sign layer) with the Eq. 1 convention; the
//! backward pass uses the straight-through estimator (STE) with the usual
//! |x| ≤ 1 clipping so gradients keep flowing.
//!
//! Structure:
//!
//! - [`param::Param`]: a trainable tensor + its gradient + optimizer slots.
//! - [`layer::Layer`]: forward/backward/visit-params object interface; the
//!   network is a [`sequential::Sequential`] of boxed layers.
//! - Layers: [`conv::Conv2d`] / [`conv::BinaryConv2d`],
//!   [`linear::Linear`] / [`linear::BinaryLinear`],
//!   [`batchnorm::BatchNorm`], [`activation::SignSte`] /
//!   [`activation::Relu`] / [`activation::HardTanh`],
//!   [`pool::MaxPool2d`], [`flatten::Flatten`].
//! - [`loss`]: softmax cross-entropy and squared hinge.
//! - [`optim`]: SGD with momentum and Adam, both with optional latent-weight
//!   clipping to [−1, 1] (BinaryConnect practice).
//! - [`train`]: minibatch loop with seeded shuffling and epoch metrics.
//! - [`metrics`]: accuracy and the confusion matrix of Fig. 2.
//! - [`serialize`]: JSON state-dict save/load.

#![forbid(unsafe_code)]

pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod flatten;
pub mod gradcheck;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod param;
pub mod pool;
pub mod scaled;
pub mod sequential;
pub mod serialize;
pub mod train;

pub use layer::{Layer, Mode};
pub use param::Param;
pub use sequential::Sequential;
