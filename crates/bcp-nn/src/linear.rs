//! Fully-connected layers: float [`Linear`] and [`BinaryLinear`] with latent
//! weights.

use crate::layer::{take_cache, Layer, Mode};
use crate::param::Param;
use bcp_tensor::init::kaiming;
use bcp_tensor::matmul::{matmul, matmul_ta, matmul_tb};
use bcp_tensor::{Shape, Tensor};

/// `y = x·Wᵀ (+ b)` with `x: N×F_in`, `W: F_out×F_in`.
pub struct Linear {
    name: String,
    weight: Param,
    bias: Option<Param>,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Kaiming-initialised dense layer.
    pub fn new(name: impl Into<String>, f_in: usize, f_out: usize, bias: bool, seed: u64) -> Self {
        let w = kaiming(Shape::d2(f_out, f_in), f_in, seed);
        Linear {
            name: name.into(),
            weight: Param::new("weight", w),
            bias: bias.then(|| Param::new("bias", Tensor::zeros(Shape::d1(f_out)))),
            cache_x: None,
        }
    }

    /// Output feature count.
    pub fn f_out(&self) -> usize {
        self.weight.shape().dim(0)
    }

    /// Input feature count.
    pub fn f_in(&self) -> usize {
        self.weight.shape().dim(1)
    }

    /// Read-only weight access (deployment export).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

/// Shared forward/backward math for both dense layers. `w_eff` is the weight
/// actually multiplied (latent for [`Linear`], binarized for
/// [`BinaryLinear`]).
fn dense_forward(x: &Tensor, w_eff: &Tensor, bias: Option<&Param>) -> Tensor {
    assert_eq!(
        x.shape().rank(),
        2,
        "dense input must be N×F, got {}",
        x.shape()
    );
    let mut y = matmul_tb(x, w_eff); // (N×Fi)·(Fo×Fi)ᵀ = N×Fo
    if let Some(b) = bias {
        let f_out = b.value.numel();
        let n = y.shape().dim(0);
        let ys = y.as_mut_slice();
        for r in 0..n {
            for (c, &bv) in b.value.as_slice().iter().enumerate() {
                ys[r * f_out + c] += bv;
            }
        }
    }
    y
}

/// Returns (dW, dx) and accumulates db into `bias` when present.
fn dense_backward(
    x: &Tensor,
    w_eff: &Tensor,
    dy: &Tensor,
    bias: Option<&mut Param>,
) -> (Tensor, Tensor) {
    let dw = matmul_ta(dy, x); // (N×Fo)ᵀ·(N×Fi) = Fo×Fi
    let dx = matmul(dy, w_eff); // (N×Fo)·(Fo×Fi) = N×Fi
    if let Some(b) = bias {
        let f_out = b.value.numel();
        let n = dy.shape().dim(0);
        let mut db = Tensor::zeros(Shape::d1(f_out));
        for r in 0..n {
            for c in 0..f_out {
                db.as_mut_slice()[c] += dy.as_slice()[r * f_out + c];
            }
        }
        b.accumulate_grad(&db);
    }
    (dw, dx)
}

impl Layer for Linear {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = dense_forward(x, &self.weight.value, self.bias.as_ref());
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = take_cache(&mut self.cache_x, &self.name);
        let (dw, dx) = dense_backward(&x, &self.weight.value, dy, self.bias.as_mut());
        self.weight.accumulate_grad(&dw);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

/// Dense layer with binarized weights: forward multiplies `sign(W)`, the
/// backward pass applies the straight-through estimator so the latent `W`
/// receives the binary weight's gradient unchanged (paper Sec. III-A).
///
/// No bias — in the BinaryCoP stack every dense layer is followed by
/// batch-norm (whose β subsumes a bias) except the final logits layer, which
/// FINN also implements bias-free.
pub struct BinaryLinear {
    name: String,
    weight: Param,
    cache: Option<(Tensor, Tensor)>, // (x, sign(W))
}

impl BinaryLinear {
    /// Kaiming-initialised latent weights, unit-clipped by the optimizer.
    pub fn new(name: impl Into<String>, f_in: usize, f_out: usize, seed: u64) -> Self {
        let w = kaiming(Shape::d2(f_out, f_in), f_in, seed);
        BinaryLinear {
            name: name.into(),
            weight: Param::latent("weight", w),
            cache: None,
        }
    }

    /// Latent weights (export/tests).
    pub fn latent_weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Binarized weights by the Eq. 1 sign convention.
    pub fn binary_weight(&self) -> Tensor {
        self.weight.value.map(|w| if w >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Output feature count.
    pub fn f_out(&self) -> usize {
        self.weight.shape().dim(0)
    }

    /// Input feature count.
    pub fn f_in(&self) -> usize {
        self.weight.shape().dim(1)
    }
}

impl Layer for BinaryLinear {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let wb = self.binary_weight();
        let y = dense_forward(x, &wb, None);
        self.cache = Some((x.clone(), wb));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, wb) = take_cache(&mut self.cache, &self.name);
        // STE: d(sign(W))/dW ≈ 1, so the latent gradient is the binary one.
        let (dw, dx) = dense_backward(&x, &wb, dy, None);
        self.weight.accumulate_grad(&dw);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::init::uniform;

    #[test]
    fn linear_forward_known() {
        let mut l = Linear::new("fc", 2, 2, true, 0);
        l.weight.value = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        if let Some(b) = &mut l.bias {
            b.value = Tensor::from_vec(Shape::d1(2), vec![10.0, 20.0]);
        }
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![1.0, 1.0]);
        let y = l.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn linear_gradients_match_finite_difference() {
        let mut l = Linear::new("fc", 3, 2, true, 1);
        let x = uniform(Shape::d2(4, 3), -1.0, 1.0, 2);
        let y = l.forward(&x, Mode::Train);
        let dy = Tensor::ones(y.shape().clone());
        let dx = l.backward(&dy);
        let eps = 1e-3f32;

        // Weight grad check at a probe index.
        let probe = 4usize;
        let analytic = l.weight.grad.as_slice()[probe];
        let mut lp = Linear::new("fc", 3, 2, true, 1);
        lp.weight.value.as_mut_slice()[probe] += eps;
        let fp: f32 = lp.forward(&x, Mode::Train).as_slice().iter().sum();
        let mut lm = Linear::new("fc", 3, 2, true, 1);
        lm.weight.value.as_mut_slice()[probe] -= eps;
        let fm: f32 = lm.forward(&x, Mode::Train).as_slice().iter().sum();
        let numeric = (fp - fm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "dW {numeric} vs {analytic}"
        );

        // Input grad check.
        let probe = 7usize;
        let mut xp = x.clone();
        xp.as_mut_slice()[probe] += eps;
        let mut l2 = Linear::new("fc", 3, 2, true, 1);
        let fp: f32 = l2.forward(&xp, Mode::Train).as_slice().iter().sum();
        let mut xm = x.clone();
        xm.as_mut_slice()[probe] -= eps;
        let mut l3 = Linear::new("fc", 3, 2, true, 1);
        let fm: f32 = l3.forward(&xm, Mode::Train).as_slice().iter().sum();
        let numeric = (fp - fm) / (2.0 * eps);
        assert!((numeric - dx.as_slice()[probe]).abs() < 1e-2);

        // Bias grad: dL/db_c = N for sum loss.
        l.visit_params(&mut |p| {
            if p.name == "bias" {
                assert_eq!(p.grad.as_slice(), &[4.0, 4.0]);
            }
        });
    }

    #[test]
    fn binary_linear_multiplies_signs_only() {
        let mut l = BinaryLinear::new("bfc", 2, 1, 0);
        l.weight.value = Tensor::from_vec(Shape::d2(1, 2), vec![0.3, -0.7]);
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![2.0, 5.0]);
        let y = l.forward(&x, Mode::Train);
        // sign weights = [+1, −1] → y = 2 − 5.
        assert_eq!(y.as_slice(), &[-3.0]);
    }

    #[test]
    fn binary_linear_ste_passes_gradient_to_latent() {
        let mut l = BinaryLinear::new("bfc", 2, 1, 0);
        l.weight.value = Tensor::from_vec(Shape::d2(1, 2), vec![0.3, -0.7]);
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![2.0, 5.0]);
        let _ = l.forward(&x, Mode::Train);
        let dy = Tensor::from_vec(Shape::d2(1, 1), vec![1.0]);
        let dx = l.backward(&dy);
        // dW = dy·x (as if weights were the binary ones) → latent grads.
        assert_eq!(l.weight.grad.as_slice(), &[2.0, 5.0]);
        // dx = dy·W_b = [+1, −1].
        assert_eq!(dx.as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn binary_linear_is_latent_clipped_param() {
        let mut l = BinaryLinear::new("bfc", 4, 4, 0);
        let mut saw = 0;
        l.visit_params(&mut |p| {
            assert!(p.clip_unit);
            saw += 1;
        });
        assert_eq!(saw, 1);
        assert_eq!(l.param_count(), 16);
    }

    #[test]
    #[should_panic(expected = "without a cached forward")]
    fn backward_without_forward_panics() {
        let mut l = Linear::new("fc", 2, 2, false, 0);
        l.backward(&Tensor::zeros(Shape::d2(1, 2)));
    }
}
