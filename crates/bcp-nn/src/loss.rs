//! Classification losses.

use bcp_tensor::ops::softmax_rows;
use bcp_tensor::{Shape, Tensor};

/// Result of a loss evaluation: the scalar (batch-mean) loss and the
/// gradient with respect to the logits.
pub struct LossOutput {
    /// Batch-mean loss value.
    pub loss: f32,
    /// `dL/dlogits`, shape `N×C`.
    pub grad: Tensor,
}

fn check_inputs(logits: &Tensor, labels: &[usize]) -> (usize, usize) {
    assert_eq!(
        logits.shape().rank(),
        2,
        "logits must be N×C, got {}",
        logits.shape()
    );
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "label count {} vs batch {n}", labels.len());
    for &l in labels {
        assert!(l < c, "label {l} out of range for {c} classes");
    }
    (n, c)
}

/// Softmax cross-entropy with integer class labels (batch-mean reduction).
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    let (n, c) = check_inputs(logits, labels);
    let probs = softmax_rows(logits);
    let p = probs.as_slice();
    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; n * c];
    for (r, &label) in labels.iter().enumerate() {
        let py = p[r * c + label].max(1e-12);
        loss -= py.ln();
        for j in 0..c {
            grad[r * c + j] = (p[r * c + j] - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    LossOutput {
        loss: loss / n as f32,
        grad: Tensor::from_vec(Shape::d2(n, c), grad),
    }
}

/// Multi-class squared hinge loss (the loss BinaryNet trained with):
/// `L = mean_n Σ_{j≠y} max(0, 1 − (z_y − z_j))²`.
pub fn squared_hinge(logits: &Tensor, labels: &[usize]) -> LossOutput {
    let (n, c) = check_inputs(logits, labels);
    let z = logits.as_slice();
    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; n * c];
    for (r, &y) in labels.iter().enumerate() {
        let zy = z[r * c + y];
        for j in 0..c {
            if j == y {
                continue;
            }
            let margin = 1.0 - (zy - z[r * c + j]);
            if margin > 0.0 {
                loss += margin * margin;
                let g = 2.0 * margin / n as f32;
                grad[r * c + j] += g;
                grad[r * c + y] -= g;
            }
        }
    }
    LossOutput {
        loss: loss / n as f32,
        grad: Tensor::from_vec(Shape::d2(n, c), grad),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::init::uniform;

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let logits = Tensor::from_vec(Shape::d2(1, 3), vec![10.0, -10.0, -10.0]);
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-6);
        // Gradient pushes nothing when already perfect.
        for &g in out.grad.as_slice() {
            assert!(g.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(Shape::d2(1, 4));
        let out = cross_entropy(&logits, &[2]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient: p − onehot = 1/4 everywhere except label: 1/4 − 1.
        assert!((out.grad.as_slice()[2] + 0.75).abs() < 1e-5);
        assert!((out.grad.as_slice()[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = uniform(Shape::d2(3, 4), -2.0, 2.0, 9);
        let labels = vec![1usize, 3, 0];
        let out = cross_entropy(&logits, &labels);
        let eps = 1e-2f32;
        for probe in [0usize, 5, 11] {
            let mut lp = logits.clone();
            lp.as_mut_slice()[probe] += eps;
            let fp = cross_entropy(&lp, &labels).loss;
            let mut lm = logits.clone();
            lm.as_mut_slice()[probe] -= eps;
            let fm = cross_entropy(&lm, &labels).loss;
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = out.grad.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "probe {probe}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn hinge_zero_when_margins_satisfied() {
        let logits = Tensor::from_vec(Shape::d2(1, 3), vec![5.0, 0.0, 0.0]);
        let out = squared_hinge(&logits, &[0]);
        assert_eq!(out.loss, 0.0);
        assert!(out.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn hinge_grad_matches_finite_difference() {
        let logits = uniform(Shape::d2(2, 4), -1.0, 1.0, 3);
        let labels = vec![0usize, 2];
        let out = squared_hinge(&logits, &labels);
        let eps = 1e-3f32;
        for probe in 0..8 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[probe] += eps;
            let fp = squared_hinge(&lp, &labels).loss;
            let mut lm = logits.clone();
            lm.as_mut_slice()[probe] -= eps;
            let fm = squared_hinge(&lm, &labels).loss;
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = out.grad.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + analytic.abs()),
                "probe {probe}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "label 4 out of range")]
    fn rejects_bad_labels() {
        cross_entropy(&Tensor::zeros(Shape::d2(1, 3)), &[4]);
    }
}
