//! Classification metrics: accuracy and the confusion matrix of Fig. 2.

use bcp_tensor::ops::argmax;
use bcp_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Predicted class per row of an `N×C` logits tensor.
pub fn predictions(logits: &Tensor) -> Vec<usize> {
    assert_eq!(logits.shape().rank(), 2, "logits must be N×C");
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    (0..n)
        .map(|r| argmax(&logits.as_slice()[r * c..(r + 1) * c]))
        .collect()
}

/// Fraction of correct predictions.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = predictions(logits);
    assert_eq!(preds.len(), labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

/// A square confusion matrix: `counts[true][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Empty matrix over `classes` classes.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Record one (true, predicted) observation.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.classes && predicted < self.classes,
            "class out of range"
        );
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Record a batch of predictions.
    pub fn record_batch(&mut self, truths: &[usize], predicted: &[usize]) {
        assert_eq!(truths.len(), predicted.len(), "batch length mismatch");
        for (&t, &p) in truths.iter().zip(predicted) {
            self.record(t, p);
        }
    }

    /// Count at `(truth, predicted)`.
    pub fn get(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total); 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.get(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (diagonal / row sum); `None` for empty rows.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|j| self.get(class, j)).sum();
        (row > 0).then(|| self.get(class, class) as f64 / row as f64)
    }

    /// Per-class precision (diagonal / column sum); `None` for empty cols.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: u64 = (0..self.classes).map(|i| self.get(i, class)).sum();
        (col > 0).then(|| self.get(class, class) as f64 / col as f64)
    }

    /// Render in the layout of the paper's Fig. 2: counts with row-relative
    /// percentages, true class down the side, predicted class along the
    /// bottom.
    #[allow(clippy::needless_range_loop)] // row/col indices mirror the matrix layout
    pub fn render(&self, class_names: &[&str]) -> String {
        assert_eq!(class_names.len(), self.classes, "need one name per class");
        let mut s = String::new();
        let colw = 14usize;
        for i in 0..self.classes {
            let row_total: u64 = (0..self.classes).map(|j| self.get(i, j)).sum();
            s.push_str(&format!("{:>8} |", class_names[i]));
            for j in 0..self.classes {
                let n = self.get(i, j);
                let pct = if row_total == 0 {
                    0.0
                } else {
                    100.0 * n as f64 / row_total as f64
                };
                s.push_str(&format!(
                    "{:>width$}",
                    format!("{n} ({pct:.0}%)"),
                    width = colw
                ));
            }
            s.push('\n');
        }
        s.push_str(&format!("{:>8} |", ""));
        for name in class_names {
            s.push_str(&format!("{:>width$}", name, width = colw));
        }
        s.push_str("\n          (rows: true class, columns: predicted class)\n");
        s
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.classes).map(|i| format!("C{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        write!(f, "{}", self.render(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::Shape;

    #[test]
    fn predictions_argmax_rows() {
        let logits = Tensor::from_vec(Shape::d2(2, 3), vec![0.1, 0.9, 0.0, 2.0, -1.0, 1.0]);
        assert_eq!(predictions(&logits), vec![1, 0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }

    #[test]
    fn confusion_matrix_basics() {
        let mut cm = ConfusionMatrix::new(4);
        cm.record_batch(&[0, 0, 1, 2, 3, 3], &[0, 1, 1, 2, 3, 0]);
        assert_eq!(cm.total(), 6);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(3, 0), 1);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
        assert_eq!(cm.precision(0), Some(0.5));
    }

    #[test]
    fn empty_rows_give_none() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.recall(0), None);
        assert_eq!(cm.precision(1), None);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn render_contains_counts_and_percentages() {
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..98 {
            cm.record(0, 0);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        let s = cm.render(&["Correct", "Nose"]);
        assert!(s.contains("98 (98%)"));
        assert!(s.contains("2 (2%)"));
        assert!(s.contains("Correct"));
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn record_checks_range() {
        ConfusionMatrix::new(2).record(0, 2);
    }
}
