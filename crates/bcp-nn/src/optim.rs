//! Optimizers: SGD with momentum and Adam, with BinaryConnect latent-weight
//! clipping.
//!
//! Parameters flagged `clip_unit` (the latent weights of binary layers) are
//! clamped to [−1, 1] after each update; a latent weight that drifts outside
//! the unit interval binarizes identically while never changing sign again,
//! so clipping keeps every weight responsive to future gradients.

use crate::param::Param;
use crate::sequential::Sequential;

/// A parameter-update rule.
pub trait Optimizer {
    /// Apply one update step to a single parameter.
    fn update(&mut self, p: &mut Param);

    /// Apply one update step to every parameter of a network, then advance
    /// internal schedules.
    fn step(&mut self, net: &mut Sequential)
    where
        Self: Sized,
    {
        net.visit_params(&mut |p| self.update(p));
        self.advance();
    }

    /// Advance step counters / schedules after a whole-network step.
    fn advance(&mut self) {}

    /// Current learning rate (for logging).
    fn lr(&self) -> f32;

    /// Override the learning rate (schedules).
    fn set_lr(&mut self, lr: f32);
}

fn clip_if_latent(p: &mut Param) {
    if p.clip_unit {
        p.value.map_inplace(|v| v.clamp(-1.0, 1.0));
    }
}

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
        }
    }

    /// Add L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, p: &mut Param) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        if mu == 0.0 {
            let wdk = wd;
            let grads: Vec<f32> = p.grad.as_slice().to_vec();
            for (v, g) in p.value.as_mut_slice().iter_mut().zip(grads) {
                *v -= lr * (g + wdk * *v);
            }
        } else {
            let (vel, value, grad) = p.slot_value_grad(0);
            let vs = value.as_slice();
            let gs = grad.as_slice();
            let new_vel: Vec<f32> = vel
                .as_slice()
                .iter()
                .zip(gs.iter().zip(vs))
                .map(|(&m, (&g, &v))| mu * m + g + wd * v)
                .collect();
            vel.as_mut_slice().copy_from_slice(&new_vel);
            let step: Vec<f32> = new_vel.iter().map(|&m| lr * m).collect();
            for (v, s) in p.value.as_mut_slice().iter_mut().zip(step) {
                *v -= s;
            }
        }
        clip_if_latent(p);
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam [Kingma & Ba 2015] — the optimizer Courbariaux/Hubara used for
/// BinaryNet-style training; bias-corrected first/second moments.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Step counter (1-based once stepping starts).
    t: u64,
}

impl Adam {
    /// Adam with the canonical (0.9, 0.999, 1e-8) constants.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn update(&mut self, p: &mut Param) {
        // `update` may be called directly (per-param); treat each call as
        // belonging to step t+1 until `advance` confirms it.
        let t = (self.t + 1) as f32;
        let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        {
            let (m, _, grad) = p.slot_value_grad(0);
            let gs: Vec<f32> = grad.as_slice().to_vec();
            for (mi, g) in m.as_mut_slice().iter_mut().zip(&gs) {
                *mi = b1 * *mi + (1.0 - b1) * g;
            }
        }
        {
            let (v, _, grad) = p.slot_value_grad(1);
            let gs: Vec<f32> = grad.as_slice().to_vec();
            for (vi, g) in v.as_mut_slice().iter_mut().zip(&gs) {
                *vi = b2 * *vi + (1.0 - b2) * g * g;
            }
        }
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        let m = p.opt_state[0].as_slice().to_vec();
        let v = p.opt_state[1].as_slice().to_vec();
        for ((w, &mi), &vi) in p.value.as_mut_slice().iter_mut().zip(&m).zip(&v) {
            let mhat = mi / bias1;
            let vhat = vi / bias2;
            *w -= lr * mhat / (vhat.sqrt() + eps);
        }
        clip_if_latent(p);
    }

    fn advance(&mut self) {
        self.t += 1;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Step-decay learning-rate schedule: multiply the LR by `factor` every
/// `every` epochs.
#[derive(Clone, Copy, Debug)]
pub struct StepDecay {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Decay multiplier.
    pub factor: f32,
    /// Epoch interval.
    pub every: usize,
}

impl StepDecay {
    /// LR at a given (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.factor.powi((epoch / self.every.max(1)) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::{Shape, Tensor};

    fn param_with_grad(v: f32, g: f32) -> Param {
        let mut p = Param::new("w", Tensor::from_vec(Shape::d1(1), vec![v]));
        p.grad = Tensor::from_vec(Shape::d1(1), vec![g]);
        p
    }

    #[test]
    fn sgd_plain_step() {
        let mut opt = Sgd::new(0.1);
        let mut p = param_with_grad(1.0, 2.0);
        opt.update(&mut p);
        assert!((p.value.as_slice()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut p = param_with_grad(0.0, 1.0);
        opt.update(&mut p); // vel = 1 → w = −0.1
        p.grad = Tensor::from_vec(Shape::d1(1), vec![1.0]);
        opt.update(&mut p); // vel = 1.9 → w = −0.29
        assert!((p.value.as_slice()[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut opt = Sgd::new(0.1).weight_decay(1.0);
        let mut p = param_with_grad(1.0, 0.0);
        opt.update(&mut p);
        assert!((p.value.as_slice()[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn latent_params_are_clipped() {
        let mut opt = Sgd::new(10.0);
        let mut p = param_with_grad(0.5, -1.0); // step pushes to 10.5
        p.clip_unit = true;
        opt.update(&mut p);
        assert_eq!(p.value.as_slice()[0], 1.0);
    }

    #[test]
    fn non_latent_params_not_clipped() {
        let mut opt = Sgd::new(10.0);
        let mut p = param_with_grad(0.5, -1.0);
        opt.update(&mut p);
        assert!((p.value.as_slice()[0] - 10.5).abs() < 1e-5);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step ≈ lr·sign(g).
        let mut opt = Adam::new(0.01);
        let mut p = param_with_grad(0.0, 3.0);
        opt.update(&mut p);
        opt.advance();
        assert!((p.value.as_slice()[0] + 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise (w − 3)² with analytic gradient.
        let mut opt = Adam::new(0.1);
        let mut p = param_with_grad(0.0, 0.0);
        for _ in 0..500 {
            let w = p.value.as_slice()[0];
            p.grad = Tensor::from_vec(Shape::d1(1), vec![2.0 * (w - 3.0)]);
            opt.update(&mut p);
            opt.advance();
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay {
            base_lr: 1.0,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }
}
