//! Trainable parameters.

use bcp_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// A trainable tensor with its accumulated gradient and optimizer state.
///
/// For binary layers `value` holds the *latent* full-precision weights
/// (paper Sec. III-A); the forward pass binarizes a copy, never the latent
/// storage. `clip_unit` marks parameters whose latent values the optimizer
/// should clamp to [−1, 1] after each step — without the clamp, latent
/// weights drift far from the binarization boundary and stop responding to
/// gradients (BinaryConnect).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name (unique within its layer), e.g. `"weight"`.
    pub name: String,
    /// Current value (latent weights for binary layers).
    pub value: Tensor,
    /// Accumulated gradient; same shape as `value`.
    pub grad: Tensor,
    /// Optimizer scratch slots (momentum, Adam moments, …), lazily created
    /// by the optimizer on first use.
    pub opt_state: Vec<Tensor>,
    /// Clamp latent values to [−1, 1] after optimizer steps.
    pub clip_unit: bool,
}

impl Param {
    /// New parameter with a zero gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
            opt_state: Vec::new(),
            clip_unit: false,
        }
    }

    /// New latent binary-layer parameter (unit clipping enabled).
    pub fn latent(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Self::new(name, value);
        p.clip_unit = true;
        p
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Accumulate a gradient contribution. Panics on shape mismatch.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        assert_eq!(
            g.shape(),
            self.value.shape(),
            "gradient shape {} does not match parameter '{}' shape {}",
            g.shape(),
            self.name,
            self.value.shape()
        );
        for (a, &b) in self.grad.as_mut_slice().iter_mut().zip(g.as_slice()) {
            *a += b;
        }
    }

    /// Ensure optimizer slot `i` exists (zero-initialised at `value`'s shape)
    /// and return it mutably together with value and grad — split borrows for
    /// the optimizer update loops.
    pub fn slot_value_grad(&mut self, i: usize) -> (&mut Tensor, &Tensor, &Tensor) {
        while self.opt_state.len() <= i {
            self.opt_state
                .push(Tensor::zeros(self.value.shape().clone()));
        }
        // Split borrow: slot from opt_state, value/grad from the rest.
        let slot = &mut self.opt_state[i];
        (slot, &self.value, &self.grad)
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Shape accessor.
    pub fn shape(&self) -> &Shape {
        self.value.shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("weight", Tensor::ones(Shape::d2(2, 2)));
        assert_eq!(p.grad.as_slice(), &[0.0; 4]);
        assert!(!p.clip_unit);
        assert_eq!(p.numel(), 4);
    }

    #[test]
    fn latent_enables_clipping() {
        let p = Param::latent("weight", Tensor::ones(Shape::d1(3)));
        assert!(p.clip_unit);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new("b", Tensor::zeros(Shape::d1(2)));
        let g = Tensor::from_vec(Shape::d1(2), vec![1.0, -2.0]);
        p.accumulate_grad(&g);
        p.accumulate_grad(&g);
        assert_eq!(p.grad.as_slice(), &[2.0, -4.0]);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "does not match parameter")]
    fn accumulate_checks_shape() {
        let mut p = Param::new("b", Tensor::zeros(Shape::d1(2)));
        p.accumulate_grad(&Tensor::zeros(Shape::d1(3)));
    }

    #[test]
    fn slots_created_lazily() {
        let mut p = Param::new("w", Tensor::zeros(Shape::d1(4)));
        assert!(p.opt_state.is_empty());
        {
            let (slot, _, _) = p.slot_value_grad(1);
            slot.as_mut_slice()[0] = 9.0;
        }
        assert_eq!(p.opt_state.len(), 2);
        assert_eq!(p.opt_state[1].as_slice()[0], 9.0);
    }
}
