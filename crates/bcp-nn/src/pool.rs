//! Max-pooling layer (routes gradients through argmax bookkeeping).

use crate::layer::{take_cache, Layer, Mode};
use bcp_tensor::{maxpool2d_backward, maxpool2d_forward, MaxPoolSpec, Shape, Tensor};

/// 2-D max-pooling. BinaryCoP applies it after the sign activation, so the
/// pooled maps are binary and the hardware can pool with a boolean OR
/// (paper Sec. III-B); this float layer is the training-time reference.
pub struct MaxPool2d {
    name: String,
    spec: MaxPoolSpec,
    cache: Option<(Vec<usize>, Shape)>,
}

impl MaxPool2d {
    /// New pooling layer.
    pub fn new(name: impl Into<String>, spec: MaxPoolSpec) -> Self {
        MaxPool2d {
            name: name.into(),
            spec,
            cache: None,
        }
    }

    /// The paper's 2×2/stride-2 pool.
    pub fn two_by_two(name: impl Into<String>) -> Self {
        Self::new(name, MaxPoolSpec::two_by_two())
    }

    /// Pool geometry.
    pub fn spec(&self) -> MaxPoolSpec {
        self.spec
    }
}

impl Layer for MaxPool2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (y, argmax) = maxpool2d_forward(x, self.spec);
        self.cache = Some((argmax, x.shape().clone()));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (argmax, in_shape) = take_cache(&mut self.cache, &self.name);
        maxpool2d_backward(dy, &argmax, &in_shape)
    }
}

/// Global average pooling: `N×C×H×W → N×C`.
///
/// BinaryCoP's networks do **not** use this (Sec. III-C explains that the
/// 32×32 models reduce spatial extent without a GAP head, which is why the
/// paper needs Grad-CAM instead of CAM); it exists to build the CAM-headed
/// comparison models that validate our Grad-CAM implementation — for a
/// GAP→FC head, CAM and Grad-CAM provably coincide.
pub struct GlobalAvgPool {
    name: String,
    cache_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// New GAP layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool {
            name: name.into(),
            cache_shape: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "GAP expects NCHW, got {}", x.shape());
        let (n, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        let plane = (h * w) as f32;
        let src = x.as_slice();
        let mut out = vec![0.0f32; n * c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                out[ni * c + ci] = src[base..base + h * w].iter().sum::<f32>() / plane;
            }
        }
        self.cache_shape = Some(x.shape().clone());
        Tensor::from_vec(Shape::d2(n, c), out)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let shape = take_cache(&mut self.cache_shape, &self.name);
        let (n, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let plane = (h * w) as f32;
        let g = dy.as_slice();
        let mut dx = vec![0.0f32; shape.numel()];
        for ni in 0..n {
            for ci in 0..c {
                let v = g[ni * c + ci] / plane;
                let base = (ni * c + ci) * h * w;
                dx[base..base + h * w].fill(v);
            }
        }
        Tensor::from_vec(shape, dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_averages_planes() {
        let mut gap = GlobalAvgPool::new("gap");
        let x = Tensor::from_vec(
            Shape::nchw(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        );
        let y = gap.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
        // Backward spreads the gradient uniformly, scaled by 1/(H·W).
        let dx = gap.backward(&Tensor::from_vec(Shape::d2(1, 2), vec![4.0, 8.0]));
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gap_gradient_checks_numerically() {
        let x = bcp_tensor::init::uniform(Shape::nchw(2, 3, 4, 4), -1.0, 1.0, 7);
        let report =
            crate::gradcheck::check_input_gradient(|| GlobalAvgPool::new("gap"), &x, 1e-2, 6);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn layer_wraps_kernel() {
        let mut p = MaxPool2d::two_by_two("pool1");
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 4.0, 2.0, 3.0]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[4.0]);
        let dx = p.backward(&Tensor::from_vec(y.shape().clone(), vec![7.0]));
        assert_eq!(dx.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn halves_spatial_dims() {
        let mut p = MaxPool2d::two_by_two("pool");
        let x = Tensor::zeros(Shape::nchw(2, 3, 28, 28));
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 3, 14, 14]);
    }
}
