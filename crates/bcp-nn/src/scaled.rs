//! XNOR-Net-style scaled binary layers (the alternative of Sec. II-B).
//!
//! Rastegari et al. approximate `W ≈ α·sign(W)` with a per-output-channel
//! scaling factor `α = mean(|W|)`, recovering some information capacity at
//! the cost of extra multipliers at deployment time. The paper argues that
//! for the low-scene-complexity mask task the plain BNN form suffices;
//! these layers exist to *test* that choice (see the `ablations` bench and
//! the recipe comparisons) rather than to be deployed — the FINN exporter
//! intentionally rejects them.
//!
//! Gradients: the forward uses `α·sign(W)`; the backward follows XNOR-Net
//! in passing the output gradient through the binarization (STE) while
//! treating α as a function of `W` only through its mean — in practice the
//! dominant `α·dY` term, which is what we implement.

use crate::layer::{take_cache, Layer, Mode};
use crate::param::Param;
use bcp_tensor::init::kaiming;
use bcp_tensor::matmul::{matmul, matmul_ta, matmul_tb};
use bcp_tensor::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_forward, Conv2dSpec, Shape, Tensor,
};

/// Per-output-channel α = mean(|W|) over each weight row/filter.
fn channel_alphas(w: &Tensor, c_out: usize) -> Vec<f32> {
    let per = w.numel() / c_out;
    let src = w.as_slice();
    (0..c_out)
        .map(|o| {
            let row = &src[o * per..(o + 1) * per];
            row.iter().map(|v| v.abs()).sum::<f32>() / per as f32
        })
        .collect()
}

/// Binarize with per-channel scaling: `α_o · sign(w)`.
fn scaled_sign(w: &Tensor, alphas: &[f32]) -> Tensor {
    let c_out = alphas.len();
    let per = w.numel() / c_out;
    let mut out = w.clone();
    for (o, &a) in alphas.iter().enumerate() {
        for v in &mut out.as_mut_slice()[o * per..(o + 1) * per] {
            *v = if *v >= 0.0 { a } else { -a };
        }
    }
    out
}

/// XNOR-Net convolution: `y = conv(x, α·sign(W))`.
pub struct ScaledBinaryConv2d {
    name: String,
    spec: Conv2dSpec,
    weight: Param,
    cache: Option<(Tensor, Tensor, (usize, usize))>,
}

impl ScaledBinaryConv2d {
    /// Kaiming-initialised latent weights.
    pub fn new(name: impl Into<String>, spec: Conv2dSpec, seed: u64) -> Self {
        let fan_in = spec.c_in * spec.window.k * spec.window.k;
        let w = kaiming(spec.weight_shape(), fan_in, seed);
        ScaledBinaryConv2d {
            name: name.into(),
            spec,
            weight: Param::latent("weight", w),
            cache: None,
        }
    }

    /// Current per-channel scaling factors.
    pub fn alphas(&self) -> Vec<f32> {
        channel_alphas(&self.weight.value, self.spec.c_out)
    }

    /// The effective (scaled binary) weights.
    pub fn effective_weight(&self) -> Tensor {
        scaled_sign(&self.weight.value, &self.alphas())
    }
}

impl Layer for ScaledBinaryConv2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let wb = self.effective_weight();
        let y = conv2d_forward(x, &wb, self.spec);
        self.cache = Some((x.clone(), wb, (x.shape().dim(2), x.shape().dim(3))));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, wb, in_hw) = take_cache(&mut self.cache, &self.name);
        let dw = conv2d_backward_weight(&x, dy, self.spec);
        self.weight.accumulate_grad(&dw);
        conv2d_backward_input(&wb, dy, self.spec, in_hw)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }
}

/// XNOR-Net dense layer: `y = x · (α·sign(W))ᵀ`.
pub struct ScaledBinaryLinear {
    name: String,
    f_out: usize,
    weight: Param,
    cache: Option<(Tensor, Tensor)>,
}

impl ScaledBinaryLinear {
    /// Kaiming-initialised latent weights.
    pub fn new(name: impl Into<String>, f_in: usize, f_out: usize, seed: u64) -> Self {
        let w = kaiming(Shape::d2(f_out, f_in), f_in, seed);
        ScaledBinaryLinear {
            name: name.into(),
            f_out,
            weight: Param::latent("weight", w),
            cache: None,
        }
    }

    /// Current per-row scaling factors.
    pub fn alphas(&self) -> Vec<f32> {
        channel_alphas(&self.weight.value, self.f_out)
    }

    /// The effective (scaled binary) weights.
    pub fn effective_weight(&self) -> Tensor {
        scaled_sign(&self.weight.value, &self.alphas())
    }
}

impl Layer for ScaledBinaryLinear {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "dense input must be N×F");
        let wb = self.effective_weight();
        let y = matmul_tb(x, &wb);
        self.cache = Some((x.clone(), wb));
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, wb) = take_cache(&mut self.cache, &self.name);
        let dw = matmul_ta(dy, &x);
        self.weight.accumulate_grad(&dw);
        matmul(dy, &wb)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphas_are_mean_abs_per_channel() {
        let spec = Conv2dSpec::new(1, 2, 1, 0);
        let mut l = ScaledBinaryConv2d::new("sc", spec, 0);
        l.visit_params(&mut |p| {
            p.value = Tensor::from_vec(Shape(vec![2, 1, 1, 1]), vec![0.5, -0.25]);
        });
        assert_eq!(l.alphas(), vec![0.5, 0.25]);
    }

    #[test]
    fn effective_weight_is_scaled_sign() {
        let spec = Conv2dSpec::new(1, 1, 2, 0);
        let mut l = ScaledBinaryConv2d::new("sc", spec, 0);
        l.visit_params(&mut |p| {
            p.value = Tensor::from_vec(Shape(vec![1, 1, 2, 2]), vec![0.4, -0.2, 0.1, -0.1]);
        });
        // α = mean(|w|) = 0.2; signs +,−,+,−.
        let eff = l.effective_weight();
        for (got, want) in eff.as_slice().iter().zip([0.2f32, -0.2, 0.2, -0.2]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn scaled_conv_output_is_alpha_times_plain_binary() {
        use crate::conv::BinaryConv2d;
        let spec = Conv2dSpec::new(1, 1, 1, 0);
        let weights = vec![-0.6f32];
        let mut scaled = ScaledBinaryConv2d::new("s", spec, 0);
        scaled.visit_params(&mut |p| {
            p.value = Tensor::from_vec(Shape(vec![1, 1, 1, 1]), weights.clone());
        });
        let mut plain = BinaryConv2d::new("p", spec, 0);
        plain.visit_params(&mut |p| {
            p.value = Tensor::from_vec(Shape(vec![1, 1, 1, 1]), weights.clone());
        });
        let x = Tensor::from_vec(Shape::nchw(1, 1, 1, 3), vec![1.0, 2.0, 3.0]);
        let ys = scaled.forward(&x, Mode::Train);
        let yp = plain.forward(&x, Mode::Train);
        for (s, p) in ys.as_slice().iter().zip(yp.as_slice()) {
            assert!((s - 0.6 * p).abs() < 1e-6, "{s} vs α·{p}");
        }
    }

    #[test]
    fn scaled_linear_forward_backward_shapes() {
        let mut l = ScaledBinaryLinear::new("sl", 4, 3, 1);
        let x = bcp_tensor::init::uniform(Shape::d2(2, 4), -1.0, 1.0, 2);
        let y = l.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[2, 3]);
        let dx = l.backward(&Tensor::ones(y.shape().clone()));
        assert_eq!(dx.shape(), x.shape());
        let mut grads = 0;
        l.visit_params(&mut |p| grads += p.grad.as_slice().iter().filter(|v| **v != 0.0).count());
        assert!(grads > 0);
    }

    #[test]
    fn scaling_approximates_latent_better_than_plain_sign() {
        // The XNOR-Net claim: ‖W − α·sign(W)‖ ≤ ‖W − sign(W)‖ (α = mean|W|
        // is the L2-optimal scalar). Check on random weights.
        let w = bcp_tensor::init::normal(Shape::d1(1000), 0.3, 5);
        let alpha: f32 = w.as_slice().iter().map(|v| v.abs()).sum::<f32>() / 1000.0;
        let err = |scale: f32| -> f32 {
            w.as_slice()
                .iter()
                .map(|v| {
                    let b = if *v >= 0.0 { scale } else { -scale };
                    (v - b) * (v - b)
                })
                .sum()
        };
        assert!(err(alpha) < err(1.0));
    }
}
