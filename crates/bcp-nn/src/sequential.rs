//! Sequential network container.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use bcp_tensor::Tensor;

/// A feed-forward stack of layers.
///
/// Besides plain `forward`/`backward`, the container supports two things the
/// BinaryCoP tooling needs:
///
/// - `forward_collect` returns every intermediate activation (Grad-CAM
///   reads the conv2_2 output, Sec. III-C);
/// - `backward_to` stops the backward sweep early and returns the gradient
///   with respect to a chosen layer's *output* (Grad-CAM reads the gradient
///   at the same point).
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Builder-style layer append.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        assert!(
            self.index_of(layer.name()).is_none(),
            "duplicate layer name '{}' in network '{}'",
            layer.name(),
            self.name
        );
        self.layers.push(Box::new(layer));
        self
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer by position.
    pub fn layer(&self, i: usize) -> &dyn Layer {
        self.layers[i].as_ref()
    }

    /// Mutable layer by position.
    pub fn layer_mut(&mut self, i: usize) -> &mut dyn Layer {
        self.layers[i].as_mut()
    }

    /// Position of the layer named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.layers.iter().position(|l| l.name() == name)
    }

    /// Downcast layer `i` to a concrete type.
    pub fn layer_as<T: 'static>(&self, i: usize) -> Option<&T> {
        self.layers[i].as_any().downcast_ref::<T>()
    }

    /// Mutable downcast of layer `i`.
    pub fn layer_as_mut<T: 'static>(&mut self, i: usize) -> Option<&mut T> {
        self.layers[i].as_any_mut().downcast_mut::<T>()
    }

    /// Run the full stack.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode);
        }
        cur
    }

    /// Run the full stack and return every layer's output
    /// (`result[i]` = output of layer `i`; `result.last()` = logits).
    pub fn forward_collect(&mut self, x: &Tensor, mode: Mode) -> Vec<Tensor> {
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode);
            outs.push(cur.clone());
        }
        outs
    }

    /// Full backward sweep; returns the gradient w.r.t. the network input.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut cur = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    /// Backward sweep from the top down to (but not through) layer
    /// `down_to`; returns the gradient w.r.t. that layer's **output**.
    ///
    /// `down_to == len()-1` returns `dy` itself (gradient at the logits).
    pub fn backward_to(&mut self, dy: &Tensor, down_to: usize) -> Tensor {
        assert!(
            down_to < self.layers.len(),
            "layer index {down_to} out of range"
        );
        let mut cur = dy.clone();
        for layer in self.layers[down_to + 1..].iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    /// Visit every parameter of every layer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Visit parameters together with their owning layer's name.
    pub fn visit_named_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        for layer in &mut self.layers {
            let name = layer.name().to_string();
            layer.visit_params(&mut |p| f(&name, p));
        }
    }

    /// Zero all gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total trainable scalar count.
    pub fn param_count(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.param_count()).sum()
    }

    /// One-line-per-layer structural description.
    pub fn describe(&mut self) -> String {
        let mut s = format!("{} ({} layers)\n", self.name, self.layers.len());
        for i in 0..self.layers.len() {
            let count = self.layers[i].param_count();
            s.push_str(&format!(
                "  [{i:2}] {:<12} params={count}\n",
                self.layers[i].name()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::SignSte;
    use crate::linear::Linear;
    use bcp_tensor::Shape;

    fn tiny_net() -> Sequential {
        Sequential::new("tiny")
            .push(Linear::new("fc1", 2, 3, true, 1))
            .push(SignSte::new("sign1"))
            .push(Linear::new("fc2", 3, 2, true, 2))
    }

    #[test]
    fn forward_threads_through_layers() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![0.5, -0.5]);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.shape().dims(), &[1, 2]);
    }

    #[test]
    fn forward_collect_matches_forward() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![0.5, -0.5]);
        let outs = net.forward_collect(&x, Mode::Train);
        assert_eq!(outs.len(), 3);
        let mut net2 = tiny_net();
        let y = net2.forward(&x, Mode::Train);
        assert_eq!(outs.last().unwrap(), &y);
        // The sign layer's output is binary.
        for &v in outs[1].as_slice() {
            assert!(v == 1.0 || v == -1.0);
        }
    }

    #[test]
    fn backward_to_returns_intermediate_gradient() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![0.5, -0.5]);
        let y = net.forward(&x, Mode::Train);
        let dy = Tensor::ones(y.shape().clone());
        // Gradient at the sign output (layer 1) = fc2's input gradient.
        let g = net.backward_to(&dy, 1);
        assert_eq!(g.shape().dims(), &[1, 3]);
        // Gradient at the logits is dy itself.
        let mut net2 = tiny_net();
        let y2 = net2.forward(&x, Mode::Train);
        let g_top = net2.backward_to(&Tensor::ones(y2.shape().clone()), 2);
        assert_eq!(g_top.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn lookup_and_downcast() {
        let net = tiny_net();
        assert_eq!(net.index_of("fc2"), Some(2));
        assert_eq!(net.index_of("nope"), None);
        assert!(net.layer_as::<Linear>(0).is_some());
        assert!(net.layer_as::<SignSte>(0).is_none());
    }

    #[test]
    fn param_count_sums_layers() {
        let mut net = tiny_net();
        // fc1: 2·3+3, fc2: 3·2+2.
        assert_eq!(net.param_count(), 9 + 8);
    }

    #[test]
    #[should_panic(expected = "duplicate layer name")]
    fn duplicate_names_rejected() {
        let _ = Sequential::new("dup")
            .push(SignSte::new("a"))
            .push(SignSte::new("a"));
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![0.5, -0.5]);
        let y = net.forward(&x, Mode::Train);
        net.backward(&Tensor::ones(y.shape().clone()));
        let mut nonzero = 0;
        net.visit_params(&mut |p| {
            nonzero += p.grad.as_slice().iter().filter(|v| **v != 0.0).count()
        });
        assert!(nonzero > 0);
        net.zero_grad();
        net.visit_params(&mut |p| {
            assert!(p.grad.as_slice().iter().all(|v| *v == 0.0));
        });
    }
}
