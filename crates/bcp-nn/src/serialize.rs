//! JSON state-dict save/load for trained networks.
//!
//! The state dict keys parameters by `"<layer>.<param>"` and additionally
//! carries batch-norm running statistics (which are state, not parameters).
//! JSON keeps checkpoints human-inspectable; the *deployed* binarized
//! weights use the compact bitstream in `bcp-bitpack::serialize` instead.

use crate::batchnorm::BatchNorm;
use crate::layer::Layer;
use crate::sequential::Sequential;
use bcp_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Serialized tensor: shape + flat data.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct TensorState {
    /// Dimension extents.
    pub shape: Vec<usize>,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl From<&Tensor> for TensorState {
    fn from(t: &Tensor) -> Self {
        TensorState {
            shape: t.shape().dims().to_vec(),
            data: t.as_slice().to_vec(),
        }
    }
}

impl TensorState {
    /// Rebuild the tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(Shape(self.shape.clone()), self.data.clone())
    }
}

/// Batch-norm running statistics.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct BnStats {
    /// Running mean per channel.
    pub mean: Vec<f32>,
    /// Running (biased) variance per channel.
    pub var: Vec<f32>,
}

/// A complete network checkpoint.
#[derive(Clone, Debug, Serialize, Deserialize, Default, PartialEq)]
pub struct StateDict {
    /// `"<layer>.<param>"` → tensor.
    pub params: BTreeMap<String, TensorState>,
    /// `"<layer>"` → running statistics for batch-norm layers.
    pub bn_stats: BTreeMap<String, BnStats>,
}

/// Extract a checkpoint from a network.
pub fn state_dict(net: &mut Sequential) -> StateDict {
    let mut sd = StateDict::default();
    net.visit_named_params(&mut |layer, p| {
        sd.params
            .insert(format!("{layer}.{}", p.name), TensorState::from(&p.value));
    });
    for i in 0..net.len() {
        if let Some(bn) = net.layer_as::<BatchNorm>(i) {
            sd.bn_stats.insert(
                bn.name().to_string(),
                BnStats {
                    mean: bn.running_mean().to_vec(),
                    var: bn.running_var().to_vec(),
                },
            );
        }
    }
    sd
}

/// Everything that can go wrong loading or saving a checkpoint. Structural
/// errors carry enough context to name the offending entry, so callers can
/// distinguish "wrong architecture" from "corrupt file" from "disk trouble"
/// without string-matching.
#[derive(Debug)]
pub enum CheckpointError {
    /// The network has a parameter the state dict does not.
    MissingParameter {
        /// `"<layer>.<param>"` key of the absent entry.
        key: String,
    },
    /// A stored tensor's shape disagrees with the network's parameter.
    ShapeMismatch {
        /// `"<layer>.<param>"` key (or `"<layer>"` for bn statistics).
        key: String,
        /// Shape the network expects.
        expected: Vec<usize>,
        /// Shape found in the state dict.
        found: Vec<usize>,
    },
    /// The network has a batch-norm layer with no stored running stats.
    MissingBnStats {
        /// Name of the batch-norm layer.
        layer: String,
    },
    /// Filesystem failure reading or writing the checkpoint.
    Io(std::io::Error),
    /// The file exists but is not a valid JSON state dict.
    Parse(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::MissingParameter { key } => {
                write!(f, "state dict missing parameter '{key}'")
            }
            CheckpointError::ShapeMismatch {
                key,
                expected,
                found,
            } => write!(
                f,
                "state dict shape mismatch for '{key}': expected {expected:?}, found {found:?}"
            ),
            CheckpointError::MissingBnStats { layer } => {
                write!(f, "state dict missing bn stats for '{layer}'")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Parse(msg) => write!(f, "checkpoint parse error: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Load a checkpoint into a structurally-matching network, all-or-nothing:
/// the whole dict is validated against the network *before* any parameter
/// is touched, so an `Err` leaves the network exactly as it was.
pub fn try_load_state_dict(net: &mut Sequential, sd: &StateDict) -> Result<(), CheckpointError> {
    // Pass 1: validate every parameter and bn-stat entry without mutating.
    let mut first_err: Option<CheckpointError> = None;
    net.visit_named_params(&mut |layer, p| {
        if first_err.is_some() {
            return;
        }
        let key = format!("{layer}.{}", p.name);
        match sd.params.get(&key) {
            None => first_err = Some(CheckpointError::MissingParameter { key }),
            Some(entry) => {
                if entry.shape != p.value.shape().dims() {
                    first_err = Some(CheckpointError::ShapeMismatch {
                        key,
                        expected: p.value.shape().dims().to_vec(),
                        found: entry.shape.clone(),
                    });
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    for i in 0..net.len() {
        let name = net.layer(i).name().to_string();
        if let Some(bn) = net.layer_as::<BatchNorm>(i) {
            let channels = bn.gamma().len();
            let stats = sd
                .bn_stats
                .get(&name)
                .ok_or(CheckpointError::MissingBnStats {
                    layer: name.clone(),
                })?;
            if stats.mean.len() != channels || stats.var.len() != channels {
                return Err(CheckpointError::ShapeMismatch {
                    key: name,
                    expected: vec![channels],
                    found: vec![stats.mean.len(), stats.var.len()],
                });
            }
        }
    }

    // Pass 2: apply. Nothing below can fail.
    net.visit_named_params(&mut |layer, p| {
        let key = format!("{layer}.{}", p.name);
        p.value = sd.params[&key].to_tensor();
        p.opt_state.clear();
    });
    for i in 0..net.len() {
        let name = net.layer(i).name().to_string();
        if let Some(bn) = net.layer_as_mut::<BatchNorm>(i) {
            let stats = &sd.bn_stats[&name];
            let gamma = bn.gamma().to_vec();
            let beta = bn.beta().to_vec();
            bn.set_state(gamma, beta, stats.mean.clone(), stats.var.clone());
        }
    }
    Ok(())
}

/// Panicking convenience wrapper over [`try_load_state_dict`] — checkpoints
/// are only valid for the architecture that produced them, so a mismatch is
/// a programming error in most call sites.
pub fn load_state_dict(net: &mut Sequential, sd: &StateDict) {
    if let Err(e) = try_load_state_dict(net, sd) {
        panic!("{e}");
    }
}

/// Save a checkpoint as JSON. The write is atomic-by-rename: the JSON is
/// written to a `.tmp` sibling and renamed into place, so a crash mid-save
/// never leaves a truncated checkpoint at `path`.
pub fn save_json(net: &mut Sequential, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let sd = state_dict(net);
    let json = serde_json::to_string(&sd).expect("state dict serializes");
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            path.with_file_name(n)
        }
        None => {
            return Err(CheckpointError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("checkpoint path '{}' has no file name", path.display()),
            )))
        }
    };
    fs::write(&tmp, json)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        fs::remove_file(&tmp).ok();
    })?;
    Ok(())
}

/// Load a JSON checkpoint into a network (all-or-nothing, like
/// [`try_load_state_dict`]).
pub fn load_json(net: &mut Sequential, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = fs::read_to_string(path)?;
    let sd: StateDict =
        serde_json::from_str(&json).map_err(|e| CheckpointError::Parse(e.to_string()))?;
    try_load_state_dict(net, &sd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::SignSte;
    use crate::linear::{BinaryLinear, Linear};
    use crate::Mode;
    use bcp_tensor::init::uniform;

    fn net(seed: u64) -> Sequential {
        Sequential::new("ckpt")
            .push(Linear::new("fc1", 4, 8, true, seed))
            .push(BatchNorm::new("bn1", 8))
            .push(SignSte::new("sign1"))
            .push(BinaryLinear::new("bfc2", 8, 3, seed + 1))
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let mut a = net(1);
        // Run a train pass so running stats are non-trivial.
        let x = uniform(Shape::d2(16, 4), -1.0, 1.0, 2);
        let _ = a.forward(&x, Mode::Train);
        let sd = state_dict(&mut a);

        let mut b = net(99); // different init
        load_state_dict(&mut b, &sd);
        let probe = uniform(Shape::d2(5, 4), -1.0, 1.0, 3);
        let ya = a.forward(&probe, Mode::Eval);
        let yb = b.forward(&probe, Mode::Eval);
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn state_dict_has_expected_keys() {
        let mut n = net(1);
        let sd = state_dict(&mut n);
        assert!(sd.params.contains_key("fc1.weight"));
        assert!(sd.params.contains_key("fc1.bias"));
        assert!(sd.params.contains_key("bn1.gamma"));
        assert!(sd.params.contains_key("bfc2.weight"));
        assert!(sd.bn_stats.contains_key("bn1"));
        assert_eq!(sd.bn_stats["bn1"].mean.len(), 8);
    }

    #[test]
    fn json_file_roundtrip() {
        let dir = std::env::temp_dir().join("bcp_nn_ser_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut a = net(7);
        save_json(&mut a, &path).unwrap();
        let mut b = net(8);
        load_json(&mut b, &path).unwrap();
        let probe = uniform(Shape::d2(2, 4), -1.0, 1.0, 5);
        assert_eq!(
            a.forward(&probe, Mode::Eval).as_slice(),
            b.forward(&probe, Mode::Eval).as_slice()
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn load_rejects_structural_mismatch() {
        let mut a = net(1);
        let sd = state_dict(&mut a);
        let mut other = Sequential::new("other").push(Linear::new("zzz", 4, 4, false, 0));
        load_state_dict(&mut other, &sd);
    }

    #[test]
    fn try_load_reports_typed_errors_and_leaves_net_untouched() {
        let mut a = net(1);
        let mut sd = state_dict(&mut a);

        // Missing key.
        let mut other = Sequential::new("other").push(Linear::new("zzz", 4, 4, false, 0));
        match try_load_state_dict(&mut other, &sd) {
            Err(CheckpointError::MissingParameter { key }) => assert_eq!(key, "zzz.weight"),
            other => panic!("expected MissingParameter, got {other:?}"),
        }

        // Shape mismatch — and the target network must be unchanged.
        let bad = TensorState {
            shape: vec![2, 2],
            data: vec![0.0; 4],
        };
        sd.params.insert("fc1.weight".into(), bad);
        let mut b = net(3);
        let before = state_dict(&mut b);
        match try_load_state_dict(&mut b, &sd) {
            Err(CheckpointError::ShapeMismatch {
                key,
                expected,
                found,
            }) => {
                assert_eq!(key, "fc1.weight");
                assert_eq!(expected, vec![8, 4]);
                assert_eq!(found, vec![2, 2]);
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        assert_eq!(state_dict(&mut b), before, "failed load must not mutate");

        // Missing bn stats.
        let mut sd2 = state_dict(&mut net(1));
        sd2.bn_stats.clear();
        match try_load_state_dict(&mut net(2), &sd2) {
            Err(CheckpointError::MissingBnStats { layer }) => assert_eq!(layer, "bn1"),
            other => panic!("expected MissingBnStats, got {other:?}"),
        }
    }

    #[test]
    fn load_json_distinguishes_io_and_parse_errors() {
        let dir = std::env::temp_dir().join("bcp_nn_ser_err_test");
        fs::create_dir_all(&dir).unwrap();
        let mut n = net(1);
        match load_json(&mut n, dir.join("absent.json")) {
            Err(CheckpointError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
        let garbled = dir.join("garbled.json");
        fs::write(&garbled, b"{\"params\": nope").unwrap();
        match load_json(&mut n, &garbled) {
            Err(CheckpointError::Parse(_)) => {}
            other => panic!("expected Parse, got {other:?}"),
        }
        fs::remove_file(&garbled).ok();
    }

    #[test]
    fn save_json_is_atomic_by_rename() {
        let dir = std::env::temp_dir().join("bcp_nn_ser_atomic_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut a = net(4);
        save_json(&mut a, &path).unwrap();
        // No temp residue, and the saved file loads.
        assert!(!path.with_file_name("ckpt.json.tmp").exists());
        let mut b = net(5);
        load_json(&mut b, &path).unwrap();
        let probe = uniform(Shape::d2(2, 4), -1.0, 1.0, 5);
        assert_eq!(
            a.forward(&probe, Mode::Eval).as_slice(),
            b.forward(&probe, Mode::Eval).as_slice()
        );
        fs::remove_file(&path).ok();
    }
}
