//! JSON state-dict save/load for trained networks.
//!
//! The state dict keys parameters by `"<layer>.<param>"` and additionally
//! carries batch-norm running statistics (which are state, not parameters).
//! JSON keeps checkpoints human-inspectable; the *deployed* binarized
//! weights use the compact bitstream in `bcp-bitpack::serialize` instead.

use crate::batchnorm::BatchNorm;
use crate::layer::Layer;
use crate::sequential::Sequential;
use bcp_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Serialized tensor: shape + flat data.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct TensorState {
    /// Dimension extents.
    pub shape: Vec<usize>,
    /// Row-major values.
    pub data: Vec<f32>,
}

impl From<&Tensor> for TensorState {
    fn from(t: &Tensor) -> Self {
        TensorState {
            shape: t.shape().dims().to_vec(),
            data: t.as_slice().to_vec(),
        }
    }
}

impl TensorState {
    /// Rebuild the tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(Shape(self.shape.clone()), self.data.clone())
    }
}

/// Batch-norm running statistics.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct BnStats {
    /// Running mean per channel.
    pub mean: Vec<f32>,
    /// Running (biased) variance per channel.
    pub var: Vec<f32>,
}

/// A complete network checkpoint.
#[derive(Clone, Debug, Serialize, Deserialize, Default, PartialEq)]
pub struct StateDict {
    /// `"<layer>.<param>"` → tensor.
    pub params: BTreeMap<String, TensorState>,
    /// `"<layer>"` → running statistics for batch-norm layers.
    pub bn_stats: BTreeMap<String, BnStats>,
}

/// Extract a checkpoint from a network.
pub fn state_dict(net: &mut Sequential) -> StateDict {
    let mut sd = StateDict::default();
    net.visit_named_params(&mut |layer, p| {
        sd.params
            .insert(format!("{layer}.{}", p.name), TensorState::from(&p.value));
    });
    for i in 0..net.len() {
        if let Some(bn) = net.layer_as::<BatchNorm>(i) {
            sd.bn_stats.insert(
                bn.name().to_string(),
                BnStats {
                    mean: bn.running_mean().to_vec(),
                    var: bn.running_var().to_vec(),
                },
            );
        }
    }
    sd
}

/// Load a checkpoint into a structurally-matching network. Panics with a
/// descriptive message on any missing/mismatched entry — checkpoints are
/// only valid for the architecture that produced them.
pub fn load_state_dict(net: &mut Sequential, sd: &StateDict) {
    net.visit_named_params(&mut |layer, p| {
        let key = format!("{layer}.{}", p.name);
        let entry = sd
            .params
            .get(&key)
            .unwrap_or_else(|| panic!("state dict missing parameter '{key}'"));
        let t = entry.to_tensor();
        assert_eq!(
            t.shape(),
            p.value.shape(),
            "state dict shape mismatch for '{key}'"
        );
        p.value = t;
        p.opt_state.clear();
    });
    for i in 0..net.len() {
        let name = net.layer(i).name().to_string();
        if let Some(bn) = net.layer_as_mut::<BatchNorm>(i) {
            let stats = sd
                .bn_stats
                .get(&name)
                .unwrap_or_else(|| panic!("state dict missing bn stats for '{name}'"));
            let gamma = bn.gamma().to_vec();
            let beta = bn.beta().to_vec();
            bn.set_state(gamma, beta, stats.mean.clone(), stats.var.clone());
        }
    }
}

/// Save a checkpoint as JSON.
pub fn save_json(net: &mut Sequential, path: impl AsRef<Path>) -> std::io::Result<()> {
    let sd = state_dict(net);
    let json = serde_json::to_string(&sd).expect("state dict serializes");
    fs::write(path, json)
}

/// Load a JSON checkpoint into a network.
pub fn load_json(net: &mut Sequential, path: impl AsRef<Path>) -> std::io::Result<()> {
    let json = fs::read_to_string(path)?;
    let sd: StateDict = serde_json::from_str(&json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    load_state_dict(net, &sd);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::SignSte;
    use crate::linear::{BinaryLinear, Linear};
    use crate::Mode;
    use bcp_tensor::init::uniform;

    fn net(seed: u64) -> Sequential {
        Sequential::new("ckpt")
            .push(Linear::new("fc1", 4, 8, true, seed))
            .push(BatchNorm::new("bn1", 8))
            .push(SignSte::new("sign1"))
            .push(BinaryLinear::new("bfc2", 8, 3, seed + 1))
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let mut a = net(1);
        // Run a train pass so running stats are non-trivial.
        let x = uniform(Shape::d2(16, 4), -1.0, 1.0, 2);
        let _ = a.forward(&x, Mode::Train);
        let sd = state_dict(&mut a);

        let mut b = net(99); // different init
        load_state_dict(&mut b, &sd);
        let probe = uniform(Shape::d2(5, 4), -1.0, 1.0, 3);
        let ya = a.forward(&probe, Mode::Eval);
        let yb = b.forward(&probe, Mode::Eval);
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn state_dict_has_expected_keys() {
        let mut n = net(1);
        let sd = state_dict(&mut n);
        assert!(sd.params.contains_key("fc1.weight"));
        assert!(sd.params.contains_key("fc1.bias"));
        assert!(sd.params.contains_key("bn1.gamma"));
        assert!(sd.params.contains_key("bfc2.weight"));
        assert!(sd.bn_stats.contains_key("bn1"));
        assert_eq!(sd.bn_stats["bn1"].mean.len(), 8);
    }

    #[test]
    fn json_file_roundtrip() {
        let dir = std::env::temp_dir().join("bcp_nn_ser_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut a = net(7);
        save_json(&mut a, &path).unwrap();
        let mut b = net(8);
        load_json(&mut b, &path).unwrap();
        let probe = uniform(Shape::d2(2, 4), -1.0, 1.0, 5);
        assert_eq!(
            a.forward(&probe, Mode::Eval).as_slice(),
            b.forward(&probe, Mode::Eval).as_slice()
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn load_rejects_structural_mismatch() {
        let mut a = net(1);
        let sd = state_dict(&mut a);
        let mut other = Sequential::new("other").push(Linear::new("zzz", 4, 4, false, 0));
        load_state_dict(&mut other, &sd);
    }
}
