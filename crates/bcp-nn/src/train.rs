//! Minibatch training loop.

use crate::loss::{cross_entropy, squared_hinge, LossOutput};
use crate::metrics::{predictions, ConfusionMatrix};
use crate::optim::{Optimizer, StepDecay};
use crate::sequential::Sequential;
use crate::Mode;
use bcp_tensor::{Shape, Tensor};

/// Which loss drives training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// Softmax cross-entropy.
    CrossEntropy,
    /// Multi-class squared hinge (BinaryNet's choice).
    SquaredHinge,
}

impl LossKind {
    /// Evaluate the loss and its logits gradient.
    pub fn eval(&self, logits: &Tensor, labels: &[usize]) -> LossOutput {
        match self {
            LossKind::CrossEntropy => cross_entropy(logits, labels),
            LossKind::SquaredHinge => squared_hinge(logits, labels),
        }
    }
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Shuffle seed (deterministic order given the seed).
    pub shuffle_seed: u64,
    /// Loss function.
    pub loss: LossKind,
    /// Optional LR schedule applied at epoch boundaries.
    pub schedule: Option<StepDecay>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 64,
            shuffle_seed: 0,
            loss: LossKind::CrossEntropy,
            schedule: None,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean minibatch loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch (computed on-line from the same
    /// forward passes used for the updates).
    pub train_accuracy: f32,
    /// Validation accuracy, when a validation set was supplied.
    pub val_accuracy: Option<f32>,
    /// Mean (over minibatches) global L2 norm of all parameter gradients.
    pub grad_norm: f32,
    /// Fraction of latent binary weights (`clip_unit` params) whose sign
    /// changed across the epoch — the effective-flip-rate lens on BNN
    /// training dynamics (high early, decaying as binarization settles).
    /// Zero for networks without latent binary weights.
    pub sign_flip_rate: f32,
    /// Wall-clock duration of the epoch (training + validation).
    pub epoch_seconds: f64,
}

/// Deterministic Fisher–Yates shuffle driven by a split-mix PRNG — cheap,
/// seedable, and independent of the `rand` crate's version-to-version
/// stream changes.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Gather samples `indices` of an NCHW tensor into a new batch.
pub fn gather_batch(images: &Tensor, indices: &[usize]) -> Tensor {
    assert_eq!(images.shape().rank(), 4, "gather_batch expects NCHW");
    let (c, h, w) = (
        images.shape().dim(1),
        images.shape().dim(2),
        images.shape().dim(3),
    );
    let stride = c * h * w;
    let src = images.as_slice();
    let mut data = Vec::with_capacity(indices.len() * stride);
    for &i in indices {
        data.extend_from_slice(&src[i * stride..(i + 1) * stride]);
    }
    Tensor::from_vec(Shape::nchw(indices.len(), c, h, w), data)
}

/// Extended single-epoch result from [`train_epoch_detailed`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochDetail {
    /// Mean minibatch loss.
    pub loss: f32,
    /// On-line training accuracy.
    pub train_accuracy: f32,
    /// Mean over minibatches of the global L2 gradient norm (computed
    /// after `backward`, before the optimizer update).
    pub grad_norm: f32,
}

/// One epoch of minibatch SGD with gradient-norm tracking.
pub fn train_epoch_detailed(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    loss: LossKind,
    shuffle_seed: u64,
) -> EpochDetail {
    let n = images.shape().dim(0);
    assert_eq!(labels.len(), n, "label count mismatch");
    assert!(batch_size > 0, "batch size must be positive");
    let order = shuffled_indices(n, shuffle_seed);
    let mut total_loss = 0.0f64;
    let mut total_grad_norm = 0.0f64;
    let mut batches = 0usize;
    let mut correct = 0usize;
    for chunk in order.chunks(batch_size) {
        let batch = gather_batch(images, chunk);
        let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        net.zero_grad();
        let logits = net.forward(&batch, Mode::Train);
        let out = loss.eval(&logits, &batch_labels);
        correct += predictions(&logits)
            .iter()
            .zip(&batch_labels)
            .filter(|(p, l)| p == l)
            .count();
        net.backward(&out.grad);
        let mut sq_sum = 0.0f64;
        net.visit_params(&mut |p| {
            sq_sum += p
                .grad
                .as_slice()
                .iter()
                .map(|&g| (g as f64) * (g as f64))
                .sum::<f64>();
        });
        total_grad_norm += sq_sum.sqrt();
        net.visit_params(&mut |p| opt.update(p));
        opt.advance();
        total_loss += out.loss as f64;
        batches += 1;
    }
    let b = batches.max(1) as f64;
    EpochDetail {
        loss: (total_loss / b) as f32,
        train_accuracy: correct as f32 / n as f32,
        grad_norm: (total_grad_norm / b) as f32,
    }
}

/// One epoch of minibatch SGD. Returns (mean loss, training accuracy).
pub fn train_epoch(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    loss: LossKind,
    shuffle_seed: u64,
) -> (f32, f32) {
    let d = train_epoch_detailed(net, opt, images, labels, batch_size, loss, shuffle_seed);
    (d.loss, d.train_accuracy)
}

/// Signs of every latent binary weight (`clip_unit` params), in
/// `visit_params` order. The basis for the per-epoch sign-flip rate.
fn latent_signs(net: &mut Sequential) -> Vec<bool> {
    let mut signs = Vec::new();
    net.visit_params(&mut |p| {
        if p.clip_unit {
            signs.extend(p.value.as_slice().iter().map(|&v| v >= 0.0));
        }
    });
    signs
}

fn flip_rate(before: &[bool], after: &[bool]) -> f32 {
    debug_assert_eq!(before.len(), after.len());
    if before.is_empty() {
        return 0.0;
    }
    let flips = before.iter().zip(after).filter(|(a, b)| a != b).count();
    flips as f32 / before.len() as f32
}

/// Evaluate accuracy (and optionally fill a confusion matrix) in eval mode.
pub fn evaluate(
    net: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    confusion: Option<&mut ConfusionMatrix>,
) -> f32 {
    let n = images.shape().dim(0);
    assert_eq!(labels.len(), n, "label count mismatch");
    let indices: Vec<usize> = (0..n).collect();
    let mut correct = 0usize;
    let mut cm = confusion;
    for chunk in indices.chunks(batch_size.max(1)) {
        let batch = gather_batch(images, chunk);
        let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward(&batch, Mode::Eval);
        let preds = predictions(&logits);
        correct += preds
            .iter()
            .zip(&batch_labels)
            .filter(|(p, l)| p == l)
            .count();
        if let Some(ref mut m) = cm {
            m.record_batch(&batch_labels, &preds);
        }
    }
    correct as f32 / n.max(1) as f32
}

/// Full training run with optional validation and LR schedule. The callback
/// receives each epoch's stats (use it for logging or early stopping by
/// returning `false`).
#[allow(clippy::too_many_arguments)]
pub fn fit(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    train_images: &Tensor,
    train_labels: &[usize],
    val: Option<(&Tensor, &[usize])>,
    cfg: &TrainConfig,
    on_epoch: impl FnMut(&EpochStats) -> bool,
) -> Vec<EpochStats> {
    fit_instrumented(
        net,
        opt,
        train_images,
        train_labels,
        val,
        cfg,
        None,
        on_epoch,
    )
}

/// [`fit`] with an optional telemetry registry. Per epoch this exports
/// `train.epoch.{loss,train_accuracy,val_accuracy,grad_norm,sign_flip_rate,lr}`
/// gauges, a `train.epoch_ns` histogram, `train.{epochs,samples}` counters
/// and — when the registry has an event sink — one `train.epoch` mark
/// event carrying the same numbers as JSONL fields.
#[allow(clippy::too_many_arguments)]
pub fn fit_instrumented(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    train_images: &Tensor,
    train_labels: &[usize],
    val: Option<(&Tensor, &[usize])>,
    cfg: &TrainConfig,
    telemetry: Option<&bcp_telemetry::Registry>,
    mut on_epoch: impl FnMut(&EpochStats) -> bool,
) -> Vec<EpochStats> {
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if let Some(s) = cfg.schedule {
            opt.set_lr(s.lr_at(epoch));
        }
        let t0 = std::time::Instant::now();
        let signs_before = latent_signs(net);
        let detail = train_epoch_detailed(
            net,
            opt,
            train_images,
            train_labels,
            cfg.batch_size,
            cfg.loss,
            cfg.shuffle_seed.wrapping_add(epoch as u64),
        );
        let val_accuracy = val.map(|(vi, vl)| evaluate(net, vi, vl, cfg.batch_size, None));
        let sign_flip_rate = flip_rate(&signs_before, &latent_signs(net));
        let epoch_seconds = t0.elapsed().as_secs_f64();
        let stats = EpochStats {
            epoch,
            loss: detail.loss,
            train_accuracy: detail.train_accuracy,
            val_accuracy,
            grad_norm: detail.grad_norm,
            sign_flip_rate,
            epoch_seconds,
        };
        if let Some(registry) = telemetry {
            record_epoch(registry, &stats, opt.lr(), train_labels.len());
        }
        let proceed = on_epoch(&stats);
        history.push(stats);
        if !proceed {
            break;
        }
    }
    history
}

fn record_epoch(registry: &bcp_telemetry::Registry, s: &EpochStats, lr: f32, samples: usize) {
    use serde::{Map, Value};
    registry.counter("train.epochs").inc();
    registry.counter("train.samples").add(samples as u64);
    registry.gauge("train.epoch.loss").set(s.loss as f64);
    registry
        .gauge("train.epoch.train_accuracy")
        .set(s.train_accuracy as f64);
    if let Some(v) = s.val_accuracy {
        registry.gauge("train.epoch.val_accuracy").set(v as f64);
    }
    registry
        .gauge("train.epoch.grad_norm")
        .set(s.grad_norm as f64);
    registry
        .gauge("train.epoch.sign_flip_rate")
        .set(s.sign_flip_rate as f64);
    registry.gauge("train.epoch.lr").set(lr as f64);
    registry
        .histogram("train.epoch_ns")
        .record((s.epoch_seconds * 1e9) as u64);
    let mut fields = Map::new();
    fields.insert("epoch".into(), Value::UInt(s.epoch as u64));
    fields.insert("loss".into(), Value::Float(s.loss as f64));
    fields.insert(
        "train_accuracy".into(),
        Value::Float(s.train_accuracy as f64),
    );
    if let Some(v) = s.val_accuracy {
        fields.insert("val_accuracy".into(), Value::Float(v as f64));
    }
    fields.insert("grad_norm".into(), Value::Float(s.grad_norm as f64));
    fields.insert(
        "sign_flip_rate".into(),
        Value::Float(s.sign_flip_rate as f64),
    );
    fields.insert("epoch_ms".into(), Value::Float(s.epoch_seconds * 1e3));
    registry.mark("train.epoch", fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::SignSte;
    use crate::batchnorm::BatchNorm;
    use crate::linear::{BinaryLinear, Linear};
    use crate::metrics::accuracy;
    use crate::optim::Adam;
    use bcp_tensor::init::uniform;

    /// A linearly-separable 2-class blob problem: class = sign of x₀.
    fn blob_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let raw = uniform(Shape::nchw(n, 1, 1, 2), -1.0, 1.0, seed);
        let labels: Vec<usize> = (0..n)
            .map(|i| if raw.as_slice()[i * 2] >= 0.0 { 1 } else { 0 })
            .collect();
        (raw, labels)
    }

    fn blob_net(seed: u64) -> Sequential {
        Sequential::new("blob")
            .push(crate::flatten::Flatten::new("flat"))
            .push(Linear::new("fc1", 2, 8, true, seed))
            .push(BatchNorm::new("bn1", 8))
            .push(SignSte::new("sign1"))
            .push(Linear::new("fc2", 8, 2, true, seed + 1))
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let a = shuffled_indices(100, 7);
        let b = shuffled_indices(100, 7);
        let c = shuffled_indices(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gather_batch_picks_rows() {
        let images = Tensor::from_vec(Shape::nchw(3, 1, 1, 2), vec![0., 1., 2., 3., 4., 5.]);
        let b = gather_batch(&images, &[2, 0]);
        assert_eq!(b.as_slice(), &[4., 5., 0., 1.]);
    }

    #[test]
    fn training_reduces_loss_and_learns_blobs() {
        let (images, labels) = blob_data(256, 3);
        let mut net = blob_net(10);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 32,
            ..Default::default()
        };
        let history = fit(&mut net, &mut opt, &images, &labels, None, &cfg, |_| true);
        assert!(history.len() == 30);
        assert!(
            history.last().unwrap().loss < history.first().unwrap().loss,
            "loss should decrease: {} → {}",
            history.first().unwrap().loss,
            history.last().unwrap().loss
        );
        let acc = evaluate(&mut net, &images, &labels, 64, None);
        assert!(acc > 0.9, "blob accuracy {acc} too low");
    }

    #[test]
    fn binary_network_learns_blobs() {
        // The full binary stack (binary weights + sign activations) must
        // still learn a separable problem — the paper's core training claim.
        let (images, labels) = blob_data(256, 4);
        let mut net = Sequential::new("binary-blob")
            .push(crate::flatten::Flatten::new("flat"))
            .push(Linear::new("fc1", 2, 16, true, 20))
            .push(BatchNorm::new("bn1", 16))
            .push(SignSte::new("sign1"))
            .push(BinaryLinear::new("bfc2", 16, 16, 21))
            .push(BatchNorm::new("bn2", 16))
            .push(SignSte::new("sign2"))
            .push(Linear::new("fc3", 16, 2, true, 22));
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 32,
            ..Default::default()
        };
        fit(&mut net, &mut opt, &images, &labels, None, &cfg, |_| true);
        let acc = evaluate(&mut net, &images, &labels, 64, None);
        assert!(acc > 0.85, "binary blob accuracy {acc} too low");
    }

    #[test]
    fn evaluate_fills_confusion_matrix() {
        let (images, labels) = blob_data(64, 5);
        let mut net = blob_net(30);
        let mut cm = ConfusionMatrix::new(2);
        let acc = evaluate(&mut net, &images, &labels, 16, Some(&mut cm));
        assert_eq!(cm.total(), 64);
        assert!((cm.accuracy() as f32 - acc).abs() < 1e-5);
    }

    #[test]
    fn early_stop_callback() {
        let (images, labels) = blob_data(32, 6);
        let mut net = blob_net(40);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 50,
            batch_size: 16,
            ..Default::default()
        };
        let history = fit(&mut net, &mut opt, &images, &labels, None, &cfg, |s| {
            s.epoch < 2
        });
        assert_eq!(history.len(), 3); // epochs 0,1,2 run; callback stops after 2.
    }

    #[test]
    fn epoch_stats_carry_training_dynamics() {
        let (images, labels) = blob_data(128, 3);
        let mut net = Sequential::new("dyn")
            .push(crate::flatten::Flatten::new("flat"))
            .push(Linear::new("fc1", 2, 8, true, 60))
            .push(BatchNorm::new("bn1", 8))
            .push(SignSte::new("sign1"))
            .push(BinaryLinear::new("bfc", 8, 8, 61))
            .push(BatchNorm::new("bn2", 8))
            .push(SignSte::new("sign2"))
            .push(Linear::new("fc2", 8, 2, true, 62));
        let mut opt = Adam::new(0.02);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 16,
            ..Default::default()
        };
        let history = fit(&mut net, &mut opt, &images, &labels, None, &cfg, |_| true);
        for s in &history {
            assert!(s.grad_norm > 0.0, "epoch {} grad norm", s.epoch);
            assert!((0.0..=1.0).contains(&s.sign_flip_rate), "epoch {}", s.epoch);
            assert!(s.epoch_seconds > 0.0);
        }
        // Latent weights must actually move early in training.
        assert!(
            history.iter().any(|s| s.sign_flip_rate > 0.0),
            "no latent sign ever flipped: {history:?}"
        );
    }

    #[test]
    fn instrumented_fit_exports_metrics_and_events() {
        let registry = bcp_telemetry::Registry::with_event_buffer();
        let (images, labels) = blob_data(64, 9);
        let (val_images, val_labels) = blob_data(32, 10);
        let mut net = blob_net(70);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            ..Default::default()
        };
        fit_instrumented(
            &mut net,
            &mut opt,
            &images,
            &labels,
            Some((&val_images, &val_labels)),
            &cfg,
            Some(&registry),
            |_| true,
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counters["train.epochs"], 3);
        assert_eq!(snap.counters["train.samples"], 3 * 64);
        assert!(snap.gauges.contains_key("train.epoch.loss"));
        assert!(snap.gauges.contains_key("train.epoch.val_accuracy"));
        assert!(snap.gauges.contains_key("train.epoch.sign_flip_rate"));
        assert_eq!(snap.histograms["train.epoch_ns"].count, 3);
        let events = registry.take_events();
        assert_eq!(events.len(), 3);
        for line in &events {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["name"].as_str(), Some("train.epoch"));
            assert!(!v["loss"].is_null() && !v["grad_norm"].is_null());
        }
    }

    #[test]
    fn flip_rate_counts_sign_changes() {
        assert_eq!(flip_rate(&[], &[]), 0.0);
        assert_eq!(
            flip_rate(&[true, true, false, false], &[true, false, false, true]),
            0.5
        );
    }

    #[test]
    fn accuracy_helper_consistent_with_evaluate() {
        let (images, labels) = blob_data(32, 8);
        let mut net = blob_net(50);
        let logits = net.forward(&images, Mode::Eval);
        let a = accuracy(&logits, &labels);
        let b = evaluate(&mut net, &images, &labels, 32, None);
        assert!((a - b).abs() < 1e-6);
    }
}
