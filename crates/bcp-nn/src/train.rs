//! Minibatch training loop.

use crate::loss::{cross_entropy, squared_hinge, LossOutput};
use crate::metrics::{predictions, ConfusionMatrix};
use crate::optim::{Optimizer, StepDecay};
use crate::sequential::Sequential;
use crate::Mode;
use bcp_tensor::{Shape, Tensor};

/// Which loss drives training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// Softmax cross-entropy.
    CrossEntropy,
    /// Multi-class squared hinge (BinaryNet's choice).
    SquaredHinge,
}

impl LossKind {
    /// Evaluate the loss and its logits gradient.
    pub fn eval(&self, logits: &Tensor, labels: &[usize]) -> LossOutput {
        match self {
            LossKind::CrossEntropy => cross_entropy(logits, labels),
            LossKind::SquaredHinge => squared_hinge(logits, labels),
        }
    }
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Shuffle seed (deterministic order given the seed).
    pub shuffle_seed: u64,
    /// Loss function.
    pub loss: LossKind,
    /// Optional LR schedule applied at epoch boundaries.
    pub schedule: Option<StepDecay>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 64,
            shuffle_seed: 0,
            loss: LossKind::CrossEntropy,
            schedule: None,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean minibatch loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch (computed on-line from the same
    /// forward passes used for the updates).
    pub train_accuracy: f32,
    /// Validation accuracy, when a validation set was supplied.
    pub val_accuracy: Option<f32>,
}

/// Deterministic Fisher–Yates shuffle driven by a split-mix PRNG — cheap,
/// seedable, and independent of the `rand` crate's version-to-version
/// stream changes.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Gather samples `indices` of an NCHW tensor into a new batch.
pub fn gather_batch(images: &Tensor, indices: &[usize]) -> Tensor {
    assert_eq!(images.shape().rank(), 4, "gather_batch expects NCHW");
    let (c, h, w) = (
        images.shape().dim(1),
        images.shape().dim(2),
        images.shape().dim(3),
    );
    let stride = c * h * w;
    let src = images.as_slice();
    let mut data = Vec::with_capacity(indices.len() * stride);
    for &i in indices {
        data.extend_from_slice(&src[i * stride..(i + 1) * stride]);
    }
    Tensor::from_vec(Shape::nchw(indices.len(), c, h, w), data)
}

/// One epoch of minibatch SGD. Returns (mean loss, training accuracy).
pub fn train_epoch(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    loss: LossKind,
    shuffle_seed: u64,
) -> (f32, f32) {
    let n = images.shape().dim(0);
    assert_eq!(labels.len(), n, "label count mismatch");
    assert!(batch_size > 0, "batch size must be positive");
    let order = shuffled_indices(n, shuffle_seed);
    let mut total_loss = 0.0f64;
    let mut batches = 0usize;
    let mut correct = 0usize;
    for chunk in order.chunks(batch_size) {
        let batch = gather_batch(images, chunk);
        let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        net.zero_grad();
        let logits = net.forward(&batch, Mode::Train);
        let out = loss.eval(&logits, &batch_labels);
        correct += predictions(&logits)
            .iter()
            .zip(&batch_labels)
            .filter(|(p, l)| p == l)
            .count();
        net.backward(&out.grad);
        net.visit_params(&mut |p| opt.update(p));
        opt.advance();
        total_loss += out.loss as f64;
        batches += 1;
    }
    (
        (total_loss / batches.max(1) as f64) as f32,
        correct as f32 / n as f32,
    )
}

/// Evaluate accuracy (and optionally fill a confusion matrix) in eval mode.
pub fn evaluate(
    net: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    confusion: Option<&mut ConfusionMatrix>,
) -> f32 {
    let n = images.shape().dim(0);
    assert_eq!(labels.len(), n, "label count mismatch");
    let indices: Vec<usize> = (0..n).collect();
    let mut correct = 0usize;
    let mut cm = confusion;
    for chunk in indices.chunks(batch_size.max(1)) {
        let batch = gather_batch(images, chunk);
        let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward(&batch, Mode::Eval);
        let preds = predictions(&logits);
        correct += preds.iter().zip(&batch_labels).filter(|(p, l)| p == l).count();
        if let Some(ref mut m) = cm {
            m.record_batch(&batch_labels, &preds);
        }
    }
    correct as f32 / n.max(1) as f32
}

/// Full training run with optional validation and LR schedule. The callback
/// receives each epoch's stats (use it for logging or early stopping by
/// returning `false`).
#[allow(clippy::too_many_arguments)]
pub fn fit(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    train_images: &Tensor,
    train_labels: &[usize],
    val: Option<(&Tensor, &[usize])>,
    cfg: &TrainConfig,
    mut on_epoch: impl FnMut(&EpochStats) -> bool,
) -> Vec<EpochStats> {
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        if let Some(s) = cfg.schedule {
            opt.set_lr(s.lr_at(epoch));
        }
        let (loss, train_accuracy) = train_epoch(
            net,
            opt,
            train_images,
            train_labels,
            cfg.batch_size,
            cfg.loss,
            cfg.shuffle_seed.wrapping_add(epoch as u64),
        );
        let val_accuracy =
            val.map(|(vi, vl)| evaluate(net, vi, vl, cfg.batch_size, None));
        let stats = EpochStats { epoch, loss, train_accuracy, val_accuracy };
        let proceed = on_epoch(&stats);
        history.push(stats);
        if !proceed {
            break;
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::SignSte;
    use crate::batchnorm::BatchNorm;
    use crate::linear::{BinaryLinear, Linear};
    use crate::metrics::accuracy;
    use crate::optim::Adam;
    use bcp_tensor::init::uniform;

    /// A linearly-separable 2-class blob problem: class = sign of x₀.
    fn blob_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let raw = uniform(Shape::nchw(n, 1, 1, 2), -1.0, 1.0, seed);
        let labels: Vec<usize> = (0..n)
            .map(|i| if raw.as_slice()[i * 2] >= 0.0 { 1 } else { 0 })
            .collect();
        (raw, labels)
    }

    fn blob_net(seed: u64) -> Sequential {
        Sequential::new("blob")
            .push(crate::flatten::Flatten::new("flat"))
            .push(Linear::new("fc1", 2, 8, true, seed))
            .push(BatchNorm::new("bn1", 8))
            .push(SignSte::new("sign1"))
            .push(Linear::new("fc2", 8, 2, true, seed + 1))
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let a = shuffled_indices(100, 7);
        let b = shuffled_indices(100, 7);
        let c = shuffled_indices(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gather_batch_picks_rows() {
        let images = Tensor::from_vec(Shape::nchw(3, 1, 1, 2), vec![0., 1., 2., 3., 4., 5.]);
        let b = gather_batch(&images, &[2, 0]);
        assert_eq!(b.as_slice(), &[4., 5., 0., 1.]);
    }

    #[test]
    fn training_reduces_loss_and_learns_blobs() {
        let (images, labels) = blob_data(256, 3);
        let mut net = blob_net(10);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig { epochs: 30, batch_size: 32, ..Default::default() };
        let history = fit(&mut net, &mut opt, &images, &labels, None, &cfg, |_| true);
        assert!(history.len() == 30);
        assert!(
            history.last().unwrap().loss < history.first().unwrap().loss,
            "loss should decrease: {} → {}",
            history.first().unwrap().loss,
            history.last().unwrap().loss
        );
        let acc = evaluate(&mut net, &images, &labels, 64, None);
        assert!(acc > 0.9, "blob accuracy {acc} too low");
    }

    #[test]
    fn binary_network_learns_blobs() {
        // The full binary stack (binary weights + sign activations) must
        // still learn a separable problem — the paper's core training claim.
        let (images, labels) = blob_data(256, 4);
        let mut net = Sequential::new("binary-blob")
            .push(crate::flatten::Flatten::new("flat"))
            .push(Linear::new("fc1", 2, 16, true, 20))
            .push(BatchNorm::new("bn1", 16))
            .push(SignSte::new("sign1"))
            .push(BinaryLinear::new("bfc2", 16, 16, 21))
            .push(BatchNorm::new("bn2", 16))
            .push(SignSte::new("sign2"))
            .push(Linear::new("fc3", 16, 2, true, 22));
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig { epochs: 40, batch_size: 32, ..Default::default() };
        fit(&mut net, &mut opt, &images, &labels, None, &cfg, |_| true);
        let acc = evaluate(&mut net, &images, &labels, 64, None);
        assert!(acc > 0.85, "binary blob accuracy {acc} too low");
    }

    #[test]
    fn evaluate_fills_confusion_matrix() {
        let (images, labels) = blob_data(64, 5);
        let mut net = blob_net(30);
        let mut cm = ConfusionMatrix::new(2);
        let acc = evaluate(&mut net, &images, &labels, 16, Some(&mut cm));
        assert_eq!(cm.total(), 64);
        assert!((cm.accuracy() as f32 - acc).abs() < 1e-5);
    }

    #[test]
    fn early_stop_callback() {
        let (images, labels) = blob_data(32, 6);
        let mut net = blob_net(40);
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig { epochs: 50, batch_size: 16, ..Default::default() };
        let history = fit(&mut net, &mut opt, &images, &labels, None, &cfg, |s| s.epoch < 2);
        assert_eq!(history.len(), 3); // epochs 0,1,2 run; callback stops after 2.
    }

    #[test]
    fn accuracy_helper_consistent_with_evaluate() {
        let (images, labels) = blob_data(32, 8);
        let mut net = blob_net(50);
        let logits = net.forward(&images, Mode::Eval);
        let a = accuracy(&logits, &labels);
        let b = evaluate(&mut net, &images, &labels, 32, None);
        assert!((a - b).abs() < 1e-6);
    }
}
