//! Engine configuration and the per-request error taxonomy.

use crate::recovery::RecoveryPolicy;
use bcp_tensor::Tensor;
use std::time::Duration;

/// What `submit` does when the admission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the caller until a slot frees up (lossless; tail latency grows
    /// with load — the right default for batch jobs and benchmarks).
    Block,
    /// Fail the new request immediately with [`ServeError::Rejected`]
    /// (bounds both queueing delay and client wait; load-shedding at the
    /// door, like a 503).
    Reject,
    /// Evict the *oldest* queued request — it has burned the most of its
    /// deadline already and is the likeliest to miss it anyway — completing
    /// it with [`ServeError::Shed`], then admit the new one. Keeps the
    /// queue fresh under sustained overload.
    ShedOldest,
}

/// Tuning knobs for [`Engine`](crate::Engine). Worker count is implied by
/// the number of replicas handed to `Engine::start`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission (request) queue capacity. Bounds memory and queueing
    /// delay; the backpressure `policy` decides what happens beyond it.
    pub queue_cap: usize,
    /// Flush a micro-batch as soon as it reaches this many requests.
    pub max_batch: usize,
    /// Flush a partial micro-batch this long after its first request
    /// arrived, so a lone request never waits for company that isn't
    /// coming.
    pub max_wait: Duration,
    /// Overload behavior of the admission queue.
    pub policy: BackpressurePolicy,
    /// Per-request deadline measured from `submit`. A request past its
    /// deadline is dropped wherever it is (queue, batcher, worker) and
    /// completed with [`ServeError::DeadlineExpired`]; a successful
    /// response is only ever delivered inside the deadline.
    pub deadline: Option<Duration>,
    /// Batches at least this large run through the threaded streaming
    /// pipeline (`run_streaming`) instead of frame-at-a-time inference,
    /// and their [`StreamStats`](bcp_finn::StreamStats) are accumulated
    /// for cycle-model correlation. `None` disables the streaming path.
    pub streaming_min_batch: Option<usize>,
    /// Integrity canary: a frame whose golden output is captured from the
    /// replicas at startup. Workers re-run it every `canary_every` batches;
    /// a mismatch (e.g. an SEU-style stuck-at fault in that worker's weight
    /// memory) marks the worker unhealthy, fails only its current batch,
    /// and removes it from dispatch — healthy workers keep serving.
    pub canary: Option<Tensor>,
    /// Batches between canary checks (1 = before every batch; meaningful
    /// only with `canary` set).
    pub canary_every: u64,
    /// Self-healing: when set, a canary-failed worker is quarantined
    /// instead of permanently removed — its thread attempts
    /// [`Replica::repair`](crate::Replica::repair) off the hot path, then
    /// must pass `probation_passes` consecutive canaries to rejoin
    /// dispatch (see [`RecoveryPolicy`]). `None` keeps the original
    /// one-way removal.
    pub recovery: Option<RecoveryPolicy>,
    /// Background scrubbing: when set, each worker calls
    /// [`Replica::scrub_tick`](crate::Replica::scrub_tick) with this many
    /// scrub units between inference batches, interleaving integrity
    /// sweeps with serving.
    pub background_scrub: Option<usize>,
    /// Request-lifecycle tracing (see [`bcp_trace`]). `None` — the
    /// default — compiles down to a single `None` branch per stamp site;
    /// `Some` head-samples requests at `trace.sample_rate` and records a
    /// timestamp at every hand-off of each sampled request.
    pub trace: Option<bcp_trace::TraceConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 64,
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            policy: BackpressurePolicy::Block,
            deadline: None,
            streaming_min_batch: None,
            canary: None,
            canary_every: 1,
            recovery: None,
            background_scrub: None,
            trace: None,
        }
    }
}

/// Why a request did not produce a classification. Every submitted request
/// resolves to exactly one `Ok(MaskClass)` or exactly one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Queue full under [`BackpressurePolicy::Reject`]; never enqueued.
    Rejected,
    /// Evicted from the queue under [`BackpressurePolicy::ShedOldest`].
    Shed,
    /// The configured deadline passed before a result was produced.
    DeadlineExpired,
    /// The worker holding this request failed its integrity canary or
    /// panicked mid-batch; the request was not retried.
    WorkerFault {
        /// Index of the faulty worker.
        worker: usize,
    },
    /// Every worker is unhealthy; the batch could not be dispatched.
    NoHealthyWorkers,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "rejected: admission queue full"),
            ServeError::Shed => write!(f, "shed: evicted by a newer request under overload"),
            ServeError::DeadlineExpired => write!(f, "deadline expired before completion"),
            ServeError::WorkerFault { worker } => {
                write!(f, "worker {worker} failed its integrity check")
            }
            ServeError::NoHealthyWorkers => write!(f, "no healthy workers remain"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.queue_cap >= c.max_batch);
        assert_eq!(c.policy, BackpressurePolicy::Block);
        assert!(c.deadline.is_none() && c.canary.is_none());
        assert!(c.max_wait > Duration::ZERO);
    }

    #[test]
    fn errors_render() {
        assert!(ServeError::WorkerFault { worker: 3 }
            .to_string()
            .contains('3'));
        assert!(ServeError::Rejected.to_string().contains("queue full"));
    }
}
