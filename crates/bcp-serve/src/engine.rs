//! The concurrent micro-batching inference engine.
//!
//! ```text
//!            submit()                dispatch (round-robin over
//!  clients ──────────► bounded MPMC ──────────► healthy workers)
//!            policy:    admission     batcher    ┌─ worker 0 ── replica 0
//!            Block /    queue         coalesces  ├─ worker 1 ── replica 1
//!            Reject /   (queue_cap)   batches    └─ worker N ── replica N
//!            ShedOldest               (max_batch │
//!                                      / max_wait)▼
//!                                             per-request oneshot slots
//! ```
//!
//! Invariants the stress suite pins:
//!
//! * **Exactly one response** per submitted request — an `Ok(MaskClass)`
//!   or one `ServeError` — regardless of policy, timeouts, worker faults
//!   or shutdown. Enforced by the oneshot [`Slot`] state machine.
//! * **Determinism**: with lossless settings, outputs equal the sequential
//!   reference for any worker count (replicas are bit-identical copies and
//!   requests are matched by ticket, not by arrival order).
//! * **Bounded overload**: the admission queue never exceeds `queue_cap`;
//!   beyond it the configured [`BackpressurePolicy`] decides, and no
//!   policy can deadlock the engine.
//! * **Fault isolation**: a replica that fails its integrity canary (or
//!   panics) fails only its current batch, leaves dispatch, and keeps
//!   draining its queue so the batcher can never wedge behind it. With a
//!   [`RecoveryPolicy`](crate::RecoveryPolicy) configured, the worker then
//!   runs the self-healing lifecycle off the hot path — `Quarantined` →
//!   repair → `Probation` → K consecutive canary passes → `Healthy` —
//!   instead of staying out forever (see [`crate::recovery`]).

use crate::config::{BackpressurePolicy, ServeConfig, ServeError};
use crate::oneshot::{Expired, Slot};
use crate::recovery::{WorkerState, WorkerStateCell};
use crate::replica::Replica;
use bcp_dataset::MaskClass;
use bcp_finn::StreamStats;
use bcp_telemetry::{Counter, Gauge, Histogram, Registry};
use bcp_tensor::Tensor;
use bcp_trace::{stamp, ActiveTrace, TraceEvent, TraceOutcome, Tracer};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use crossbeam::queue::ArrayQueue;
use parking_lot::{Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A request's final outcome.
pub type Completion = Result<MaskClass, ServeError>;

struct Request {
    frame: Tensor,
    slot: Arc<Slot<Completion>>,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Live trace for head-sampled requests; travels with the request so
    /// every stamp is a plain store by the thread that owns it. `None`
    /// (tracing off or not sampled) costs one branch per stamp site.
    trace: Option<Box<ActiveTrace>>,
}

/// Pre-resolved telemetry handles so the hot path never does a name
/// lookup. All under the `serve.` namespace.
struct Metrics {
    requests: Counter,
    ok: Counter,
    rejected: Counter,
    shed: Counter,
    expired: Counter,
    timeout: Counter,
    abandoned: Counter,
    failed: Counter,
    batches: Counter,
    worker_fault: Counter,
    queue_depth: Gauge,
    batch_size: Histogram,
    latency: Histogram,
    worker_batches: Vec<Counter>,
    /// Lifecycle gauges: the numeric [`WorkerState`] of each worker.
    worker_state: Vec<Gauge>,
    repaired: Counter,
    reinstated: Counter,
    retired: Counter,
}

impl Metrics {
    fn new(r: &Registry, workers: usize) -> Metrics {
        Metrics {
            requests: r.counter("serve.requests"),
            ok: r.counter("serve.ok"),
            rejected: r.counter("serve.rejected"),
            shed: r.counter("serve.shed"),
            expired: r.counter("serve.expired"),
            timeout: r.counter("serve.timeout"),
            abandoned: r.counter("serve.abandoned"),
            failed: r.counter("serve.failed"),
            batches: r.counter("serve.batches"),
            worker_fault: r.counter("serve.worker_fault"),
            queue_depth: r.gauge("serve.queue_depth"),
            batch_size: r.histogram("serve.batch_size"),
            latency: r.histogram("serve.latency_ns"),
            worker_batches: (0..workers)
                .map(|w| r.counter(&format!("serve.worker.{w}.batches")))
                .collect(),
            worker_state: (0..workers)
                .map(|w| r.gauge(&format!("serve.worker.{w}.state")))
                .collect(),
            repaired: r.counter("serve.worker.repaired"),
            reinstated: r.counter("serve.worker.reinstated"),
            retired: r.counter("serve.worker.retired"),
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    registry: Option<Registry>,
    metrics: Option<Metrics>,
    /// `None` once shutdown began; closing it is what drains the engine.
    submit_tx: RwLock<Option<Sender<Request>>>,
    /// Receiver clone used by `ShedOldest` to evict the oldest request.
    shed_rx: Receiver<Request>,
    /// Per-worker [`WorkerState`] bytes. Written only by the owning worker
    /// thread (single writer), read by the batcher and the public API.
    states: Vec<WorkerStateCell>,
    /// Pending chaos fault plans per worker, applied between batches.
    fault_mailboxes: Vec<Mutex<Vec<(usize, u64)>>>,
    /// Aggregate streaming statistics across all workers and batches.
    stream_stats: Mutex<Option<StreamStats>>,
    /// Request-lifecycle tracer (None = tracing disabled).
    tracer: Option<Arc<Tracer>>,
    /// Retired response slots awaiting reuse. A slot re-enters the pool
    /// only once `Arc::strong_count == 1` (see [`Shared::release_slot`]),
    /// so at steady state `submit` stops minting slot allocations.
    slot_pool: ArrayQueue<Arc<Slot<Completion>>>,
    /// Drained batch `Vec`s with their capacity intact, recycled between
    /// the batcher and the workers so sealing a batch stops allocating.
    shell_pool: ArrayQueue<Vec<Request>>,
}

impl Shared {
    fn m(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// Worker `w`'s lifecycle state. An out-of-range index (impossible by
    /// construction) reads as `Retired`, i.e. permanently out of rotation.
    fn state(&self, w: usize) -> WorkerState {
        self.states
            .get(w)
            .map_or(WorkerState::Retired, |c| c.load())
    }

    /// Transition worker `w` and mirror the state into its gauge.
    fn set_state(&self, w: usize, s: WorkerState) {
        if let Some(cell) = self.states.get(w) {
            cell.store(s);
        }
        if let Some(g) = self.m().and_then(|m| m.worker_state.get(w)) {
            // audit: allow(cast): WorkerState is a #[repr(u8)] enum of four variants — the cast is total
            g.set(s as u8 as f64);
        }
    }

    /// Finish a request's live trace (if it carries one), pushing the
    /// record onto `ring`.
    fn finish_trace(
        &self,
        trace: &mut Option<Box<ActiveTrace>>,
        outcome: TraceOutcome,
        ring: usize,
    ) {
        if let (Some(t), Some(tracer)) = (trace.take(), self.tracer.as_ref()) {
            tracer.finish(t, outcome, ring);
        }
    }

    /// Complete every request in `batch` with `err` (counted as failed),
    /// draining the shell in place so the caller can recycle it. `ring` is
    /// the calling thread's trace ring.
    fn fail_batch(&self, batch: &mut Vec<Request>, err: ServeError, ring: usize) {
        for mut req in batch.drain(..) {
            self.finish_trace(&mut req.trace, TraceOutcome::Failed, ring);
            if req.slot.complete(Err(err)) {
                if let Some(m) = self.m() {
                    m.failed.inc();
                }
            } else if let Some(m) = self.m() {
                m.abandoned.inc();
            }
            self.release_slot(req.slot);
        }
    }

    /// Drop requests whose deadline already passed, completing each with
    /// `DeadlineExpired`. `ring` is the calling thread's trace ring.
    fn expire(&self, batch: &mut Vec<Request>, ring: usize) {
        let now = Instant::now();
        batch.retain_mut(|req| {
            if req.deadline.is_some_and(|d| now >= d) {
                self.finish_trace(&mut req.trace, TraceOutcome::Expired, ring);
                if req.slot.complete(Err(ServeError::DeadlineExpired)) {
                    if let Some(m) = self.m() {
                        m.expired.inc();
                    }
                } else if let Some(m) = self.m() {
                    m.abandoned.inc();
                }
                false
            } else {
                true
            }
        });
    }

    /// The batcher thread's trace ring (0 when tracing is off).
    fn batcher_ring(&self) -> usize {
        self.tracer.as_ref().map_or(0, |t| t.batcher_ring())
    }

    /// Worker thread `w`'s trace ring (0 when tracing is off).
    fn worker_ring(&self, w: usize) -> usize {
        self.tracer.as_ref().map_or(0, |t| t.worker_ring(w))
    }

    /// The client/submitter trace ring (0 when tracing is off).
    fn client_ring(&self) -> usize {
        self.tracer.as_ref().map_or(0, |t| t.client_ring())
    }

    /// Pop a recycled response slot, or mint one on a pool miss. After the
    /// warm-up window every request is served from the pool.
    fn acquire_slot(&self) -> Arc<Slot<Completion>> {
        self.slot_pool.pop().unwrap_or_else(|| {
            // audit: allow(alloc): pool miss — at most ~2×queue_cap slots are ever minted before steady-state reuse takes over
            Arc::new(Slot::new())
        })
    }

    /// Return a resolved slot to the pool — but only when we hold the
    /// *last* reference. A strong count of 1 proves no client or worker
    /// can still complete or wait on it, and the count cannot grow again
    /// because cloning requires an existing handle; `reset` is therefore
    /// race-free. Callers pass ownership unconditionally and the slot
    /// simply drops when another handle is still live or the pool is full.
    fn release_slot(&self, slot: Arc<Slot<Completion>>) {
        if Arc::strong_count(&slot) == 1 {
            slot.reset();
            // audit: allow(alloc): lock-free store into the preallocated pool ring — no heap traffic
            let _ = self.slot_pool.push(slot);
        }
    }

    /// Pop a recycled batch shell (empty, capacity retained), or mint one
    /// sized for a full batch on a pool miss.
    fn acquire_shell(&self) -> Vec<Request> {
        self.shell_pool.pop().unwrap_or_else(|| {
            // audit: allow(alloc): pool miss — shells are minted once per unit of pipeline depth, then recycled forever
            Vec::with_capacity(self.cfg.max_batch)
        })
    }

    /// Return a drained batch shell to the pool, keeping its capacity for
    /// the next batch. A full pool lets the shell drop instead.
    fn release_shell(&self, mut shell: Vec<Request>) {
        shell.clear();
        // audit: allow(alloc): lock-free store into the preallocated pool ring — no heap traffic
        let _ = self.shell_pool.push(shell);
    }
}

/// Handle to one in-flight request. Consume it with [`Ticket::wait`];
/// dropping it instead leaves the request to complete unobserved (it is
/// still processed and counted).
pub struct Ticket {
    slot: Arc<Slot<Completion>>,
    deadline: Option<Instant>,
    shared: Arc<Shared>,
}

impl Ticket {
    /// Block until this request resolves. With a configured deadline the
    /// wait gives up at that deadline and the request is marked abandoned,
    /// so a late engine completion is dropped rather than duplicated.
    ///
    /// A delivered outcome also recycles the response slot: the engine
    /// side has already relinquished its handle by the time delivery is
    /// observable, so the waiter usually holds the last reference and the
    /// slot goes straight back into the pool.
    // bcp:hot-path — client-side completion pickup, once per request
    pub fn wait(self) -> Completion {
        // audit: allow(block): waiting for the response is the ticket's contract
        match self.slot.wait(self.deadline) {
            Ok(outcome) => {
                self.shared.release_slot(self.slot);
                outcome
            }
            Err(Expired) => {
                // The slot is now Abandoned and the engine still holds a
                // handle; the engine-side release recycles it after the
                // late completion is dropped.
                if let Some(m) = self.shared.m() {
                    m.timeout.inc();
                }
                Err(ServeError::DeadlineExpired)
            }
        }
    }
}

/// The serving engine. Create with [`Engine::start`], stop with
/// [`Engine::shutdown`] (also run on drop) — shutdown stops admission,
/// then drains every queued request through the workers before joining.
pub struct Engine {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Spawn the batcher and one worker thread per replica. All replicas
    /// must be functionally identical copies of the same model; when a
    /// canary is configured this is verified up front against replica 0's
    /// golden output.
    pub fn start<R: Replica>(
        replicas: Vec<R>,
        cfg: ServeConfig,
        registry: Option<Registry>,
    ) -> Engine {
        assert!(!replicas.is_empty(), "engine needs at least one replica");
        assert!(cfg.queue_cap > 0, "queue capacity must be positive");
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let workers = replicas.len();

        let canary: Option<(Tensor, Vec<i64>)> = cfg.canary.clone().map(|frame| {
            let expected = replicas[0].canary(&frame);
            for (i, r) in replicas.iter().enumerate().skip(1) {
                assert_eq!(
                    r.canary(&frame),
                    expected,
                    "replica {i} disagrees with replica 0 on the canary frame"
                );
            }
            (frame, expected)
        });

        let (submit_tx, request_rx) = bounded::<Request>(cfg.queue_cap);
        let shed_rx = request_rx.clone();
        let metrics = registry.as_ref().map(|r| Metrics::new(r, workers));
        let tracer = cfg
            .trace
            .clone()
            .map(|tc| Tracer::new(tc, workers, registry.as_ref()));
        // Pool capacities cover the worst-case number of live objects:
        // queued + in-flight + just-resolved slots stay under 2×queue_cap,
        // and shells under one forming + two queued per worker.
        let slot_pool = ArrayQueue::new(cfg.queue_cap.saturating_mul(2).max(1));
        let shell_pool = ArrayQueue::new(workers.saturating_mul(2).saturating_add(1));
        let shared = Arc::new(Shared {
            cfg,
            registry,
            metrics,
            submit_tx: RwLock::new(Some(submit_tx)),
            shed_rx,
            states: (0..workers)
                .map(|_| WorkerStateCell::new(WorkerState::Healthy))
                .collect(),
            fault_mailboxes: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            stream_stats: Mutex::new(None),
            tracer,
            slot_pool,
            shell_pool,
        });

        let mut handles = Vec::with_capacity(workers.saturating_add(1));
        let mut worker_txs = Vec::with_capacity(workers);
        for (w, replica) in replicas.into_iter().enumerate() {
            // Two batches of headroom per worker: one in flight, one ready.
            let (btx, brx) = bounded::<Vec<Request>>(2);
            worker_txs.push(btx);
            let shared = shared.clone();
            let canary = canary.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("bcp-serve-worker-{w}"))
                    .spawn(move || worker_loop(w, replica, brx, canary, shared))
                    .expect("spawn worker thread"),
            );
        }
        {
            let shared = shared.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("bcp-serve-batcher".into())
                    .spawn(move || batcher_loop(request_rx, worker_txs, shared))
                    .expect("spawn batcher thread"),
            );
        }
        Engine {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Enqueue one frame for classification. Returns a [`Ticket`] to wait
    /// on, or an immediate error when the backpressure policy refuses
    /// admission ([`ServeError::Rejected`]) or the engine is draining.
    /// The deadline, if any, comes from [`ServeConfig::deadline`].
    // bcp:hot-path — request admission and policy enforcement
    pub fn submit(&self, frame: &Tensor) -> Result<Ticket, ServeError> {
        let deadline = self
            .shared
            .cfg
            .deadline
            .and_then(|d| Instant::now().checked_add(d));
        self.submit_with_deadline(frame, deadline)
    }

    /// [`submit`](Engine::submit) with an explicit absolute deadline,
    /// overriding the engine-wide [`ServeConfig::deadline`]. This is how a
    /// network front door propagates each client's remaining deadline
    /// budget end-to-end: the budget is computed once at the wire and
    /// enforced at every hand-off inside the engine, so a retried request
    /// can never outlive what the client asked for.
    // bcp:hot-path — request admission and policy enforcement
    pub fn submit_with_deadline(
        &self,
        frame: &Tensor,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        // audit: allow(block): shutdown-gate RwLock; read-acquired, contended only at teardown
        let guard = self.shared.submit_tx.read();
        let Some(tx) = guard.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        if let Some(m) = self.shared.m() {
            m.requests.inc();
        }
        let now = Instant::now();
        let slot = self.shared.acquire_slot();
        // Head-sampling decision; a sampled trace is already stamped with
        // `Enqueue` and rides inside the request from here on.
        // audit: external — `sample` also names Tensor::sample; the tracer's sampler is audited at its own root
        let trace = self.shared.tracer.as_ref().and_then(|t| t.sample());
        let mut req = Request {
            // audit: allow(alloc): the single ingestion copy that decouples the caller's buffer from the pipeline (ROADMAP item 1 tracks batch-level reuse downstream of this point)
            frame: frame.clone(),
            slot: Arc::clone(&slot),
            enqueued: now,
            deadline,
            trace,
        };
        match self.shared.cfg.policy {
            BackpressurePolicy::Block => {
                // audit: allow(block): Block policy — the caller opted into parking on a full queue
                if let Err(e) = tx.send(req) {
                    let mut req = e.0;
                    self.shared.finish_trace(
                        &mut req.trace,
                        TraceOutcome::Failed,
                        self.shared.client_ring(),
                    );
                    return Err(ServeError::ShuttingDown);
                }
            }
            BackpressurePolicy::Reject => match tx.try_send(req) {
                Ok(()) => {}
                Err(TrySendError::Full(mut r)) => {
                    self.shared.finish_trace(
                        &mut r.trace,
                        TraceOutcome::Rejected,
                        self.shared.client_ring(),
                    );
                    if let Some(m) = self.shared.m() {
                        m.rejected.inc();
                    }
                    return Err(ServeError::Rejected);
                }
                Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
            },
            BackpressurePolicy::ShedOldest => loop {
                match tx.try_send(req) {
                    Ok(()) => break,
                    Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
                    Err(TrySendError::Full(r)) => {
                        req = r;
                        // Evict the head of the queue — the stalest
                        // request — and keep trying. If the batcher beat
                        // us to it, the queue has room now anyway.
                        if let Ok(mut victim) = self.shared.shed_rx.try_recv() {
                            self.shared.finish_trace(
                                &mut victim.trace,
                                TraceOutcome::Shed,
                                self.shared.client_ring(),
                            );
                            if victim.slot.complete(Err(ServeError::Shed)) {
                                if let Some(m) = self.shared.m() {
                                    m.shed.inc();
                                }
                            } else if let Some(m) = self.shared.m() {
                                m.abandoned.inc();
                            }
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
            },
        }
        if let Some(m) = self.shared.m() {
            m.queue_depth.set(self.shared.shed_rx.len() as f64);
        }
        Ok(Ticket {
            slot,
            deadline,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Submit and wait: the synchronous convenience used by closed-loop
    /// clients.
    pub fn classify(&self, frame: &Tensor) -> Completion {
        self.submit(frame)?.wait()
    }

    /// Queue chaos faults for a worker, applied to its replica before its
    /// next batch (the software analogue of SEU bit flips hitting one
    /// accelerator's weight SRAM while it serves).
    pub fn inject_faults(&self, worker: usize, n: usize, seed: u64) {
        self.shared.fault_mailboxes[worker].lock().push((n, seed));
    }

    /// Total workers (healthy or not).
    pub fn workers(&self) -> usize {
        self.shared.states.len()
    }

    /// Workers still in dispatch rotation.
    pub fn healthy_workers(&self) -> usize {
        self.worker_states()
            .into_iter()
            .filter(|s| *s == WorkerState::Healthy)
            .count()
    }

    /// Lifecycle state of one worker.
    pub fn worker_state(&self, w: usize) -> WorkerState {
        self.shared.state(w)
    }

    /// Lifecycle state of every worker, by index.
    pub fn worker_states(&self) -> Vec<WorkerState> {
        (0..self.shared.states.len())
            .map(|w| self.shared.state(w))
            .collect()
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.shed_rx.len()
    }

    /// Aggregate streaming-pipeline statistics accumulated so far (only
    /// populated when `streaming_min_batch` routed batches through the
    /// threaded pipeline). Feed to [`bcp_finn::correlation_report`].
    pub fn stream_stats(&self) -> Option<StreamStats> {
        self.shared.stream_stats.lock().clone()
    }

    /// The registry handed to [`Engine::start`], if any.
    pub fn registry(&self) -> Option<&Registry> {
        self.shared.registry.as_ref()
    }

    /// The request-lifecycle tracer, when `cfg.trace` was set. Drain it
    /// (after [`shutdown`](Engine::shutdown) for a complete picture) into
    /// a [`bcp_trace::TraceSet`] for flamegraphs and attribution reports.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.shared.tracer.clone()
    }

    /// Drain hook for shard orchestration: stop accepting new requests
    /// *without* joining the pipeline threads. Everything already admitted
    /// still flows through the workers and resolves normally; subsequent
    /// [`submit`](Engine::submit) calls fail fast with
    /// [`ServeError::ShuttingDown`], which is what lets a gateway fail
    /// over new traffic to another shard while this one finishes its
    /// in-flight work. Idempotent; [`shutdown`](Engine::shutdown) later
    /// completes the join.
    pub fn begin_drain(&self) {
        drop(self.shared.submit_tx.write().take());
    }

    /// Whether the engine has stopped accepting new requests (a drain or
    /// shutdown has begun).
    pub fn is_draining(&self) -> bool {
        self.shared.submit_tx.read().is_none()
    }

    /// Graceful shutdown: stop accepting, drain every queued request
    /// through the pipeline, join all threads. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the only Sender closes the admission queue; the batcher
        // drains it, then closes the worker queues, and the workers drain
        // those. Nothing in flight is lost.
        drop(self.shared.submit_tx.write().take());
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Coalesce queued requests into micro-batches and hand them to healthy
/// workers round-robin. Batches are built inside recycled shells from the
/// [`Shared::shell_pool`], so steady-state sealing does not allocate.
// bcp:hot-path — batch formation and dispatch
fn batcher_loop(rx: Receiver<Request>, worker_txs: Vec<Sender<Vec<Request>>>, shared: Arc<Shared>) {
    let mut next = 0usize;
    let mut closed = false;
    let ring = shared.batcher_ring();
    while !closed {
        // A batch opens when its first request arrives…
        // audit: allow(block): idle park awaiting the first request of a batch — the batcher's contract
        let mut first = match rx.recv() {
            Ok(r) => r,
            Err(_) => break,
        };
        stamp(
            &mut first.trace,
            &shared.tracer,
            TraceEvent::AdmissionDequeue,
        );
        let mut batch = shared.acquire_shell();
        // audit: allow(alloc): append into a recycled shell whose capacity is retained across batches
        batch.push(first);
        // …and flushes on size or age, whichever comes first.
        let now = Instant::now();
        let flush_at = now.checked_add(shared.cfg.max_wait).unwrap_or(now);
        while batch.len() < shared.cfg.max_batch {
            // audit: allow(block): deadline-bounded coalescing wait implementing cfg.max_wait
            match rx.recv_deadline(flush_at) {
                Ok(mut r) => {
                    stamp(&mut r.trace, &shared.tracer, TraceEvent::AdmissionDequeue);
                    // audit: allow(alloc): append into a recycled shell whose capacity is retained across batches
                    batch.push(r);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    closed = true;
                    break;
                }
            }
        }
        if shared.tracer.is_some() {
            for r in &mut batch {
                stamp(&mut r.trace, &shared.tracer, TraceEvent::BatchSeal);
            }
        }
        shared.expire(&mut batch, ring);
        if batch.is_empty() {
            shared.release_shell(batch);
            continue;
        }
        if let Some(m) = shared.m() {
            m.batch_size.record(batch.len() as u64);
            m.batches.inc();
        }
        match next_healthy(&shared.states, &mut next).and_then(|w| Some((w, worker_txs.get(w)?))) {
            Some((w, tx)) => {
                // audit: allow(block): bounded worker hand-off — two batches of headroom is the designed backpressure
                if let Err(e) = tx.send(batch) {
                    // Worker thread gone (can only happen on teardown).
                    let mut failed = e.0;
                    shared.fail_batch(&mut failed, ServeError::WorkerFault { worker: w }, ring);
                    shared.release_shell(failed);
                }
            }
            None => {
                shared.fail_batch(&mut batch, ServeError::NoHealthyWorkers, ring);
                shared.release_shell(batch);
            }
        }
    }
}

fn next_healthy(states: &[WorkerStateCell], next: &mut usize) -> Option<usize> {
    let n = states.len();
    for _ in 0..n {
        // `n > 0` whenever the loop body runs, so the rem cannot fail.
        let w = next.checked_rem(n)?;
        *next = w.wrapping_add(1);
        if states
            .get(w)
            .is_some_and(|c| c.load() == WorkerState::Healthy)
        {
            return Some(w);
        }
    }
    None
}

/// One worker: owns a replica, pulls batches, gates each on the integrity
/// canary, infers, completes slots. Never exits before its queue closes —
/// an unhealthy worker degrades to failing its traffic so the batcher can
/// never block forever behind it. With a recovery policy configured, an
/// off-rotation worker additionally runs repair attempts and probation
/// canaries between (timed) queue polls, entirely off the serving path.
// bcp:hot-path — batch execution and completion
fn worker_loop<R: Replica>(
    w: usize,
    mut replica: R,
    rx: Receiver<Vec<Request>>,
    canary: Option<(Tensor, Vec<i64>)>,
    shared: Arc<Shared>,
) {
    let mut batches_done = 0u64;
    let mut strikes = 0u32;
    let mut probation_passes = 0u32;
    // Per-worker scratch the inference frames are moved into, reused
    // across every batch this worker ever serves.
    // audit: allow(alloc): one-time per-worker scratch; its capacity is retained for the thread's lifetime
    let mut frames: Vec<Tensor> = Vec::new();
    loop {
        // An off-rotation worker wakes on a timer so repair and probation
        // work proceeds even with no traffic racing in; a healthy worker
        // blocks on its queue as before.
        let recovery_wait = match shared.cfg.recovery {
            Some(policy)
                if matches!(
                    shared.state(w),
                    WorkerState::Quarantined | WorkerState::Probation
                ) =>
            {
                Some(policy.retry_interval)
            }
            _ => None,
        };
        let received = match recovery_wait {
            // audit: allow(block): timed queue poll so off-rotation recovery work keeps a heartbeat
            Some(interval) => match rx.recv_timeout(interval) {
                Ok(b) => Some(b),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            },
            // audit: allow(block): idle park on the worker's batch queue — the worker's contract
            None => match rx.recv() {
                Ok(b) => Some(b),
                Err(_) => break,
            },
        };

        if let Some(mut batch) = received {
            if shared.tracer.is_some() {
                for r in &mut batch {
                    stamp(&mut r.trace, &shared.tracer, TraceEvent::WorkerDispatch);
                    if let Some(t) = r.trace.as_mut() {
                        t.set_worker(w);
                    }
                }
            }
            // Apply chaos faults queued for this worker (simulated SEUs
            // land between batches, like real upsets land between frames).
            if let Some(mailbox) = shared.fault_mailboxes.get(w) {
                // audit: allow(block): chaos-fault mailbox — empty and uncontended outside fault-injection tests
                let plans: Vec<(usize, u64)> = std::mem::take(&mut *mailbox.lock());
                for (n, seed) in plans {
                    // audit: external — chaos fault injection is test plumbing, not serving work
                    replica.inject_faults(n, seed);
                }
            }

            if shared.state(w) == WorkerState::Healthy {
                serve_batch(
                    w,
                    &mut replica,
                    &mut batch,
                    &mut frames,
                    &canary,
                    &shared,
                    &mut batches_done,
                );
                if shared.state(w) == WorkerState::Healthy {
                    if let Some(units) = shared.cfg.background_scrub {
                        // audit: external — background scrubbing belongs to the guard layer and is audited there
                        replica.scrub_tick(units);
                    }
                }
            } else {
                // Out of rotation; drain any batch that raced in.
                shared.fail_batch(
                    &mut batch,
                    ServeError::WorkerFault { worker: w },
                    shared.worker_ring(w),
                );
            }
            shared.release_shell(batch);
        }

        if let Some(policy) = shared.cfg.recovery {
            recovery_step(
                w,
                &mut replica,
                &canary,
                &shared,
                policy,
                &mut strikes,
                &mut probation_passes,
            );
        }
    }
}

/// One recovery increment for an off-rotation worker: a quarantined
/// replica attempts `repair()`; a probation replica runs one canary.
/// Transitions (and their `serve.worker.*` metrics) happen here, on the
/// worker's own thread — the single writer of its state byte.
// audit: cold — repair and probation run off-rotation, never on the serving path
fn recovery_step<R: Replica>(
    w: usize,
    replica: &mut R,
    canary: &Option<(Tensor, Vec<i64>)>,
    shared: &Shared,
    policy: crate::recovery::RecoveryPolicy,
    strikes: &mut u32,
    probation_passes: &mut u32,
) {
    let strike_out = |strikes: &mut u32, fallback: WorkerState| {
        *strikes = strikes.saturating_add(1);
        if *strikes >= policy.max_strikes {
            shared.set_state(w, WorkerState::Retired);
            if let Some(m) = shared.m() {
                m.retired.inc();
            }
        } else {
            shared.set_state(w, fallback);
        }
    };
    match shared.state(w) {
        WorkerState::Quarantined => {
            let repaired = catch_unwind(AssertUnwindSafe(|| replica.repair())).unwrap_or(false);
            if repaired {
                *probation_passes = 0;
                shared.set_state(w, WorkerState::Probation);
                if let Some(m) = shared.m() {
                    m.repaired.inc();
                }
            } else {
                strike_out(strikes, WorkerState::Quarantined);
            }
        }
        WorkerState::Probation => {
            let pass = match canary {
                Some((frame, expected)) => {
                    catch_unwind(AssertUnwindSafe(|| replica.canary(frame)))
                        .ok()
                        .as_deref()
                        == Some(expected.as_slice())
                }
                // No canary configured: nothing to prove against.
                None => true,
            };
            if pass {
                *probation_passes = probation_passes.saturating_add(1);
                if *probation_passes >= policy.probation_passes {
                    *strikes = 0;
                    shared.set_state(w, WorkerState::Healthy);
                    if let Some(m) = shared.m() {
                        m.reinstated.inc();
                    }
                }
            } else {
                // The repair did not take: back to quarantine (or out).
                *probation_passes = 0;
                strike_out(strikes, WorkerState::Quarantined);
            }
        }
        WorkerState::Healthy | WorkerState::Retired => {}
    }
}

/// Canary-gate and run one batch on a healthy worker, completing every
/// slot. On a canary mismatch or a panic the worker leaves rotation
/// (`Quarantined`) and the batch fails with `WorkerFault`.
///
/// `batch` is always drained before returning so the caller can recycle
/// the shell; `frames` is the worker's long-lived scratch that each
/// request's tensor is *moved* into (no per-batch copies).
fn serve_batch<R: Replica>(
    w: usize,
    replica: &mut R,
    batch: &mut Vec<Request>,
    frames: &mut Vec<Tensor>,
    canary: &Option<(Tensor, Vec<i64>)>,
    shared: &Shared,
    batches_done: &mut u64,
) {
    let ring = shared.worker_ring(w);
    // Integrity gate: with canary_every = 1 a corrupted replica can
    // never emit a wrong classification, because every batch is
    // preceded by a golden-output check.
    if let Some((frame, expected)) = canary {
        if shared.cfg.canary_every > 0 && batches_done.is_multiple_of(shared.cfg.canary_every) {
            // audit: external — the canary runs the replica's own inference, audited at the kernel roots
            let got = catch_unwind(AssertUnwindSafe(|| replica.canary(frame))).ok();
            if got.as_deref() != Some(expected.as_slice()) {
                shared.set_state(w, WorkerState::Quarantined);
                if let Some(m) = shared.m() {
                    m.worker_fault.inc();
                }
                shared.fail_batch(batch, ServeError::WorkerFault { worker: w }, ring);
                return;
            }
        }
    }
    *batches_done = batches_done.saturating_add(1);

    shared.expire(batch, ring);
    if batch.is_empty() {
        return;
    }
    frames.clear();
    // Frames are moved out of the requests (each leaves a rank-0
    // placeholder behind); the scratch's capacity is reused every batch.
    // audit: allow(alloc): refills the per-worker scratch in place — `mem::take` moves each frame without copying
    frames.extend(batch.iter_mut().map(|r| std::mem::take(&mut r.frame)));
    let frames: &[Tensor] = frames;
    let stream = shared
        .cfg
        .streaming_min_batch
        .is_some_and(|min| frames.len() >= min);
    if shared.tracer.is_some() {
        let size = batch.len();
        for r in batch.iter_mut() {
            stamp(&mut r.trace, &shared.tracer, TraceEvent::ComputeStart);
            if let Some(t) = r.trace.as_mut() {
                t.set_batch_size(size);
            }
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if stream {
            // audit: external — replica inference is audited at the XNOR kernel roots
            if let Some((classes, stats)) = replica.infer_batch_streaming(frames) {
                return (classes, Some(stats));
            }
        }
        // audit: external — replica inference is audited at the XNOR kernel roots
        (replica.infer_batch(frames), None)
    }));
    if shared.tracer.is_some() {
        for r in batch.iter_mut() {
            stamp(&mut r.trace, &shared.tracer, TraceEvent::ComputeEnd);
        }
    }
    match outcome {
        Ok((classes, stats)) if classes.len() == batch.len() => {
            if let Some(stats) = stats {
                if let Some(r) = &shared.registry {
                    // audit: external — streaming-stats export runs only on streaming batches, off steady state
                    stats.record_into(r);
                }
                // Per-pipeline-stage compute sub-spans for the traced
                // requests of this batch (shared, one Arc per batch).
                if shared.tracer.is_some() && batch.iter().any(|r| r.trace.is_some()) {
                    // audit: external — per-frame stage attribution runs only for traced streaming batches
                    // audit: allow(alloc): one shared Arc of stage spans per traced batch, amortized over its requests
                    let stages = std::sync::Arc::new(stats.stage_busy_per_frame());
                    for r in batch.iter_mut() {
                        if let Some(t) = r.trace.as_mut() {
                            t.set_stage_ns(std::sync::Arc::clone(&stages));
                        }
                    }
                }
                // audit: allow(block): streaming-stats aggregation, taken only when a streaming batch completes
                let mut agg = shared.stream_stats.lock();
                match &mut *agg {
                    // audit: external — stats merging is accounting, not serving work
                    Some(a) => a.merge(&stats),
                    None => *agg = Some(stats),
                }
            }
            let now = Instant::now();
            for (mut req, class) in batch.drain(..).zip(classes) {
                if req.deadline.is_some_and(|d| now >= d) {
                    // Result exists but arrived too late to honor the
                    // deadline contract: a success is only delivered
                    // inside its deadline.
                    shared.finish_trace(&mut req.trace, TraceOutcome::Expired, ring);
                    if req.slot.complete(Err(ServeError::DeadlineExpired)) {
                        if let Some(m) = shared.m() {
                            m.expired.inc();
                        }
                    } else if let Some(m) = shared.m() {
                        m.abandoned.inc();
                    }
                    shared.release_slot(req.slot);
                    continue;
                }
                let latency = now.duration_since(req.enqueued);
                let delivered = req.slot.complete(Ok(class));
                shared.finish_trace(&mut req.trace, TraceOutcome::Ok, ring);
                if delivered {
                    if let Some(m) = shared.m() {
                        m.ok.inc();
                        m.latency.record_duration(latency);
                    }
                } else if let Some(m) = shared.m() {
                    m.abandoned.inc();
                }
                shared.release_slot(req.slot);
            }
            if let Some(c) = shared.m().and_then(|m| m.worker_batches.get(w)) {
                c.inc();
            }
        }
        // Panicked mid-inference, or the replica broke its length
        // contract: treat both as a hard worker fault.
        _ => {
            shared.set_state(w, WorkerState::Quarantined);
            if let Some(m) = shared.m() {
                m.worker_fault.inc();
            }
            shared.fail_batch(batch, ServeError::WorkerFault { worker: w }, ring);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use crate::replica::{canary_frame, SyntheticReplica};
    use std::time::Duration;

    fn frames(n: usize) -> Vec<Tensor> {
        (0..n).map(|i| canary_frame(3, 8, 8 + i % 5)).collect()
    }

    fn engine(workers: usize, cfg: ServeConfig) -> Engine {
        let replicas: Vec<SyntheticReplica> =
            (0..workers).map(|_| SyntheticReplica::new()).collect();
        Engine::start(replicas, cfg, Some(Registry::new()))
    }

    #[test]
    fn classify_matches_reference_replica() {
        let e = engine(2, ServeConfig::default());
        let mut reference = SyntheticReplica::new();
        for f in frames(12) {
            assert_eq!(
                e.classify(&f),
                Ok(reference.infer_batch(std::slice::from_ref(&f))[0])
            );
        }
    }

    #[test]
    fn pipelined_submission_preserves_per_ticket_identity() {
        let e = engine(3, ServeConfig::default());
        let fs = frames(40);
        let tickets: Vec<Ticket> = fs.iter().map(|f| e.submit(f).unwrap()).collect();
        let mut reference = SyntheticReplica::new();
        let want = reference.infer_batch(&fs);
        for (t, w) in tickets.into_iter().zip(want) {
            assert_eq!(t.wait(), Ok(w));
        }
        // Quiesce before auditing the books: workers bump counters *after*
        // completing the slot, so a snapshot racing the last wakeup can lag.
        e.shutdown();
        let snap = e.registry().unwrap().snapshot();
        assert_eq!(snap.counters["serve.ok"], 40);
        assert_eq!(snap.counters["serve.requests"], 40);
        assert!(snap.histograms["serve.batch_size"].max <= 8);
        assert_eq!(snap.histograms["serve.latency_ns"].count, 40);
    }

    #[test]
    fn reject_policy_bounds_the_queue_without_losing_responses() {
        let replicas = vec![SyntheticReplica::with_delay(Duration::from_millis(5))];
        let e = Engine::start(
            replicas,
            ServeConfig {
                queue_cap: 2,
                max_batch: 1,
                policy: BackpressurePolicy::Reject,
                ..ServeConfig::default()
            },
            Some(Registry::new()),
        );
        let fs = frames(30);
        let mut tickets = Vec::new();
        let mut rejected = 0usize;
        for f in &fs {
            match e.submit(f) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Rejected) => rejected += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        let ok = tickets
            .into_iter()
            .filter(|_| true)
            .map(Ticket::wait)
            .filter(Result::is_ok)
            .count();
        assert_eq!(
            ok + rejected,
            fs.len(),
            "every request resolves exactly once"
        );
        assert!(
            rejected > 0,
            "queue of 2 with 5ms service must reject some of 30 fast submits"
        );
        e.shutdown();
        let snap = e.registry().unwrap().snapshot();
        assert_eq!(snap.counters["serve.ok"], ok as u64);
        assert_eq!(snap.counters["serve.rejected"], rejected as u64);
    }

    #[test]
    fn shed_oldest_completes_victims_with_shed() {
        let replicas = vec![SyntheticReplica::with_delay(Duration::from_millis(5))];
        let e = Engine::start(
            replicas,
            ServeConfig {
                queue_cap: 2,
                max_batch: 1,
                policy: BackpressurePolicy::ShedOldest,
                ..ServeConfig::default()
            },
            Some(Registry::new()),
        );
        let fs = frames(30);
        let tickets: Vec<Ticket> = fs
            .iter()
            .map(|f| e.submit(f).expect("shed never refuses"))
            .collect();
        let (mut ok, mut shed) = (0usize, 0usize);
        for t in tickets {
            match t.wait() {
                Ok(_) => ok += 1,
                Err(ServeError::Shed) => shed += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(ok + shed, fs.len());
        assert!(shed > 0, "sustained overload must shed");
        e.shutdown();
        let snap = e.registry().unwrap().snapshot();
        assert_eq!(snap.counters["serve.shed"], shed as u64);
    }

    #[test]
    fn deadlines_expire_slow_requests() {
        let replicas = vec![SyntheticReplica::with_delay(Duration::from_millis(20))];
        let e = Engine::start(
            replicas,
            ServeConfig {
                max_batch: 1,
                deadline: Some(Duration::from_millis(30)),
                ..ServeConfig::default()
            },
            Some(Registry::new()),
        );
        let fs = frames(6);
        let tickets: Vec<Ticket> = fs.iter().map(|f| e.submit(f).unwrap()).collect();
        let outcomes: Vec<Completion> = tickets.into_iter().map(Ticket::wait).collect();
        let expired = outcomes
            .iter()
            .filter(|o| **o == Err(ServeError::DeadlineExpired))
            .count();
        assert!(
            expired > 0,
            "20ms/frame × 6 against a 30ms deadline must expire some"
        );
        for o in &outcomes {
            assert!(
                matches!(o, Ok(_) | Err(ServeError::DeadlineExpired)),
                "got {o:?}"
            );
        }
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let e = engine(2, ServeConfig::default());
        let fs = frames(16);
        let tickets: Vec<Ticket> = fs.iter().map(|f| e.submit(f).unwrap()).collect();
        e.shutdown();
        assert!(matches!(e.submit(&fs[0]), Err(ServeError::ShuttingDown)));
        for t in tickets {
            assert!(t.wait().is_ok(), "drained request must still succeed");
        }
    }

    #[test]
    fn canary_fault_takes_one_worker_out_of_rotation() {
        let cfg = ServeConfig {
            canary: Some(canary_frame(3, 8, 8)),
            canary_every: 1,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let e = engine(2, cfg);
        e.inject_faults(0, 1, 42);
        let f = frames(1).remove(0);
        // Round-robin sends the first batch to worker 0, which detects the
        // fault at its canary gate and fails only that batch.
        assert_eq!(e.classify(&f), Err(ServeError::WorkerFault { worker: 0 }));
        assert_eq!(e.healthy_workers(), 1);
        // Everything afterwards lands on the healthy worker.
        for f in frames(6) {
            assert!(e.classify(&f).is_ok());
        }
        e.shutdown();
        let snap = e.registry().unwrap().snapshot();
        assert_eq!(snap.counters["serve.worker_fault"], 1);
    }

    #[test]
    fn all_workers_faulted_yields_no_healthy_workers() {
        let cfg = ServeConfig {
            canary: Some(canary_frame(3, 8, 8)),
            canary_every: 1,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let e = engine(1, cfg);
        e.inject_faults(0, 1, 7);
        let f = frames(1).remove(0);
        assert_eq!(e.classify(&f), Err(ServeError::WorkerFault { worker: 0 }));
        assert_eq!(e.healthy_workers(), 0);
        assert_eq!(e.classify(&f), Err(ServeError::NoHealthyWorkers));
    }

    /// Poll `cond` for up to two seconds — recovery runs on worker
    /// threads at `retry_interval` pace, so tests wait rather than race.
    fn eventually(mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    fn recovery_cfg() -> ServeConfig {
        ServeConfig {
            canary: Some(canary_frame(3, 8, 8)),
            canary_every: 1,
            max_batch: 1,
            recovery: Some(crate::recovery::RecoveryPolicy {
                probation_passes: 2,
                max_strikes: 3,
                retry_interval: Duration::from_millis(1),
            }),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn quarantined_worker_repairs_and_rejoins() {
        let e = Engine::start(
            vec![SyntheticReplica::repairable()],
            recovery_cfg(),
            Some(Registry::new()),
        );
        e.inject_faults(0, 1, 42);
        let f = frames(1).remove(0);
        // The corrupted worker is caught at the canary gate, never serving
        // a wrong answer, and leaves rotation…
        assert_eq!(e.classify(&f), Err(ServeError::WorkerFault { worker: 0 }));
        // …then repairs off the hot path, passes probation, and rejoins.
        assert!(
            eventually(|| e.worker_state(0) == WorkerState::Healthy),
            "repairable worker must be reinstated, stuck in {}",
            e.worker_state(0)
        );
        for f in frames(6) {
            assert!(e.classify(&f).is_ok());
        }
        e.shutdown();
        let snap = e.registry().unwrap().snapshot();
        assert_eq!(snap.counters["serve.worker.repaired"], 1);
        assert_eq!(snap.counters["serve.worker.reinstated"], 1);
        assert_eq!(snap.gauges["serve.worker.0.state"], 0.0);
    }

    #[test]
    fn unrepairable_worker_retires_after_strikes() {
        // Default SyntheticReplica cannot repair: quarantine must escalate
        // to retirement after max_strikes failed attempts, not spin.
        let e = Engine::start(
            vec![SyntheticReplica::new(), SyntheticReplica::new()],
            recovery_cfg(),
            Some(Registry::new()),
        );
        e.inject_faults(0, 1, 7);
        let f = frames(1).remove(0);
        assert_eq!(e.classify(&f), Err(ServeError::WorkerFault { worker: 0 }));
        assert!(
            eventually(|| e.worker_state(0) == WorkerState::Retired),
            "unrepairable worker must retire, stuck in {}",
            e.worker_state(0)
        );
        assert_eq!(e.healthy_workers(), 1);
        // The survivor keeps serving.
        for f in frames(4) {
            assert!(e.classify(&f).is_ok());
        }
        e.shutdown();
        let snap = e.registry().unwrap().snapshot();
        assert_eq!(snap.counters["serve.worker.retired"], 1);
        assert_eq!(snap.gauges["serve.worker.0.state"], 3.0);
    }

    #[test]
    fn recovered_worker_survives_repeat_faults_until_strikes_run_out() {
        let e = Engine::start(
            vec![SyntheticReplica::repairable()],
            recovery_cfg(),
            Some(Registry::new()),
        );
        let f = frames(1).remove(0);
        for round in 0..3 {
            e.inject_faults(0, 1, round as u64);
            assert_eq!(e.classify(&f), Err(ServeError::WorkerFault { worker: 0 }));
            assert!(
                eventually(|| e.worker_state(0) == WorkerState::Healthy),
                "round {round}: worker stuck in {}",
                e.worker_state(0)
            );
            assert!(e.classify(&f).is_ok());
        }
        e.shutdown();
        let snap = e.registry().unwrap().snapshot();
        assert_eq!(snap.counters["serve.worker.repaired"], 3);
        assert_eq!(snap.counters["serve.worker.reinstated"], 3);
        assert_eq!(snap.counters["serve.worker_fault"], 3);
    }

    #[test]
    fn begin_drain_refuses_new_work_but_resolves_in_flight() {
        let e = engine(2, ServeConfig::default());
        let fs = frames(12);
        let tickets: Vec<Ticket> = fs.iter().map(|f| e.submit(f).unwrap()).collect();
        e.begin_drain();
        assert!(e.is_draining());
        assert!(matches!(e.submit(&fs[0]), Err(ServeError::ShuttingDown)));
        for t in tickets {
            assert!(t.wait().is_ok(), "drained request must still resolve");
        }
        // Idempotent, and shutdown still joins cleanly afterwards.
        e.begin_drain();
        e.shutdown();
    }

    #[test]
    fn per_request_deadline_overrides_engine_config() {
        // Engine has NO configured deadline; the per-request one must
        // still be enforced end-to-end.
        let replicas = vec![SyntheticReplica::with_delay(Duration::from_millis(20))];
        let e = Engine::start(
            replicas,
            ServeConfig {
                max_batch: 1,
                ..ServeConfig::default()
            },
            Some(Registry::new()),
        );
        let fs = frames(5);
        let deadline = Instant::now() + Duration::from_millis(25);
        let tickets: Vec<Ticket> = fs
            .iter()
            .map(|f| e.submit_with_deadline(f, Some(deadline)).unwrap())
            .collect();
        let outcomes: Vec<Completion> = tickets.into_iter().map(Ticket::wait).collect();
        assert!(
            outcomes.contains(&Err(ServeError::DeadlineExpired)),
            "5 × 20ms of work against a 25ms budget must expire some: {outcomes:?}"
        );
        for o in &outcomes {
            assert!(matches!(o, Ok(_) | Err(ServeError::DeadlineExpired)));
        }
    }

    #[test]
    fn boxed_replicas_serve_like_concrete_ones() {
        let replicas: Vec<Box<dyn crate::Replica>> = vec![
            Box::new(SyntheticReplica::new()),
            Box::new(SyntheticReplica::new()),
        ];
        let e = Engine::start(replicas, ServeConfig::default(), None);
        let mut reference = SyntheticReplica::new();
        for f in frames(8) {
            assert_eq!(
                e.classify(&f),
                Ok(reference.infer_batch(std::slice::from_ref(&f))[0])
            );
        }
    }

    #[test]
    fn zero_delay_batching_coalesces_under_pressure() {
        let e = engine(
            1,
            ServeConfig {
                max_batch: 4,
                ..ServeConfig::default()
            },
        );
        let fs = frames(32);
        let tickets: Vec<Ticket> = fs.iter().map(|f| e.submit(f).unwrap()).collect();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        e.shutdown();
        let snap = e.registry().unwrap().snapshot();
        // 32 requests in at most-4 batches: at least 8 batches, and the
        // batcher must never exceed the configured cap.
        assert!(snap.counters["serve.batches"] >= 8);
        assert!(snap.histograms["serve.batch_size"].max <= 4);
    }
}
