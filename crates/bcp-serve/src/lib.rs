//! Concurrent micro-batching inference serving for BinaryCoP.
//!
//! The paper's deployment scenario is continuous: cameras at building
//! entries stream frames to an edge accelerator ("automatic entrance
//! control", Sec. I). A single `classify` call per frame leaves the
//! accelerator idle between arrivals and gives no story for overload,
//! multiple cameras, or a flipped bit in weight SRAM. This crate adds the
//! serving layer between those cameras and the model:
//!
//! * **Admission** — a bounded MPMC queue with an explicit
//!   [`BackpressurePolicy`]: block (lossless), reject at the door, or shed
//!   the oldest queued frame. Memory and queueing delay stay bounded by
//!   construction.
//! * **Micro-batching** — a batcher thread coalesces queued requests and
//!   flushes on `max_batch` *or* `max_wait`, whichever first, trading a
//!   bounded latency tax for per-batch amortization.
//! * **Worker pool** — one thread per model [`Replica`], dispatched
//!   round-robin. Each worker owns its replica mutably, so replica state
//!   cannot be shared-corrupted across workers.
//! * **Exactly-one-response** — every submitted request resolves to one
//!   `Ok(MaskClass)` or one [`ServeError`] via a single-use oneshot
//!   [`Slot`](oneshot::Slot), including under deadline expiry, overload,
//!   worker faults and shutdown.
//! * **Fault isolation** — an optional canary frame re-checked between
//!   batches turns silent weight-memory corruption (the SEU model of
//!   `bcp_finn::fault`) into a detected [`ServeError::WorkerFault`] that
//!   takes only that worker out of rotation.
//! * **Observability** — queue depth, batch-size and latency histograms,
//!   and outcome counters under the `serve.*` namespace of a
//!   `bcp_telemetry::Registry`.
//!
//! The model is abstracted behind [`Replica`]; `binarycop::serve` plugs
//! the real predictor in, and [`SyntheticReplica`] keeps this crate's own
//! tests model-free. [`loadgen`] provides the closed-loop harness used by
//! `bcp serve-bench` and the stress suite.

#![forbid(unsafe_code)]
#![warn(clippy::arithmetic_side_effects)]

// Under `--cfg bcp_model` only the two model-checked structures are
// compiled — the oneshot `Slot` and the `WorkerState` machinery — since
// the full engine pulls in channels, wall-clock time and model crates
// the model runtime does not provide. See DESIGN.md §"Concurrency
// invariants".
#[cfg(not(bcp_model))]
pub mod config;
#[cfg(not(bcp_model))]
pub mod engine;
#[cfg(not(bcp_model))]
pub mod loadgen;
pub mod oneshot;
pub mod recovery;
#[cfg(not(bcp_model))]
pub mod replica;

#[cfg(not(bcp_model))]
pub use config::{BackpressurePolicy, ServeConfig, ServeError};
#[cfg(not(bcp_model))]
pub use engine::{Completion, Engine, Ticket};
#[cfg(not(bcp_model))]
pub use loadgen::{run_closed_loop, run_closed_loop_pipelined, LoadReport};
pub use recovery::{RecoveryPolicy, WorkerState, WorkerStateCell};
#[cfg(not(bcp_model))]
pub use replica::{canary_frame, Replica, SyntheticReplica};
