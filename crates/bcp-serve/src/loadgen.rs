//! Closed-loop load generators and their throughput/latency report.
//!
//! Two client models:
//!
//! * [`run_closed_loop`] — each client holds exactly one request in
//!   flight: submit, wait, repeat (the classic benchmark-harness model,
//!   and gate mode's camera setting — a camera cannot have two "current"
//!   frames). On a single core every frame then pays a full round-trip
//!   thread wake before the next can even be submitted.
//! * [`run_closed_loop_pipelined`] — each client keeps `depth` tickets
//!   outstanding (submit until `depth` deep, then wait-oldest, submit
//!   next). This is crowd mode's actual shape: one camera frame yields
//!   several face crops that are all submitted together, so the engine's
//!   admission queue stays deep enough to seal full batches without
//!   waiting out `max_wait`, and one client wake collects a whole burst
//!   of completions.
//!
//! In both, offered load tracks service capacity; saturation shows up as
//! latency growth rather than unbounded queueing.

use crate::config::ServeError;
use crate::engine::Engine;
use bcp_tensor::Tensor;
use std::time::{Duration, Instant};

/// Outcome tallies and latency distribution of one closed-loop run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests attempted (`clients × requests_per_client`).
    pub total: usize,
    /// Successful classifications.
    pub ok: usize,
    /// Refused at admission (`Rejected`).
    pub rejected: usize,
    /// Evicted from the queue (`Shed`).
    pub shed: usize,
    /// Deadline expiries (engine- or client-side).
    pub expired: usize,
    /// Worker-fault and no-healthy-worker failures.
    pub faulted: usize,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// Successful classifications per second of wall time.
    pub throughput_fps: f64,
    /// Median successful-request latency.
    pub p50: Duration,
    /// 95th-percentile successful-request latency.
    pub p95: Duration,
    /// 99th-percentile successful-request latency.
    pub p99: Duration,
    /// Worst successful-request latency.
    pub max: Duration,
}

impl LoadReport {
    /// Every attempted request resolved to exactly one outcome.
    pub fn accounted(&self) -> bool {
        self.ok
            .saturating_add(self.rejected)
            .saturating_add(self.shed)
            .saturating_add(self.expired)
            .saturating_add(self.faulted)
            == self.total
    }

    /// Human-readable multi-line summary for CLI output.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "clients {:>3}  requests {:>6}  wall {:>8.3}s  throughput {:>9.1} fps\n",
            self.clients,
            self.total,
            self.wall.as_secs_f64(),
            self.throughput_fps
        ));
        s.push_str(&format!(
            "outcomes   ok {}  rejected {}  shed {}  expired {}  faulted {}\n",
            self.ok, self.rejected, self.shed, self.expired, self.faulted
        ));
        s.push_str(&format!(
            "latency    p50 {:>8.3}ms  p95 {:>8.3}ms  p99 {:>8.3}ms  max {:>8.3}ms",
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
        ));
        s
    }
}

/// Drive `engine` with `clients` concurrent closed-loop clients, each
/// issuing `requests_per_client` requests drawn round-robin from `frames`
/// (staggered per client so simultaneous clients don't all send the same
/// frame). Latency percentiles are exact, computed over every successful
/// request.
pub fn run_closed_loop(
    engine: &Engine,
    frames: &[Tensor],
    clients: usize,
    requests_per_client: usize,
) -> LoadReport {
    assert!(
        !frames.is_empty(),
        "load generator needs at least one frame"
    );
    assert!(clients > 0, "need at least one client");
    let started = Instant::now();
    let per_client: Vec<(Vec<u64>, [usize; 5])> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    // [ok, rejected, shed, expired, faulted]
                    let mut tally = [0usize; 5];
                    for i in 0..requests_per_client {
                        let idx = c
                            .saturating_add(i.saturating_mul(clients))
                            .checked_rem(frames.len())
                            .unwrap_or(0);
                        let frame = &frames[idx];
                        let t0 = Instant::now();
                        record_outcome(engine.classify(frame), t0, &mut latencies, &mut tally);
                    }
                    (latencies, tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    assemble_report(clients, requests_per_client, per_client, wall)
}

/// Drive `engine` with `clients` pipelined closed-loop clients, each
/// keeping up to `depth` requests in flight and issuing
/// `requests_per_client` requests total, drawn round-robin from `frames`
/// (staggered per client). A submit refusal is tallied immediately; every
/// admitted request is waited on, so the report accounts for all of them.
/// Latency is submit-to-completion, which for a pipelined client includes
/// time queued behind its own earlier requests — the crowd-mode contract,
/// where a burst of face crops shares one arrival instant.
pub fn run_closed_loop_pipelined(
    engine: &Engine,
    frames: &[Tensor],
    clients: usize,
    depth: usize,
    requests_per_client: usize,
) -> LoadReport {
    assert!(
        !frames.is_empty(),
        "load generator needs at least one frame"
    );
    assert!(clients > 0, "need at least one client");
    assert!(depth > 0, "pipeline depth must be positive");
    let started = Instant::now();
    let per_client: Vec<(Vec<u64>, [usize; 5])> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    // [ok, rejected, shed, expired, faulted]
                    let mut tally = [0usize; 5];
                    let mut in_flight: std::collections::VecDeque<(crate::Ticket, Instant)> =
                        std::collections::VecDeque::with_capacity(depth);
                    for i in 0..requests_per_client {
                        if in_flight.len() == depth {
                            if let Some((ticket, t0)) = in_flight.pop_front() {
                                record_outcome(ticket.wait(), t0, &mut latencies, &mut tally);
                            }
                        }
                        let idx = c
                            .saturating_add(i.saturating_mul(clients))
                            .checked_rem(frames.len())
                            .unwrap_or(0);
                        let t0 = Instant::now();
                        match engine.submit(&frames[idx]) {
                            Ok(ticket) => in_flight.push_back((ticket, t0)),
                            Err(e) => record_outcome(Err(e), t0, &mut latencies, &mut tally),
                        }
                    }
                    for (ticket, t0) in in_flight {
                        record_outcome(ticket.wait(), t0, &mut latencies, &mut tally);
                    }
                    (latencies, tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    assemble_report(clients, requests_per_client, per_client, wall)
}

/// Tally one resolved request into the per-client accumulators.
fn record_outcome(
    outcome: Result<bcp_dataset::MaskClass, ServeError>,
    t0: Instant,
    latencies: &mut Vec<u64>,
    tally: &mut [usize; 5],
) {
    match outcome {
        Ok(_) => {
            latencies.push(t0.elapsed().as_nanos() as u64);
            tally[0] = tally[0].saturating_add(1);
        }
        Err(ServeError::Rejected) => tally[1] = tally[1].saturating_add(1),
        Err(ServeError::Shed) => tally[2] = tally[2].saturating_add(1),
        Err(ServeError::DeadlineExpired) => tally[3] = tally[3].saturating_add(1),
        Err(
            ServeError::WorkerFault { .. }
            | ServeError::NoHealthyWorkers
            | ServeError::ShuttingDown,
        ) => tally[4] = tally[4].saturating_add(1),
    }
}

fn assemble_report(
    clients: usize,
    requests_per_client: usize,
    per_client: Vec<(Vec<u64>, [usize; 5])>,
    wall: Duration,
) -> LoadReport {
    let mut latencies: Vec<u64> = Vec::new();
    let mut tally = [0usize; 5];
    for (l, t) in per_client {
        latencies.extend(l);
        for (acc, v) in tally.iter_mut().zip(t) {
            *acc = acc.saturating_add(v);
        }
    }
    latencies.sort_unstable();
    let pct = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() as f64 * q).ceil() as usize)
            .clamp(1, latencies.len())
            .saturating_sub(1);
        Duration::from_nanos(latencies[idx])
    };
    LoadReport {
        clients,
        total: clients.saturating_mul(requests_per_client),
        ok: tally[0],
        rejected: tally[1],
        shed: tally[2],
        expired: tally[3],
        faulted: tally[4],
        wall,
        throughput_fps: tally[0] as f64 / wall.as_secs_f64().max(1e-9),
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: latencies
            .last()
            .copied()
            .map_or(Duration::ZERO, Duration::from_nanos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackpressurePolicy, ServeConfig};
    use crate::replica::{canary_frame, SyntheticReplica};
    use bcp_telemetry::Registry;

    #[test]
    fn closed_loop_accounts_for_every_request() {
        let e = Engine::start(
            vec![SyntheticReplica::new(), SyntheticReplica::new()],
            ServeConfig::default(),
            Some(Registry::new()),
        );
        let frames: Vec<Tensor> = (0..8).map(|i| canary_frame(3, 8, 8 + i)).collect();
        let report = run_closed_loop(&e, &frames, 4, 25);
        assert!(report.accounted());
        assert_eq!(report.ok, 100, "lossless config: every request succeeds");
        assert!(report.throughput_fps > 0.0);
        assert!(report.p50 <= report.p99 && report.p99 <= report.max);
        let rendered = report.render_text();
        assert!(rendered.contains("throughput") && rendered.contains("p99"));
    }

    #[test]
    fn pipelined_loop_accounts_and_matches_blocking_outcomes() {
        let e = Engine::start(
            vec![SyntheticReplica::new()],
            ServeConfig::default(),
            Some(Registry::new()),
        );
        let frames: Vec<_> = (0..6).map(|i| canary_frame(3, 8, 8 + i)).collect();
        let report = run_closed_loop_pipelined(&e, &frames, 4, 3, 25);
        assert!(report.accounted());
        assert_eq!(report.ok, 100, "lossless config: every request succeeds");
        assert!(report.throughput_fps > 0.0);
        assert!(report.p50 <= report.p99 && report.p99 <= report.max);
    }

    #[test]
    fn overloaded_reject_run_still_accounts() {
        let e = Engine::start(
            vec![SyntheticReplica::with_delay(Duration::from_millis(2))],
            ServeConfig {
                queue_cap: 2,
                max_batch: 1,
                policy: BackpressurePolicy::Reject,
                ..ServeConfig::default()
            },
            None,
        );
        let frames = vec![canary_frame(3, 8, 8)];
        let report = run_closed_loop(&e, &frames, 6, 10);
        assert!(report.accounted());
        assert!(report.ok > 0);
    }
}
