//! Closed-loop load generator and its throughput/latency report.
//!
//! Closed-loop means each client holds exactly one request in flight:
//! submit, wait, repeat. Offered load therefore tracks service capacity
//! (the classic benchmark-harness model, and the paper's own camera
//! setting — a camera cannot have two "current" frames). Concurrency is
//! the number of clients; saturation shows up as latency growth rather
//! than unbounded queueing.

use crate::config::ServeError;
use crate::engine::Engine;
use bcp_tensor::Tensor;
use std::time::{Duration, Instant};

/// Outcome tallies and latency distribution of one closed-loop run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests attempted (`clients × requests_per_client`).
    pub total: usize,
    /// Successful classifications.
    pub ok: usize,
    /// Refused at admission (`Rejected`).
    pub rejected: usize,
    /// Evicted from the queue (`Shed`).
    pub shed: usize,
    /// Deadline expiries (engine- or client-side).
    pub expired: usize,
    /// Worker-fault and no-healthy-worker failures.
    pub faulted: usize,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// Successful classifications per second of wall time.
    pub throughput_fps: f64,
    /// Median successful-request latency.
    pub p50: Duration,
    /// 95th-percentile successful-request latency.
    pub p95: Duration,
    /// 99th-percentile successful-request latency.
    pub p99: Duration,
    /// Worst successful-request latency.
    pub max: Duration,
}

impl LoadReport {
    /// Every attempted request resolved to exactly one outcome.
    pub fn accounted(&self) -> bool {
        self.ok
            .saturating_add(self.rejected)
            .saturating_add(self.shed)
            .saturating_add(self.expired)
            .saturating_add(self.faulted)
            == self.total
    }

    /// Human-readable multi-line summary for CLI output.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "clients {:>3}  requests {:>6}  wall {:>8.3}s  throughput {:>9.1} fps\n",
            self.clients,
            self.total,
            self.wall.as_secs_f64(),
            self.throughput_fps
        ));
        s.push_str(&format!(
            "outcomes   ok {}  rejected {}  shed {}  expired {}  faulted {}\n",
            self.ok, self.rejected, self.shed, self.expired, self.faulted
        ));
        s.push_str(&format!(
            "latency    p50 {:>8.3}ms  p95 {:>8.3}ms  p99 {:>8.3}ms  max {:>8.3}ms",
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
        ));
        s
    }
}

/// Drive `engine` with `clients` concurrent closed-loop clients, each
/// issuing `requests_per_client` requests drawn round-robin from `frames`
/// (staggered per client so simultaneous clients don't all send the same
/// frame). Latency percentiles are exact, computed over every successful
/// request.
pub fn run_closed_loop(
    engine: &Engine,
    frames: &[Tensor],
    clients: usize,
    requests_per_client: usize,
) -> LoadReport {
    assert!(
        !frames.is_empty(),
        "load generator needs at least one frame"
    );
    assert!(clients > 0, "need at least one client");
    let started = Instant::now();
    let per_client: Vec<(Vec<u64>, [usize; 5])> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests_per_client);
                    // [ok, rejected, shed, expired, faulted]
                    let mut tally = [0usize; 5];
                    for i in 0..requests_per_client {
                        let idx = c
                            .saturating_add(i.saturating_mul(clients))
                            .checked_rem(frames.len())
                            .unwrap_or(0);
                        let frame = &frames[idx];
                        let t0 = Instant::now();
                        match engine.classify(frame) {
                            Ok(_) => {
                                latencies.push(t0.elapsed().as_nanos() as u64);
                                tally[0] = tally[0].saturating_add(1);
                            }
                            Err(ServeError::Rejected) => tally[1] = tally[1].saturating_add(1),
                            Err(ServeError::Shed) => tally[2] = tally[2].saturating_add(1),
                            Err(ServeError::DeadlineExpired) => {
                                tally[3] = tally[3].saturating_add(1)
                            }
                            Err(
                                ServeError::WorkerFault { .. }
                                | ServeError::NoHealthyWorkers
                                | ServeError::ShuttingDown,
                            ) => tally[4] = tally[4].saturating_add(1),
                        }
                    }
                    (latencies, tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let mut tally = [0usize; 5];
    for (l, t) in per_client {
        latencies.extend(l);
        for (acc, v) in tally.iter_mut().zip(t) {
            *acc = acc.saturating_add(v);
        }
    }
    latencies.sort_unstable();
    let pct = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() as f64 * q).ceil() as usize)
            .clamp(1, latencies.len())
            .saturating_sub(1);
        Duration::from_nanos(latencies[idx])
    };
    LoadReport {
        clients,
        total: clients.saturating_mul(requests_per_client),
        ok: tally[0],
        rejected: tally[1],
        shed: tally[2],
        expired: tally[3],
        faulted: tally[4],
        wall,
        throughput_fps: tally[0] as f64 / wall.as_secs_f64().max(1e-9),
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: latencies
            .last()
            .copied()
            .map_or(Duration::ZERO, Duration::from_nanos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BackpressurePolicy, ServeConfig};
    use crate::replica::{canary_frame, SyntheticReplica};
    use bcp_telemetry::Registry;

    #[test]
    fn closed_loop_accounts_for_every_request() {
        let e = Engine::start(
            vec![SyntheticReplica::new(), SyntheticReplica::new()],
            ServeConfig::default(),
            Some(Registry::new()),
        );
        let frames: Vec<Tensor> = (0..8).map(|i| canary_frame(3, 8, 8 + i)).collect();
        let report = run_closed_loop(&e, &frames, 4, 25);
        assert!(report.accounted());
        assert_eq!(report.ok, 100, "lossless config: every request succeeds");
        assert!(report.throughput_fps > 0.0);
        assert!(report.p50 <= report.p99 && report.p99 <= report.max);
        let rendered = report.render_text();
        assert!(rendered.contains("throughput") && rendered.contains("p99"));
    }

    #[test]
    fn overloaded_reject_run_still_accounts() {
        let e = Engine::start(
            vec![SyntheticReplica::with_delay(Duration::from_millis(2))],
            ServeConfig {
                queue_cap: 2,
                max_batch: 1,
                policy: BackpressurePolicy::Reject,
                ..ServeConfig::default()
            },
            None,
        );
        let frames = vec![canary_frame(3, 8, 8)];
        let report = run_closed_loop(&e, &frames, 6, 10);
        assert!(report.accounted());
        assert!(report.ok > 0);
    }
}
