//! Single-use response slot shared between one request's producer (an
//! engine worker) and one consumer (the client holding the ticket).
//!
//! The slot is the mechanism behind the engine's *exactly-one-response*
//! guarantee: the state machine admits exactly one successful `complete`
//! and exactly one outcome for the waiter. When the waiter times out
//! first, it atomically moves the slot to `Abandoned`, so a late engine
//! completion becomes a counted no-op instead of a duplicate response.
//!
//! All primitives come from [`bcp_sync`], so this *exact* state machine
//! is what the model checker exhausts under `--cfg bcp_model` (see
//! `tests/model.rs`): worker delivery, deadline expiry and client drop
//! racing in every interleaving, always producing exactly one terminal
//! outcome.

use bcp_sync::time::Instant;
use bcp_sync::{Condvar, Mutex};

enum State<T> {
    /// No value yet; a waiter may be parked on the condvar.
    Pending,
    /// Value delivered, not yet picked up.
    Done(T),
    /// Value delivered and picked up by the waiter.
    Taken,
    /// The waiter gave up (deadline); late completions are dropped.
    Abandoned,
}

/// One-shot rendezvous cell (a condvar-based `oneshot::channel` fused into
/// a single allocation, since the engine already shares it via `Arc`).
pub struct Slot<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slot<T> {
    /// Fresh, pending slot.
    pub fn new() -> Self {
        Slot {
            state: Mutex::new(State::Pending),
            cv: Condvar::new(),
        }
    }

    /// Return a retired slot to `Pending` so it can serve another
    /// request. Sound only on a *uniquely owned* slot (the engine's pool
    /// checks `Arc::strong_count == 1` before calling): once no other
    /// thread can hold a reference, no stale completion or wait can race
    /// the reuse.
    // bcp:hot-path — slot-pool recycling runs once per served request
    pub fn reset(&self) {
        // audit: allow(block): uncontended by the uniqueness precondition; a few-instruction critical section
        *self.state.lock() = State::Pending;
    }

    /// Deliver the value. Returns `true` iff this call won — `false` means
    /// the slot was already completed or the waiter abandoned it, and the
    /// value was dropped.
    // bcp:hot-path — response delivery into the per-request slot
    pub fn complete(&self, value: T) -> bool {
        // audit: allow(block): slot mutex guards a four-state enum; held for a store + notify, never across compute
        let mut st = self.state.lock();
        match *st {
            State::Pending => {
                *st = State::Done(value);
                self.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Block until the value arrives or `deadline` passes. On timeout the
    /// slot is marked abandoned so the producer's eventual `complete`
    /// returns `false` instead of delivering twice.
    // bcp:hot-path — client-side response pickup (Ticket::wait)
    pub fn wait(&self, deadline: Option<Instant>) -> Result<T, Expired> {
        // audit: allow(block): waiting is this function's contract — the client parks here until delivery
        let mut st = self.state.lock();
        loop {
            match std::mem::replace(&mut *st, State::Taken) {
                State::Done(v) => return Ok(v),
                State::Pending => *st = State::Pending,
                // A unique waiter can only observe these after its own
                // take/abandon, i.e. on a second `wait` call — refuse.
                // audit: allow(panic): double-wait is a caller contract violation; Ticket::wait consumes the ticket, so this is unreachable through the public API
                State::Taken | State::Abandoned => panic!("slot waited on twice"),
            }
            match deadline {
                None => {
                    // audit: allow(block): condvar park awaiting delivery — the whole point of wait()
                    st = self.cv.wait(st);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        *st = State::Abandoned;
                        return Err(Expired);
                    }
                    // audit: allow(block): deadline-bounded condvar park awaiting delivery
                    let (guard, _) = self.cv.wait_timeout(st, d.saturating_duration_since(now));
                    st = guard;
                }
            }
        }
    }
}

/// The waiter's deadline passed before a value arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expired;

#[cfg(all(test, not(bcp_model)))]
mod tests {
    #![allow(clippy::arithmetic_side_effects)]
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn complete_then_wait() {
        let s = Slot::new();
        assert!(s.complete(41));
        assert_eq!(s.wait(None), Ok(41));
    }

    #[test]
    fn second_complete_loses() {
        let s = Slot::new();
        assert!(s.complete(1));
        assert!(!s.complete(2));
        assert_eq!(s.wait(None), Ok(1));
    }

    #[test]
    fn wait_blocks_until_completion() {
        let s = Arc::new(Slot::new());
        let p = s.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            assert!(p.complete(7u32));
        });
        assert_eq!(s.wait(None), Ok(7));
        h.join().unwrap();
    }

    #[test]
    fn timeout_abandons_and_blocks_late_completion() {
        let s = Slot::new();
        let deadline = Instant::now() + Duration::from_millis(15);
        assert_eq!(s.wait(Some(deadline)), Err(Expired));
        assert!(!s.complete(9), "late completion must be dropped");
    }

    #[test]
    fn past_deadline_expires_immediately_when_pending() {
        let s: Slot<u32> = Slot::new();
        assert_eq!(
            s.wait(Some(Instant::now() - Duration::from_millis(1))),
            Err(Expired)
        );
    }

    #[test]
    fn completed_value_beats_past_deadline() {
        // A value that is already there is delivered even if the deadline
        // has technically passed — the work was done in time to be useful.
        let s = Slot::new();
        assert!(s.complete(3));
        assert_eq!(
            s.wait(Some(Instant::now() - Duration::from_millis(1))),
            Ok(3)
        );
    }

    #[test]
    fn deadline_expiry_racing_delivery_yields_exactly_one_outcome() {
        // The waiter's deadline and the worker's delivery race; whichever
        // way it lands, accounting must agree: the wait succeeds iff the
        // racing `complete` won, and a completion after an expiry is
        // always the dropped (`false`) side. Run many rounds so both
        // sides of the race actually occur under std scheduling.
        for round in 0..64u64 {
            let s: Arc<Slot<u64>> = Arc::new(Slot::new());
            let p = s.clone();
            let worker = std::thread::spawn(move || {
                if round % 2 == 0 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
                p.complete(round)
            });
            let waited = s.wait(Some(Instant::now() + Duration::from_micros(25)));
            let delivered = worker.join().unwrap();
            assert_eq!(
                waited.is_ok(),
                delivered,
                "round {round}: wait outcome and delivery outcome must pair up"
            );
            if waited.is_err() {
                assert!(!s.complete(999), "slot abandoned by expiry must stay dead");
            }
        }
    }

    #[test]
    fn client_dropping_ticket_before_delivery_still_lets_complete_win() {
        // A client that gives up its ticket without ever waiting must not
        // poison the slot: the worker's delivery still wins (exactly one
        // terminal outcome — the delivered-but-unclaimed value), and a
        // second delivery still loses.
        let s: Arc<Slot<u32>> = Arc::new(Slot::new());
        let client_side = s.clone();
        drop(client_side);
        assert!(s.complete(5), "first delivery wins even with no waiter");
        assert!(!s.complete(6), "second delivery must be dropped");
    }
}
