//! Worker health lifecycle: quarantine, repair, probation, reinstatement.
//!
//! The original fault story was one-way: a worker that failed its
//! integrity canary left dispatch forever, so every transient SEU
//! permanently cost a replica. With a [`RecoveryPolicy`] the engine runs
//! the full self-healing loop instead:
//!
//! ```text
//!            canary fail / panic
//!  Healthy ──────────────────────► Quarantined ──(repair() ok)──► Probation
//!     ▲                                │  ▲                          │
//!     │                                │  └──(probation canary fail)─┤
//!     │                  strikes ≥ M   ▼                             │
//!     │                             Retired                          │
//!     └──────────(K consecutive canary passes)───────────────────────┘
//! ```
//!
//! All recovery work — repair attempts and probation canaries — runs on
//! the worker's own thread *off the hot path*: the batcher only ever
//! dispatches to `Healthy` workers, and a quarantined worker keeps
//! draining raced-in batches (failing them) so the pipeline can never
//! wedge behind it. A replica that cannot repair itself (the default
//! [`Replica::repair`](crate::Replica::repair) returns `false`)
//! accumulates strikes and is retired — the old permanent-removal
//! behavior, reached deliberately instead of by omission.

use bcp_sync::atomic::{AtomicU8, Ordering};
use std::time::Duration;

/// Where a worker sits in the health lifecycle. Stored as one atomic byte
/// per worker; the numeric value is also exported as the
/// `serve.worker.{w}.state` gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WorkerState {
    /// In dispatch rotation.
    Healthy = 0,
    /// Repaired, re-proving itself: must pass K consecutive canaries
    /// before rejoining dispatch.
    Probation = 1,
    /// Failed its canary (or panicked); out of rotation, repair pending.
    Quarantined = 2,
    /// Exhausted its repair strikes; permanently out of rotation.
    Retired = 3,
}

impl WorkerState {
    /// Decode the atomic byte representation.
    pub fn from_u8(v: u8) -> WorkerState {
        match v {
            0 => WorkerState::Healthy,
            1 => WorkerState::Probation,
            2 => WorkerState::Quarantined,
            _ => WorkerState::Retired,
        }
    }
}

impl std::fmt::Display for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkerState::Healthy => "healthy",
            WorkerState::Probation => "probation",
            WorkerState::Quarantined => "quarantined",
            WorkerState::Retired => "retired",
        };
        write!(f, "{s}")
    }
}

/// One worker's lifecycle state as a single atomic byte.
///
/// **Single-writer**: only the owning worker thread transitions the
/// cell; the batcher (`next_healthy`) and the public API merely observe
/// it. The cell is built on [`bcp_sync`] atomics, so the model suite in
/// `tests/model.rs` checks the dispatch invariant — no request is ever
/// handed to a worker after it was observed `Quarantined`/`Retired` —
/// under every interleaving of transitions and dispatch decisions.
pub struct WorkerStateCell(AtomicU8);

impl WorkerStateCell {
    /// Cell starting in `state`.
    pub fn new(state: WorkerState) -> WorkerStateCell {
        WorkerStateCell(AtomicU8::new(state as u8))
    }

    /// Current state.
    pub fn load(&self) -> WorkerState {
        // ordering: Relaxed — the byte carries no payload to acquire;
        // dispatch correctness needs only *some* recent value, and every
        // dispatch already synchronizes through the batch channel.
        WorkerState::from_u8(self.0.load(Ordering::Relaxed))
    }

    /// Transition to `state` (owning worker thread only).
    pub fn store(&self, state: WorkerState) {
        // ordering: Relaxed — single-writer transition publishing no
        // associated data; readers tolerate bounded staleness (a worker
        // leaving rotation is observed on the next dispatch decision).
        self.0.store(state as u8, Ordering::Relaxed);
    }
}

/// How a quarantined worker earns its way back into rotation.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Consecutive canary passes a probation worker needs before it is
    /// reinstated (`K`). Higher values trade recovery latency for
    /// confidence that the repair actually took.
    pub probation_passes: u32,
    /// Failed recovery attempts — a `repair()` that returns `false`, or a
    /// probation canary that fails — before the worker is retired for
    /// good (`M`). The backstop against a replica that keeps "repairing"
    /// without getting better.
    pub max_strikes: u32,
    /// Pace of off-rotation recovery work: a quarantined or probation
    /// worker wakes this often to attempt its next repair or canary.
    pub retry_interval: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            probation_passes: 3,
            max_strikes: 3,
            retry_interval: Duration::from_millis(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrips_through_byte() {
        for s in [
            WorkerState::Healthy,
            WorkerState::Probation,
            WorkerState::Quarantined,
            WorkerState::Retired,
        ] {
            assert_eq!(WorkerState::from_u8(s as u8), s);
        }
    }

    #[test]
    fn default_policy_is_patient_but_bounded() {
        let p = RecoveryPolicy::default();
        assert!(p.probation_passes >= 1);
        assert!(p.max_strikes >= 1);
        assert!(p.retry_interval > Duration::ZERO);
    }
}
