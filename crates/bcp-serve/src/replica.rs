//! The model-side contract of the engine, and a synthetic implementation.
//!
//! `bcp-serve` is deliberately model-agnostic: it knows how to queue,
//! batch, dispatch, time out and drain, but classification itself is
//! behind the [`Replica`] trait. The real implementation lives in
//! `binarycop` (one deployed `BinaryCoP` pipeline per worker); the
//! [`SyntheticReplica`] here lets the engine's own tests and benches run
//! without dragging in a trained network.

use bcp_dataset::MaskClass;
use bcp_finn::StreamStats;
use bcp_tensor::Tensor;

/// One worker's private copy of the model. Workers own their replica
/// mutably, which is what makes fault isolation possible: a stuck-at fault
/// or panic corrupts exactly one replica, never its siblings.
pub trait Replica: Send + 'static {
    /// Classify frames in order, one result per frame.
    fn infer_batch(&mut self, frames: &[Tensor]) -> Vec<MaskClass>;

    /// Classify through a threaded streaming pipeline, returning per-stage
    /// statistics for cycle-model correlation. Implementations without a
    /// streaming path return `None` and the engine falls back to
    /// [`infer_batch`](Replica::infer_batch).
    fn infer_batch_streaming(
        &mut self,
        frames: &[Tensor],
    ) -> Option<(Vec<MaskClass>, StreamStats)> {
        let _ = frames;
        None
    }

    /// Raw output for an integrity canary frame. Must be deterministic on
    /// a healthy replica; any weight-memory corruption should perturb it
    /// with high probability (for a BNN, a single bit flip is a full sign
    /// change, so it usually does).
    fn canary(&self, frame: &Tensor) -> Vec<i64>;

    /// Inject `n` random stuck-at faults into this replica's weight
    /// memory (chaos/testing hook; see `bcp_finn::fault`).
    fn inject_faults(&mut self, n: usize, seed: u64);

    /// Attempt to restore this replica's parameter memories to their
    /// deployed content (e.g. a full scrub against a golden copy, as
    /// `bcp-guard` does). Returns `true` when the replica believes it is
    /// clean again; the engine still demands consecutive canary passes
    /// before trusting it. The default cannot self-repair, which makes
    /// quarantine permanent — the pre-recovery behavior.
    fn repair(&mut self) -> bool {
        false
    }

    /// One increment of background integrity scrubbing: verify (and
    /// repair) up to `units` scrub units. Called between inference batches
    /// when `ServeConfig::background_scrub` is set. Default: no-op.
    fn scrub_tick(&mut self, units: usize) {
        let _ = units;
    }
}

/// Boxed replicas are replicas too: shard pools (`bcp-gateway`) build
/// engines from `Vec<Box<dyn Replica>>` factories so one factory type can
/// stand up heterogeneous pools and rebuild an engine after a shard kill.
impl Replica for Box<dyn Replica> {
    fn infer_batch(&mut self, frames: &[Tensor]) -> Vec<MaskClass> {
        (**self).infer_batch(frames)
    }

    fn infer_batch_streaming(
        &mut self,
        frames: &[Tensor],
    ) -> Option<(Vec<MaskClass>, StreamStats)> {
        (**self).infer_batch_streaming(frames)
    }

    fn canary(&self, frame: &Tensor) -> Vec<i64> {
        (**self).canary(frame)
    }

    fn inject_faults(&mut self, n: usize, seed: u64) {
        (**self).inject_faults(n, seed)
    }

    fn repair(&mut self) -> bool {
        (**self).repair()
    }

    fn scrub_tick(&mut self, units: usize) {
        (**self).scrub_tick(units)
    }
}

/// A trivial deterministic "model" for engine tests: classifies by a hash
/// of the frame contents, costs an optional fixed delay per frame, and
/// supports fault injection by corrupting its (single) weight.
pub struct SyntheticReplica {
    /// Artificial per-frame compute time, to make saturation reproducible.
    pub delay: std::time::Duration,
    weight: i64,
    /// Whether `repair()` can restore the golden weight (models a replica
    /// backed by a `bcp-guard` golden store).
    repairable: bool,
}

impl SyntheticReplica {
    /// Replica with no artificial delay.
    pub fn new() -> Self {
        SyntheticReplica {
            delay: std::time::Duration::ZERO,
            weight: 1,
            repairable: false,
        }
    }

    /// Replica that spends `delay` per frame.
    pub fn with_delay(delay: std::time::Duration) -> Self {
        SyntheticReplica {
            delay,
            weight: 1,
            repairable: false,
        }
    }

    /// Replica whose `repair()` restores the golden weight — the test
    /// stand-in for a guard-backed model replica.
    pub fn repairable() -> Self {
        SyntheticReplica {
            delay: std::time::Duration::ZERO,
            weight: 1,
            repairable: true,
        }
    }

    fn label(&self, frame: &Tensor) -> usize {
        let mut h = 0xcbf29ce484222325u64;
        for &v in frame.as_slice() {
            h = (h ^ v.to_bits() as u64).wrapping_mul(0x100000001b3);
        }
        (h % 4) as usize
    }
}

impl Default for SyntheticReplica {
    fn default() -> Self {
        Self::new()
    }
}

impl Replica for SyntheticReplica {
    fn infer_batch(&mut self, frames: &[Tensor]) -> Vec<MaskClass> {
        frames
            .iter()
            .map(|f| {
                if !self.delay.is_zero() {
                    std::thread::sleep(self.delay);
                }
                MaskClass::from_label(self.label(f))
            })
            .collect()
    }

    fn canary(&self, frame: &Tensor) -> Vec<i64> {
        vec![
            (self.label(frame) as i64).saturating_mul(self.weight),
            self.weight,
        ]
    }

    fn inject_faults(&mut self, n: usize, _seed: u64) {
        if n > 0 {
            self.weight = self.weight.saturating_neg();
        }
    }

    fn repair(&mut self) -> bool {
        if self.repairable {
            self.weight = 1;
        }
        self.repairable
    }

    fn scrub_tick(&mut self, _units: usize) {
        if self.repairable {
            self.weight = 1;
        }
    }
}

/// Deterministic synthetic input frame: a per-channel gradient pattern on
/// the unit grid, suitable as an integrity canary (it exercises every
/// pixel position) or as load-generator traffic.
pub fn canary_frame(channels: usize, height: usize, width: usize) -> Tensor {
    let n = channels.saturating_mul(height).saturating_mul(width);
    let data: Vec<f32> = (0..n)
        .map(|i| (i.saturating_mul(131).saturating_add(17) % 256) as f32 / 255.0)
        .collect();
    Tensor::from_vec(bcp_tensor::Shape::d3(channels, height, width), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let mut a = SyntheticReplica::new();
        let mut b = SyntheticReplica::new();
        let frames: Vec<Tensor> = (0..6).map(|i| canary_frame(3, 4 + i, 4)).collect();
        assert_eq!(a.infer_batch(&frames), b.infer_batch(&frames));
    }

    #[test]
    fn faults_perturb_the_canary_only() {
        let mut r = SyntheticReplica::new();
        let frame = canary_frame(3, 8, 8);
        let clean = r.canary(&frame);
        r.inject_faults(1, 0);
        assert_ne!(r.canary(&frame), clean);
    }

    #[test]
    fn canary_frame_is_on_the_unit_grid() {
        let f = canary_frame(3, 16, 16);
        assert_eq!(f.shape().dims(), &[3, 16, 16]);
        assert!(f.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
