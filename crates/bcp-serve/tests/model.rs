//! Model-checked interleaving suites for the oneshot `Slot` and the
//! `WorkerState` dispatch invariant.
//!
//! Compiled only under `RUSTFLAGS="--cfg bcp_model"`; under a normal
//! `cargo test` this file is empty. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg bcp_model" cargo test -p bcp-serve --test model
//! ```
#![cfg(bcp_model)]

use bcp_serve::oneshot::{Expired, Slot};
use bcp_serve::{WorkerState, WorkerStateCell};
use bcp_sync::model::Builder;
use bcp_sync::time::{Duration, Instant};
use bcp_sync::{thread, Arc};

fn builder(name: &str) -> Builder {
    Builder {
        name: name.to_string(),
        ..Builder::default()
    }
}

/// The engine's exactly-one-response guarantee at its source: a worker
/// delivering while the client's deadline expires must resolve to
/// exactly one terminal outcome under every interleaving — the wait
/// succeeds iff the racing `complete` won, and an expired slot rejects
/// all late deliveries.
#[test]
fn slot_delivery_racing_deadline_has_exactly_one_outcome() {
    let stats = builder("slot-deadline-race").check(|| {
        let slot: Arc<Slot<u32>> = Arc::new(Slot::new());
        let worker = {
            let s = Arc::clone(&slot);
            thread::spawn(move || s.complete(7))
        };
        // The timed wait is modeled nondeterministically: the scheduler
        // explores both the notified and the timed-out outcome at every
        // parking point.
        let deadline = Instant::now() + Duration::from_millis(5);
        let waited = slot.wait(Some(deadline));
        let delivered = worker.join().unwrap();
        assert_eq!(
            waited.is_ok(),
            delivered,
            "wait outcome and delivery outcome must pair up"
        );
        if waited == Err(Expired) {
            assert!(
                !slot.complete(9),
                "an abandoned slot must reject late deliveries"
            );
        }
    });
    assert!(
        stats.complete || stats.schedules >= 10_000,
        "expected exhaustive or >=10k schedules, got {} (complete: {})",
        stats.schedules,
        stats.complete
    );
}

/// Two workers racing to complete the same slot (the duplicate-response
/// hazard): exactly one `complete` may win, and the waiter receives the
/// winner's value.
#[test]
fn slot_two_completers_exactly_one_wins() {
    let stats = builder("slot-two-completers").check(|| {
        let slot: Arc<Slot<u32>> = Arc::new(Slot::new());
        let a = {
            let s = Arc::clone(&slot);
            thread::spawn(move || s.complete(1))
        };
        let b = {
            let s = Arc::clone(&slot);
            thread::spawn(move || s.complete(2))
        };
        let got = slot.wait(None).expect("some completion must land");
        let (wa, wb) = (a.join().unwrap(), b.join().unwrap());
        assert!(
            wa ^ wb,
            "exactly one completer may win (got a={wa}, b={wb})"
        );
        let winner = if wa { 1 } else { 2 };
        assert_eq!(got, winner, "the waiter must see the winning value");
    });
    assert!(
        stats.complete || stats.schedules >= 10_000,
        "expected exhaustive or >=10k schedules, got {} (complete: {})",
        stats.schedules,
        stats.complete
    );
}

/// The client dropping its ticket (never waiting) must leave the slot
/// deliverable exactly once: the first `complete` wins, every later one
/// is the dropped no-op side.
#[test]
fn slot_client_drop_before_delivery_keeps_single_winner() {
    let stats = builder("slot-client-drop").check(|| {
        let slot: Arc<Slot<u32>> = Arc::new(Slot::new());
        let client = Arc::clone(&slot);
        let worker = {
            let s = Arc::clone(&slot);
            thread::spawn(move || s.complete(3))
        };
        // The client gives up its handle without waiting, in parallel
        // with the delivery.
        let dropper = thread::spawn(move || drop(client));
        let delivered = worker.join().unwrap();
        dropper.join().unwrap();
        assert!(delivered, "sole delivery must win regardless of the drop");
        assert!(!slot.complete(4), "second delivery must lose");
    });
    assert!(
        stats.complete || stats.schedules >= 10_000,
        "expected exhaustive or >=10k schedules, got {} (complete: {})",
        stats.schedules,
        stats.complete
    );
}

/// Dispatch invariant: the batcher never hands a request to a worker it
/// observed as `Quarantined`/`Retired`. The worker thread drives its
/// lifecycle (Healthy → Quarantined → Retired) while the batcher makes
/// dispatch decisions from the cell, mirroring `next_healthy`.
#[test]
fn no_dispatch_to_worker_observed_quarantined_or_retired() {
    let stats = builder("worker-state-dispatch").check(|| {
        let cell = Arc::new(WorkerStateCell::new(WorkerState::Healthy));
        // Worker: fails its canary, quarantines, then retires.
        let worker = {
            let c = Arc::clone(&cell);
            thread::spawn(move || {
                c.store(WorkerState::Quarantined);
                c.store(WorkerState::Retired);
            })
        };
        // Batcher: three dispatch decisions racing the transitions.
        let batcher = {
            let c = Arc::clone(&cell);
            thread::spawn(move || {
                let mut dispatched = 0u32;
                let mut rejected = 0u32;
                for _ in 0..3 {
                    let observed = c.load();
                    if observed == WorkerState::Healthy {
                        // Dispatch happens strictly after the observation;
                        // the invariant is about what was *observed*.
                        dispatched += 1;
                    } else {
                        assert!(
                            matches!(observed, WorkerState::Quarantined | WorkerState::Retired),
                            "worker never entered probation in this scenario"
                        );
                        rejected += 1;
                    }
                }
                (dispatched, rejected)
            })
        };
        worker.join().unwrap();
        let (dispatched, rejected) = batcher.join().unwrap();
        assert_eq!(
            dispatched + rejected,
            3,
            "every batch decision must be accounted for"
        );
        // Once the batcher has seen a non-Healthy state, the worker can
        // never be Healthy again in this lifecycle — verify the terminal
        // observation agrees.
        assert_eq!(cell.load(), WorkerState::Retired);
    });
    assert!(
        stats.complete || stats.schedules >= 10_000,
        "expected exhaustive or >=10k schedules, got {} (complete: {})",
        stats.schedules,
        stats.complete
    );
}

/// Probation reinstatement racing dispatch: a worker cycling
/// Quarantined → Probation → Healthy is only ever dispatched to in the
/// states where dispatch is legal (Healthy), never mid-recovery.
#[test]
fn probation_cycle_never_dispatches_mid_recovery() {
    let stats = builder("worker-state-probation").check(|| {
        let cell = Arc::new(WorkerStateCell::new(WorkerState::Quarantined));
        let worker = {
            let c = Arc::clone(&cell);
            thread::spawn(move || {
                c.store(WorkerState::Probation);
                c.store(WorkerState::Healthy);
            })
        };
        // Recovery progress is single-writer and strictly forward, so
        // two successive observations may never move backward through
        // the lifecycle — and dispatch is only legal at full Healthy.
        fn progress(s: WorkerState) -> u8 {
            match s {
                WorkerState::Quarantined => 0,
                WorkerState::Probation => 1,
                WorkerState::Healthy => 2,
                WorkerState::Retired => u8::MAX,
            }
        }
        let batcher = {
            let c = Arc::clone(&cell);
            thread::spawn(move || {
                let first = c.load();
                let dispatched_first = first == WorkerState::Healthy;
                let second = c.load();
                let dispatched_second = second == WorkerState::Healthy;
                assert!(
                    progress(second) >= progress(first),
                    "observed recovery moving backward: {first} then {second}"
                );
                (dispatched_first, dispatched_second)
            })
        };
        worker.join().unwrap();
        let (d1, d2) = batcher.join().unwrap();
        // Dispatching then observing mid-recovery would mean Healthy was
        // observed before a *later* Quarantined/Probation — impossible
        // in this forward-only lifecycle.
        assert!(!(d1 && !d2), "dispatch legality may not regress");
        assert_eq!(cell.load(), WorkerState::Healthy);
    });
    assert!(
        stats.complete || stats.schedules >= 10_000,
        "expected exhaustive or >=10k schedules, got {} (complete: {})",
        stats.schedules,
        stats.complete
    );
}
