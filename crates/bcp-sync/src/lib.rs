//! # bcp-sync — one sync vocabulary, two backends
//!
//! The serving stack's concurrency-bearing structures (the Vyukov trace
//! [`Ring`](../bcp_trace/ring/index.html), the oneshot `Slot`, the
//! `WorkerState` byte) import their primitives from this crate instead
//! of `std`:
//!
//! * **Normal builds** re-export `std` (with parking_lot-style
//!   panic-free lock APIs) at zero cost — `cell::UnsafeCell` is a
//!   `#[repr(transparent)]` newtype, atomics are the `std` types
//!   themselves.
//! * **`--cfg bcp_model` builds** (`RUSTFLAGS="--cfg bcp_model"`)
//!   switch every primitive to the vendored [`loom`] model checker:
//!   schedule-exhaustive atomics with release/acquire happens-before
//!   tracking, race-detected `UnsafeCell`, modeled `Mutex`/`Condvar`
//!   with nondeterministic timeouts, and logical time.
//!
//! The point: the *same source* that serves requests in production is
//! the source the model checker explores — there is no hand-translated
//! model to drift out of sync. See DESIGN.md §"Concurrency invariants"
//! for the per-structure memory-ordering rules and how to run the model
//! suites, Miri, and TSan locally.
//!
//! Lock API convention (both backends): `Mutex::lock` returns the guard
//! directly (no poison `Result` — a panicked holder in this workspace
//! is either already fatal or, in the model, aborts the execution), and
//! `Condvar::wait_timeout` returns `(guard, timed_out)`.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::arithmetic_side_effects)]

pub use std::sync::Arc;

/// Atomic integer types and memory orderings.
pub mod atomic {
    #[cfg(not(bcp_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

    #[cfg(bcp_model)]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
}

/// Interior mutability with loom's closure-based access API.
pub mod cell {
    #[cfg(bcp_model)]
    pub use loom::cell::UnsafeCell;

    /// Zero-cost `std` wrapper matching loom's `UnsafeCell` API, so
    /// code written against `with`/`with_mut` compiles identically
    /// under both backends.
    #[cfg(not(bcp_model))]
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(bcp_model))]
    impl<T> UnsafeCell<T> {
        /// New cell holding `value`.
        pub const fn new(value: T) -> UnsafeCell<T> {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Immutable access to the cell's contents.
        ///
        /// The pointer is only valid for the closure's duration; the
        /// *caller* is responsible for synchronization, exactly as with
        /// a raw `std::cell::UnsafeCell`.
        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access to the cell's contents; see
        /// [`with`](UnsafeCell::with).
        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

/// Thread spawning and yielding.
pub mod thread {
    #[cfg(not(bcp_model))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(bcp_model)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// Spin-loop hints (a schedule point under the model).
pub mod hint {
    #[cfg(not(bcp_model))]
    pub use std::hint::spin_loop;

    #[cfg(bcp_model)]
    pub use loom::hint::spin_loop;
}

/// Monotonic time: `std::time::Instant` normally, the execution's
/// logical clock under the model (deadlines become schedulable).
pub mod time {
    pub use std::time::Duration;

    #[cfg(not(bcp_model))]
    pub use std::time::Instant;

    #[cfg(bcp_model)]
    pub use loom::time::Instant;
}

#[cfg(bcp_model)]
pub use loom::model;

#[cfg(bcp_model)]
pub use loom::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(bcp_model))]
mod std_locks {
    use std::ops::{Deref, DerefMut};
    use std::time::Duration;

    /// `std::sync::Mutex` behind the parking_lot-style panic-free API
    /// (the vendored parking_lot has no `Condvar`, and the oneshot
    /// `Slot` needs a paired one — so the pairing lives here, over
    /// `std`, with poisoning swallowed the way the workspace already
    /// does by convention).
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// New mutex holding `value`.
        pub const fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Acquire the lock. A poisoning panic elsewhere does not
        /// cascade: the data is returned regardless.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|e| e.into_inner())
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T>(std::sync::MutexGuard<'a, T>);

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// `std::sync::Condvar` pairing with [`Mutex`]; `wait_timeout`
    /// returns `(guard, timed_out)` under both backends.
    #[derive(Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// New condvar.
        pub const fn new() -> Condvar {
            Condvar(std::sync::Condvar::new())
        }

        /// Release the guard's mutex, park until notified, reacquire.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard(self.0.wait(guard.0).unwrap_or_else(|e| e.into_inner()))
        }

        /// Like [`wait`](Condvar::wait) with a timeout; the boolean is
        /// `true` when the wait timed out rather than being notified.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (g, r) = self
                .0
                .wait_timeout(guard.0, dur)
                .unwrap_or_else(|e| e.into_inner());
            (MutexGuard(g), r.timed_out())
        }

        /// Wake one parked waiter, if any.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wake every parked waiter.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(not(bcp_model))]
pub use std_locks::{Condvar, Mutex, MutexGuard};

#[cfg(test)]
mod tests {
    // The shim tests exercise `with`/`with_mut` the way loom-ported code
    // does, which requires dereferencing the raw pointers they hand out.
    #![allow(unsafe_code)]
    use super::atomic::{AtomicUsize, Ordering};
    use super::cell::UnsafeCell;
    use super::{Arc, Condvar, Mutex};
    use std::time::Duration;

    // ordering: test-only counter, no cross-thread publication.
    #[test]
    fn atomics_are_std_types_under_normal_builds() {
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 1);
        assert_eq!(a.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cell_with_and_with_mut_round_trip() {
        let c = UnsafeCell::new(7u32);
        c.with_mut(|p| unsafe { *p = 9 });
        assert_eq!(c.with(|p| unsafe { *p }), 9);
    }

    #[test]
    fn mutex_lock_is_panic_free_and_condvar_times_out() {
        let m = Mutex::new(5u32);
        {
            let mut g = m.lock();
            *g = 6;
        }
        assert_eq!(*m.lock(), 6);
        let cv = Condvar::new();
        let (g, timed_out) = cv.wait_timeout(m.lock(), Duration::from_millis(1));
        assert!(timed_out);
        assert_eq!(*g, 6);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p = pair.clone();
        let h = super::thread::spawn(move || {
            let mut done = p.0.lock();
            *done = true;
            p.1.notify_all();
        });
        let mut done = pair.0.lock();
        while !*done {
            done = pair.1.wait(done);
        }
        drop(done);
        h.join().unwrap();
    }
}
